//! `lint.toml` parsing.
//!
//! The workspace cannot take a dependency on a TOML crate, so this module
//! parses the small TOML subset the lint configuration uses: `[table]`
//! headers, `[[allow]]` array-of-table headers, `key = "string"`, and
//! `key = [ "array", "of", "strings" ]` (single- or multi-line).

use std::collections::HashMap;
use std::fmt;

/// How a rule's findings are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported and fails the gate.
    Error,
    /// Reported but does not fail the gate.
    Warn,
    /// Rule disabled.
    Off,
}

impl Severity {
    fn parse(s: &str) -> Result<Self, ConfigError> {
        match s {
            "error" => Ok(Severity::Error),
            "warn" => Ok(Severity::Warn),
            "off" => Ok(Severity::Off),
            other => Err(ConfigError::new(format!(
                "unknown severity {other:?} (expected \"error\", \"warn\", or \"off\")"
            ))),
        }
    }
}

/// One grandfathered violation.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule name the entry silences.
    pub rule: String,
    /// Workspace-relative file the violation lives in.
    pub file: String,
    /// Substring of the offending source line.
    pub pattern: String,
    /// Why the site is allowed (required; shown in `--list-allowed`).
    pub reason: String,
    /// 1-based `lint.toml` line of the `[[allow]]` header — reported when
    /// the entry goes stale so the line to delete is one click away.
    pub line: usize,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Hot-path seed entries for the call-graph analysis, as
    /// `"<file>::<function>"` (or `"<file>::*"` for every function in the
    /// file). Panic-freedom and iteration-order rules propagate from
    /// these transitively through the workspace call graph.
    pub hot_entries: Vec<String>,
    /// Crate-qualified lock names (`"<crate>/<field>"`) in the one global
    /// acquisition order. The call-graph analysis *derives* the real
    /// acquisition graph and verifies this list against it: every derived
    /// edge must be consistent with this order, every name here must
    /// match a real acquisition site, and every lock participating in a
    /// derived edge must be listed.
    pub lock_order: Vec<String>,
    /// 1-based `lint.toml` line of the `lock_order` key (0 when absent) —
    /// reported when a declared name matches no acquisition site.
    pub lock_order_line: usize,
    /// Function names that acquire the lock passed as their argument
    /// (poison-recovering `lock(&mutex)` helpers around `std::sync`).
    pub lock_helpers: Vec<String>,
    /// Method names treated as send/event-bus calls by lock-discipline.
    pub bus_calls: Vec<String>,
    /// Path prefixes exempt from `no-println-in-lib` (binary-only code
    /// that owns stdout: bench and lint binaries).
    pub println_exempt: Vec<String>,
    /// Path prefixes exempt from `no-wallclock-in-lib` (code that is
    /// *supposed* to read the host clock: telemetry's timers and the
    /// real-time bench harnesses).
    pub wallclock_exempt: Vec<String>,
    /// Per-rule severity overrides.
    pub severity: HashMap<String, Severity>,
    /// Grandfathered sites.
    pub allow: Vec<AllowEntry>,
}

/// Error produced by [`Config::parse`].
#[derive(Debug)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: String) -> Self {
        ConfigError { message }
    }

    fn at(line_no: usize, message: String) -> Self {
        ConfigError::new(format!("lint.toml:{line_no}: {message}"))
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the configuration text.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on syntax this subset does not understand,
    /// unknown keys, or an `[[allow]]` entry missing a field.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut config = Config::default();
        let mut section = String::new();

        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }

            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                if header != "allow" {
                    return Err(ConfigError::at(
                        line_no,
                        format!("unknown array table [[{header}]]"),
                    ));
                }
                section = "allow".to_string();
                config.allow.push(AllowEntry {
                    rule: String::new(),
                    file: String::new(),
                    pattern: String::new(),
                    reason: String::new(),
                    line: line_no,
                });
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                match header {
                    "lint" | "severity" | "analyze" => section = header.to_string(),
                    other => {
                        return Err(ConfigError::at(line_no, format!("unknown table [{other}]")))
                    }
                }
                continue;
            }

            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| {
                    ConfigError::at(line_no, format!("expected `key = value`, got {line:?}"))
                })?;

            // Multi-line arrays: keep consuming until brackets balance.
            while value.starts_with('[') && !brackets_balanced(&value) {
                let (_, next) = lines
                    .next()
                    .ok_or_else(|| ConfigError::at(line_no, "unterminated array".to_string()))?;
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }

            match (section.as_str(), key.as_str()) {
                ("lint", "hot_paths") => {
                    return Err(ConfigError::at(
                        line_no,
                        "hot_paths moved: the call-graph pass seeds from \
                         [analyze] hot_entries (\"<file>::<fn>\" or \"<file>::*\")"
                            .to_string(),
                    ))
                }
                ("lint", "lock_order") => {
                    return Err(ConfigError::at(
                        line_no,
                        "lock_order moved to [analyze] and now uses crate-qualified \
                         names (\"<crate>/<field>\"); regenerate with \
                         `cargo run -p athena-analyze --bin athena-lint -- --lock-graph`"
                            .to_string(),
                    ))
                }
                ("analyze", "hot_entries") => {
                    config.hot_entries = parse_string_array(&value, line_no)?;
                }
                ("analyze", "lock_order") => {
                    config.lock_order = parse_string_array(&value, line_no)?;
                    config.lock_order_line = line_no;
                }
                ("analyze", "lock_helpers") => {
                    config.lock_helpers = parse_string_array(&value, line_no)?;
                }
                ("lint", "bus_calls") => config.bus_calls = parse_string_array(&value, line_no)?,
                ("lint", "println_exempt") => {
                    config.println_exempt = parse_string_array(&value, line_no)?;
                }
                ("lint", "wallclock_exempt") => {
                    config.wallclock_exempt = parse_string_array(&value, line_no)?;
                }
                ("severity", rule) => {
                    let sev = Severity::parse(&parse_string(&value, line_no)?)?;
                    config.severity.insert(rule.to_string(), sev);
                }
                ("allow", field) => {
                    let entry = config.allow.last_mut().ok_or_else(|| {
                        ConfigError::at(line_no, "allow key outside [[allow]]".to_string())
                    })?;
                    let s = parse_string(&value, line_no)?;
                    match field {
                        "rule" => entry.rule = s,
                        "file" => entry.file = s,
                        "pattern" => entry.pattern = s,
                        "reason" => entry.reason = s,
                        other => {
                            return Err(ConfigError::at(
                                line_no,
                                format!("unknown allow key {other:?}"),
                            ))
                        }
                    }
                }
                (sec, k) => {
                    return Err(ConfigError::at(
                        line_no,
                        format!("unknown key {k:?} in section [{sec}]"),
                    ))
                }
            }
        }

        for (i, entry) in config.allow.iter().enumerate() {
            if entry.rule.is_empty() || entry.file.is_empty() || entry.pattern.is_empty() {
                return Err(ConfigError::new(format!(
                    "[[allow]] entry #{} must set rule, file, and pattern",
                    i + 1
                )));
            }
            if entry.reason.is_empty() {
                return Err(ConfigError::new(format!(
                    "[[allow]] entry #{} ({} in {}) must carry a reason",
                    i + 1,
                    entry.rule,
                    entry.file
                )));
            }
        }

        Ok(config)
    }

    /// The effective severity for a rule, honoring overrides.
    pub fn severity_for(&self, rule: &str, default: Severity) -> Severity {
        self.severity.get(rule).copied().unwrap_or(default)
    }

    /// Whether an allow entry matches the diagnostic site.
    pub fn is_allowed(&self, rule: &str, file: &str, line_text: &str) -> bool {
        self.allow
            .iter()
            .any(|a| a.rule == rule && a.file == file && line_text.contains(&a.pattern))
    }
}

/// Drops a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    for c in value.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string(value: &str, line_no: usize) -> Result<String, ConfigError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| {
            ConfigError::at(line_no, format!("expected a quoted string, got {value:?}"))
        })?;
    // Unescape the two escapes the config actually needs.
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

fn parse_string_array(value: &str, line_no: usize) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| ConfigError::at(line_no, format!("expected an array, got {value:?}")))?;
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, line_no)?);
    }
    Ok(out)
}

/// Splits on commas outside string literals.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}
