//! Static-analysis gate for the Athena workspace.
//!
//! `athena-lint` enforces seven invariants over the workspace's
//! production sources without any external parser dependency:
//!
//! - **no-panic-in-hot-path** — `unwrap`/`expect`, `panic!`-family
//!   macros, and panicking `[]` indexing are banned in the decode/forward
//!   hot paths listed in `lint.toml`.
//! - **forbid-unsafe** — no `unsafe` anywhere.
//! - **lock-discipline** — while a guard is held, nested acquisitions
//!   must follow the declared `lock_order`, the same lock may not be
//!   re-acquired, and no send/event-bus call may run under the guard.
//! - **error-hygiene** — `Box<dyn Error>` must not cross crate APIs;
//!   fallible paths use `athena_types::error::AthenaError`.
//! - **no-println-in-lib** — library crates never write to the console;
//!   output goes through telemetry events or return values. Only the
//!   binary paths listed under `println_exempt` own stdout.
//! - **no-wallclock-in-lib** — `Instant::now()` and `SystemTime` are
//!   banned outside the `wallclock_exempt` paths (telemetry timers, bench
//!   harnesses): everything else runs on virtual `SimTime`, which is what
//!   keeps runs and crash-recovery replays deterministic.
//! - **no-unordered-iter-in-hot-path** — direct `HashMap`/`HashSet`
//!   iteration is banned in the hot-path files: hash order varies by
//!   seed and insertion history, and behaviour derived from it breaks
//!   the byte-identical determinism guarantee.
//!
//! Grandfathered sites live in `lint.toml` under `[[allow]]`, each with a
//! mandatory one-line justification. The `athena-lint` binary prints
//! `file:line:col` diagnostics and exits non-zero on violations; the root
//! integration test `tests/static_analysis.rs` runs the same check under
//! `cargo test`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod config;
pub mod rules;
pub mod tokenizer;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub use config::{Config, Severity};
pub use rules::{Rule, SourceFile};

/// A resolved diagnostic ready for reporting.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: &'static str,
    /// Effective severity.
    pub severity: Severity,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let level = match self.severity {
            Severity::Error => "error",
            Severity::Warn => "warning",
            Severity::Off => "off",
        };
        write!(
            f,
            "{}:{}:{}: {level}[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All diagnostics, sorted by file and position.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// `[[allow]]` entries that matched nothing (stale grandfathering).
    pub stale_allows: Vec<String>,
}

impl Report {
    /// Whether the gate should fail.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
            || !self.stale_allows.is_empty()
    }
}

/// Error from the lint engine itself (I/O or configuration).
#[derive(Debug)]
pub struct LintError {
    message: String,
}

impl LintError {
    fn new(message: String) -> Self {
        LintError { message }
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LintError {}

/// Loads `lint.toml` from the workspace root.
///
/// # Errors
///
/// Returns [`LintError`] when the file is missing or malformed.
pub fn load_config(root: &Path) -> Result<Config, LintError> {
    let path = root.join("lint.toml");
    let text = fs::read_to_string(&path)
        .map_err(|e| LintError::new(format!("cannot read {}: {e}", path.display())))?;
    Config::parse(&text).map_err(|e| LintError::new(e.to_string()))
}

/// Runs every rule over the workspace's production sources.
///
/// Scans `src/` and `crates/*/src/` under `root`. Test directories
/// (`tests/`, `benches/`, `examples/`) and the vendored dependency shims
/// are out of scope: the gate protects shipped code.
///
/// # Errors
///
/// Returns [`LintError`] on I/O failures while walking the tree.
pub fn run_lint(root: &Path, config: &Config) -> Result<Report, LintError> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rust_files(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates)
            .map_err(|e| LintError::new(format!("cannot read {}: {e}", crates.display())))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            let crate_src = entry.join("src");
            if crate_src.is_dir() {
                collect_rust_files(&crate_src, &mut files)?;
            }
        }
    }
    files.sort();

    let registry = rules::registry();
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut allow_hits = vec![0usize; config.allow.len()];

    for path in &files {
        let text = fs::read_to_string(path)
            .map_err(|e| LintError::new(format!("cannot read {}: {e}", path.display())))?;
        let rel = relative_path(root, path);
        let file = SourceFile::new(rel, text);

        for rule in &registry {
            let severity = config.severity_for(rule.name(), rule.default_severity());
            if severity == Severity::Off {
                continue;
            }
            let mut violations = Vec::new();
            rule.check(&file, config, &mut violations);
            for v in violations {
                let line_text = file.line_text(v.line);
                let allowed = config
                    .allow
                    .iter()
                    .enumerate()
                    .find(|(_, a)| {
                        a.rule == rule.name()
                            && a.file == file.rel_path
                            && line_text.contains(&a.pattern)
                    })
                    .map(|(idx, _)| idx);
                if let Some(idx) = allowed {
                    allow_hits[idx] += 1;
                    continue;
                }
                report.diagnostics.push(Diagnostic {
                    rule: rule.name(),
                    severity,
                    file: file.rel_path.clone(),
                    line: v.line,
                    col: v.col,
                    message: v.message,
                });
            }
        }
    }

    for (idx, hits) in allow_hits.iter().enumerate() {
        if *hits == 0 {
            let a = &config.allow[idx];
            report.stale_allows.push(format!(
                "[[allow]] entry for {} in {} (pattern {:?}) matched nothing — remove it",
                a.rule, a.file, a.pattern
            ));
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

/// Loads the configuration and lints the workspace in one call.
///
/// # Errors
///
/// Returns [`LintError`] on configuration or I/O failures.
pub fn check_workspace(root: &Path) -> Result<Report, LintError> {
    let config = load_config(root)?;
    run_lint(root, &config)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir)
        .map_err(|e| LintError::new(format!("cannot read {}: {e}", dir.display())))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| LintError::new(format!("walk error in {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: walks up from `start` until a directory
/// containing `lint.toml` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
