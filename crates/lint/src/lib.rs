//! Tokenizer, configuration, and file-local rules for the Athena
//! static-analysis gate.
//!
//! This crate owns the parsing layer — the hand-rolled [`tokenizer`],
//! the `lint.toml` [`config`] schema, the shared site matchers in
//! [`sites`], and the file-local [`rules`]:
//!
//! - **forbid-unsafe** — no `unsafe` anywhere.
//! - **lock-discipline** — while a guard is held, the same lock may not
//!   be re-acquired and no send/event-bus call may run under the guard.
//! - **error-hygiene** — `Box<dyn Error>` must not cross crate APIs;
//!   fallible paths use `athena_types::error::AthenaError`.
//! - **no-println-in-lib** — library crates never write to the console;
//!   only the binary paths listed under `println_exempt` own stdout.
//! - **no-wallclock-in-lib** — `Instant::now()` and `SystemTime` are
//!   banned outside the `wallclock_exempt` paths: everything else runs
//!   on virtual `SimTime`, which is what keeps runs and crash-recovery
//!   replays deterministic.
//!
//! The whole-workspace analyses — hot-path propagation of
//! `no-panic-in-hot-path` / `no-unordered-iter-in-hot-path`, derived
//! lock-acquisition-graph checks (`lock-cycle`, `lock-order-violation`),
//! and graph-aware `bus-call-under-guard` — live in `athena-analyze`,
//! which drives these file rules *and* its call-graph passes over the
//! sources collected by [`collect_sources`]. The `athena-lint` binary
//! ships from that crate; the root integration test
//! `tests/static_analysis.rs` runs the same engine under `cargo test`.
//!
//! Grandfathered sites live in `lint.toml` under `[[allow]]`, each with a
//! mandatory one-line justification; entries that stop matching fail the
//! gate with a pointer to the `lint.toml` line to delete.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod config;
pub mod rules;
pub mod sites;
pub mod tokenizer;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub use config::{Config, Severity};
pub use rules::{Rule, SourceFile};

/// A resolved diagnostic ready for reporting.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: &'static str,
    /// Effective severity.
    pub severity: Severity,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Description.
    pub message: String,
    /// For propagated findings: the call chain from the entry point to
    /// the flagged site, one `file::function (file:line)` hop per entry.
    /// Empty for file-local findings.
    pub witness: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let level = match self.severity {
            Severity::Error => "error",
            Severity::Warn => "warning",
            Severity::Off => "off",
        };
        write!(
            f,
            "{}:{}:{}: {level}[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )?;
        for hop in &self.witness {
            write!(f, "\n    via {hop}")?;
        }
        Ok(())
    }
}

/// Outcome of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// All diagnostics, sorted by file and position.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// `[[allow]]` entries that matched nothing (stale grandfathering),
    /// each pointing at the `lint.toml` line to delete.
    pub stale_allows: Vec<String>,
}

impl Report {
    /// Whether the gate should fail.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
            || !self.stale_allows.is_empty()
    }
}

/// Error from the lint engine itself (I/O or configuration).
#[derive(Debug)]
pub struct LintError {
    message: String,
}

impl LintError {
    /// Wraps a message.
    pub fn new(message: String) -> Self {
        LintError { message }
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LintError {}

/// Loads `lint.toml` from the workspace root.
///
/// # Errors
///
/// Returns [`LintError`] when the file is missing or malformed.
pub fn load_config(root: &Path) -> Result<Config, LintError> {
    let path = root.join("lint.toml");
    let text = fs::read_to_string(&path)
        .map_err(|e| LintError::new(format!("cannot read {}: {e}", path.display())))?;
    Config::parse(&text).map_err(|e| LintError::new(e.to_string()))
}

/// Collects and tokenizes the workspace's production sources.
///
/// Scans `src/` and `crates/*/src/` under `root`, sorted so results are
/// deterministic. Test directories (`tests/`, `benches/`, `examples/`)
/// and the vendored dependency shims are out of scope: the gate protects
/// shipped code.
///
/// # Errors
///
/// Returns [`LintError`] on I/O failures while walking the tree.
pub fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, LintError> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rust_files(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates)
            .map_err(|e| LintError::new(format!("cannot read {}: {e}", crates.display())))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            let crate_src = entry.join("src");
            if crate_src.is_dir() {
                collect_rust_files(&crate_src, &mut files)?;
            }
        }
    }
    files.sort();

    let mut out = Vec::with_capacity(files.len());
    for path in &files {
        let text = fs::read_to_string(path)
            .map_err(|e| LintError::new(format!("cannot read {}: {e}", path.display())))?;
        out.push(SourceFile::new(relative_path(root, path), text));
    }
    Ok(out)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir)
        .map_err(|e| LintError::new(format!("cannot read {}: {e}", dir.display())))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| LintError::new(format!("walk error in {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: walks up from `start` until a directory
/// containing `lint.toml` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
