//! File-local lint rules.
//!
//! Each rule scans one tokenized file and reports violations. Rules never
//! see comment or literal contents (the tokenizer drops them) and skip
//! tokens marked as test-only unless stated otherwise.
//!
//! The reachability-based rules (`no-panic-in-hot-path`,
//! `no-unordered-iter-in-hot-path`) and the whole-graph lock analyses
//! (`lock-cycle`, `lock-order-violation`, graph-aware
//! `bus-call-under-guard`) live in `athena-analyze`: they need the
//! workspace call graph, which a single file cannot provide. Their
//! site-level pattern matchers are shared through [`crate::sites`].

use crate::config::{Config, Severity};
use crate::sites;
use crate::tokenizer::{Token, TokenKind};

/// One source file prepared for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Raw text (used for allowlist pattern matching).
    pub text: String,
    /// Token stream.
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Builds a file from its path and contents.
    pub fn new(rel_path: String, text: String) -> Self {
        let tokens = crate::tokenizer::tokenize(&text);
        SourceFile {
            rel_path,
            text,
            tokens,
        }
    }

    /// The text of a 1-based line (empty when out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
    }
}

/// A rule violation before severity/allowlist resolution.
#[derive(Debug, Clone)]
pub struct Violation {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl Violation {
    fn at(token: &Token, message: String) -> Self {
        Violation {
            line: token.line,
            col: token.col,
            message,
        }
    }
}

/// A lint rule.
pub trait Rule {
    /// Stable kebab-case rule name (used in `lint.toml`).
    fn name(&self) -> &'static str;

    /// Severity applied when `lint.toml` has no override.
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    /// Scans `file` and appends violations to `out`.
    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Violation>);
}

/// All file-local rules, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ForbidUnsafe),
        Box::new(LockDiscipline),
        Box::new(ErrorHygiene),
        Box::new(NoPrintlnInLib),
        Box::new(NoWallclockInLib),
    ]
}

/// Bans `unsafe` everywhere, including test code: the workspace is a
/// from-scratch simulation with no FFI, so there is never a reason.
pub struct ForbidUnsafe;

impl Rule for ForbidUnsafe {
    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn check(&self, file: &SourceFile, _config: &Config, out: &mut Vec<Violation>) {
        for t in &file.tokens {
            if t.is_ident("unsafe") {
                out.push(Violation::at(
                    t,
                    "unsafe code is forbidden across the workspace".to_string(),
                ));
            }
        }
    }
}

/// Flags `Box<dyn … Error …>` in non-test code: errors crossing crate
/// APIs must use `athena_types::error::AthenaError` so callers can match
/// on failure kinds.
pub struct ErrorHygiene;

impl Rule for ErrorHygiene {
    fn name(&self) -> &'static str {
        "error-hygiene"
    }

    fn check(&self, file: &SourceFile, _config: &Config, out: &mut Vec<Violation>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if tokens[i].in_test || !tokens[i].is_ident("Box") {
                continue;
            }
            if !(tokens.get(i + 1).is_some_and(|t| t.is_punct('<'))
                && tokens.get(i + 2).is_some_and(|t| t.is_ident("dyn")))
            {
                continue;
            }
            // Scan the trait path inside the angle brackets for `Error`.
            let mut j = i + 3;
            let mut angle: i32 = 1;
            while j < tokens.len() && angle > 0 && j < i + 16 {
                match tokens[j].kind {
                    TokenKind::Punct('<') => angle += 1,
                    TokenKind::Punct('>') => angle -= 1,
                    TokenKind::Ident if tokens[j].text == "Error" => {
                        out.push(Violation::at(
                            &tokens[i],
                            "Box<dyn Error> erases failure kinds; use athena_types::error::AthenaError".to_string(),
                        ));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// Bans `println!`/`eprintln!` (and `print!`/`eprint!`) in library code:
/// libraries report through telemetry events or return values; only
/// binaries own the console. Paths under a `println_exempt` prefix in
/// `lint.toml` (the bench and lint binaries) are out of scope.
pub struct NoPrintlnInLib;

impl Rule for NoPrintlnInLib {
    fn name(&self) -> &'static str {
        "no-println-in-lib"
    }

    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Violation>) {
        if config
            .println_exempt
            .iter()
            .any(|p| file.rel_path.starts_with(p.as_str()))
        {
            return;
        }
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if t.in_test || t.kind != TokenKind::Ident {
                continue;
            }
            if matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(Violation::at(
                    t,
                    format!(
                        "{}! in library code; emit a telemetry event or return the text",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// Bans wall-clock reads (`Instant::now()` and any `SystemTime` use) in
/// library code: the simulation is deterministic under virtual time, and
/// a stray wall-clock read silently breaks replay and the byte-identical
/// recovery guarantees. Only the paths under `wallclock_exempt` in
/// `lint.toml` — telemetry's own timers and the real-time bench harnesses
/// — may read the host clock.
pub struct NoWallclockInLib;

impl Rule for NoWallclockInLib {
    fn name(&self) -> &'static str {
        "no-wallclock-in-lib"
    }

    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Violation>) {
        if config
            .wallclock_exempt
            .iter()
            .any(|p| file.rel_path.starts_with(p.as_str()))
        {
            return;
        }
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if t.in_test || t.kind != TokenKind::Ident {
                continue;
            }
            if t.text == "SystemTime" {
                out.push(Violation::at(
                    t,
                    "SystemTime reads the wall clock; use virtual SimTime".to_string(),
                ));
            } else if t.text == "Instant"
                // `::` is one PathSep token, not two `:` puncts.
                && tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::PathSep)
                && tokens.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                out.push(Violation::at(
                    t,
                    "Instant::now() reads the wall clock; use virtual SimTime".to_string(),
                ));
            }
        }
    }
}

/// Enforces the file-local half of lock discipline: while a guard is
/// held, the same lock may not be re-acquired (self-deadlock), and no
/// send/event-bus call may run under the guard.
///
/// Acquisition *ordering* between different locks is checked by
/// `athena-analyze` against the derived whole-workspace acquisition
/// graph — a per-file positional check cannot see cross-function
/// nesting, which is where real inversions live.
pub struct LockDiscipline;

impl Rule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Violation>) {
        let tokens = &file.tokens;
        let acquisitions = sites::find_acquisitions(tokens, &config.lock_helpers);

        for acq in &acquisitions {
            let t = &tokens[acq.at];
            if t.in_test {
                continue;
            }
            let held_until = sites::guard_extent(tokens, acq);
            let guard_var = sites::guard_variable(tokens, acq);

            for k in acq.end..held_until.min(tokens.len()) {
                // Guard dropped explicitly: drop(guard) — or a tuple
                // drop containing it — ends the window.
                if let Some(var) = guard_var.as_deref() {
                    if sites::drop_releases(tokens, k, var) {
                        break;
                    }
                }

                // Same-lock re-acquisition would self-deadlock.
                if let Some(inner) = acquisitions.iter().find(|a| a.at == k) {
                    if inner.name == acq.name && acq.name != "<expr>" {
                        out.push(Violation::at(
                            &tokens[k],
                            format!(
                                "lock `{}` re-acquired while its guard is held (self-deadlock)",
                                acq.name
                            ),
                        ));
                    }
                }

                // Send/event-bus call under the guard.
                if tokens[k].is_punct('.')
                    && tokens.get(k + 1).is_some_and(|n| {
                        n.kind == TokenKind::Ident && config.bus_calls.contains(&n.text)
                    })
                    && tokens.get(k + 2).is_some_and(|n| n.is_punct('('))
                {
                    out.push(Violation::at(
                        &tokens[k + 1],
                        format!(
                            "`.{}(…)` called while lock `{}` is held; release the guard first",
                            tokens[k + 1].text,
                            acq.name
                        ),
                    ));
                }
            }
        }
    }
}
