//! Lint rules.
//!
//! Each rule scans one tokenized file and reports violations. Rules never
//! see comment or literal contents (the tokenizer drops them) and skip
//! tokens marked as test-only unless stated otherwise.

use crate::config::{Config, Severity};
use crate::tokenizer::{Token, TokenKind};

/// One source file prepared for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Raw text (used for allowlist pattern matching).
    pub text: String,
    /// Token stream.
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Builds a file from its path and contents.
    pub fn new(rel_path: String, text: String) -> Self {
        let tokens = crate::tokenizer::tokenize(&text);
        SourceFile {
            rel_path,
            text,
            tokens,
        }
    }

    /// The text of a 1-based line (empty when out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
    }
}

/// A rule violation before severity/allowlist resolution.
#[derive(Debug, Clone)]
pub struct Violation {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl Violation {
    fn at(token: &Token, message: String) -> Self {
        Violation {
            line: token.line,
            col: token.col,
            message,
        }
    }
}

/// A lint rule.
pub trait Rule {
    /// Stable kebab-case rule name (used in `lint.toml`).
    fn name(&self) -> &'static str;

    /// Severity applied when `lint.toml` has no override.
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    /// Scans `file` and appends violations to `out`.
    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Violation>);
}

/// All rules, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicInHotPath),
        Box::new(ForbidUnsafe),
        Box::new(LockDiscipline),
        Box::new(ErrorHygiene),
        Box::new(NoPrintlnInLib),
        Box::new(NoWallclockInLib),
        Box::new(NoUnorderedIterInHotPath),
    ]
}

/// Keywords that may directly precede a `[` without it being indexing
/// (array literals, types, and expression starts).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "dyn", "else", "enum", "fn", "for", "if", "impl", "in", "let",
    "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static", "struct", "trait",
    "type", "unsafe", "use", "where", "while", "yield",
];

/// Bans panicking constructs and slice indexing in the configured
/// hot-path files: `unwrap`/`expect` method calls, `panic!`/`todo!`/
/// `unimplemented!`, and `expr[…]` indexing (which panics out of bounds).
pub struct NoPanicInHotPath;

impl Rule for NoPanicInHotPath {
    fn name(&self) -> &'static str {
        "no-panic-in-hot-path"
    }

    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Violation>) {
        if !config.hot_paths.iter().any(|p| p == &file.rel_path) {
            return;
        }
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if t.in_test {
                continue;
            }
            match t.kind {
                TokenKind::Ident => {
                    let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
                    let next_open = tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                    let next_bang = tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
                    if prev_dot && next_open && (t.text == "unwrap" || t.text == "expect") {
                        out.push(Violation::at(
                            t,
                            format!(".{}() can panic; return a typed error instead", t.text),
                        ));
                    } else if next_bang
                        && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
                    {
                        out.push(Violation::at(
                            t,
                            format!("{}! is banned in hot-path code", t.text),
                        ));
                    }
                }
                TokenKind::Punct('[') => {
                    if let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) {
                        let indexes_expr = match prev.kind {
                            TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                            TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                            _ => false,
                        };
                        if indexes_expr {
                            out.push(Violation::at(
                                t,
                                "slice/map indexing panics out of bounds; use .get()".to_string(),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Bans `unsafe` everywhere, including test code: the workspace is a
/// from-scratch simulation with no FFI, so there is never a reason.
pub struct ForbidUnsafe;

impl Rule for ForbidUnsafe {
    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn check(&self, file: &SourceFile, _config: &Config, out: &mut Vec<Violation>) {
        for t in &file.tokens {
            if t.is_ident("unsafe") {
                out.push(Violation::at(
                    t,
                    "unsafe code is forbidden across the workspace".to_string(),
                ));
            }
        }
    }
}

/// Flags `Box<dyn … Error …>` in non-test code: errors crossing crate
/// APIs must use `athena_types::error::AthenaError` so callers can match
/// on failure kinds.
pub struct ErrorHygiene;

impl Rule for ErrorHygiene {
    fn name(&self) -> &'static str {
        "error-hygiene"
    }

    fn check(&self, file: &SourceFile, _config: &Config, out: &mut Vec<Violation>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if tokens[i].in_test || !tokens[i].is_ident("Box") {
                continue;
            }
            if !(tokens.get(i + 1).is_some_and(|t| t.is_punct('<'))
                && tokens.get(i + 2).is_some_and(|t| t.is_ident("dyn")))
            {
                continue;
            }
            // Scan the trait path inside the angle brackets for `Error`.
            let mut j = i + 3;
            let mut angle: i32 = 1;
            while j < tokens.len() && angle > 0 && j < i + 16 {
                match tokens[j].kind {
                    TokenKind::Punct('<') => angle += 1,
                    TokenKind::Punct('>') => angle -= 1,
                    TokenKind::Ident if tokens[j].text == "Error" => {
                        out.push(Violation::at(
                            &tokens[i],
                            "Box<dyn Error> erases failure kinds; use athena_types::error::AthenaError".to_string(),
                        ));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// Bans `println!`/`eprintln!` (and `print!`/`eprint!`) in library code:
/// libraries report through telemetry events or return values; only
/// binaries own the console. Paths under a `println_exempt` prefix in
/// `lint.toml` (the bench and lint binaries) are out of scope.
pub struct NoPrintlnInLib;

impl Rule for NoPrintlnInLib {
    fn name(&self) -> &'static str {
        "no-println-in-lib"
    }

    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Violation>) {
        if config
            .println_exempt
            .iter()
            .any(|p| file.rel_path.starts_with(p.as_str()))
        {
            return;
        }
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if t.in_test || t.kind != TokenKind::Ident {
                continue;
            }
            if matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(Violation::at(
                    t,
                    format!(
                        "{}! in library code; emit a telemetry event or return the text",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// Bans wall-clock reads (`Instant::now()` and any `SystemTime` use) in
/// library code: the simulation is deterministic under virtual time, and
/// a stray wall-clock read silently breaks replay and the byte-identical
/// recovery guarantees. Only the paths under `wallclock_exempt` in
/// `lint.toml` — telemetry's own timers and the real-time bench harnesses
/// — may read the host clock.
pub struct NoWallclockInLib;

impl Rule for NoWallclockInLib {
    fn name(&self) -> &'static str {
        "no-wallclock-in-lib"
    }

    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Violation>) {
        if config
            .wallclock_exempt
            .iter()
            .any(|p| file.rel_path.starts_with(p.as_str()))
        {
            return;
        }
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if t.in_test || t.kind != TokenKind::Ident {
                continue;
            }
            if t.text == "SystemTime" {
                out.push(Violation::at(
                    t,
                    "SystemTime reads the wall clock; use virtual SimTime".to_string(),
                ));
            } else if t.text == "Instant"
                && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|n| n.is_ident("now"))
            {
                out.push(Violation::at(
                    t,
                    "Instant::now() reads the wall clock; use virtual SimTime".to_string(),
                ));
            }
        }
    }
}

/// Methods whose iteration order over a hash container is
/// nondeterministic.
const UNORDERED_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Flags direct iteration over `HashMap`/`HashSet` variables in the
/// configured hot-path files.
///
/// Hash iteration order varies with the hasher seed and insertion
/// history, so any hot-path behaviour derived from it (emission order,
/// first-match wins, accumulated floats) silently breaks the
/// byte-identical determinism guarantee. Sites that sort afterwards or
/// are provably order-independent are grandfathered in `lint.toml` under
/// `[[allow]]`, each with a reason.
///
/// Detection is two-pass: first collect identifiers declared with a
/// `HashMap`/`HashSet` type annotation or initialized from
/// `HashMap::new`-style constructors, then flag `.iter()`-family calls on
/// those identifiers and bare `for … in map` loops over them.
pub struct NoUnorderedIterInHotPath;

impl Rule for NoUnorderedIterInHotPath {
    fn name(&self) -> &'static str {
        "no-unordered-iter-in-hot-path"
    }

    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Violation>) {
        if !config.hot_paths.iter().any(|p| p == &file.rel_path) {
            return;
        }
        let tokens = &file.tokens;
        let declared = hash_container_names(tokens);
        if declared.is_empty() {
            return;
        }

        for (i, t) in tokens.iter().enumerate() {
            if t.in_test || t.kind != TokenKind::Ident {
                continue;
            }
            // `name.iter()` / `.keys()` / `.values_mut()` …
            if declared.contains(&t.text)
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && tokens.get(i + 2).is_some_and(|n| {
                    n.kind == TokenKind::Ident && UNORDERED_ITER_METHODS.contains(&n.text.as_str())
                })
                && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
            {
                out.push(Violation::at(
                    &tokens[i + 2],
                    format!(
                        "iterating hash container `{}` in a hot path is order-nondeterministic; \
                         sort the results or use an ordered structure",
                        t.text
                    ),
                ));
            }
            // `for … in [&[mut]] path.to.name {`
            if t.text == "in" {
                if let Some(name) = bare_loop_target(tokens, i + 1) {
                    if declared.contains(&name) {
                        out.push(Violation::at(
                            t,
                            format!(
                                "for-loop over hash container `{name}` in a hot path is \
                                 order-nondeterministic; sort the results or use an ordered \
                                 structure"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Identifiers declared in this file with a `HashMap`/`HashSet` type
/// (field/let annotations, possibly `&`-qualified or path-qualified) or
/// bound from a `HashMap::…` constructor call.
fn hash_container_names(tokens: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std::collections::` style path prefix.
        let mut j = i;
        while j >= 2
            && tokens[j - 1].kind == TokenKind::PathSep
            && tokens[j - 2].kind == TokenKind::Ident
        {
            j -= 2;
        }
        // Skip reference/mutability qualifiers in the type position.
        let mut k = j;
        while k > 0 && (tokens[k - 1].is_punct('&') || tokens[k - 1].is_ident("mut")) {
            k -= 1;
        }
        let name = match (
            k.checked_sub(2).map(|p| &tokens[p]),
            k.checked_sub(1).map(|p| &tokens[p]),
        ) {
            // `name: HashMap<…>` (field, param, or annotated let).
            (Some(n), Some(c)) if c.is_punct(':') && n.kind == TokenKind::Ident => Some(&n.text),
            // `name = HashMap::new()` style bindings.
            (Some(n), Some(eq)) if eq.is_punct('=') && n.kind == TokenKind::Ident => Some(&n.text),
            _ => None,
        };
        if let Some(name) = name {
            if !out.contains(name) {
                out.push(name.clone());
            }
        }
    }
    out
}

/// For a `for … in <expr> {` loop, returns the final identifier of the
/// iterated expression when it is a plain (possibly `&`/`mut`-prefixed)
/// field or variable path — `None` for anything with calls, ranges, or
/// other operators, which either iterate deterministically or are flagged
/// at their method-call site instead.
fn bare_loop_target(tokens: &[Token], mut j: usize) -> Option<String> {
    while tokens
        .get(j)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        j += 1;
    }
    let mut last: Option<String> = None;
    loop {
        let t = tokens.get(j)?;
        match t.kind {
            TokenKind::Ident => {
                last = Some(t.text.clone());
                j += 1;
            }
            TokenKind::Punct('.') | TokenKind::PathSep => j += 1,
            TokenKind::Punct('{') => return last,
            _ => return None,
        }
    }
}

/// One lock acquisition found in the token stream.
struct Acquisition {
    /// Index of the `.` starting `.lock()`/`.read()`/`.write()`.
    dot: usize,
    /// Index just past the closing `)`.
    end: usize,
    /// Coarse lock name: the receiver's final field/variable identifier.
    name: String,
}

/// Enforces lock discipline: while a guard is held, no other lock may be
/// acquired unless both locks appear in `lint.toml`'s `lock_order` table
/// in acquisition order, the same lock may not be re-acquired (it would
/// self-deadlock), and no send/event-bus call may run under the guard.
pub struct LockDiscipline;

impl Rule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Violation>) {
        let tokens = &file.tokens;
        let acquisitions = find_acquisitions(tokens);

        for acq in &acquisitions {
            let t = &tokens[acq.dot];
            if t.in_test {
                continue;
            }
            let held_until = guard_extent(tokens, acq);
            let guard_var = guard_variable(tokens, acq);

            for k in acq.end..held_until.min(tokens.len()) {
                let tk = &tokens[k];
                // Guard dropped explicitly: drop(guard) ends the window.
                if tk.is_ident("drop")
                    && tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
                    && tokens
                        .get(k + 2)
                        .zip(guard_var.as_deref())
                        .is_some_and(|(n, var)| n.is_ident(var))
                    && tokens.get(k + 3).is_some_and(|n| n.is_punct(')'))
                {
                    break;
                }

                // Nested acquisition.
                if let Some(inner) = acquisitions.iter().find(|a| a.dot == k) {
                    if inner.name == acq.name {
                        out.push(Violation::at(
                            &tokens[k],
                            format!(
                                "lock `{}` re-acquired while its guard is held (self-deadlock)",
                                acq.name
                            ),
                        ));
                    } else {
                        let outer_pos = config.lock_order.iter().position(|n| *n == acq.name);
                        let inner_pos = config.lock_order.iter().position(|n| *n == inner.name);
                        match (outer_pos, inner_pos) {
                            (Some(o), Some(i)) if o < i => {}
                            _ => out.push(Violation::at(
                                &tokens[k],
                                format!(
                                    "lock `{}` acquired while `{}` is held, but lint.toml's \
                                     lock_order does not declare this order",
                                    inner.name, acq.name
                                ),
                            )),
                        }
                    }
                }

                // Send/event-bus call under the guard.
                if tk.is_punct('.')
                    && tokens.get(k + 1).is_some_and(|n| {
                        n.kind == TokenKind::Ident && config.bus_calls.contains(&n.text)
                    })
                    && tokens.get(k + 2).is_some_and(|n| n.is_punct('('))
                {
                    out.push(Violation::at(
                        &tokens[k + 1],
                        format!(
                            "`.{}(…)` called while lock `{}` is held; release the guard first",
                            tokens[k + 1].text,
                            acq.name
                        ),
                    ));
                }
            }
        }
    }
}

/// Finds `.lock()` / `.read()` / `.write()` call sites.
fn find_acquisitions(tokens: &[Token]) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_punct('.') {
            continue;
        }
        let is_acquire = tokens
            .get(i + 1)
            .is_some_and(|t| matches!(t.text.as_str(), "lock" | "read" | "write"));
        if !(is_acquire
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct(')')))
        {
            continue;
        }
        out.push(Acquisition {
            dot: i,
            end: i + 4,
            name: receiver_name(tokens, i),
        });
    }
    out
}

/// The identifier naming the lock: the last field/variable in the
/// receiver chain (`self.runtime.reactor.lock()` → `reactor`).
fn receiver_name(tokens: &[Token], dot: usize) -> String {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        match tokens[j].kind {
            TokenKind::Ident => return tokens[j].text.clone(),
            // Skip a call's argument list: find its opening paren.
            TokenKind::Punct(')') => {
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if tokens[j].is_punct(')') {
                        depth += 1;
                    } else if tokens[j].is_punct('(') {
                        depth -= 1;
                    }
                }
            }
            _ => return "<expr>".to_string(),
        }
    }
    "<expr>".to_string()
}

/// Token index (exclusive) until which the acquisition's guard is held.
fn guard_extent(tokens: &[Token], acq: &Acquisition) -> usize {
    let depth = tokens[acq.dot].depth;
    let stmt_start = statement_start(tokens, acq.dot);

    if tokens.get(stmt_start).is_some_and(|t| t.is_ident("let")) {
        // Named guard: lives to the end of the enclosing block.
        for (off, t) in tokens[acq.end..].iter().enumerate() {
            if t.is_punct('}') && t.depth == depth {
                return acq.end + off;
            }
        }
        tokens.len()
    } else {
        // Temporary guard: dies at the end of the statement.
        for (off, t) in tokens[acq.end..].iter().enumerate() {
            if (t.is_punct(';') || t.is_punct('}')) && t.depth == depth {
                return acq.end + off;
            }
        }
        tokens.len()
    }
}

/// The variable a `let` guard is bound to, when the acquisition's
/// statement is a `let` binding of a plain identifier.
fn guard_variable(tokens: &[Token], acq: &Acquisition) -> Option<String> {
    let stmt_start = statement_start(tokens, acq.dot);
    if !tokens.get(stmt_start)?.is_ident("let") {
        return None;
    }
    let mut j = stmt_start + 1;
    while tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    tokens
        .get(j)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
}

/// Index of the first token of the statement containing `at`.
fn statement_start(tokens: &[Token], at: usize) -> usize {
    let mut j = at;
    while j > 0 {
        let t = &tokens[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return j;
        }
        j -= 1;
    }
    0
}
