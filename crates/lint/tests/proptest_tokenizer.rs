//! Property tests: the tokenizer must never panic, whatever bytes it is
//! fed, and must preserve basic structural invariants on valid-ish input.

use athena_lint::tokenizer::{tokenize, TokenKind};
use proptest::prelude::*;

/// Fragments that stress the tricky lexer states when concatenated in
/// arbitrary orders: quotes, escapes, raw-string fences, comment openers
/// that may never close, and plain code.
fn arb_fragment() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("fn f() { x.unwrap(); }"),
        Just("\""),
        Just("\\\""),
        Just("\\"),
        Just("'"),
        Just("'a"),
        Just("'x'"),
        Just("r#\""),
        Just("\"#"),
        Just("r##\"unclosed"),
        Just("b\"bytes\""),
        Just("//"),
        Just("/*"),
        Just("*/"),
        Just("/* nested /* comment */"),
        Just("#[cfg(test)]"),
        Just("mod tests {"),
        Just("}"),
        Just("{"),
        Just("["),
        Just("]"),
        Just("panic!(\"boom\")"),
        Just("1.0e-3_f64"),
        Just("0xfe_u8"),
        Just("::<>->."),
        Just("日本語"),
        Just("\n"),
        Just(" "),
    ]
}

fn arb_snippet() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_fragment(), 0..40).prop_map(|parts| parts.concat())
}

proptest! {
    #[test]
    fn tokenizing_arbitrary_snippets_never_panics(src in arb_snippet()) {
        // The property is simply that this call returns.
        let tokens = tokenize(&src);
        // Positions must be within the source's line count.
        let line_count = src.lines().count() as u32 + 1;
        for t in &tokens {
            prop_assert!(t.line >= 1 && t.line <= line_count);
            prop_assert!(t.col >= 1);
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(chunks in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Lossily decoded arbitrary bytes exercise non-ASCII paths.
        let src = String::from_utf8_lossy(&chunks).into_owned();
        let _ = tokenize(&src);
    }

    #[test]
    fn literal_contents_never_leak(s in proptest::collection::vec(0u8..128, 0..30)) {
        // Whatever ASCII we embed in a string literal, no identifier
        // token may surface from inside it.
        let inner: String = s
            .iter()
            .map(|b| *b as char)
            .filter(|c| *c != '"' && *c != '\\' && *c != '\n' && *c != '\r')
            .collect();
        let src = format!("fn f() {{ let x = \"{inner}\"; }}");
        let toks = tokenize(&src);
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["fn", "f", "let", "x"]);
    }
}
