//! Tokenizer unit tests: panicking constructs mentioned in comments,
//! string literals, raw strings, or test-only code must never surface as
//! tokens the rules could flag — and real violations must.

use athena_lint::config::Config;
use athena_lint::rules::{NoPanicInHotPath, NoUnorderedIterInHotPath, Rule, SourceFile};
use athena_lint::tokenizer::{tokenize, TokenKind};

fn idents(source: &str) -> Vec<String> {
    tokenize(source)
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident && !t.in_test)
        .map(|t| t.text)
        .collect()
}

#[test]
fn unwrap_in_line_comment_is_not_a_token() {
    let src = "fn f() { // .unwrap() would panic here\n let x = 1; }";
    assert!(!idents(src).contains(&"unwrap".to_string()));
}

#[test]
fn unwrap_in_doc_and_block_comments_is_not_a_token() {
    let src =
        "/// call .unwrap() at your peril\n/* nested /* .unwrap() */ still comment */ fn f() {}";
    assert!(!idents(src).contains(&"unwrap".to_string()));
}

#[test]
fn unwrap_in_string_literal_is_not_a_token() {
    let src = r#"fn f() { let s = "please don't .unwrap() this"; }"#;
    assert!(!idents(src).contains(&"unwrap".to_string()));
}

#[test]
fn unwrap_in_raw_string_is_not_a_token() {
    let src = r##"fn f() { let s = r#"x.unwrap() and "quotes" inside"#; }"##;
    let toks = idents(src);
    assert!(!toks.contains(&"unwrap".to_string()), "{toks:?}");
    // The binding after the raw string still tokenizes normally.
    assert!(toks.contains(&"s".to_string()));
}

#[test]
fn escaped_quotes_do_not_end_strings_early() {
    let src = r#"fn f() { let s = "escaped \" quote .unwrap()"; let t = 2; }"#;
    let toks = idents(src);
    assert!(!toks.contains(&"unwrap".to_string()));
    assert!(toks.contains(&"t".to_string()));
}

#[test]
fn char_literal_contents_are_dropped_but_lifetimes_tokenize() {
    let src = "fn f<'a>(x: &'a str) { let q = '\"'; let esc = '\\''; }";
    let toks = idents(src);
    // The lifetime's identifier still appears; char contents do not.
    assert!(toks.contains(&"a".to_string()));
    assert!(toks.contains(&"esc".to_string()));
}

#[test]
fn cfg_test_module_is_masked() {
    let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}";
    assert!(!idents(src).contains(&"unwrap".to_string()));
    assert!(idents(src).contains(&"prod".to_string()));
}

#[test]
fn mod_tests_without_cfg_attribute_is_masked() {
    let src = "mod tests { fn t() { x.unwrap(); } }\nfn after() {}";
    let toks = idents(src);
    assert!(!toks.contains(&"unwrap".to_string()));
    // Tokens after the masked block are live again.
    assert!(toks.contains(&"after".to_string()));
}

#[test]
fn cfg_test_on_single_item_does_not_mask_following_items() {
    let src = "#[cfg(test)]\nfn helper() { a.unwrap(); }\nfn prod() { b.unwrap(); }";
    let flagged: Vec<_> = tokenize(src)
        .into_iter()
        .filter(|t| t.is_ident("unwrap") && !t.in_test)
        .collect();
    assert_eq!(flagged.len(), 1, "only prod()'s unwrap is live");
    assert_eq!(flagged[0].line, 3);
}

#[test]
fn depth_tracks_brace_nesting() {
    let toks = tokenize("fn f() { if x { y(); } }");
    let max_depth = toks.iter().map(|t| t.depth).max().unwrap_or(0);
    assert_eq!(max_depth, 2);
    // Matching braces share a depth.
    let opens: Vec<_> = toks.iter().filter(|t| t.is_punct('{')).collect();
    let closes: Vec<_> = toks.iter().filter(|t| t.is_punct('}')).collect();
    assert_eq!(opens[0].depth, closes[1].depth);
    assert_eq!(opens[1].depth, closes[0].depth);
}

/// Runs the hot-path rule over a snippet registered as a hot file.
fn hot_path_violations(source: &str) -> Vec<String> {
    let file = SourceFile::new("hot.rs".to_string(), source.to_string());
    let config = Config::parse("[lint]\nhot_paths = [\"hot.rs\"]\n").expect("valid config");
    let mut out = Vec::new();
    NoPanicInHotPath.check(&file, &config, &mut out);
    out.into_iter().map(|v| v.message).collect()
}

#[test]
fn rule_flags_live_unwrap_but_not_commented_or_test_ones() {
    let src = "\
fn prod(v: Option<u8>) -> u8 {
    // v.unwrap() would be wrong here
    v.unwrap()
}
#[cfg(test)]
mod tests {
    fn t() { Some(1).unwrap(); }
}
";
    let msgs = hot_path_violations(src);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("unwrap"));
}

#[test]
fn rule_flags_panic_macros_and_indexing() {
    let src = "fn f(v: &[u8]) -> u8 { if v.is_empty() { panic!(\"empty\") } v[0] }";
    let msgs = hot_path_violations(src);
    assert_eq!(msgs.len(), 2, "{msgs:?}");
}

#[test]
fn rule_ignores_array_types_attributes_and_unwrap_or() {
    let src = "\
#[derive(Debug)]
struct S { data: [u8; 6] }
fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) }
";
    let msgs = hot_path_violations(src);
    assert!(msgs.is_empty(), "{msgs:?}");
}

/// Runs the unordered-iteration rule over a snippet registered as a hot
/// file.
fn unordered_iter_violations(source: &str) -> Vec<String> {
    let file = SourceFile::new("hot.rs".to_string(), source.to_string());
    let config = Config::parse("[lint]\nhot_paths = [\"hot.rs\"]\n").expect("valid config");
    let mut out = Vec::new();
    NoUnorderedIterInHotPath.check(&file, &config, &mut out);
    out.into_iter().map(|v| v.message).collect()
}

#[test]
fn unordered_iter_flags_hash_map_methods_and_bare_loops() {
    let src = "\
struct S { flows: std::collections::HashMap<u64, u8>, seen: HashSet<u64> }
fn f(s: &mut S) {
    for (k, v) in &s.flows { drop((k, v)); }
    let n = s.seen.iter().count();
    for v in s.flows.values_mut() { *v += 1; }
    let _ = n;
}
";
    let msgs = unordered_iter_violations(src);
    assert_eq!(msgs.len(), 3, "{msgs:?}");
    assert!(msgs.iter().all(|m| m.contains("order-nondeterministic")));
}

#[test]
fn unordered_iter_ignores_vecs_ordered_maps_and_test_code() {
    let src = "\
struct S { flows: Vec<u8>, sorted: std::collections::BTreeMap<u64, u8> }
fn f(s: &S) -> usize {
    let mut n = 0;
    for v in &s.flows { n += *v as usize; }
    n + s.sorted.values().count()
}
#[cfg(test)]
mod tests {
    fn t(m: &std::collections::HashMap<u64, u8>) -> usize { m.values().count() }
}
";
    let msgs = unordered_iter_violations(src);
    assert!(msgs.is_empty(), "{msgs:?}");
}
