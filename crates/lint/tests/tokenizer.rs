//! Tokenizer unit tests: panicking constructs mentioned in comments,
//! string literals, raw strings, or test-only code must never surface as
//! tokens the rules could flag — and real violations must. The site
//! scanners (`athena_lint::sites`) are exercised directly; transitive
//! hot-path propagation over these sites lives in `crates/analyze`.

use athena_lint::sites;
use athena_lint::tokenizer::{tokenize, TokenKind};

fn idents(source: &str) -> Vec<String> {
    tokenize(source)
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident && !t.in_test)
        .map(|t| t.text)
        .collect()
}

#[test]
fn unwrap_in_line_comment_is_not_a_token() {
    let src = "fn f() { // .unwrap() would panic here\n let x = 1; }";
    assert!(!idents(src).contains(&"unwrap".to_string()));
}

#[test]
fn unwrap_in_doc_and_block_comments_is_not_a_token() {
    let src =
        "/// call .unwrap() at your peril\n/* nested /* .unwrap() */ still comment */ fn f() {}";
    assert!(!idents(src).contains(&"unwrap".to_string()));
}

#[test]
fn unwrap_in_string_literal_is_not_a_token() {
    let src = r#"fn f() { let s = "please don't .unwrap() this"; }"#;
    assert!(!idents(src).contains(&"unwrap".to_string()));
}

#[test]
fn unwrap_in_raw_string_is_not_a_token() {
    let src = r##"fn f() { let s = r#"x.unwrap() and "quotes" inside"#; }"##;
    let toks = idents(src);
    assert!(!toks.contains(&"unwrap".to_string()), "{toks:?}");
    // The binding after the raw string still tokenizes normally.
    assert!(toks.contains(&"s".to_string()));
}

#[test]
fn multi_hash_raw_string_terminates_at_matching_hashes() {
    let src = "fn f() { let s = r##\"one \"# not the end .unwrap()\"##; let t = 1; }";
    let toks = idents(src);
    assert!(!toks.contains(&"unwrap".to_string()), "{toks:?}");
    assert!(toks.contains(&"t".to_string()), "{toks:?}");
}

#[test]
fn raw_byte_string_contents_are_dropped() {
    let src = r##"fn f() { let s = br#"bytes .unwrap() here"#; let u = 3; }"##;
    let toks = idents(src);
    assert!(!toks.contains(&"unwrap".to_string()), "{toks:?}");
    assert!(toks.contains(&"u".to_string()), "{toks:?}");
}

#[test]
fn escaped_quotes_do_not_end_strings_early() {
    let src = r#"fn f() { let s = "escaped \" quote .unwrap()"; let t = 2; }"#;
    let toks = idents(src);
    assert!(!toks.contains(&"unwrap".to_string()));
    assert!(toks.contains(&"t".to_string()));
}

#[test]
fn char_and_byte_char_literals_are_dropped() {
    let src = "fn f() { let q = '\"'; let esc = '\\''; let b = b'\\''; let z = 1; }";
    let toks = idents(src);
    assert!(toks.contains(&"esc".to_string()));
    assert!(toks.contains(&"z".to_string()));
}

#[test]
fn lifetimes_and_loop_labels_tokenize_as_lifetimes_not_idents() {
    let src = "fn f<'a>(x: &'a str) -> &'a str { 'outer: loop { break 'outer; } x }";
    let toks = tokenize(src);
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert!(lifetimes.contains(&"a"), "{lifetimes:?}");
    assert!(lifetimes.contains(&"outer"), "{lifetimes:?}");
    // The lifetime names never leak into the Ident stream where they
    // could collide with variable heuristics.
    assert!(!idents(src).contains(&"a".to_string()));
}

#[test]
fn raw_identifiers_tokenize_as_idents() {
    let src = "fn f() { let r#type = 1; let _ = r#type; }";
    assert!(idents(src).contains(&"type".to_string()));
}

#[test]
fn nested_turbofish_generics_tokenize_into_puncts() {
    let src = "fn f() { let v = Vec::<Vec<u8>>::new(); g::<HashMap<String, Vec<u8>>>(v); }";
    let toks = tokenize(src);
    // `>>` must split into two closing angles, not a shift operator that
    // swallows the second one.
    let closes = toks.iter().filter(|t| t.is_punct('>')).count();
    let opens = toks.iter().filter(|t| t.is_punct('<')).count();
    assert_eq!(opens, closes, "angles stay balanced");
    assert!(idents(src).contains(&"g".to_string()));
}

#[test]
fn cfg_test_module_is_masked() {
    let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}";
    assert!(!idents(src).contains(&"unwrap".to_string()));
    assert!(idents(src).contains(&"prod".to_string()));
}

#[test]
fn mod_tests_without_cfg_attribute_is_masked() {
    let src = "mod tests { fn t() { x.unwrap(); } }\nfn after() {}";
    let toks = idents(src);
    assert!(!toks.contains(&"unwrap".to_string()));
    // Tokens after the masked block are live again.
    assert!(toks.contains(&"after".to_string()));
}

#[test]
fn cfg_test_on_single_item_does_not_mask_following_items() {
    let src = "#[cfg(test)]\nfn helper() { a.unwrap(); }\nfn prod() { b.unwrap(); }";
    let flagged: Vec<_> = tokenize(src)
        .into_iter()
        .filter(|t| t.is_ident("unwrap") && !t.in_test)
        .collect();
    assert_eq!(flagged.len(), 1, "only prod()'s unwrap is live");
    assert_eq!(flagged[0].line, 3);
}

#[test]
fn depth_tracks_brace_nesting() {
    let toks = tokenize("fn f() { if x { y(); } }");
    let max_depth = toks.iter().map(|t| t.depth).max().unwrap_or(0);
    assert_eq!(max_depth, 2);
    // Matching braces share a depth.
    let opens: Vec<_> = toks.iter().filter(|t| t.is_punct('{')).collect();
    let closes: Vec<_> = toks.iter().filter(|t| t.is_punct('}')).collect();
    assert_eq!(opens[0].depth, closes[1].depth);
    assert_eq!(opens[1].depth, closes[0].depth);
}

/// Messages from the panic-site scanner over a snippet.
fn panic_messages(source: &str) -> Vec<String> {
    sites::panic_sites(&tokenize(source))
        .into_iter()
        .map(|s| s.message)
        .collect()
}

#[test]
fn scanner_finds_live_unwrap_but_not_commented_ones() {
    let src = "\
fn prod(v: Option<u8>) -> u8 {
    // v.unwrap() would be wrong here
    v.unwrap()
}
";
    let msgs = panic_messages(src);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("unwrap"));
}

#[test]
fn scanner_finds_panic_macros_and_indexing() {
    let src = "fn f(v: &[u8]) -> u8 { if v.is_empty() { panic!(\"empty\") } v[0] }";
    let msgs = panic_messages(src);
    assert_eq!(msgs.len(), 2, "{msgs:?}");
}

#[test]
fn scanner_ignores_array_types_attributes_and_unwrap_or() {
    let src = "\
#[derive(Debug)]
struct S { data: [u8; 6] }
fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) }
";
    let msgs = panic_messages(src);
    assert!(msgs.is_empty(), "{msgs:?}");
}

#[test]
fn scanner_ignores_turbofish_generic_indexing_lookalikes() {
    // `Vec<u8>` followed by `[...]` in a type position must not read as
    // a panicking index expression.
    let src = "fn f() -> [u8; 2] { let v = Vec::<Vec<u8>>::new(); let _ = v; [0, 1] }";
    let msgs = panic_messages(src);
    assert!(msgs.is_empty(), "{msgs:?}");
}

/// Messages from the unordered-iteration scanner over a snippet.
fn unordered_messages(source: &str) -> Vec<String> {
    sites::unordered_iter_sites(&tokenize(source))
        .into_iter()
        .map(|s| s.message)
        .collect()
}

#[test]
fn unordered_iter_flags_hash_map_methods_and_bare_loops() {
    let src = "\
struct S { flows: std::collections::HashMap<u64, u8>, seen: HashSet<u64> }
impl S {
    fn f(&mut self) {
        for (k, v) in &self.flows { drop((k, v)); }
        let n = self.seen.iter().count();
        for v in self.flows.values_mut() { *v += 1; }
        let _ = n;
    }
}
";
    let msgs = unordered_messages(src);
    assert_eq!(msgs.len(), 3, "{msgs:?}");
    assert!(msgs.iter().all(|m| m.contains("order-nondeterministic")));
}

#[test]
fn unordered_iter_ignores_foreign_receivers() {
    // `other.flows` is someone else's field: flagging it here would
    // double-report every call site of an accessor that the declaring
    // file already owns (and allows or fixes).
    let src = "\
struct S { flows: std::collections::HashMap<u64, u8> }
fn f(other: &S) -> usize {
    other.flows.values().count()
}
";
    let msgs = unordered_messages(src);
    assert!(msgs.is_empty(), "{msgs:?}");
}

#[test]
fn unordered_iter_ignores_vecs_ordered_maps_and_test_code() {
    let src = "\
struct S { flows: Vec<u8>, sorted: std::collections::BTreeMap<u64, u8> }
fn f(s: &S) -> usize {
    let mut n = 0;
    for v in &s.flows { n += *v as usize; }
    n + s.sorted.values().count()
}
#[cfg(test)]
mod tests {
    fn t(m: &std::collections::HashMap<u64, u8>) -> usize { m.values().count() }
}
";
    let msgs = unordered_messages(src);
    assert!(msgs.is_empty(), "{msgs:?}");
}
