//! Ordered secondary indexes.

use crate::document::DocId;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;

/// An orderable key extracted from a JSON scalar.
///
/// Cross-type ordering follows the same type ranking as
/// [`crate::filter::compare_values`] so index scans and comparison filters
/// agree.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexKey {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number, compared as `f64`.
    Num(f64),
    /// JSON string.
    Str(String),
}

impl IndexKey {
    /// Extracts a key from a JSON value; arrays/objects are unindexable.
    pub fn from_value(v: &Value) -> Option<IndexKey> {
        match v {
            Value::Null => Some(IndexKey::Null),
            Value::Bool(b) => Some(IndexKey::Bool(*b)),
            Value::Number(_) => v.as_f64().map(IndexKey::Num),
            Value::String(s) => Some(IndexKey::Str(s.clone())),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            IndexKey::Null => 0,
            IndexKey::Bool(_) => 1,
            IndexKey::Num(_) => 2,
            IndexKey::Str(_) => 3,
        }
    }
}

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (IndexKey::Bool(a), IndexKey::Bool(b)) => a.cmp(b),
            (IndexKey::Num(a), IndexKey::Num(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (IndexKey::Str(a), IndexKey::Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for IndexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexKey::Null => write!(f, "null"),
            IndexKey::Bool(b) => write!(f, "{b}"),
            IndexKey::Num(n) => write!(f, "{n}"),
            IndexKey::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// A secondary index over one (dotted-path) field.
#[derive(Debug, Clone, Default)]
pub struct SecondaryIndex {
    field: String,
    map: BTreeMap<IndexKey, Vec<DocId>>,
    entry_count: usize,
}

impl SecondaryIndex {
    /// Creates an empty index over `field`.
    pub fn new(field: impl Into<String>) -> Self {
        SecondaryIndex {
            field: field.into(),
            map: BTreeMap::new(),
            entry_count: 0,
        }
    }

    /// The indexed field path.
    pub fn field(&self) -> &str {
        &self.field
    }

    /// Number of indexed document entries.
    pub fn len(&self) -> usize {
        self.entry_count
    }

    /// Returns `true` if the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Indexes `id` under the document's value for the field, if indexable.
    pub fn insert(&mut self, id: DocId, value: &Value) {
        if let Some(key) = IndexKey::from_value(value) {
            self.map.entry(key).or_default().push(id);
            self.entry_count += 1;
        }
    }

    /// Removes `id` from under `value`.
    pub fn remove(&mut self, id: DocId, value: &Value) {
        if let Some(key) = IndexKey::from_value(value) {
            if let Some(ids) = self.map.get_mut(&key) {
                if let Some(pos) = ids.iter().position(|x| *x == id) {
                    ids.swap_remove(pos);
                    self.entry_count -= 1;
                }
                if ids.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }

    /// Ids of documents whose field equals `value`.
    pub fn lookup(&self, value: &Value) -> Vec<DocId> {
        IndexKey::from_value(value)
            .and_then(|k| self.map.get(&k))
            .cloned()
            .unwrap_or_default()
    }

    /// Ids of documents whose field lies in `[lo, hi]` (inclusive).
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<DocId> {
        let (Some(lo), Some(hi)) = (IndexKey::from_value(lo), IndexKey::from_value(hi)) else {
            return Vec::new();
        };
        if lo > hi {
            return Vec::new();
        }
        self.map
            .range(lo..=hi)
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    /// Number of distinct keys.
    pub fn cardinality(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn insert_lookup_remove() {
        let mut idx = SecondaryIndex::new("k");
        idx.insert(DocId(1), &json!(5));
        idx.insert(DocId(2), &json!(5));
        idx.insert(DocId(3), &json!(7));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.cardinality(), 2);
        let mut hits = idx.lookup(&json!(5));
        hits.sort();
        assert_eq!(hits, vec![DocId(1), DocId(2)]);
        idx.remove(DocId(1), &json!(5));
        assert_eq!(idx.lookup(&json!(5)), vec![DocId(2)]);
        idx.remove(DocId(2), &json!(5));
        assert!(idx.lookup(&json!(5)).is_empty());
        assert_eq!(idx.cardinality(), 1);
    }

    #[test]
    fn integer_and_float_keys_coincide() {
        let mut idx = SecondaryIndex::new("k");
        idx.insert(DocId(1), &json!(5));
        assert_eq!(idx.lookup(&json!(5.0)), vec![DocId(1)]);
    }

    #[test]
    fn range_scan() {
        let mut idx = SecondaryIndex::new("k");
        for i in 0..10 {
            idx.insert(DocId(i), &json!(i));
        }
        let mut ids = idx.range(&json!(3), &json!(6));
        ids.sort();
        assert_eq!(ids, (3..=6).map(DocId).collect::<Vec<_>>());
        assert!(idx.range(&json!(8), &json!(2)).is_empty());
    }

    #[test]
    fn arrays_are_not_indexed() {
        let mut idx = SecondaryIndex::new("k");
        idx.insert(DocId(1), &json!([1, 2]));
        assert!(idx.is_empty());
    }

    #[test]
    fn key_ordering_is_total_and_typed() {
        let keys = [
            IndexKey::Null,
            IndexKey::Bool(false),
            IndexKey::Bool(true),
            IndexKey::Num(1.0),
            IndexKey::Num(2.0),
            IndexKey::Str("a".into()),
        ];
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }
}
