//! Find options and the aggregation pipeline.
//!
//! These back Athena's query options (Table IV of the paper): *sorting*,
//! *aggregation*, and *limiting*, plus projections for feature
//! re-organization.

use crate::document::Document;
use crate::filter::{compare_values, Filter};
use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SortOrder {
    /// Smallest first.
    #[default]
    Ascending,
    /// Largest first.
    Descending,
}

/// A sort key: field path plus direction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortSpec {
    /// The field to sort by (dotted path).
    pub field: String,
    /// The direction.
    pub order: SortOrder,
}

impl SortSpec {
    /// Ascending sort on `field`.
    pub fn asc(field: impl Into<String>) -> Self {
        SortSpec {
            field: field.into(),
            order: SortOrder::Ascending,
        }
    }

    /// Descending sort on `field`.
    pub fn desc(field: impl Into<String>) -> Self {
        SortSpec {
            field: field.into(),
            order: SortOrder::Descending,
        }
    }
}

/// Options applied to a `find`: sort, skip, limit, projection.
///
/// # Examples
///
/// ```
/// use athena_store::{FindOptions, SortSpec};
/// let opts = FindOptions::default()
///     .sort(SortSpec::desc("byte_count"))
///     .limit(10);
/// assert_eq!(opts.limit, Some(10));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FindOptions {
    /// Sort keys, applied in order.
    pub sort: Vec<SortSpec>,
    /// Number of leading results to skip.
    pub skip: usize,
    /// Maximum number of results.
    pub limit: Option<usize>,
    /// If non-empty, keep only these fields.
    pub projection: Vec<String>,
}

impl FindOptions {
    /// Adds a sort key.
    pub fn sort(mut self, spec: SortSpec) -> Self {
        self.sort.push(spec);
        self
    }

    /// Sets the skip count.
    pub fn skip(mut self, n: usize) -> Self {
        self.skip = n;
        self
    }

    /// Sets the limit.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Adds a projected field.
    pub fn project(mut self, field: impl Into<String>) -> Self {
        self.projection.push(field.into());
        self
    }

    /// Applies sort/skip/limit/projection to a result set.
    pub fn apply(&self, mut docs: Vec<Document>) -> Vec<Document> {
        if !self.sort.is_empty() {
            docs.sort_by(|a, b| self.compare_docs(a, b));
        }
        let mut docs: Vec<Document> = docs.into_iter().skip(self.skip).collect();
        if let Some(n) = self.limit {
            docs.truncate(n);
        }
        if !self.projection.is_empty() {
            for d in &mut docs {
                let mut kept = Map::new();
                for p in &self.projection {
                    if let Some(v) = d.get(p) {
                        kept.insert(p.clone(), v.clone());
                    }
                }
                d.fields = kept;
            }
        }
        docs
    }

    fn compare_docs(&self, a: &Document, b: &Document) -> Ordering {
        for spec in &self.sort {
            let av = a.get(&spec.field).cloned().unwrap_or(Value::Null);
            let bv = b.get(&spec.field).cloned().unwrap_or(Value::Null);
            let ord = compare_values(&av, &bv);
            let ord = match spec.order {
                SortOrder::Ascending => ord,
                SortOrder::Descending => ord.reverse(),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

/// An aggregation accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Accumulator {
    /// Sum of a numeric field.
    Sum(String),
    /// Mean of a numeric field.
    Avg(String),
    /// Minimum of a field.
    Min(String),
    /// Maximum of a field.
    Max(String),
    /// Number of documents in the group.
    Count,
    /// First value seen for a field.
    First(String),
}

/// A group stage: group key fields plus named accumulators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GroupSpec {
    /// Fields whose values form the group key.
    pub by: Vec<String>,
    /// `(output name, accumulator)` pairs.
    pub accumulators: Vec<(String, Accumulator)>,
}

impl GroupSpec {
    /// Creates a group over the given key fields.
    pub fn by(fields: &[&str]) -> Self {
        GroupSpec {
            by: fields.iter().map(|s| (*s).to_owned()).collect(),
            accumulators: Vec::new(),
        }
    }

    /// Adds a named accumulator.
    pub fn with(mut self, name: impl Into<String>, acc: Accumulator) -> Self {
        self.accumulators.push((name.into(), acc));
        self
    }
}

/// One stage of an aggregation pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggStage {
    /// Keep only matching documents.
    Match(Filter),
    /// Group and accumulate.
    Group(GroupSpec),
    /// Sort the current set.
    Sort(Vec<SortSpec>),
    /// Keep the first `n` documents.
    Limit(usize),
    /// Keep only the named fields.
    Project(Vec<String>),
}

/// An aggregation pipeline: stages applied in order.
///
/// # Examples
///
/// ```
/// use athena_store::{doc, Accumulator, Aggregation, GroupSpec, SortSpec};
///
/// let docs = vec![
///     doc! { "sw" => 1, "pkts" => 10 },
///     doc! { "sw" => 1, "pkts" => 30 },
///     doc! { "sw" => 2, "pkts" => 5 },
/// ];
/// let out = Aggregation::new()
///     .group(GroupSpec::by(&["sw"]).with("total", Accumulator::Sum("pkts".into())))
///     .sort(vec![SortSpec::desc("total")])
///     .run(docs);
/// assert_eq!(out[0].get_f64("total"), Some(40.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Aggregation {
    /// The pipeline stages.
    pub stages: Vec<AggStage>,
}

impl Aggregation {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Aggregation::default()
    }

    /// Appends a match stage.
    pub fn matching(mut self, f: Filter) -> Self {
        self.stages.push(AggStage::Match(f));
        self
    }

    /// Appends a group stage.
    pub fn group(mut self, g: GroupSpec) -> Self {
        self.stages.push(AggStage::Group(g));
        self
    }

    /// Appends a sort stage.
    pub fn sort(mut self, s: Vec<SortSpec>) -> Self {
        self.stages.push(AggStage::Sort(s));
        self
    }

    /// Appends a limit stage.
    pub fn limit(mut self, n: usize) -> Self {
        self.stages.push(AggStage::Limit(n));
        self
    }

    /// Appends a projection stage.
    pub fn project(mut self, fields: Vec<String>) -> Self {
        self.stages.push(AggStage::Project(fields));
        self
    }

    /// Runs the pipeline over a document set.
    pub fn run(&self, mut docs: Vec<Document>) -> Vec<Document> {
        for stage in &self.stages {
            docs = match stage {
                AggStage::Match(f) => docs.into_iter().filter(|d| f.matches(d)).collect(),
                AggStage::Group(g) => run_group(g, docs),
                AggStage::Sort(specs) => {
                    let opts = FindOptions {
                        sort: specs.clone(),
                        ..FindOptions::default()
                    };
                    opts.apply(docs)
                }
                AggStage::Limit(n) => {
                    docs.truncate(*n);
                    docs
                }
                AggStage::Project(fields) => {
                    let opts = FindOptions {
                        projection: fields.clone(),
                        ..FindOptions::default()
                    };
                    opts.apply(docs)
                }
            };
        }
        docs
    }
}

fn run_group(spec: &GroupSpec, docs: Vec<Document>) -> Vec<Document> {
    // Group key -> (key values, accumulator states)
    struct AccState {
        sum: f64,
        count: u64,
        min: Option<Value>,
        max: Option<Value>,
        first: Option<Value>,
    }
    let mut groups: HashMap<String, (Vec<Value>, Vec<AccState>)> = HashMap::new();
    let mut order: Vec<String> = Vec::new();

    for d in &docs {
        let key_vals: Vec<Value> = spec
            .by
            .iter()
            .map(|f| d.get(f).cloned().unwrap_or(Value::Null))
            .collect();
        let key = serde_json::to_string(&key_vals).unwrap_or_default();
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (
                key_vals,
                spec.accumulators
                    .iter()
                    .map(|_| AccState {
                        sum: 0.0,
                        count: 0,
                        min: None,
                        max: None,
                        first: None,
                    })
                    .collect(),
            )
        });
        for ((_, acc), state) in spec.accumulators.iter().zip(entry.1.iter_mut()) {
            match acc {
                Accumulator::Sum(f) | Accumulator::Avg(f) => {
                    if let Some(x) = d.get_f64(f) {
                        state.sum += x;
                        state.count += 1;
                    }
                }
                Accumulator::Count => state.count += 1,
                Accumulator::Min(f) => {
                    if let Some(v) = d.get(f) {
                        let better = state
                            .min
                            .as_ref()
                            .is_none_or(|m| compare_values(v, m) == Ordering::Less);
                        if better {
                            state.min = Some(v.clone());
                        }
                    }
                }
                Accumulator::Max(f) => {
                    if let Some(v) = d.get(f) {
                        let better = state
                            .max
                            .as_ref()
                            .is_none_or(|m| compare_values(v, m) == Ordering::Greater);
                        if better {
                            state.max = Some(v.clone());
                        }
                    }
                }
                Accumulator::First(f) => {
                    if state.first.is_none() {
                        state.first = d.get(f).cloned();
                    }
                }
            }
        }
    }

    order
        .into_iter()
        .filter_map(|key| groups.remove(&key))
        .map(|(key_vals, states)| {
            let mut out = Document::new();
            for (field, v) in spec.by.iter().zip(key_vals) {
                out.set(field.clone(), v);
            }
            for ((name, acc), state) in spec.accumulators.iter().zip(states) {
                let v = match acc {
                    Accumulator::Sum(_) => Value::from(state.sum),
                    Accumulator::Avg(_) => {
                        if state.count == 0 {
                            Value::Null
                        } else {
                            Value::from(state.sum / state.count as f64)
                        }
                    }
                    Accumulator::Count => Value::from(state.count),
                    Accumulator::Min(_) => state.min.unwrap_or(Value::Null),
                    Accumulator::Max(_) => state.max.unwrap_or(Value::Null),
                    Accumulator::First(_) => state.first.unwrap_or(Value::Null),
                };
                out.set(name.clone(), v);
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    fn docs() -> Vec<Document> {
        vec![
            doc! { "sw" => 1, "port" => 1, "pkts" => 10 },
            doc! { "sw" => 1, "port" => 2, "pkts" => 30 },
            doc! { "sw" => 2, "port" => 1, "pkts" => 5 },
            doc! { "sw" => 2, "port" => 2, "pkts" => 50 },
        ]
    }

    #[test]
    fn sort_skip_limit() {
        let opts = FindOptions::default()
            .sort(SortSpec::desc("pkts"))
            .skip(1)
            .limit(2);
        let out = opts.apply(docs());
        let pkts: Vec<i64> = out.iter().filter_map(|d| d.get_i64("pkts")).collect();
        assert_eq!(pkts, vec![30, 10]);
    }

    #[test]
    fn multi_key_sort() {
        let opts = FindOptions::default()
            .sort(SortSpec::asc("sw"))
            .sort(SortSpec::desc("pkts"));
        let out = opts.apply(docs());
        let pairs: Vec<(i64, i64)> = out
            .iter()
            .map(|d| (d.get_i64("sw").unwrap(), d.get_i64("pkts").unwrap()))
            .collect();
        assert_eq!(pairs, vec![(1, 30), (1, 10), (2, 50), (2, 5)]);
    }

    #[test]
    fn projection_keeps_only_named_fields() {
        let opts = FindOptions::default().project("pkts");
        let out = opts.apply(docs());
        assert!(out
            .iter()
            .all(|d| d.fields.len() == 1 && d.get("pkts").is_some()));
    }

    #[test]
    fn missing_sort_fields_sort_first_ascending() {
        let mut ds = docs();
        ds.push(doc! { "sw" => 9 }); // no pkts
        let opts = FindOptions::default().sort(SortSpec::asc("pkts"));
        let out = opts.apply(ds);
        assert_eq!(out[0].get_i64("sw"), Some(9));
    }

    #[test]
    fn group_sum_avg_count_min_max() {
        let out = Aggregation::new()
            .group(
                GroupSpec::by(&["sw"])
                    .with("total", Accumulator::Sum("pkts".into()))
                    .with("mean", Accumulator::Avg("pkts".into()))
                    .with("n", Accumulator::Count)
                    .with("lo", Accumulator::Min("pkts".into()))
                    .with("hi", Accumulator::Max("pkts".into())),
            )
            .sort(vec![SortSpec::asc("sw")])
            .run(docs());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get_f64("total"), Some(40.0));
        assert_eq!(out[0].get_f64("mean"), Some(20.0));
        assert_eq!(out[0].get_i64("n"), Some(2));
        assert_eq!(out[1].get_f64("lo"), Some(5.0));
        assert_eq!(out[1].get_f64("hi"), Some(50.0));
    }

    #[test]
    fn pipeline_match_then_group_then_limit() {
        let out = Aggregation::new()
            .matching(Filter::gt("pkts", 5))
            .group(GroupSpec::by(&["sw"]).with("n", Accumulator::Count))
            .sort(vec![SortSpec::desc("n")])
            .limit(1)
            .run(docs());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get_i64("sw"), Some(1));
        assert_eq!(out[0].get_i64("n"), Some(2));
    }

    #[test]
    fn group_by_multiple_keys() {
        let out = Aggregation::new()
            .group(GroupSpec::by(&["sw", "port"]).with("n", Accumulator::Count))
            .run(docs());
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|d| d.get_i64("n") == Some(1)));
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let out = Aggregation::new().run(docs());
        assert_eq!(out.len(), 4);
    }
}
