//! Filter trees: the store's query predicate language.
//!
//! Filters are built programmatically ([`Filter::eq`], [`Filter::and`], …)
//! and mirror the operator set of Athena's northbound query language
//! (Table IV of the paper): arithmetic comparisons `> >= == != <= <` and
//! the relationships `and` / `or`.

use crate::document::Document;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::cmp::Ordering;
use std::fmt;

/// A predicate over documents.
///
/// # Examples
///
/// ```
/// use athena_store::{doc, Filter};
///
/// let f = Filter::and(vec![
///     Filter::eq("proto", "TCP"),
///     Filter::gte("packet_count", 100),
/// ]);
/// assert!(f.matches(&doc! { "proto" => "TCP", "packet_count" => 150 }));
/// assert!(!f.matches(&doc! { "proto" => "UDP", "packet_count" => 150 }));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Filter {
    /// Matches every document.
    #[default]
    All,
    /// Field equals value.
    Eq(String, Value),
    /// Field differs from value (missing fields match).
    Ne(String, Value),
    /// Field is strictly less than value.
    Lt(String, Value),
    /// Field is at most value.
    Lte(String, Value),
    /// Field is strictly greater than value.
    Gt(String, Value),
    /// Field is at least value.
    Gte(String, Value),
    /// Field equals one of the values.
    In(String, Vec<Value>),
    /// Field exists.
    Exists(String),
    /// All sub-filters match.
    And(Vec<Filter>),
    /// At least one sub-filter matches.
    Or(Vec<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// Field-equals shorthand.
    pub fn eq(field: impl Into<String>, v: impl Into<Value>) -> Self {
        Filter::Eq(field.into(), v.into())
    }

    /// Field-not-equals shorthand.
    pub fn ne(field: impl Into<String>, v: impl Into<Value>) -> Self {
        Filter::Ne(field.into(), v.into())
    }

    /// Less-than shorthand.
    pub fn lt(field: impl Into<String>, v: impl Into<Value>) -> Self {
        Filter::Lt(field.into(), v.into())
    }

    /// Less-or-equal shorthand.
    pub fn lte(field: impl Into<String>, v: impl Into<Value>) -> Self {
        Filter::Lte(field.into(), v.into())
    }

    /// Greater-than shorthand.
    pub fn gt(field: impl Into<String>, v: impl Into<Value>) -> Self {
        Filter::Gt(field.into(), v.into())
    }

    /// Greater-or-equal shorthand.
    pub fn gte(field: impl Into<String>, v: impl Into<Value>) -> Self {
        Filter::Gte(field.into(), v.into())
    }

    /// Set-membership shorthand.
    pub fn is_in(field: impl Into<String>, vs: Vec<Value>) -> Self {
        Filter::In(field.into(), vs)
    }

    /// Conjunction (empty = matches everything).
    pub fn and(fs: Vec<Filter>) -> Self {
        Filter::And(fs)
    }

    /// Disjunction (empty = matches nothing).
    pub fn or(fs: Vec<Filter>) -> Self {
        Filter::Or(fs)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Filter) -> Self {
        Filter::Not(Box::new(f))
    }

    /// Evaluates the filter against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        match self {
            Filter::All => true,
            Filter::Eq(f, v) => doc.get(f).is_some_and(|dv| values_equal(dv, v)),
            Filter::Ne(f, v) => !doc.get(f).is_some_and(|dv| values_equal(dv, v)),
            Filter::Lt(f, v) => cmp_field(doc, f, v).is_some_and(Ordering::is_lt),
            Filter::Lte(f, v) => cmp_field(doc, f, v).is_some_and(Ordering::is_le),
            Filter::Gt(f, v) => cmp_field(doc, f, v).is_some_and(Ordering::is_gt),
            Filter::Gte(f, v) => cmp_field(doc, f, v).is_some_and(Ordering::is_ge),
            Filter::In(f, vs) => doc
                .get(f)
                .is_some_and(|dv| vs.iter().any(|v| values_equal(dv, v))),
            Filter::Exists(f) => doc.get(f).is_some(),
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
        }
    }

    /// If the filter pins a single field to a single value (possibly under
    /// a conjunction), returns `(field, value)` — used for index selection.
    pub fn point_lookup(&self) -> Option<(&str, &Value)> {
        match self {
            Filter::Eq(f, v) => Some((f.as_str(), v)),
            Filter::And(fs) => fs.iter().find_map(Filter::point_lookup),
            _ => None,
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::All => write!(f, "*"),
            Filter::Eq(k, v) => write!(f, "{k}=={v}"),
            Filter::Ne(k, v) => write!(f, "{k}!={v}"),
            Filter::Lt(k, v) => write!(f, "{k}<{v}"),
            Filter::Lte(k, v) => write!(f, "{k}<={v}"),
            Filter::Gt(k, v) => write!(f, "{k}>{v}"),
            Filter::Gte(k, v) => write!(f, "{k}>={v}"),
            Filter::In(k, vs) => write!(f, "{k} in {vs:?}"),
            Filter::Exists(k) => write!(f, "exists({k})"),
            Filter::And(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" and "))
            }
            Filter::Or(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" or "))
            }
            Filter::Not(x) => write!(f, "not({x})"),
        }
    }
}

/// Numeric-aware equality: `1` equals `1.0`.
pub fn values_equal(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x == y,
        _ => a == b,
    }
}

/// Total order across comparable JSON values.
///
/// Numbers compare numerically; strings lexicographically; booleans
/// false-before-true. Cross-type comparisons order by type rank
/// (null < bool < number < string) so sorting is total.
pub fn compare_values(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    match (a, b) {
        (Value::Number(_), Value::Number(_)) => {
            let (x, y) = (
                a.as_f64().unwrap_or(f64::NAN),
                b.as_f64().unwrap_or(f64::NAN),
            );
            x.partial_cmp(&y).unwrap_or(Ordering::Equal)
        }
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        _ => rank(a).cmp(&rank(b)),
    }
}

fn cmp_field(doc: &Document, field: &str, v: &Value) -> Option<Ordering> {
    let dv = doc.get(field)?;
    // Range comparisons only make sense within a type.
    if std::mem::discriminant(dv) != std::mem::discriminant(v) && !(dv.is_number() && v.is_number())
    {
        return None;
    }
    Some(compare_values(dv, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;
    use serde_json::json;

    fn d() -> Document {
        doc! { "n" => 10, "s" => "abc", "b" => true }
    }

    #[test]
    fn comparison_operators() {
        assert!(Filter::eq("n", 10).matches(&d()));
        assert!(Filter::eq("n", 10.0).matches(&d()));
        assert!(Filter::ne("n", 11).matches(&d()));
        assert!(Filter::lt("n", 11).matches(&d()));
        assert!(Filter::lte("n", 10).matches(&d()));
        assert!(Filter::gt("n", 9).matches(&d()));
        assert!(Filter::gte("n", 10).matches(&d()));
        assert!(!Filter::gt("n", 10).matches(&d()));
    }

    #[test]
    fn missing_fields() {
        assert!(!Filter::eq("missing", 1).matches(&d()));
        assert!(Filter::ne("missing", 1).matches(&d())); // vacuous
        assert!(!Filter::gt("missing", 1).matches(&d()));
        assert!(Filter::Exists("n".into()).matches(&d()));
        assert!(!Filter::Exists("missing".into()).matches(&d()));
    }

    #[test]
    fn cross_type_range_comparisons_never_match() {
        assert!(!Filter::gt("s", 5).matches(&d()));
        assert!(!Filter::lt("b", 5).matches(&d()));
    }

    #[test]
    fn boolean_combinators() {
        let f = Filter::or(vec![Filter::eq("n", 99), Filter::eq("s", "abc")]);
        assert!(f.matches(&d()));
        let f = Filter::and(vec![Filter::eq("n", 10), Filter::eq("s", "xyz")]);
        assert!(!f.matches(&d()));
        assert!(Filter::and(vec![]).matches(&d()));
        assert!(!Filter::or(vec![]).matches(&d()));
        assert!(Filter::not(Filter::eq("n", 99)).matches(&d()));
    }

    #[test]
    fn in_operator() {
        assert!(Filter::is_in("n", vec![json!(1), json!(10)]).matches(&d()));
        assert!(!Filter::is_in("n", vec![json!(1), json!(2)]).matches(&d()));
    }

    #[test]
    fn string_comparisons_are_lexicographic() {
        assert!(Filter::lt("s", "abd").matches(&d()));
        assert!(Filter::gt("s", "abb").matches(&d()));
    }

    #[test]
    fn point_lookup_extraction() {
        let f = Filter::and(vec![Filter::gt("x", 1), Filter::eq("k", "v")]);
        let (field, value) = f.point_lookup().unwrap();
        assert_eq!(field, "k");
        assert_eq!(value, &json!("v"));
        assert!(Filter::gt("x", 1).point_lookup().is_none());
    }

    #[test]
    fn compare_values_is_total() {
        let vals = [json!(null), json!(true), json!(1), json!("s")];
        for a in &vals {
            for b in &vals {
                // No panic, antisymmetric.
                let ab = compare_values(a, b);
                let ba = compare_values(b, a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn display_is_readable() {
        let f = Filter::and(vec![Filter::eq("a", 1), Filter::gt("b", 2)]);
        assert_eq!(f.to_string(), "(a==1 and b>2)");
    }
}
