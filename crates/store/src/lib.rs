//! A distributed, sharded, replicated in-process document store.
//!
//! The Athena paper uses a MongoDB cluster as the feature database that all
//! Athena instances publish to and query from. This crate is the from-scratch
//! substitute: a schemaless document store with
//!
//! - JSON documents with generated ids ([`document`] module),
//! - a filter tree with MongoDB-like operators ([`filter`] module),
//! - find options (sort / skip / limit / projection) and an aggregation
//!   pipeline (match / group / sort / limit) ([`query`] module),
//! - ordered secondary indexes ([`index`] module),
//! - collections with CRUD + index maintenance ([`collection`] module),
//! - a cluster of nodes with hash sharding, primary/replica replication,
//!   a write journal, and operation metrics ([`cluster`] module).
//!
//! The write path performs *real* work (serialization for the journal,
//! index maintenance, replication fan-out) because the paper's Table IX
//! attributes Athena's throughput overhead primarily to DB operations —
//! the benchmark harness measures these same costs.
//!
//! # Examples
//!
//! ```
//! use athena_store::{doc, Filter, FindOptions, StoreCluster};
//!
//! let cluster = StoreCluster::new(3, 2);
//! let coll = cluster.collection("features");
//! coll.insert(doc! { "switch" => 1, "packet_count" => 100 })?;
//! coll.insert(doc! { "switch" => 2, "packet_count" => 900 })?;
//!
//! let hot = coll.find(
//!     &Filter::gt("packet_count", 500),
//!     &FindOptions::default(),
//! );
//! assert_eq!(hot.len(), 1);
//! # Ok::<(), athena_types::AthenaError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod cluster;
pub mod collection;
pub mod document;
pub mod filter;
pub mod index;
pub mod persist;
pub mod query;

pub use cluster::{ClusterMetrics, StoreCluster, StoreNode};
pub use collection::Collection;
pub use document::{DocId, Document};
pub use filter::Filter;
pub use persist::StoreRecoveryReport;
pub use query::{Accumulator, AggStage, Aggregation, FindOptions, GroupSpec, SortOrder, SortSpec};
