//! Documents: schemaless JSON objects with generated ids.

use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use std::fmt;

/// A document id, unique within a collection.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DocId(pub u64);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc-{}", self.0)
    }
}

/// A schemaless document: a JSON object plus its id.
///
/// Field access supports dotted paths (`"meta.timestamp"`), mirroring the
/// query syntax.
///
/// # Examples
///
/// ```
/// use athena_store::{doc, Document};
///
/// let d = doc! { "switch" => 3, "stats" => serde_json::json!({"pkts": 10}) };
/// assert_eq!(d.get_f64("stats.pkts"), Some(10.0));
/// assert_eq!(d.get("missing"), None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Document {
    /// The document id (assigned on insert; zero before).
    pub id: DocId,
    /// The fields.
    pub fields: Map<String, Value>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Self {
        Document::default()
    }

    /// Creates a document from a JSON object value.
    ///
    /// Non-object values become a document with a single `"value"` field.
    pub fn from_value(v: Value) -> Self {
        match v {
            Value::Object(fields) => Document {
                id: DocId(0),
                fields,
            },
            other => {
                let mut fields = Map::new();
                fields.insert("value".to_owned(), other);
                Document {
                    id: DocId(0),
                    fields,
                }
            }
        }
    }

    /// Sets a field (builder style).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.insert(key.into(), value.into());
        self
    }

    /// Sets a field in place.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.fields.insert(key.into(), value.into());
    }

    /// Looks up a field by dotted path.
    pub fn get(&self, path: &str) -> Option<&Value> {
        let mut parts = path.split('.');
        let first = parts.next()?;
        let mut cur = self.fields.get(first)?;
        for part in parts {
            cur = cur.as_object()?.get(part)?;
        }
        Some(cur)
    }

    /// Looks up a numeric field by dotted path.
    pub fn get_f64(&self, path: &str) -> Option<f64> {
        self.get(path)?.as_f64()
    }

    /// Looks up an integer field by dotted path.
    pub fn get_i64(&self, path: &str) -> Option<i64> {
        self.get(path)?.as_i64()
    }

    /// Looks up a string field by dotted path.
    pub fn get_str(&self, path: &str) -> Option<&str> {
        self.get(path)?.as_str()
    }

    /// Serialized size in bytes (the journal representation).
    pub fn encoded_len(&self) -> usize {
        serde_json::to_vec(&self.fields).map_or(0, |v| v.len())
    }
}

impl From<Value> for Document {
    fn from(v: Value) -> Self {
        Document::from_value(v)
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id, Value::Object(self.fields.clone()))
    }
}

/// Builds a [`Document`] from `key => value` pairs.
///
/// # Examples
///
/// ```
/// use athena_store::doc;
/// let d = doc! { "a" => 1, "b" => "two" };
/// assert_eq!(d.get_i64("a"), Some(1));
/// assert_eq!(d.get_str("b"), Some("two"));
/// ```
#[macro_export]
macro_rules! doc {
    () => { $crate::Document::new() };
    ( $( $key:expr => $value:expr ),+ $(,)? ) => {{
        let mut d = $crate::Document::new();
        $( d.set($key, $value); )+
        d
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn doc_macro_builds_fields() {
        let d = doc! { "x" => 1, "y" => 2.5, "z" => "s" };
        assert_eq!(d.get_i64("x"), Some(1));
        assert_eq!(d.get_f64("y"), Some(2.5));
        assert_eq!(d.get_str("z"), Some("s"));
        assert_eq!(doc!().fields.len(), 0);
    }

    #[test]
    fn dotted_path_navigation() {
        let d = doc! { "a" => json!({"b": {"c": 42}}) };
        assert_eq!(d.get_i64("a.b.c"), Some(42));
        assert_eq!(d.get("a.b.missing"), None);
        assert_eq!(d.get("a.b.c.too_deep"), None);
    }

    #[test]
    fn from_value_wraps_scalars() {
        let d = Document::from_value(json!(7));
        assert_eq!(d.get_i64("value"), Some(7));
        let d = Document::from_value(json!({"k": true}));
        assert_eq!(d.get("k"), Some(&json!(true)));
    }

    #[test]
    fn encoded_len_is_positive_for_nonempty() {
        let d = doc! { "k" => 1 };
        assert!(d.encoded_len() >= 7); // {"k":1}
    }

    #[test]
    fn serde_roundtrip() {
        let d = doc! { "n" => 1, "s" => "x" };
        let s = serde_json::to_string(&d).unwrap();
        let back: Document = serde_json::from_str(&s).unwrap();
        assert_eq!(back, d);
    }
}
