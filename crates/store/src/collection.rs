//! A single-node collection shard: documents, indexes, CRUD.

use crate::document::{DocId, Document};
use crate::filter::Filter;
use crate::index::SecondaryIndex;
use crate::query::FindOptions;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One shard of a collection, living on one store node.
///
/// The distributed [`crate::StoreCluster`] routes documents to shards and
/// merges their results; this type is the per-node storage engine:
/// a document map plus ordered secondary indexes.
///
/// # Examples
///
/// ```
/// use athena_store::{doc, Filter, FindOptions};
/// use athena_store::collection::Collection;
/// use athena_store::DocId;
///
/// let mut c = Collection::new("features");
/// c.create_index("sw");
/// c.insert_with_id(DocId(1), doc! { "sw" => 4 });
/// assert_eq!(c.find(&Filter::eq("sw", 4), &FindOptions::default()).len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Collection {
    name: String,
    docs: HashMap<DocId, Document>,
    indexes: HashMap<String, SecondaryIndex>,
    // Atomics: read paths take `&self` behind shared locks (and now run
    // concurrently on the parallel cluster-scan path).
    scans: AtomicU64,
    index_hits: AtomicU64,
}

impl Collection {
    /// Creates an empty collection shard.
    pub fn new(name: impl Into<String>) -> Self {
        Collection {
            name: name.into(),
            ..Collection::default()
        }
    }

    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of documents in this shard.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Returns `true` if the shard holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Creates a secondary index over `field`, indexing existing documents.
    pub fn create_index(&mut self, field: impl Into<String>) {
        let field = field.into();
        if self.indexes.contains_key(&field) {
            return;
        }
        let mut idx = SecondaryIndex::new(field.clone());
        for (id, doc) in &self.docs {
            if let Some(v) = doc.get(&field) {
                idx.insert(*id, v);
            }
        }
        self.indexes.insert(field, idx);
    }

    /// Inserts a document under a caller-assigned id (the cluster assigns
    /// ids so they are unique across shards).
    pub fn insert_with_id(&mut self, id: DocId, mut doc: Document) {
        doc.id = id;
        for (field, idx) in &mut self.indexes {
            if let Some(v) = doc.get(field) {
                idx.insert(id, &v.clone());
            }
        }
        self.docs.insert(id, doc);
    }

    /// Fetches a document by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(&id)
    }

    /// Finds matching documents (unsorted; the cluster applies
    /// [`FindOptions`] after merging shards, but single-shard callers may
    /// pass options here).
    pub fn find(&self, filter: &Filter, opts: &FindOptions) -> Vec<Document> {
        opts.apply(self.find_unordered(filter))
    }

    /// Finds matching documents without sort/limit, using an index for
    /// point lookups when one exists.
    pub fn find_unordered(&self, filter: &Filter) -> Vec<Document> {
        if let Some(ids) = self.index_candidates(filter) {
            return ids
                .into_iter()
                .filter_map(|id| self.docs.get(&id))
                .filter(|d| filter.matches(d))
                .cloned()
                .collect();
        }
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.docs
            .values()
            .filter(|d| filter.matches(d))
            .cloned()
            .collect()
    }

    /// Candidate ids from a secondary index, when `filter` is a
    /// single-field equality predicate over an indexed field. `None`
    /// means the caller must fall back to a full scan.
    fn index_candidates(&self, filter: &Filter) -> Option<Vec<DocId>> {
        let (field, value) = filter.point_lookup()?;
        let idx = self.indexes.get(field)?;
        self.index_hits.fetch_add(1, Ordering::Relaxed);
        Some(idx.lookup(value))
    }

    /// Ids of matching documents, index-served when possible.
    fn matching_ids(&self, filter: &Filter) -> Vec<DocId> {
        if let Some(ids) = self.index_candidates(filter) {
            return ids
                .into_iter()
                .filter(|id| self.docs.get(id).is_some_and(|d| filter.matches(d)))
                .collect();
        }
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.docs
            .values()
            .filter(|d| filter.matches(d))
            .map(|d| d.id)
            .collect()
    }

    /// Counts matching documents (index-served for equality predicates).
    pub fn count(&self, filter: &Filter) -> usize {
        if matches!(filter, Filter::All) {
            return self.docs.len();
        }
        if let Some(ids) = self.index_candidates(filter) {
            return ids
                .into_iter()
                .filter(|id| self.docs.get(id).is_some_and(|d| filter.matches(d)))
                .count();
        }
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.docs.values().filter(|d| filter.matches(d)).count()
    }

    /// Sets fields on every matching document. Returns how many changed.
    pub fn update(&mut self, filter: &Filter, changes: &[(String, Value)]) -> usize {
        let ids: Vec<DocId> = self.matching_ids(filter);
        for id in &ids {
            // Maintain indexes: remove old values, apply, insert new.
            let Some(doc) = self.docs.get_mut(id) else {
                continue;
            };
            for (field, idx) in &mut self.indexes {
                if let Some(v) = doc.get(field) {
                    idx.remove(*id, &v.clone());
                }
            }
            for (k, v) in changes {
                doc.set(k.clone(), v.clone());
            }
            for (field, idx) in &mut self.indexes {
                if let Some(v) = doc.get(field) {
                    idx.insert(*id, &v.clone());
                }
            }
        }
        ids.len()
    }

    /// Sets fields on the document with the given id, maintaining indexes.
    /// Returns `true` if the document existed.
    pub fn update_by_id(&mut self, id: DocId, changes: &[(String, Value)]) -> bool {
        let Some(doc) = self.docs.get_mut(&id) else {
            return false;
        };
        for (field, idx) in &mut self.indexes {
            if let Some(v) = doc.get(field) {
                idx.remove(id, &v.clone());
            }
        }
        for (k, v) in changes {
            doc.set(k.clone(), v.clone());
        }
        for (field, idx) in &mut self.indexes {
            if let Some(v) = doc.get(field) {
                idx.insert(id, &v.clone());
            }
        }
        true
    }

    /// Names of the secondary indexes, sorted.
    pub fn index_fields(&self) -> Vec<String> {
        let mut out: Vec<String> = self.indexes.keys().cloned().collect();
        out.sort();
        out
    }

    /// Deletes matching documents. Returns how many were removed.
    pub fn delete(&mut self, filter: &Filter) -> usize {
        let ids: Vec<DocId> = self.matching_ids(filter);
        for id in &ids {
            if let Some(doc) = self.docs.remove(id) {
                for (field, idx) in &mut self.indexes {
                    if let Some(v) = doc.get(field) {
                        idx.remove(*id, v);
                    }
                }
            }
        }
        ids.len()
    }

    /// Deletes the document with the given id, maintaining indexes.
    /// Returns `true` if the document existed.
    pub fn delete_by_id(&mut self, id: DocId) -> bool {
        match self.docs.remove(&id) {
            Some(doc) => {
                for (field, idx) in &mut self.indexes {
                    if let Some(v) = doc.get(field) {
                        idx.remove(id, v);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// All documents in the shard (cloned).
    pub fn all(&self) -> Vec<Document> {
        self.docs.values().cloned().collect()
    }

    /// `(full scans, index-served lookups)` since creation.
    pub fn scan_stats(&self) -> (u64, u64) {
        (
            self.scans.load(Ordering::Relaxed),
            self.index_hits.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;
    use crate::query::SortSpec;

    fn filled() -> Collection {
        let mut c = Collection::new("t");
        for i in 0..10i64 {
            c.insert_with_id(DocId(i as u64 + 1), doc! { "i" => i, "parity" => i % 2 });
        }
        c
    }

    #[test]
    fn insert_and_get() {
        let c = filled();
        assert_eq!(c.len(), 10);
        assert_eq!(c.get(DocId(3)).unwrap().get_i64("i"), Some(2));
        assert!(c.get(DocId(99)).is_none());
    }

    #[test]
    fn find_with_filter_and_options() {
        let c = filled();
        let out = c.find(
            &Filter::eq("parity", 0),
            &FindOptions::default().sort(SortSpec::desc("i")).limit(2),
        );
        let is: Vec<i64> = out.iter().filter_map(|d| d.get_i64("i")).collect();
        assert_eq!(is, vec![8, 6]);
    }

    #[test]
    fn index_accelerated_point_lookup_agrees_with_scan() {
        let mut c = filled();
        let scan = {
            let mut v: Vec<u64> = c
                .find_unordered(&Filter::eq("parity", 1))
                .iter()
                .map(|d| d.id.0)
                .collect();
            v.sort();
            v
        };
        c.create_index("parity");
        let mut idx: Vec<u64> = c
            .find_unordered(&Filter::eq("parity", 1))
            .iter()
            .map(|d| d.id.0)
            .collect();
        idx.sort();
        assert_eq!(scan, idx);
    }

    #[test]
    fn update_maintains_indexes() {
        let mut c = filled();
        c.create_index("parity");
        let n = c.update(&Filter::eq("i", 3), &[("parity".into(), 0.into())]);
        assert_eq!(n, 1);
        assert_eq!(c.count(&Filter::eq("parity", 0)), 6);
        assert_eq!(c.find_unordered(&Filter::eq("parity", 0)).len(), 6);
    }

    #[test]
    fn delete_maintains_indexes() {
        let mut c = filled();
        c.create_index("parity");
        let n = c.delete(&Filter::eq("parity", 1));
        assert_eq!(n, 5);
        assert_eq!(c.len(), 5);
        assert!(c.find_unordered(&Filter::eq("parity", 1)).is_empty());
    }

    #[test]
    fn count_all_shortcut() {
        let c = filled();
        assert_eq!(c.count(&Filter::All), 10);
        assert_eq!(c.count(&Filter::gt("i", 7)), 2);
    }

    #[test]
    fn indexed_equality_queries_never_scan() {
        let mut c = filled();
        c.create_index("parity");
        let (scans_before, _) = c.scan_stats();
        assert_eq!(c.find_unordered(&Filter::eq("parity", 0)).len(), 5);
        assert_eq!(c.count(&Filter::eq("parity", 1)), 5);
        assert_eq!(
            c.update(&Filter::eq("parity", 1), &[("seen".into(), 1.into())]),
            5
        );
        assert_eq!(c.delete(&Filter::eq("parity", 0)), 5);
        let (scans, hits) = c.scan_stats();
        assert_eq!(scans, scans_before, "indexed equality must not scan");
        assert_eq!(hits, 4, "all four operations were index-served");
        // Un-indexed predicates still scan — and are counted.
        assert_eq!(c.count(&Filter::gt("i", 100)), 0);
        assert_eq!(c.scan_stats().0, scans_before + 1);
    }

    #[test]
    fn create_index_twice_is_idempotent() {
        let mut c = filled();
        c.create_index("i");
        c.create_index("i");
        assert_eq!(c.find_unordered(&Filter::eq("i", 4)).len(), 1);
    }
}
