//! The distributed store: sharding, replication, journaling, metrics.
//!
//! A [`StoreCluster`] is a set of [`StoreNode`]s. Each collection is hash-
//! sharded across all nodes by document id; each shard is replicated onto
//! the next `replication - 1` nodes in ring order. Writes run on the
//! primary and every replica and append a serialized journal record — real
//! work that the Table IX benchmark measures.

use crate::collection::Collection;
use crate::document::{DocId, Document};
use crate::filter::Filter;
use crate::persist::{ops, StorePersist};
use crate::query::{Aggregation, FindOptions};
use athena_observe::Observe;
use athena_telemetry::{names, Counter, Gauge, Histogram, Telemetry};
use athena_types::sentinel::{TrackedMutex, TrackedRwLock};
use athena_types::{AthenaError, Result};
use serde_json::Value;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A single store node: the shards it hosts plus its write journal.
#[derive(Debug)]
pub struct StoreNode {
    collections: TrackedRwLock<HashMap<String, TrackedRwLock<Collection>>>,
    journal_bytes: AtomicU64,
    journal_records: AtomicU64,
    up: AtomicBool,
}

impl Default for StoreNode {
    fn default() -> Self {
        StoreNode {
            collections: TrackedRwLock::new("store/collections", HashMap::new()),
            journal_bytes: AtomicU64::new(0),
            journal_records: AtomicU64::new(0),
            up: AtomicBool::new(true),
        }
    }
}

impl StoreNode {
    fn new() -> Self {
        StoreNode::default()
    }

    /// `true` unless the node is faulted down.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    pub(crate) fn with_collection<R>(&self, name: &str, f: impl FnOnce(&mut Collection) -> R) -> R {
        {
            let map = self.collections.read();
            if let Some(coll) = map.get(name) {
                return f(&mut coll.write());
            }
        }
        let mut map = self.collections.write();
        let coll = map
            .entry(name.to_owned())
            .or_insert_with(|| TrackedRwLock::new("store/coll", Collection::new(name)));
        let result = f(&mut coll.write());
        result
    }

    pub(crate) fn read_collection<R: Default>(
        &self,
        name: &str,
        f: impl FnOnce(&Collection) -> R,
    ) -> R {
        let map = self.collections.read();
        map.get(name)
            .map_or_else(R::default, |coll| f(&coll.read()))
    }

    /// Names of the collections this node holds shards of.
    pub(crate) fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    pub(crate) fn journal(&self, encoded_len: u64) {
        let bytes = encoded_len + 16; // header overhead
        self.journal_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.journal_records.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes appended to this node's journal.
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes.load(Ordering::Relaxed)
    }

    /// Total records appended to this node's journal.
    pub fn journal_records(&self) -> u64 {
        self.journal_records.load(Ordering::Relaxed)
    }
}

/// Cluster-wide operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterMetrics {
    /// Documents inserted (per logical insert, not per replica).
    pub inserts: u64,
    /// Replica writes performed (including the primary).
    pub replica_writes: u64,
    /// Find operations served.
    pub finds: u64,
    /// Aggregations served.
    pub aggregations: u64,
    /// Documents deleted.
    pub deletes: u64,
    /// Logical documents changed by cluster-wide updates.
    pub updates: u64,
    /// Writes redirected off a down replica onto the next ring node.
    pub write_handoffs: u64,
    /// Inserts rejected for lack of a write quorum.
    pub quorum_failures: u64,
    /// Read operations served while at least one node was down.
    pub degraded_reads: u64,
}

#[derive(Debug, Default)]
pub(crate) struct MetricsInner {
    inserts: AtomicU64,
    replica_writes: AtomicU64,
    finds: AtomicU64,
    aggregations: AtomicU64,
    deletes: AtomicU64,
    updates: AtomicU64,
    write_handoffs: AtomicU64,
    quorum_failures: AtomicU64,
    degraded_reads: AtomicU64,
}

/// The cluster's telemetry instruments (detached until
/// [`StoreCluster::bind_telemetry`]; shared by every cloned handle).
#[derive(Debug, Default)]
struct StoreTelemetry {
    insert_ns: Histogram,
    find_ns: Histogram,
    aggregate_ns: Histogram,
    replica_writes: Counter,
    deletes: Counter,
    write_handoffs: Counter,
    quorum_failures: Counter,
    degraded_reads: Counter,
    nodes_down: Gauge,
    observe: Observe,
}

/// A distributed document store: N nodes, hash sharding, replication.
///
/// Cloning yields another handle to the same cluster.
///
/// # Examples
///
/// ```
/// use athena_store::{doc, Filter, FindOptions, StoreCluster};
///
/// let cluster = StoreCluster::new(3, 2);
/// let features = cluster.collection("features");
/// for sw in 0..6 {
///     features.insert(doc! { "sw" => sw })?;
/// }
/// assert_eq!(features.count(&Filter::All), 6);
/// // Every write hit a primary and one replica.
/// assert_eq!(cluster.metrics().replica_writes, 12);
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StoreCluster {
    pub(crate) nodes: Arc<Vec<StoreNode>>,
    replication: usize,
    pub(crate) next_id: Arc<AtomicU64>,
    pub(crate) metrics: Arc<MetricsInner>,
    pub(crate) index_requests: Arc<TrackedMutex<HashMap<String, Vec<String>>>>,
    tel: Arc<TrackedRwLock<StoreTelemetry>>,
    pub(crate) persist: Arc<TrackedMutex<Option<StorePersist>>>,
    pub(crate) persist_on: Arc<AtomicBool>,
}

impl StoreCluster {
    /// Creates a cluster of `nodes` store nodes with the given replication
    /// factor (total copies per document, clamped to the node count; at
    /// least 1).
    pub fn new(nodes: usize, replication: usize) -> Self {
        let nodes = nodes.max(1);
        StoreCluster {
            nodes: Arc::new((0..nodes).map(|_| StoreNode::new()).collect()),
            replication: replication.clamp(1, nodes),
            next_id: Arc::new(AtomicU64::new(1)),
            metrics: Arc::new(MetricsInner::default()),
            index_requests: Arc::new(TrackedMutex::new("store/index_requests", HashMap::new())),
            tel: Arc::new(TrackedRwLock::new("store/tel", StoreTelemetry::default())),
            persist: Arc::new(TrackedMutex::new("store/persist", None)),
            persist_on: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Routes query latencies and replication counters into `tel` for
    /// every handle cloned from this cluster.
    pub fn bind_telemetry(&self, tel: &Telemetry) {
        let m = tel.metrics();
        let st = names::store::SUBSYSTEM;
        let rt = names::retry::SUBSYSTEM;
        // Rebuild wholesale but keep any already-bound observe handle.
        let observe = self.tel.read().observe.clone();
        *self.tel.write() = StoreTelemetry {
            insert_ns: m.histogram(st, names::store::INSERT_NS),
            find_ns: m.histogram(st, names::store::FIND_NS),
            aggregate_ns: m.histogram(st, names::store::AGGREGATE_NS),
            replica_writes: m.counter(st, names::store::REPLICA_WRITES),
            deletes: m.counter(st, names::store::DELETES),
            write_handoffs: m.counter(rt, names::retry::STORE_WRITE_HANDOFFS),
            quorum_failures: m.counter(rt, names::retry::STORE_QUORUM_FAILURES),
            degraded_reads: m.counter(rt, names::retry::STORE_DEGRADED_READS),
            nodes_down: m.gauge(st, names::store::NODES_DOWN),
            observe,
        };
    }

    /// Routes causal spans (the quorum-write leg of a trace) into `obs`
    /// for every handle cloned from this cluster.
    pub fn bind_observe(&self, obs: &Observe) {
        self.tel.write().observe = obs.clone();
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The replication factor (copies per document).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Returns a handle to a named collection (created lazily on first
    /// write).
    pub fn collection(&self, name: impl Into<String>) -> CollectionHandle {
        CollectionHandle {
            cluster: self.clone(),
            name: name.into(),
        }
    }

    /// A snapshot of the operation counters.
    pub fn metrics(&self) -> ClusterMetrics {
        ClusterMetrics {
            inserts: self.metrics.inserts.load(Ordering::Relaxed),
            replica_writes: self.metrics.replica_writes.load(Ordering::Relaxed),
            finds: self.metrics.finds.load(Ordering::Relaxed),
            aggregations: self.metrics.aggregations.load(Ordering::Relaxed),
            deletes: self.metrics.deletes.load(Ordering::Relaxed),
            updates: self.metrics.updates.load(Ordering::Relaxed),
            write_handoffs: self.metrics.write_handoffs.load(Ordering::Relaxed),
            quorum_failures: self.metrics.quorum_failures.load(Ordering::Relaxed),
            degraded_reads: self.metrics.degraded_reads.load(Ordering::Relaxed),
        }
    }

    /// Takes a node down (`up = false`) or brings it back (`up = true`).
    ///
    /// A down node serves no reads and accepts no writes; writes destined
    /// for it are handed off to the next live ring node, and reads fall
    /// back to replica copies. When a node comes back up the stored hints
    /// are delivered: every document lands back on its preferred replica
    /// set, so the healthy primary-only read path sees writes accepted
    /// during the outage. Out of range indices are ignored.
    pub fn set_node_up(&self, i: usize, up: bool) {
        if let Some(node) = self.nodes.get(i) {
            let was = node.up.swap(up, Ordering::Relaxed);
            let nodes_down = self.tel.read().nodes_down.clone();
            nodes_down.set(i64::try_from(self.down_count()).unwrap_or(i64::MAX));
            if up && !was {
                self.deliver_handoffs();
            }
        }
    }

    /// Hinted-handoff delivery after a node rejoins: re-places every
    /// logical document onto its (current) preferred replica set, copying
    /// it where missing and dropping stand-in copies. Deterministic:
    /// collections by name, documents by id, nodes in index order.
    fn deliver_handoffs(&self) {
        let mut names: Vec<String> = self
            .nodes
            .iter()
            .flat_map(|n| n.collection_names())
            .collect();
        names.sort();
        names.dedup();
        for name in names {
            let indexed = self
                .index_requests
                .lock()
                .get(&name)
                .cloned()
                .unwrap_or_default();
            let mut seen: HashSet<DocId> = HashSet::new();
            let mut docs: Vec<Document> = Vec::new();
            for node in self.nodes.iter().filter(|n| n.is_up()) {
                for d in node.read_collection(&name, |c| c.find_unordered(&Filter::All)) {
                    if seen.insert(d.id) {
                        docs.push(d);
                    }
                }
            }
            docs.sort_by_key(|d| d.id);
            for doc in docs {
                let (targets, _) = self.write_targets(doc.id);
                for (idx, node) in self.nodes.iter().enumerate() {
                    if !node.is_up() {
                        continue;
                    }
                    let holds = node.read_collection(&name, |c| c.get(doc.id).is_some());
                    if targets.contains(&idx) {
                        if !holds {
                            node.journal(doc.encoded_len() as u64);
                            node.with_collection(&name, |c| {
                                for f in &indexed {
                                    c.create_index(f.clone());
                                }
                                c.insert_with_id(doc.id, doc.clone());
                            });
                        }
                    } else if holds {
                        node.with_collection(&name, |c| {
                            c.delete_by_id(doc.id);
                        });
                    }
                }
            }
        }
    }

    /// `true` if node `i` exists and is up.
    pub fn node_is_up(&self, i: usize) -> bool {
        self.nodes.get(i).is_some_and(StoreNode::is_up)
    }

    /// Number of nodes currently down.
    pub fn down_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_up()).count()
    }

    /// The minimum number of replica writes for an insert to succeed
    /// (majority of the replication factor).
    pub fn write_quorum(&self) -> usize {
        self.replication / 2 + 1
    }

    /// Total journal bytes across all nodes.
    pub fn total_journal_bytes(&self) -> u64 {
        self.nodes.iter().map(StoreNode::journal_bytes).sum()
    }

    /// Access a node by index (for inspection in tests and benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &StoreNode {
        &self.nodes[i]
    }

    pub(crate) fn primary_for(&self, id: DocId) -> usize {
        // Fibonacci hashing of the id spreads sequential ids uniformly.
        (id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % self.nodes.len()
    }

    pub(crate) fn replicas_for(&self, id: DocId) -> impl Iterator<Item = usize> + '_ {
        let primary = self.primary_for(id);
        (0..self.replication).map(move |k| (primary + k) % self.nodes.len())
    }

    /// The node indices an insert of `id` writes to: the preferred
    /// replica set, with each down member handed off to the next live
    /// ring node not already holding a copy (consistent-hashing-style
    /// hinted handoff). Returns `(targets, handoff_count)`.
    pub(crate) fn write_targets(&self, id: DocId) -> (Vec<usize>, u64) {
        let n = self.nodes.len();
        let preferred: Vec<usize> = self.replicas_for(id).collect();
        let mut targets: Vec<usize> = Vec::with_capacity(preferred.len());
        let mut handoffs = 0u64;
        // The handoff cursor starts just past the preferred set and keeps
        // advancing, so two down replicas get two distinct stand-ins.
        let mut cursor = (self.primary_for(id) + self.replication) % n;
        for &idx in &preferred {
            if self.nodes[idx].is_up() {
                targets.push(idx);
                continue;
            }
            let mut steps = 0;
            while steps < n {
                let cand = cursor;
                cursor = (cursor + 1) % n;
                steps += 1;
                if self.nodes[cand].is_up()
                    && !preferred.contains(&cand)
                    && !targets.contains(&cand)
                {
                    targets.push(cand);
                    handoffs += 1;
                    break;
                }
            }
        }
        (targets, handoffs)
    }
}

/// A handle to one logical (cluster-wide) collection.
#[derive(Debug, Clone)]
pub struct CollectionHandle {
    cluster: StoreCluster,
    name: String,
}

impl CollectionHandle {
    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inserts a document, assigning it a cluster-unique id.
    ///
    /// The write is journaled and applied on the primary and every
    /// replica. When a preferred replica is down, the write is handed
    /// off to the next live ring node; the insert succeeds as long as a
    /// majority of the replication factor ([`StoreCluster::write_quorum`])
    /// is written.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Store`] if the cluster has no nodes (cannot
    /// happen via [`StoreCluster::new`]) or too few nodes are up to reach
    /// the write quorum.
    pub fn insert(&self, doc: Document) -> Result<DocId> {
        if self.cluster.nodes.is_empty() {
            return Err(AthenaError::Store("no store nodes".into()));
        }
        // Clone the instruments out of a short-lived guard: the write
        // path below takes the index-request and collection locks, and
        // lock-discipline (rightly) refuses nested acquisition under
        // `tel`.
        let (insert_ns, replica_writes, write_handoffs, quorum_failures, observe) = {
            let tel = self.cluster.tel.read();
            (
                tel.insert_ns.clone(),
                tel.replica_writes.clone(),
                tel.write_handoffs.clone(),
                tel.quorum_failures.clone(),
                tel.observe.clone(),
            )
        };
        let span = observe.span("store", "quorum_write");
        let timer = insert_ns.start_timer();
        let id = DocId(self.cluster.next_id.fetch_add(1, Ordering::Relaxed));
        let (targets, handoffs) = self.cluster.write_targets(id);
        if targets.len() < self.cluster.write_quorum() {
            self.cluster
                .metrics
                .quorum_failures
                .fetch_add(1, Ordering::Relaxed);
            quorum_failures.inc();
            return Err(AthenaError::Store(format!(
                "write quorum not reached: {} of {} required copies placeable",
                targets.len(),
                self.cluster.write_quorum()
            )));
        }
        self.cluster.metrics.inserts.fetch_add(1, Ordering::Relaxed);
        if handoffs > 0 {
            self.cluster
                .metrics
                .write_handoffs
                .fetch_add(handoffs, Ordering::Relaxed);
            write_handoffs.add(handoffs);
        }
        let indexed_fields = self
            .cluster
            .index_requests
            .lock()
            .get(&self.name)
            .cloned()
            .unwrap_or_default();
        // The primary serializes the record once; replicas receive the
        // same bytes (so journaling costs one encode per logical write,
        // as in a real replicated store).
        let encoded_len = doc.encoded_len() as u64;
        for node_idx in targets {
            let node = &self.cluster.nodes[node_idx];
            node.journal(encoded_len);
            node.with_collection(&self.name, |c| {
                for f in &indexed_fields {
                    c.create_index(f.clone());
                }
                c.insert_with_id(id, doc.clone());
            });
            self.cluster
                .metrics
                .replica_writes
                .fetch_add(1, Ordering::Relaxed);
            replica_writes.inc();
        }
        if self.cluster.persist_on.load(Ordering::Relaxed) {
            self.cluster
                .journal_store_op(&ops::insert(&self.name, id, &doc))?;
        }
        timer.observe(&insert_ns);
        span.finish(format!(
            "coll={} id={} handoffs={handoffs}",
            self.name, id.0
        ));
        Ok(id)
    }

    /// Inserts many documents, attempting every document even when some
    /// fail — a quorum failure on one document no longer aborts the rest
    /// of the batch.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Store`] if any document failed, after all
    /// documents have been attempted.
    pub fn insert_many(&self, docs: impl IntoIterator<Item = Document>) -> Result<Vec<DocId>> {
        let mut ids = Vec::new();
        let mut failed = 0usize;
        for d in docs {
            match self.insert(d) {
                Ok(id) => ids.push(id),
                Err(_) => failed += 1,
            }
        }
        if failed > 0 {
            return Err(AthenaError::Store(format!(
                "{failed} of {} inserts failed (below write quorum)",
                ids.len() + failed
            )));
        }
        Ok(ids)
    }

    /// Registers a secondary index on `field` across all shards.
    pub fn create_index(&self, field: impl Into<String>) {
        let field = field.into();
        self.cluster
            .index_requests
            .lock()
            .entry(self.name.clone())
            .or_default()
            .push(field.clone());
        for node in self.cluster.nodes.iter() {
            node.with_collection(&self.name, |c| c.create_index(field.clone()));
        }
        if self.cluster.persist_on.load(Ordering::Relaxed) {
            let _ = self
                .cluster
                .journal_store_op(&ops::create_index(&self.name, &field));
        }
    }

    /// Finds matching documents cluster-wide, then applies `opts`.
    ///
    /// Reads are served by each shard's primary copy only, so replicated
    /// documents are not duplicated in the result.
    pub fn find(&self, filter: &Filter, opts: &FindOptions) -> Vec<Document> {
        let tel = self.cluster.tel.read();
        let timer = tel.find_ns.start_timer();
        self.cluster.metrics.finds.fetch_add(1, Ordering::Relaxed);
        let out = opts.apply(self.find_primaries(filter));
        timer.observe(&tel.find_ns);
        out
    }

    /// Counts matching documents cluster-wide.
    pub fn count(&self, filter: &Filter) -> usize {
        self.find_primaries(filter).len()
    }

    /// Runs an aggregation pipeline over the matching documents.
    pub fn aggregate(&self, pipeline: &Aggregation) -> Vec<Document> {
        let tel = self.cluster.tel.read();
        let timer = tel.aggregate_ns.start_timer();
        self.cluster
            .metrics
            .aggregations
            .fetch_add(1, Ordering::Relaxed);
        let out = pipeline.run(self.find_primaries(&Filter::All));
        timer.observe(&tel.aggregate_ns);
        out
    }

    /// Deletes matching documents on every replica. Returns the number of
    /// logical documents removed.
    pub fn delete(&self, filter: &Filter) -> usize {
        let victims: Vec<DocId> = self
            .find_primaries(filter)
            .into_iter()
            .map(|d| d.id)
            .collect();
        for id in &victims {
            for node_idx in self.cluster.replicas_for(*id).collect::<Vec<_>>() {
                let node = &self.cluster.nodes[node_idx];
                node.with_collection(&self.name, |c| {
                    c.delete_by_id(*id);
                });
            }
        }
        self.cluster
            .metrics
            .deletes
            .fetch_add(victims.len() as u64, Ordering::Relaxed);
        self.cluster.tel.read().deletes.add(victims.len() as u64);
        if self.cluster.persist_on.load(Ordering::Relaxed) && !victims.is_empty() {
            let _ = self
                .cluster
                .journal_store_op(&ops::delete(&self.name, &victims));
        }
        victims.len()
    }

    /// Sets fields on every matching document, on every live replica copy
    /// (including handed-off copies on ring stand-ins). Returns the number
    /// of logical documents changed.
    pub fn update(&self, filter: &Filter, changes: &[(String, Value)]) -> usize {
        let victims: Vec<DocId> = self
            .find_primaries(filter)
            .into_iter()
            .map(|d| d.id)
            .collect();
        for id in &victims {
            for node in self.cluster.nodes.iter().filter(|n| n.is_up()) {
                node.with_collection(&self.name, |c| {
                    c.update_by_id(*id, changes);
                });
            }
        }
        self.cluster
            .metrics
            .updates
            .fetch_add(victims.len() as u64, Ordering::Relaxed);
        if self.cluster.persist_on.load(Ordering::Relaxed) && !victims.is_empty() {
            let _ = self
                .cluster
                .journal_store_op(&ops::update(&self.name, &victims, changes));
        }
        victims.len()
    }

    /// All documents (primary copies), in canonical id order.
    pub fn all(&self) -> Vec<Document> {
        self.find_primaries(&Filter::All)
    }

    /// Cluster-wide reads return documents in canonical id order (ids are
    /// assigned sequentially, so this is global insertion order). The
    /// order is therefore independent of document placement and of
    /// per-shard index history — a run that handed documents off during
    /// an outage and a run recovered from the journal read identically.
    fn find_primaries(&self, filter: &Filter) -> Vec<Document> {
        if self.cluster.nodes.iter().all(StoreNode::is_up) {
            // Healthy path: each shard answers from its primary copy only,
            // so replicated documents are not duplicated. With more than
            // one node the per-node scans fan out over the work-stealing
            // pool (`ATHENA_THREADS = 1` takes the pool's in-place
            // sequential fast path); the ordered reduction merges
            // them back in node-index order, and the final id sort makes
            // the result byte-identical to the sequential walk anyway.
            let n = self.cluster.nodes.len();
            let mut out: Vec<Document> = if n > 1 {
                let cluster = self.cluster.clone();
                let name = self.name.clone();
                let filter = filter.clone();
                athena_parallel::par_map_indexed(n, move |node_idx| {
                    let mut hits = cluster.nodes[node_idx]
                        .read_collection(&name, |c| c.find_unordered(&filter));
                    hits.retain(|d| cluster.primary_for(d.id) == node_idx);
                    hits
                })
                .into_iter()
                .flatten()
                .collect()
            } else {
                let mut out = Vec::new();
                for (node_idx, node) in self.cluster.nodes.iter().enumerate() {
                    let mut hits = node.read_collection(&self.name, |c| c.find_unordered(filter));
                    hits.retain(|d| self.cluster.primary_for(d.id) == node_idx);
                    out.append(&mut hits);
                }
                out
            };
            out.sort_by_key(|d| d.id);
            return out;
        }
        // Degraded path: a down primary's documents are recovered from
        // replica copies. Every up node is consulted in index order and
        // duplicates are dropped first-seen — deterministic regardless of
        // which nodes are down.
        self.cluster
            .metrics
            .degraded_reads
            .fetch_add(1, Ordering::Relaxed);
        // `try_read`: callers like `find` hold the tel read lock across
        // this call; a blocking `read` could deadlock behind a waiting
        // writer, so a contended bind just skips the increment.
        if let Some(tel) = self.cluster.tel.try_read() {
            tel.degraded_reads.inc();
        }
        let mut seen: HashSet<DocId> = HashSet::new();
        let mut out = Vec::new();
        for node in self.cluster.nodes.iter().filter(|n| n.is_up()) {
            let hits = node.read_collection(&self.name, |c| c.find_unordered(filter));
            for d in hits {
                if seen.insert(d.id) {
                    out.push(d);
                }
            }
        }
        out.sort_by_key(|d| d.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;
    use crate::query::SortSpec;

    #[test]
    fn insert_then_find_roundtrips() {
        let cluster = StoreCluster::new(4, 2);
        let coll = cluster.collection("c");
        for i in 0..100i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        assert_eq!(coll.count(&Filter::All), 100);
        let out = coll.find(
            &Filter::gte("i", 90),
            &FindOptions::default().sort(SortSpec::asc("i")),
        );
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].get_i64("i"), Some(90));
    }

    #[test]
    fn no_duplicates_despite_replication() {
        let cluster = StoreCluster::new(3, 3);
        let coll = cluster.collection("c");
        for i in 0..50i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        let all = coll.all();
        assert_eq!(all.len(), 50);
        let mut ids: Vec<u64> = all.iter().map(|d| d.id.0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn replication_writes_all_copies() {
        let cluster = StoreCluster::new(5, 3);
        let coll = cluster.collection("c");
        for i in 0..10i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        let m = cluster.metrics();
        assert_eq!(m.inserts, 10);
        assert_eq!(m.replica_writes, 30);
        // Journals received every replica write.
        let total_records: u64 = (0..5).map(|i| cluster.node(i).journal_records()).sum();
        assert_eq!(total_records, 30);
        assert!(cluster.total_journal_bytes() > 0);
    }

    #[test]
    fn sharding_spreads_documents() {
        let cluster = StoreCluster::new(4, 1);
        let coll = cluster.collection("c");
        for i in 0..400i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        // Every node should hold a reasonable share (loose bound).
        for i in 0..4 {
            let n = cluster.node(i).read_collection("c", |c| c.len());
            assert!(n > 40, "node {i} holds only {n} docs");
        }
    }

    #[test]
    fn aggregate_over_cluster() {
        use crate::query::{Accumulator, GroupSpec};
        let cluster = StoreCluster::new(3, 2);
        let coll = cluster.collection("c");
        for i in 0..30i64 {
            coll.insert(doc! { "k" => i % 3, "v" => i }).unwrap();
        }
        let out = coll.aggregate(
            &Aggregation::new()
                .group(GroupSpec::by(&["k"]).with("n", Accumulator::Count))
                .sort(vec![SortSpec::asc("k")]),
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|d| d.get_i64("n") == Some(10)));
    }

    #[test]
    fn telemetry_observes_query_latency_and_replication() {
        let tel = Telemetry::new();
        let cluster = StoreCluster::new(3, 2);
        cluster.bind_telemetry(&tel);
        let coll = cluster.collection("c");
        for i in 0..20i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        coll.find(&Filter::gte("i", 10), &FindOptions::default());
        coll.delete(&Filter::eq("i", 0));
        let m = tel.metrics();
        assert_eq!(m.histogram("store", "insert_ns").snapshot().count, 20);
        assert_eq!(m.histogram("store", "find_ns").snapshot().count, 1);
        assert_eq!(m.counter("store", "replica_writes").get(), 40);
        assert_eq!(m.counter("store", "deletes").get(), 1);
    }

    #[test]
    fn replication_factor_is_clamped() {
        let cluster = StoreCluster::new(2, 10);
        assert_eq!(cluster.replication(), 2);
        let cluster = StoreCluster::new(3, 0);
        assert_eq!(cluster.replication(), 1);
    }

    #[test]
    fn down_replica_hands_writes_off_and_reads_degrade() {
        let tel = Telemetry::new();
        let cluster = StoreCluster::new(4, 2);
        cluster.bind_telemetry(&tel);
        let coll = cluster.collection("c");
        cluster.set_node_up(1, false);
        assert!(!cluster.node_is_up(1));
        assert_eq!(cluster.down_count(), 1);
        for i in 0..100i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        let m = cluster.metrics();
        assert_eq!(m.inserts, 100);
        // Every logical write still placed `replication` copies.
        assert_eq!(m.replica_writes, 200);
        // Node 1 would have been primary or replica for some shard of 100
        // docs; those writes were handed off.
        assert!(m.write_handoffs > 0, "no handoffs recorded");
        assert_eq!(m.quorum_failures, 0);
        // The down node received nothing.
        assert_eq!(cluster.node(1).journal_records(), 0);
        // Reads see every document despite the outage.
        assert_eq!(coll.count(&Filter::All), 100);
        assert!(cluster.metrics().degraded_reads > 0);
        let t = tel.metrics();
        assert!(t.counter("retry", "store_write_handoffs").get() > 0);
        assert!(t.counter("retry", "store_degraded_reads").get() > 0);
        // Recovery: bring the node back; the healthy read path resumes
        // and still sees every primary copy (handed-off copies live on
        // ring stand-ins, which dedup correctly).
        cluster.set_node_up(1, true);
        let healthy = coll.count(&Filter::All);
        assert!(healthy >= 100 - m.write_handoffs as usize);
    }

    #[test]
    fn insert_fails_below_quorum_and_insert_many_attempts_all() {
        let cluster = StoreCluster::new(3, 3);
        let coll = cluster.collection("c");
        // quorum = 2 of 3; with two nodes down only one copy is placeable.
        cluster.set_node_up(0, false);
        cluster.set_node_up(1, false);
        let err = coll.insert(doc! { "i" => 1 }).unwrap_err();
        assert!(err.to_string().contains("quorum"));
        assert_eq!(cluster.metrics().quorum_failures, 1);
        assert_eq!(cluster.metrics().inserts, 0);
        let batch_err = coll
            .insert_many((0..5i64).map(|i| doc! { "i" => i }))
            .unwrap_err();
        assert!(batch_err.to_string().contains("5 of 5"));
        // One node back: 2 of 3 copies placeable → quorum reached.
        cluster.set_node_up(0, true);
        let ids = coll
            .insert_many((0..5i64).map(|i| doc! { "i" => i }))
            .unwrap();
        assert_eq!(ids.len(), 5);
        assert_eq!(coll.count(&Filter::All), 5);
    }

    #[test]
    fn degraded_reads_are_deterministic() {
        let build = || {
            let cluster = StoreCluster::new(4, 2);
            let coll = cluster.collection("c");
            for i in 0..50i64 {
                coll.insert(doc! { "i" => i }).unwrap();
            }
            cluster.set_node_up(2, false);
            let mut vals: Vec<i64> = coll.all().iter().filter_map(|d| d.get_i64("i")).collect();
            vals.sort_unstable();
            (vals, cluster.metrics())
        };
        let (a, ma) = build();
        let (b, mb) = build();
        assert_eq!(a, b);
        assert_eq!(a.len(), 50, "degraded read lost documents");
        assert_eq!(ma, mb);
    }

    #[test]
    fn healthy_cluster_behavior_is_unchanged() {
        let cluster = StoreCluster::new(5, 3);
        let coll = cluster.collection("c");
        for i in 0..10i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        let m = cluster.metrics();
        assert_eq!(m.write_handoffs, 0);
        assert_eq!(m.quorum_failures, 0);
        assert_eq!(m.degraded_reads, 0);
        assert_eq!(m.replica_writes, 30);
    }

    #[test]
    fn indexes_apply_to_future_inserts_on_all_shards() {
        let cluster = StoreCluster::new(3, 1);
        let coll = cluster.collection("c");
        coll.create_index("k");
        for i in 0..60i64 {
            coll.insert(doc! { "k" => i % 5 }).unwrap();
        }
        assert_eq!(coll.count(&Filter::eq("k", 2)), 12);
    }
}
