//! The distributed store: sharding, replication, journaling, metrics.
//!
//! A [`StoreCluster`] is a set of [`StoreNode`]s. Each collection is hash-
//! sharded across all nodes by document id; each shard is replicated onto
//! the next `replication - 1` nodes in ring order. Writes run on the
//! primary and every replica and append a serialized journal record — real
//! work that the Table IX benchmark measures.

use crate::collection::Collection;
use crate::document::{DocId, Document};
use crate::filter::Filter;
use crate::query::{Aggregation, FindOptions};
use athena_telemetry::{Counter, Histogram, Telemetry};
use athena_types::{AthenaError, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A single store node: the shards it hosts plus its write journal.
#[derive(Debug, Default)]
pub struct StoreNode {
    collections: RwLock<HashMap<String, RwLock<Collection>>>,
    journal_bytes: AtomicU64,
    journal_records: AtomicU64,
}

impl StoreNode {
    fn new() -> Self {
        StoreNode::default()
    }

    fn with_collection<R>(&self, name: &str, f: impl FnOnce(&mut Collection) -> R) -> R {
        {
            let map = self.collections.read();
            if let Some(coll) = map.get(name) {
                return f(&mut coll.write());
            }
        }
        let mut map = self.collections.write();
        let coll = map
            .entry(name.to_owned())
            .or_insert_with(|| RwLock::new(Collection::new(name)));
        let result = f(&mut coll.write());
        result
    }

    fn read_collection<R: Default>(&self, name: &str, f: impl FnOnce(&Collection) -> R) -> R {
        let map = self.collections.read();
        map.get(name)
            .map_or_else(R::default, |coll| f(&coll.read()))
    }

    fn journal(&self, encoded_len: u64) {
        let bytes = encoded_len + 16; // header overhead
        self.journal_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.journal_records.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes appended to this node's journal.
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes.load(Ordering::Relaxed)
    }

    /// Total records appended to this node's journal.
    pub fn journal_records(&self) -> u64 {
        self.journal_records.load(Ordering::Relaxed)
    }
}

/// Cluster-wide operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterMetrics {
    /// Documents inserted (per logical insert, not per replica).
    pub inserts: u64,
    /// Replica writes performed (including the primary).
    pub replica_writes: u64,
    /// Find operations served.
    pub finds: u64,
    /// Aggregations served.
    pub aggregations: u64,
    /// Documents deleted.
    pub deletes: u64,
}

#[derive(Debug, Default)]
struct MetricsInner {
    inserts: AtomicU64,
    replica_writes: AtomicU64,
    finds: AtomicU64,
    aggregations: AtomicU64,
    deletes: AtomicU64,
}

/// The cluster's telemetry instruments (detached until
/// [`StoreCluster::bind_telemetry`]; shared by every cloned handle).
#[derive(Debug, Default)]
struct StoreTelemetry {
    insert_ns: Histogram,
    find_ns: Histogram,
    aggregate_ns: Histogram,
    replica_writes: Counter,
    deletes: Counter,
}

/// A distributed document store: N nodes, hash sharding, replication.
///
/// Cloning yields another handle to the same cluster.
///
/// # Examples
///
/// ```
/// use athena_store::{doc, Filter, FindOptions, StoreCluster};
///
/// let cluster = StoreCluster::new(3, 2);
/// let features = cluster.collection("features");
/// for sw in 0..6 {
///     features.insert(doc! { "sw" => sw })?;
/// }
/// assert_eq!(features.count(&Filter::All), 6);
/// // Every write hit a primary and one replica.
/// assert_eq!(cluster.metrics().replica_writes, 12);
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StoreCluster {
    nodes: Arc<Vec<StoreNode>>,
    replication: usize,
    next_id: Arc<AtomicU64>,
    metrics: Arc<MetricsInner>,
    index_requests: Arc<Mutex<HashMap<String, Vec<String>>>>,
    tel: Arc<RwLock<StoreTelemetry>>,
}

impl StoreCluster {
    /// Creates a cluster of `nodes` store nodes with the given replication
    /// factor (total copies per document, clamped to the node count; at
    /// least 1).
    pub fn new(nodes: usize, replication: usize) -> Self {
        let nodes = nodes.max(1);
        StoreCluster {
            nodes: Arc::new((0..nodes).map(|_| StoreNode::new()).collect()),
            replication: replication.clamp(1, nodes),
            next_id: Arc::new(AtomicU64::new(1)),
            metrics: Arc::new(MetricsInner::default()),
            index_requests: Arc::new(Mutex::new(HashMap::new())),
            tel: Arc::new(RwLock::new(StoreTelemetry::default())),
        }
    }

    /// Routes query latencies and replication counters into `tel` for
    /// every handle cloned from this cluster.
    pub fn bind_telemetry(&self, tel: &Telemetry) {
        let m = tel.metrics();
        *self.tel.write() = StoreTelemetry {
            insert_ns: m.histogram("store", "insert_ns"),
            find_ns: m.histogram("store", "find_ns"),
            aggregate_ns: m.histogram("store", "aggregate_ns"),
            replica_writes: m.counter("store", "replica_writes"),
            deletes: m.counter("store", "deletes"),
        };
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The replication factor (copies per document).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Returns a handle to a named collection (created lazily on first
    /// write).
    pub fn collection(&self, name: impl Into<String>) -> CollectionHandle {
        CollectionHandle {
            cluster: self.clone(),
            name: name.into(),
        }
    }

    /// A snapshot of the operation counters.
    pub fn metrics(&self) -> ClusterMetrics {
        ClusterMetrics {
            inserts: self.metrics.inserts.load(Ordering::Relaxed),
            replica_writes: self.metrics.replica_writes.load(Ordering::Relaxed),
            finds: self.metrics.finds.load(Ordering::Relaxed),
            aggregations: self.metrics.aggregations.load(Ordering::Relaxed),
            deletes: self.metrics.deletes.load(Ordering::Relaxed),
        }
    }

    /// Total journal bytes across all nodes.
    pub fn total_journal_bytes(&self) -> u64 {
        self.nodes.iter().map(StoreNode::journal_bytes).sum()
    }

    /// Access a node by index (for inspection in tests and benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &StoreNode {
        &self.nodes[i]
    }

    fn primary_for(&self, id: DocId) -> usize {
        // Fibonacci hashing of the id spreads sequential ids uniformly.
        (id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % self.nodes.len()
    }

    fn replicas_for(&self, id: DocId) -> impl Iterator<Item = usize> + '_ {
        let primary = self.primary_for(id);
        (0..self.replication).map(move |k| (primary + k) % self.nodes.len())
    }
}

/// A handle to one logical (cluster-wide) collection.
#[derive(Debug, Clone)]
pub struct CollectionHandle {
    cluster: StoreCluster,
    name: String,
}

impl CollectionHandle {
    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inserts a document, assigning it a cluster-unique id.
    ///
    /// The write is journaled and applied on the primary and every replica.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Store`] if the cluster has no nodes (cannot
    /// happen via [`StoreCluster::new`]).
    pub fn insert(&self, doc: Document) -> Result<DocId> {
        if self.cluster.nodes.is_empty() {
            return Err(AthenaError::Store("no store nodes".into()));
        }
        // Clone the instruments out of a short-lived guard: the write
        // path below takes the index-request and collection locks, and
        // lock-discipline (rightly) refuses nested acquisition under
        // `tel`.
        let (insert_ns, replica_writes) = {
            let tel = self.cluster.tel.read();
            (tel.insert_ns.clone(), tel.replica_writes.clone())
        };
        let timer = insert_ns.start_timer();
        let id = DocId(self.cluster.next_id.fetch_add(1, Ordering::Relaxed));
        self.cluster.metrics.inserts.fetch_add(1, Ordering::Relaxed);
        let indexed_fields = self
            .cluster
            .index_requests
            .lock()
            .get(&self.name)
            .cloned()
            .unwrap_or_default();
        // The primary serializes the record once; replicas receive the
        // same bytes (so journaling costs one encode per logical write,
        // as in a real replicated store).
        let encoded_len = doc.encoded_len() as u64;
        for node_idx in self.cluster.replicas_for(id) {
            let node = &self.cluster.nodes[node_idx];
            node.journal(encoded_len);
            node.with_collection(&self.name, |c| {
                for f in &indexed_fields {
                    c.create_index(f.clone());
                }
                c.insert_with_id(id, doc.clone());
            });
            self.cluster
                .metrics
                .replica_writes
                .fetch_add(1, Ordering::Relaxed);
            replica_writes.inc();
        }
        timer.observe(&insert_ns);
        Ok(id)
    }

    /// Inserts many documents.
    ///
    /// # Errors
    ///
    /// Propagates the first failing insert.
    pub fn insert_many(&self, docs: impl IntoIterator<Item = Document>) -> Result<Vec<DocId>> {
        docs.into_iter().map(|d| self.insert(d)).collect()
    }

    /// Registers a secondary index on `field` across all shards.
    pub fn create_index(&self, field: impl Into<String>) {
        let field = field.into();
        self.cluster
            .index_requests
            .lock()
            .entry(self.name.clone())
            .or_default()
            .push(field.clone());
        for node in self.cluster.nodes.iter() {
            node.with_collection(&self.name, |c| c.create_index(field.clone()));
        }
    }

    /// Finds matching documents cluster-wide, then applies `opts`.
    ///
    /// Reads are served by each shard's primary copy only, so replicated
    /// documents are not duplicated in the result.
    pub fn find(&self, filter: &Filter, opts: &FindOptions) -> Vec<Document> {
        let tel = self.cluster.tel.read();
        let timer = tel.find_ns.start_timer();
        self.cluster.metrics.finds.fetch_add(1, Ordering::Relaxed);
        let out = opts.apply(self.find_primaries(filter));
        timer.observe(&tel.find_ns);
        out
    }

    /// Counts matching documents cluster-wide.
    pub fn count(&self, filter: &Filter) -> usize {
        self.find_primaries(filter).len()
    }

    /// Runs an aggregation pipeline over the matching documents.
    pub fn aggregate(&self, pipeline: &Aggregation) -> Vec<Document> {
        let tel = self.cluster.tel.read();
        let timer = tel.aggregate_ns.start_timer();
        self.cluster
            .metrics
            .aggregations
            .fetch_add(1, Ordering::Relaxed);
        let out = pipeline.run(self.find_primaries(&Filter::All));
        timer.observe(&tel.aggregate_ns);
        out
    }

    /// Deletes matching documents on every replica. Returns the number of
    /// logical documents removed.
    pub fn delete(&self, filter: &Filter) -> usize {
        let victims: Vec<DocId> = self
            .find_primaries(filter)
            .into_iter()
            .map(|d| d.id)
            .collect();
        for id in &victims {
            for node_idx in self.cluster.replicas_for(*id).collect::<Vec<_>>() {
                let node = &self.cluster.nodes[node_idx];
                node.with_collection(&self.name, |c| {
                    c.delete_by_id(*id);
                });
            }
        }
        self.cluster
            .metrics
            .deletes
            .fetch_add(victims.len() as u64, Ordering::Relaxed);
        self.cluster.tel.read().deletes.add(victims.len() as u64);
        victims.len()
    }

    /// All documents (primary copies), unordered.
    pub fn all(&self) -> Vec<Document> {
        self.find_primaries(&Filter::All)
    }

    fn find_primaries(&self, filter: &Filter) -> Vec<Document> {
        let mut out = Vec::new();
        for (node_idx, node) in self.cluster.nodes.iter().enumerate() {
            let mut hits = node.read_collection(&self.name, |c| c.find_unordered(filter));
            hits.retain(|d| self.cluster.primary_for(d.id) == node_idx);
            out.append(&mut hits);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;
    use crate::query::SortSpec;

    #[test]
    fn insert_then_find_roundtrips() {
        let cluster = StoreCluster::new(4, 2);
        let coll = cluster.collection("c");
        for i in 0..100i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        assert_eq!(coll.count(&Filter::All), 100);
        let out = coll.find(
            &Filter::gte("i", 90),
            &FindOptions::default().sort(SortSpec::asc("i")),
        );
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].get_i64("i"), Some(90));
    }

    #[test]
    fn no_duplicates_despite_replication() {
        let cluster = StoreCluster::new(3, 3);
        let coll = cluster.collection("c");
        for i in 0..50i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        let all = coll.all();
        assert_eq!(all.len(), 50);
        let mut ids: Vec<u64> = all.iter().map(|d| d.id.0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn replication_writes_all_copies() {
        let cluster = StoreCluster::new(5, 3);
        let coll = cluster.collection("c");
        for i in 0..10i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        let m = cluster.metrics();
        assert_eq!(m.inserts, 10);
        assert_eq!(m.replica_writes, 30);
        // Journals received every replica write.
        let total_records: u64 = (0..5).map(|i| cluster.node(i).journal_records()).sum();
        assert_eq!(total_records, 30);
        assert!(cluster.total_journal_bytes() > 0);
    }

    #[test]
    fn sharding_spreads_documents() {
        let cluster = StoreCluster::new(4, 1);
        let coll = cluster.collection("c");
        for i in 0..400i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        // Every node should hold a reasonable share (loose bound).
        for i in 0..4 {
            let n = cluster.node(i).read_collection("c", |c| c.len());
            assert!(n > 40, "node {i} holds only {n} docs");
        }
    }

    #[test]
    fn aggregate_over_cluster() {
        use crate::query::{Accumulator, GroupSpec};
        let cluster = StoreCluster::new(3, 2);
        let coll = cluster.collection("c");
        for i in 0..30i64 {
            coll.insert(doc! { "k" => i % 3, "v" => i }).unwrap();
        }
        let out = coll.aggregate(
            &Aggregation::new()
                .group(GroupSpec::by(&["k"]).with("n", Accumulator::Count))
                .sort(vec![SortSpec::asc("k")]),
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|d| d.get_i64("n") == Some(10)));
    }

    #[test]
    fn telemetry_observes_query_latency_and_replication() {
        let tel = Telemetry::new();
        let cluster = StoreCluster::new(3, 2);
        cluster.bind_telemetry(&tel);
        let coll = cluster.collection("c");
        for i in 0..20i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        coll.find(&Filter::gte("i", 10), &FindOptions::default());
        coll.delete(&Filter::eq("i", 0));
        let m = tel.metrics();
        assert_eq!(m.histogram("store", "insert_ns").snapshot().count, 20);
        assert_eq!(m.histogram("store", "find_ns").snapshot().count, 1);
        assert_eq!(m.counter("store", "replica_writes").get(), 40);
        assert_eq!(m.counter("store", "deletes").get(), 1);
    }

    #[test]
    fn replication_factor_is_clamped() {
        let cluster = StoreCluster::new(2, 10);
        assert_eq!(cluster.replication(), 2);
        let cluster = StoreCluster::new(3, 0);
        assert_eq!(cluster.replication(), 1);
    }

    #[test]
    fn indexes_apply_to_future_inserts_on_all_shards() {
        let cluster = StoreCluster::new(3, 1);
        let coll = cluster.collection("c");
        coll.create_index("k");
        for i in 0..60i64 {
            coll.insert(doc! { "k" => i % 5 }).unwrap();
        }
        assert_eq!(coll.count(&Filter::eq("k", 2)), 12);
    }
}
