//! Durability wiring: the cluster's write path appends WAL records and
//! checkpoints through an [`athena_persist::Journal`].
//!
//! The paper's prototype outsources this to MongoDB's journal; here the
//! cluster itself owns a journal under a configurable data directory.
//! Logical operations (insert/update/delete/create-index) are encoded as
//! canonical JSON — the serde shim's object map is BTreeMap-backed, so the
//! same operation always serializes to the same bytes — and replayed on
//! recovery against a fresh cluster, yielding byte-identical logical
//! contents. Checkpoints snapshot every collection (documents sorted by
//! id, index fields sorted) plus the id allocator, superseding the WAL.

use crate::cluster::StoreCluster;
use crate::document::{DocId, Document};
use crate::filter::Filter;
use athena_persist::{record::kind, Journal, PersistConfig, Recovery};
use athena_telemetry::Telemetry;
use athena_types::{AthenaError, Result, VirtualClock};
use serde_json::{Map, Value};
use std::collections::HashSet;
use std::sync::atomic::Ordering;

/// The attached journal plus the virtual clock that stamps its records.
#[derive(Debug)]
pub(crate) struct StorePersist {
    pub(crate) journal: Journal,
    pub(crate) clock: VirtualClock,
}

/// What [`StoreCluster::attach_persistence`] recovered from disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreRecoveryReport {
    /// A checkpoint snapshot was loaded and applied.
    pub checkpoint_applied: bool,
    /// Documents restored from the checkpoint snapshot.
    pub docs_restored: u64,
    /// WAL tail operations replayed after the checkpoint.
    pub ops_replayed: u64,
    /// Torn/corrupt WAL tails truncated during recovery.
    pub tails_truncated: u64,
    /// Corrupt checkpoint files skipped during recovery.
    pub corrupt_checkpoints_skipped: u64,
}

/// Canonical JSON encodings of the logical store operations.
pub(crate) mod ops {
    use super::*;

    fn obj(pairs: Vec<(&str, Value)>) -> Value {
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k.to_owned(), v);
        }
        Value::Object(m)
    }

    fn id_array(ids: &[DocId]) -> Value {
        Value::Array(ids.iter().map(|id| Value::from(id.0)).collect())
    }

    pub(crate) fn insert(coll: &str, id: DocId, doc: &Document) -> Value {
        obj(vec![
            ("op", Value::from("insert")),
            ("coll", Value::from(coll)),
            ("id", Value::from(id.0)),
            ("fields", Value::Object(doc.fields.clone())),
        ])
    }

    pub(crate) fn update(coll: &str, ids: &[DocId], changes: &[(String, Value)]) -> Value {
        let mut ch = Map::new();
        for (k, v) in changes {
            ch.insert(k.clone(), v.clone());
        }
        obj(vec![
            ("op", Value::from("update")),
            ("coll", Value::from(coll)),
            ("ids", id_array(ids)),
            ("changes", Value::Object(ch)),
        ])
    }

    pub(crate) fn delete(coll: &str, ids: &[DocId]) -> Value {
        obj(vec![
            ("op", Value::from("delete")),
            ("coll", Value::from(coll)),
            ("ids", id_array(ids)),
        ])
    }

    pub(crate) fn create_index(coll: &str, field: &str) -> Value {
        obj(vec![
            ("op", Value::from("index")),
            ("coll", Value::from(coll)),
            ("field", Value::from(field)),
        ])
    }
}

fn as_object(v: &Value) -> Result<&Map<String, Value>> {
    match v {
        Value::Object(m) => Ok(m),
        _ => Err(AthenaError::Persist("store op is not an object".into())),
    }
}

fn get_str<'a>(m: &'a Map<String, Value>, key: &str) -> Result<&'a str> {
    match m.get(key) {
        Some(Value::String(s)) => Ok(s),
        _ => Err(AthenaError::Persist(format!("store op misses `{key}`"))),
    }
}

fn get_u64(m: &Map<String, Value>, key: &str) -> Result<u64> {
    m.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| AthenaError::Persist(format!("store op misses `{key}`")))
}

fn get_ids(m: &Map<String, Value>, key: &str) -> Result<Vec<DocId>> {
    match m.get(key) {
        Some(Value::Array(a)) => a
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(DocId)
                    .ok_or_else(|| AthenaError::Persist(format!("non-integer id in `{key}`")))
            })
            .collect(),
        _ => Err(AthenaError::Persist(format!("store op misses `{key}`"))),
    }
}

fn get_object(m: &Map<String, Value>, key: &str) -> Result<Map<String, Value>> {
    match m.get(key) {
        Some(Value::Object(o)) => Ok(o.clone()),
        _ => Err(AthenaError::Persist(format!("store op misses `{key}`"))),
    }
}

impl StoreCluster {
    /// Opens (or creates) a journal under `config.dir`, recovers whatever
    /// state it holds into this cluster, and attaches the journal so every
    /// subsequent insert/update/delete/index operation appends a WAL
    /// record. Records are stamped from `clock`; `persist/store_*` metrics
    /// flow into `tel`.
    ///
    /// Attach to a freshly built cluster: recovered documents are applied
    /// through the normal sharding path, so a recovered cluster's logical
    /// contents are byte-identical to the pre-crash cluster's.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Persist`] if the journal cannot be opened or
    /// a recovered record cannot be decoded. Torn/corrupt *tails* are not
    /// errors — they are truncated, counted, and recovery continues.
    pub fn attach_persistence(
        &self,
        config: PersistConfig,
        clock: VirtualClock,
        tel: &Telemetry,
    ) -> Result<StoreRecoveryReport> {
        let (journal, recovery) = Journal::open_with_telemetry(config, tel, "store")?;
        let report = self.apply_recovery(&recovery)?;
        *self.persist.lock() = Some(StorePersist { journal, clock });
        self.persist_on.store(true, Ordering::Relaxed);
        Ok(report)
    }

    /// `true` once [`StoreCluster::attach_persistence`] has run.
    pub fn persistence_attached(&self) -> bool {
        self.persist_on.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time checkpoint of every collection (documents,
    /// indexes, id allocator) and supersedes the WAL with it. Returns the
    /// WAL sequence number the checkpoint covers.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Persist`] when no journal is attached or the
    /// snapshot cannot be written.
    pub fn checkpoint(&self) -> Result<u64> {
        let snapshot = self.build_snapshot();
        let payload = serde_json::to_vec(&snapshot)
            .map_err(|e| AthenaError::Persist(format!("encode snapshot: {e}")))?;
        let mut guard = self.persist.lock();
        let p = guard
            .as_mut()
            .ok_or_else(|| AthenaError::Persist("no journal attached".into()))?;
        let now = p.clock.now();
        p.journal.checkpoint(&payload, now)
    }

    /// Appends one logical-operation record to the attached journal.
    pub(crate) fn journal_store_op(&self, op: &Value) -> Result<()> {
        let payload = serde_json::to_vec(op)
            .map_err(|e| AthenaError::Persist(format!("encode store op: {e}")))?;
        let mut guard = self.persist.lock();
        if let Some(p) = guard.as_mut() {
            let now = p.clock.now();
            p.journal.append(kind::STORE_OP, &payload, now)?;
        }
        Ok(())
    }

    /// The cluster's canonical logical contents as one JSON string:
    /// collections sorted by name, documents sorted by id, index fields
    /// sorted, replicas deduplicated. The dump is placement-independent —
    /// a document handed off to a stand-in node during an outage reads the
    /// same as one on its preferred primary — so the same logical state
    /// always renders to the same bytes, before and after crash recovery.
    pub fn contents(&self) -> String {
        serde_json::to_string(&self.build_snapshot()).unwrap_or_default()
    }

    /// A canonical snapshot of the whole cluster's logical contents:
    /// collections sorted by name, documents sorted by id, index fields
    /// sorted — the same state always snapshots to the same bytes.
    ///
    /// Documents are gathered from every up node with replica duplicates
    /// dropped (not the healthy primary-only read): writes handed off
    /// during an outage stay in the checkpoint even after the preferred
    /// primary comes back without them.
    fn build_snapshot(&self) -> Value {
        let mut names: Vec<String> = self
            .nodes
            .iter()
            .flat_map(|n| n.collection_names())
            .collect();
        names.sort();
        names.dedup();
        let mut colls = Vec::with_capacity(names.len());
        for name in names {
            let docs = self.logical_docs(&name);
            let mut fields: Vec<String> = self
                .nodes
                .iter()
                .flat_map(|n| n.read_collection(&name, |c| c.index_fields()))
                .collect();
            fields.sort();
            fields.dedup();
            let mut m = Map::new();
            m.insert("name".into(), Value::from(name));
            m.insert(
                "indexes".into(),
                Value::Array(fields.into_iter().map(Value::from).collect()),
            );
            m.insert(
                "docs".into(),
                Value::Array(
                    docs.into_iter()
                        .map(|d| {
                            let mut dm = Map::new();
                            dm.insert("id".into(), Value::from(d.id.0));
                            dm.insert("fields".into(), Value::Object(d.fields));
                            Value::Object(dm)
                        })
                        .collect(),
                ),
            );
            colls.push(Value::Object(m));
        }
        let mut root = Map::new();
        root.insert(
            "next_id".into(),
            Value::from(self.next_id.load(Ordering::Relaxed)),
        );
        root.insert("collections".into(), Value::Array(colls));
        Value::Object(root)
    }

    /// Every logical document in `name`, consulting all up nodes and
    /// dropping replica duplicates, sorted by id.
    fn logical_docs(&self, name: &str) -> Vec<Document> {
        let mut seen: HashSet<DocId> = HashSet::new();
        let mut out = Vec::new();
        for node in self.nodes.iter().filter(|n| n.is_up()) {
            for d in node.read_collection(name, |c| c.find_unordered(&Filter::All)) {
                if seen.insert(d.id) {
                    out.push(d);
                }
            }
        }
        out.sort_by_key(|d| d.id);
        out
    }

    fn apply_recovery(&self, recovery: &Recovery) -> Result<StoreRecoveryReport> {
        let mut report = StoreRecoveryReport {
            tails_truncated: recovery.stats.tails_truncated,
            corrupt_checkpoints_skipped: recovery.corrupt_checkpoints_skipped,
            ..StoreRecoveryReport::default()
        };
        if let Some(ck) = &recovery.checkpoint {
            let snapshot: Value = serde_json::from_slice(&ck.payload)
                .map_err(|e| AthenaError::Persist(format!("decode snapshot: {e}")))?;
            report.docs_restored = self.apply_snapshot(&snapshot)?;
            report.checkpoint_applied = true;
        }
        for rec in &recovery.tail {
            if rec.kind != kind::STORE_OP {
                continue;
            }
            let op: Value = serde_json::from_slice(&rec.payload)
                .map_err(|e| AthenaError::Persist(format!("decode store op: {e}")))?;
            self.apply_op(&op)?;
            report.ops_replayed += 1;
        }
        Ok(report)
    }

    fn apply_snapshot(&self, snapshot: &Value) -> Result<u64> {
        let root = as_object(snapshot)?;
        let mut restored = 0u64;
        if let Some(Value::Array(colls)) = root.get("collections") {
            for coll in colls {
                let cm = as_object(coll)?;
                let name = get_str(cm, "name")?;
                if let Some(Value::Array(fields)) = cm.get("indexes") {
                    for f in fields {
                        if let Value::String(f) = f {
                            self.register_index(name, f);
                        }
                    }
                }
                if let Some(Value::Array(docs)) = cm.get("docs") {
                    for d in docs {
                        let dm = as_object(d)?;
                        let id = DocId(get_u64(dm, "id")?);
                        let fields = get_object(dm, "fields")?;
                        self.apply_insert(name, id, fields);
                        restored += 1;
                    }
                }
            }
        }
        // Restore the allocator last: it must win over per-insert bumps.
        self.next_id
            .fetch_max(get_u64(root, "next_id")?, Ordering::Relaxed);
        Ok(restored)
    }

    fn apply_op(&self, op: &Value) -> Result<()> {
        let m = as_object(op)?;
        match get_str(m, "op")? {
            "insert" => {
                let coll = get_str(m, "coll")?;
                let id = DocId(get_u64(m, "id")?);
                let fields = get_object(m, "fields")?;
                self.apply_insert(coll, id, fields);
                Ok(())
            }
            "update" => {
                let coll = get_str(m, "coll")?;
                let ids = get_ids(m, "ids")?;
                let changes: Vec<(String, Value)> = get_object(m, "changes")?.into_iter().collect();
                for id in ids {
                    for node in self.nodes.iter() {
                        node.with_collection(coll, |c| {
                            c.update_by_id(id, &changes);
                        });
                    }
                }
                Ok(())
            }
            "delete" => {
                let coll = get_str(m, "coll")?;
                for id in get_ids(m, "ids")? {
                    for node in self.nodes.iter() {
                        node.with_collection(coll, |c| {
                            c.delete_by_id(id);
                        });
                    }
                }
                Ok(())
            }
            "index" => {
                let coll = get_str(m, "coll")?;
                let field = get_str(m, "field")?;
                self.register_index(coll, field);
                Ok(())
            }
            other => Err(AthenaError::Persist(format!("unknown store op `{other}`"))),
        }
    }

    /// Replays one insert through the normal sharding path (all nodes are
    /// up during recovery, so placement is the preferred replica set),
    /// without journaling it again.
    fn apply_insert(&self, coll: &str, id: DocId, fields: Map<String, Value>) {
        let doc = Document { id, fields };
        let indexed = self
            .index_requests
            .lock()
            .get(coll)
            .cloned()
            .unwrap_or_default();
        let encoded_len = doc.encoded_len() as u64;
        let (targets, _) = self.write_targets(id);
        for node_idx in targets {
            let node = &self.nodes[node_idx];
            node.journal(encoded_len);
            node.with_collection(coll, |c| {
                for f in &indexed {
                    c.create_index(f.clone());
                }
                c.insert_with_id(id, doc.clone());
            });
        }
        self.next_id.fetch_max(id.0 + 1, Ordering::Relaxed);
    }

    fn register_index(&self, coll: &str, field: &str) {
        self.index_requests
            .lock()
            .entry(coll.to_owned())
            .or_default()
            .push(field.to_owned());
        for node in self.nodes.iter() {
            node.with_collection(coll, |c| c.create_index(field.to_owned()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;
    use crate::filter::Filter;
    use athena_types::{SimDuration, SimTime};
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU64;

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "athena-store-persist-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// Sorted canonical contents of a collection, for byte-level diffing.
    fn contents(cluster: &StoreCluster, coll: &str) -> String {
        let mut docs = cluster.collection(coll).all();
        docs.sort_by_key(|d| d.id);
        serde_json::to_string(&docs).unwrap()
    }

    #[test]
    fn wal_replay_restores_identical_contents() {
        let dir = test_dir();
        let tel = Telemetry::new();
        let clock = VirtualClock::new();
        let original = StoreCluster::new(3, 2);
        original
            .attach_persistence(PersistConfig::new(&dir), clock.clone(), &tel)
            .unwrap();
        let coll = original.collection("features");
        coll.create_index("sw");
        for i in 0..40i64 {
            clock.advance_by(SimDuration::from_millis(10));
            coll.insert(doc! { "sw" => i % 5, "v" => i }).unwrap();
        }
        coll.update(&Filter::eq("sw", 2), &[("hot".into(), Value::from(true))]);
        coll.delete(&Filter::eq("sw", 4));
        let before = contents(&original, "features");
        drop(original); // crash

        let recovered = StoreCluster::new(3, 2);
        let report = recovered
            .attach_persistence(
                PersistConfig::new(&dir),
                VirtualClock::new(),
                &Telemetry::off(),
            )
            .unwrap();
        assert!(!report.checkpoint_applied);
        assert!(report.ops_replayed >= 42);
        assert_eq!(contents(&recovered, "features"), before);
        // The allocator continues, so new inserts do not collide.
        let id = recovered
            .collection("features")
            .insert(doc! { "sw" => 9 })
            .unwrap();
        assert!(id.0 > 40);
        // The recovered index is live.
        assert_eq!(
            recovered.collection("features").count(&Filter::eq("sw", 2)),
            8
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_plus_tail_restores_identical_contents() {
        let dir = test_dir();
        let clock = VirtualClock::new();
        let original = StoreCluster::new(4, 2);
        original
            .attach_persistence(PersistConfig::new(&dir), clock.clone(), &Telemetry::off())
            .unwrap();
        let coll = original.collection("c");
        for i in 0..30i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        clock.advance_to(SimTime::from_secs(10));
        original.checkpoint().unwrap();
        for i in 30..50i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        let before = contents(&original, "c");
        drop(original);

        let recovered = StoreCluster::new(4, 2);
        let report = recovered
            .attach_persistence(
                PersistConfig::new(&dir),
                VirtualClock::new(),
                &Telemetry::off(),
            )
            .unwrap();
        assert!(report.checkpoint_applied);
        assert_eq!(report.docs_restored, 30);
        assert_eq!(report.ops_replayed, 20);
        assert_eq!(contents(&recovered, "c"), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_after_outage_writes_matches_survivor_contents() {
        // Writes during a node outage land on ring stand-ins; the WAL
        // records the logical operations, so a recovered (healthy) cluster
        // holds the same logical documents.
        let dir = test_dir();
        let original = StoreCluster::new(3, 2);
        original
            .attach_persistence(
                PersistConfig::new(&dir),
                VirtualClock::new(),
                &Telemetry::off(),
            )
            .unwrap();
        let coll = original.collection("c");
        for i in 0..10i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        original.set_node_up(1, false);
        for i in 10..25i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        // Capture the logical contents via the degraded read (which
        // consults every up node, so handed-off copies are included).
        let before = contents(&original, "c");
        drop(original);

        let recovered = StoreCluster::new(3, 2);
        recovered
            .attach_persistence(
                PersistConfig::new(&dir),
                VirtualClock::new(),
                &Telemetry::off(),
            )
            .unwrap();
        // The recovered cluster is healthy and holds every document on its
        // preferred primary — recovery even heals the handed-off placement.
        assert_eq!(contents(&recovered, "c"), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_without_journal_errors() {
        let cluster = StoreCluster::new(2, 1);
        assert!(!cluster.persistence_attached());
        let err = cluster.checkpoint().unwrap_err();
        assert!(err.to_string().contains("persist"));
    }

    #[test]
    fn persist_telemetry_surfaces_wal_and_checkpoint_metrics() {
        let dir = test_dir();
        let tel = Telemetry::new();
        let cluster = StoreCluster::new(3, 2);
        cluster
            .attach_persistence(PersistConfig::new(&dir), VirtualClock::new(), &tel)
            .unwrap();
        let coll = cluster.collection("c");
        for i in 0..12i64 {
            coll.insert(doc! { "i" => i }).unwrap();
        }
        cluster.checkpoint().unwrap();
        let m = tel.metrics();
        assert_eq!(m.counter("persist", "store_wal_records").get(), 12);
        assert!(m.counter("persist", "store_wal_bytes").get() > 0);
        assert_eq!(m.counter("persist", "store_checkpoints").get(), 1);
        assert_eq!(
            m.histogram("persist", "store_append_ns").snapshot().count,
            12
        );
        assert_eq!(
            m.histogram("persist", "store_checkpoint_bytes")
                .snapshot()
                .count,
            1
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
