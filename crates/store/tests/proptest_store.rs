//! Property-based tests for the distributed store: shard routing stability,
//! insert-then-find, filter/sort/limit contracts, and index/scan agreement.

use athena_store::{doc, Document, Filter, FindOptions, SortSpec, StoreCluster};
use proptest::prelude::*;

fn arb_docs() -> impl Strategy<Value = Vec<Document>> {
    proptest::collection::vec((0i64..100, 0i64..10), 1..120).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(v, k)| doc! { "v" => v, "k" => k })
            .collect()
    })
}

proptest! {
    #[test]
    fn insert_then_find_all(docs in arb_docs(), nodes in 1usize..6, repl in 1usize..4) {
        let cluster = StoreCluster::new(nodes, repl);
        let coll = cluster.collection("c");
        let n = docs.len();
        coll.insert_many(docs).unwrap();
        prop_assert_eq!(coll.count(&Filter::All), n);
        prop_assert_eq!(coll.all().len(), n);
    }

    #[test]
    fn filters_partition_the_collection(docs in arb_docs(), pivot in 0i64..100) {
        let cluster = StoreCluster::new(3, 2);
        let coll = cluster.collection("c");
        let n = docs.len();
        coll.insert_many(docs).unwrap();
        let below = coll.count(&Filter::lt("v", pivot));
        let at_or_above = coll.count(&Filter::gte("v", pivot));
        prop_assert_eq!(below + at_or_above, n);
    }

    #[test]
    fn sort_orders_and_limit_truncates(docs in arb_docs(), limit in 1usize..50) {
        let cluster = StoreCluster::new(2, 1);
        let coll = cluster.collection("c");
        let n = docs.len();
        coll.insert_many(docs).unwrap();
        let out = coll.find(
            &Filter::All,
            &FindOptions::default().sort(SortSpec::asc("v")).limit(limit),
        );
        prop_assert_eq!(out.len(), limit.min(n));
        let vs: Vec<i64> = out.iter().filter_map(|d| d.get_i64("v")).collect();
        prop_assert!(vs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn index_and_scan_agree(docs in arb_docs(), key in 0i64..10) {
        let plain = StoreCluster::new(3, 1);
        let indexed = StoreCluster::new(3, 1);
        let pc = plain.collection("c");
        let ic = indexed.collection("c");
        ic.create_index("k");
        pc.insert_many(docs.clone()).unwrap();
        ic.insert_many(docs).unwrap();
        let f = Filter::eq("k", key);
        prop_assert_eq!(pc.count(&f), ic.count(&f));
    }

    #[test]
    fn delete_removes_exactly_matches(docs in arb_docs(), key in 0i64..10) {
        let cluster = StoreCluster::new(4, 3);
        let coll = cluster.collection("c");
        let n = docs.len();
        coll.insert_many(docs).unwrap();
        let matching = coll.count(&Filter::eq("k", key));
        let deleted = coll.delete(&Filter::eq("k", key));
        prop_assert_eq!(deleted, matching);
        prop_assert_eq!(coll.count(&Filter::All), n - matching);
        prop_assert_eq!(coll.count(&Filter::eq("k", key)), 0);
    }

    #[test]
    fn replica_writes_scale_with_replication(
        docs in arb_docs(),
        nodes in 1usize..6,
        repl in 1usize..6,
    ) {
        let cluster = StoreCluster::new(nodes, repl);
        let effective = repl.min(nodes);
        let coll = cluster.collection("c");
        let n = docs.len() as u64;
        coll.insert_many(docs).unwrap();
        prop_assert_eq!(cluster.metrics().replica_writes, n * effective as u64);
    }
}

// Aggregation correctness: grouped sums/counts computed by the store's
// pipeline equal a straightforward serial computation.
proptest! {
    #[test]
    fn group_sum_matches_serial(pairs in proptest::collection::vec((0i64..5, -100i64..100), 1..80)) {
        use athena_store::{Accumulator, Aggregation, GroupSpec};
        use std::collections::HashMap;
        let cluster = StoreCluster::new(3, 2);
        let coll = cluster.collection("agg");
        for (k, v) in &pairs {
            coll.insert(doc! { "k" => *k, "v" => *v }).unwrap();
        }
        let out = coll.aggregate(
            &Aggregation::new().group(
                GroupSpec::by(&["k"])
                    .with("total", Accumulator::Sum("v".into()))
                    .with("n", Accumulator::Count),
            ),
        );
        let mut expect: HashMap<i64, (f64, i64)> = HashMap::new();
        for (k, v) in &pairs {
            let e = expect.entry(*k).or_default();
            e.0 += *v as f64;
            e.1 += 1;
        }
        prop_assert_eq!(out.len(), expect.len());
        for d in &out {
            let k = d.get_i64("k").unwrap();
            let (total, n) = expect[&k];
            prop_assert_eq!(d.get_f64("total").unwrap(), total);
            prop_assert_eq!(d.get_i64("n").unwrap(), n);
        }
    }

    /// Updates are idempotent in count and visible to subsequent finds.
    #[test]
    fn update_then_find_consistency(n in 1usize..60, pivot in 0i64..60) {
        let cluster = StoreCluster::new(2, 2);
        let coll = cluster.collection("u");
        for i in 0..n as i64 {
            coll.insert(doc! { "i" => i, "flag" => 0 }).unwrap();
        }
        // Update every replica consistently via delete+insert semantics is
        // already covered; here we check a filtered find after inserts.
        let below = coll.count(&Filter::lt("i", pivot));
        prop_assert_eq!(below, n.min(pivot.max(0) as usize));
    }
}
