//! Criterion micro-benchmarks for the hot paths under the evaluation:
//! the wire codec, flow-table lookup, store writes/queries, feature
//! generation, and K-Means training.

use athena_compute::ComputeCluster;
use athena_core::FeatureGenerator;
use athena_ml::algorithms::kmeans::{KMeansModel, KMeansParams};
use athena_ml::LabeledPoint;
use athena_openflow::{
    decode_message, encode_message, Action, FlowMod, FlowStatsEntry, FlowTable, MatchFields,
    OfMessage, OfVersion, PacketHeader, StatsReply,
};
use athena_store::{doc, Filter, FindOptions, StoreCluster};
use athena_types::{
    AppId, ControllerId, Dpid, FiveTuple, Ipv4Addr, PortNo, SimDuration, SimTime, Xid,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn ft(i: u32) -> FiveTuple {
    FiveTuple::tcp(
        Ipv4Addr::from_raw(0x0a00_0000 + i),
        (1024 + i % 50_000) as u16,
        Ipv4Addr::from_raw(0x0aff_0000 + i % 251),
        80,
    )
}

fn bench_codec(c: &mut Criterion) {
    let msg = OfMessage::FlowMod {
        xid: Xid::new(7),
        body: FlowMod::add(
            MatchFields::exact_five_tuple(ft(1)),
            100,
            vec![Action::Output(PortNo::new(2))],
        )
        .with_idle_timeout(SimDuration::from_secs(30)),
    };
    c.bench_function("codec/encode_flow_mod_v13", |b| {
        b.iter(|| encode_message(black_box(&msg), OfVersion::V1_3))
    });
    let wire = encode_message(&msg, OfVersion::V1_3);
    c.bench_function("codec/decode_flow_mod_v13", |b| {
        b.iter(|| decode_message(black_box(&wire)).unwrap())
    });
}

fn bench_flow_table(c: &mut Criterion) {
    let mut table = FlowTable::new(0);
    for i in 0..1_000u32 {
        table
            .apply(
                &FlowMod::add(
                    MatchFields::exact_five_tuple(ft(i)),
                    100,
                    vec![Action::Output(PortNo::new(2))],
                ),
                SimTime::ZERO,
            )
            .unwrap();
    }
    let pkt = PacketHeader::from_five_tuple(PortNo::new(1), ft(500), 64);
    c.bench_function("flow_table/lookup_1k_entries", |b| {
        b.iter(|| {
            table
                .lookup(black_box(&pkt), SimTime::ZERO, 1, 64)
                .is_some()
        })
    });
}

fn bench_store(c: &mut Criterion) {
    let cluster = StoreCluster::new(3, 2);
    let coll = cluster.collection("bench");
    c.bench_function("store/insert_replicated", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            coll.insert(doc! { "switch" => i % 18, "pkts" => i * 10 })
                .unwrap()
        })
    });
    // A populated collection for query benches.
    let filled = StoreCluster::new(3, 2).collection("q");
    for i in 0..5_000i64 {
        filled
            .insert(doc! { "switch" => i % 18, "pkts" => i })
            .unwrap();
    }
    c.bench_function("store/find_filtered_5k", |b| {
        b.iter(|| {
            filled.find(
                &Filter::and(vec![Filter::eq("switch", 3), Filter::gt("pkts", 2_500)]),
                &FindOptions::default().limit(10),
            )
        })
    });
}

fn bench_feature_generator(c: &mut Criterion) {
    let entries: Vec<FlowStatsEntry> = (0..100)
        .map(|i| FlowStatsEntry {
            table_id: 0,
            match_fields: MatchFields::exact_five_tuple(ft(i)),
            priority: 100,
            duration: SimDuration::from_secs(5),
            idle_timeout: SimDuration::from_secs(30),
            hard_timeout: SimDuration::ZERO,
            cookie: 1 << 48,
            packet_count: 1_000 + u64::from(i),
            byte_count: 100_000 + u64::from(i),
            actions: vec![Action::Output(PortNo::new(2))],
        })
        .collect();
    let msg = OfMessage::StatsReply {
        xid: Xid::athena_marked(1),
        body: StatsReply::Flow(entries),
    };
    c.bench_function("feature_generator/flow_stats_100_entries", |b| {
        let mut generator = FeatureGenerator::new(ControllerId::new(0));
        let app_of = |_: u64| AppId::CORE;
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            generator.ingest(
                Dpid::new(1),
                black_box(&msg),
                SimTime::from_secs(t),
                &app_of,
            )
        })
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let data: Vec<LabeledPoint> = (0..2_000)
        .map(|i| {
            let base = if i % 2 == 0 { 0.0 } else { 4.0 };
            LabeledPoint::new(
                vec![base + (i % 7) as f64 * 0.01, base + (i % 5) as f64 * 0.01],
                f64::from(u8::from(i % 2 == 1)),
            )
        })
        .collect();
    let params = KMeansParams {
        k: 4,
        max_iterations: 10,
        runs: 1,
        ..KMeansParams::default()
    };
    c.bench_function("ml/kmeans_2k_points", |b| {
        b.iter(|| KMeansModel::fit(params, black_box(&data)).unwrap())
    });
    let cluster = ComputeCluster::new(4);
    let ds = cluster.parallelize(data.clone(), 8);
    c.bench_function("ml/kmeans_2k_points_distributed", |b| {
        b.iter(|| KMeansModel::fit_distributed(params, black_box(&ds)).unwrap())
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_codec, bench_flow_table, bench_store, bench_feature_generator, bench_kmeans
}
criterion_main!(benches);
