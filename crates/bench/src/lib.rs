//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Each evaluation artifact has its own binary:
//!
//! | Artifact | Binary |
//! |----------|--------|
//! | Table VI (DDoS test environment) | `table6_environment` |
//! | Figure 6 (DDoS detector output) | `fig6_ddos_detector` |
//! | Table VII (LFA comparison) | `table7_lfa` |
//! | Figure 9 (NAE analysis) | `fig9_nae` |
//! | Table VIII (SLoC usability) | `table8_sloc` |
//! | Figure 10 (compute-cluster scalability) | `fig10_scalability` |
//! | Table IX (Cbench overhead) | `table9_cbench` |
//! | Figure 11 (CPU usage vs flow events) | `fig11_cpu` |
//! | Fault tolerance (chaos-matrix summary) | `table_faults` |
//!
//! Every binary prints the paper's reported values next to the measured
//! ones. Scale factors (dataset sizes, round counts) default to values
//! that finish in seconds and can be raised with the `ATHENA_SCALE`
//! environment variable (1 = paper scale where feasible).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod matrix;
pub mod stream;

use std::env;

/// Reads a scale knob from the environment (`name`), defaulting to
/// `default`.
pub fn env_scale(name: &str, default: usize) -> usize {
    env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Renders a section header; the caller prints it (library code stays
/// free of direct console output).
#[must_use]
pub fn header(title: &str) -> String {
    let line = "=".repeat(title.len().max(24));
    format!("{line}\n{title}\n{line}")
}

/// Renders a `paper vs measured` row; the caller prints it.
#[must_use]
pub fn compare_row(label: &str, paper: &str, measured: &str) -> String {
    format!("{label:<38} paper: {paper:<22} measured: {measured}")
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_scale_parses_and_defaults() {
        std::env::remove_var("ATHENA_TEST_SCALE_X");
        assert_eq!(env_scale("ATHENA_TEST_SCALE_X", 7), 7);
        std::env::set_var("ATHENA_TEST_SCALE_X", "42");
        assert_eq!(env_scale("ATHENA_TEST_SCALE_X", 7), 42);
        std::env::set_var("ATHENA_TEST_SCALE_X", "junk");
        assert_eq!(env_scale("ATHENA_TEST_SCALE_X", 7), 7);
        std::env::remove_var("ATHENA_TEST_SCALE_X");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5313), "53.13%");
    }

    #[test]
    fn header_and_rows_render() {
        let h = header("Hi");
        assert_eq!(h.lines().count(), 3);
        assert!(h.contains("Hi"));
        let row = compare_row("label", "1", "2");
        assert!(row.contains("paper: 1"));
        assert!(row.contains("measured: 2"));
    }
}
