//! The Table-IV evaluation matrix: every attack family crossed with
//! every Table-IV algorithm.
//!
//! Each [`AttackFamily`] gets one full seeded deployment (enterprise or
//! linear topology, benign background, optional stochastic link model,
//! optional chaos scenario). Every Table-IV algorithm then trains once on
//! the *base* families' labeled feature records and is validated against
//! every family's records — known-attack cells gate against recorded
//! baselines, held-out cells measure generalization to attacks the model
//! never saw. The whole matrix is a pure function of
//! [`MatrixConfig`], byte-identical across reruns and `ATHENA_THREADS`
//! widths.

use athena_apps::{DdosDetector, DdosDetectorConfig};
use athena_compute::ComputeCluster;
use athena_controller::ControllerCluster;
use athena_core::{Athena, AthenaConfig, DetectionModel, DetectorManager, FeatureRecord};
use athena_dataplane::{workload, LinkModel, Network};
use athena_faults::{run_with_faults, ChaosChannel, FaultInjector, Scenario};
use athena_ml::algorithms::forest::ForestParams;
use athena_ml::algorithms::gbt::GbtParams;
use athena_ml::algorithms::gmm::GmmParams;
use athena_ml::algorithms::kmeans::KMeansParams;
use athena_ml::algorithms::linear::LinearParams;
use athena_ml::Algorithm;
use athena_telemetry::Telemetry;
use athena_types::{env_flag, FiveTuple, SimDuration, SimTime};
use athena_workloads::{record_generation, AttackConfig, AttackFamily};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Everything a matrix run depends on. Two runs with equal configs
/// produce byte-identical [`MatrixReport::to_json`] output.
#[derive(Debug, Clone, Copy)]
pub struct MatrixConfig {
    /// The master seed every per-family seed derives from.
    pub seed: u64,
    /// Stochastic link model installed on every deployment's links.
    pub link_model: Option<LinkModel>,
    /// Chaos scenario composed into every family run.
    pub chaos: Option<Scenario>,
    /// Smoke mode halves workload sizes but never skips cells.
    pub smoke: bool,
}

impl Default for MatrixConfig {
    /// The CI gate's configuration: seed 7, the WAN link model, no
    /// chaos, smoke from `ATHENA_CHAOS_SMOKE`.
    fn default() -> Self {
        MatrixConfig {
            seed: 7,
            link_model: Some(LinkModel::wan()),
            chaos: None,
            smoke: env_flag("ATHENA_CHAOS_SMOKE"),
        }
    }
}

impl MatrixConfig {
    fn scaled(&self, n: usize) -> usize {
        if self.smoke {
            (n / 2).max(1)
        } else {
            n
        }
    }
}

/// The full Table-IV algorithm menu, in fixed matrix order.
pub fn table_iv_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::GradientBoostedTrees(GbtParams::default()),
        Algorithm::decision_tree(),
        Algorithm::logistic_regression(),
        Algorithm::NaiveBayes,
        Algorithm::RandomForest(ForestParams {
            trees: 10,
            ..ForestParams::default()
        }),
        Algorithm::Svm(Default::default()),
        Algorithm::GaussianMixture(GmmParams::default()),
        Algorithm::KMeans(KMeansParams {
            k: 8,
            ..KMeansParams::default()
        }),
        Algorithm::Lasso {
            params: LinearParams::default(),
            lambda: 1e-3,
        },
        Algorithm::Linear(LinearParams::default()),
        Algorithm::Ridge {
            params: LinearParams::default(),
            lambda: 1e-3,
        },
        Algorithm::threshold(4, 350.0),
    ]
}

/// One family's completed deployment: its feature records, ground-truth
/// malicious tuple set, and where the attack window started.
pub struct FamilyRun {
    /// The family that ran.
    pub family: AttackFamily,
    /// FLOW_STATS feature records collected from the deployment, in the
    /// store's canonical (placement-independent) order.
    pub records: Vec<FeatureRecord>,
    /// Ground-truth malicious 5-tuples for this run.
    pub malicious: BTreeSet<FiveTuple>,
    /// When the attack window opened.
    pub attack_start: SimTime,
    /// The run's telemetry (the names-registry gate reads this).
    pub tel: Telemetry,
}

impl FamilyRun {
    /// Ground truth for one record: its flow is in the malicious set.
    pub fn truth(&self) -> impl Fn(&FeatureRecord) -> bool + '_ {
        move |r: &FeatureRecord| {
            r.index
                .five_tuple
                .is_some_and(|ft| self.malicious.contains(&ft))
        }
    }
}

/// Runs one family's full deployment and collects its labeled records.
pub fn run_family(family: AttackFamily, cfg: &MatrixConfig) -> FamilyRun {
    let topo = family.canonical_topology();
    let seed = cfg.seed ^ (0x9a70 + family as u64) << 8;
    let tel = Telemetry::new();
    let mut net = Network::new(topo.clone());
    net.bind_telemetry(&tel);
    if let Some(model) = cfg.link_model {
        net.set_link_model(model, seed);
    }
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::with_telemetry(AthenaConfig::default(), tel.clone());
    athena.attach(&mut cluster);

    let attack_cfg = AttackConfig {
        n_flows: cfg.scaled(150),
        ..AttackConfig::new(topo.hosts[0].ip)
    };
    let attack = family.generate(&topo, &attack_cfg, seed);
    record_generation(&tel, &attack);
    let malicious: BTreeSet<FiveTuple> = attack.malicious_tuples().into_iter().collect();
    net.inject_flows(workload::benign_mix_on(
        &topo,
        cfg.scaled(100),
        SimDuration::from_secs(30),
        seed ^ 0xbe,
    ));
    net.inject_flows(attack.flows.iter().copied());

    let end = SimTime::from_secs(35);
    match cfg.chaos {
        None => net.run_until(end, &mut cluster),
        Some(scenario) => {
            let store_nodes = athena.runtime().store.node_count();
            let plan = scenario.plan(
                &topo,
                store_nodes,
                seed,
                SimTime::from_secs(12),
                SimTime::from_secs(20),
            );
            let mut injector = FaultInjector::new(plan).with_store(athena.runtime().store.clone());
            let mut chaos = ChaosChannel::new(cluster, seed);
            run_with_faults(&mut net, end, &mut chaos, &mut injector);
        }
    }

    let det = DdosDetector::new(DdosDetectorConfig::default());
    let mut q = det.query();
    q.features = DdosDetector::features();
    let records = athena.request_features(&q);
    FamilyRun {
        family,
        records,
        malicious,
        attack_start: attack_cfg.start,
        tel,
    }
}

/// Trains every Table-IV algorithm on the base families' combined
/// records (held-out families never reach this set). Returns
/// `(algorithm, model)` pairs in matrix order; a `None` model marks a
/// fit failure and yields all-zero cells rather than aborting the run.
pub fn train_models(base_runs: &[&FamilyRun]) -> Vec<(Algorithm, Option<DetectionModel>)> {
    assert!(
        base_runs.iter().all(|r| !r.family.is_held_out()),
        "held-out families must never appear in a training split"
    );
    let det = DdosDetector::new(DdosDetectorConfig::default());
    let features = DdosDetector::features();
    let preprocessor = det.preprocessor();
    let dm = DetectorManager::new(ComputeCluster::new(2));
    let mut train: Vec<&FeatureRecord> = Vec::new();
    let mut malicious: BTreeSet<FiveTuple> = BTreeSet::new();
    for run in base_runs {
        train.extend(run.records.iter());
        malicious.extend(run.malicious.iter().copied());
    }
    // Deterministic stride subsample keeps training cost bounded without
    // biasing toward any one family's window.
    let cap = 12_000;
    let sampled: Vec<FeatureRecord> = if train.len() > cap {
        let stride = train.len().div_ceil(cap);
        train.iter().step_by(stride).map(|r| (*r).clone()).collect()
    } else {
        train.iter().map(|r| (*r).clone()).collect()
    };
    let truth = |r: &FeatureRecord| r.index.five_tuple.is_some_and(|ft| malicious.contains(&ft));
    table_iv_algorithms()
        .into_iter()
        .map(|algorithm| {
            let model = dm
                .generate_detection_model(&sampled, &features, truth, &preprocessor, &algorithm)
                .ok();
            (algorithm, model)
        })
        .collect()
}

/// One (attack × algorithm) cell of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// The attack family's tag.
    pub family: String,
    /// The algorithm's display name.
    pub algorithm: String,
    /// Whether the family was held out of training.
    pub held_out: bool,
    /// Fraction of malicious entries flagged.
    pub detection_rate: f64,
    /// Fraction of benign entries flagged.
    pub false_alarm_rate: f64,
    /// Virtual seconds from attack start to the first true positive
    /// (absent when the attack was never detected).
    pub time_to_detect_s: Option<f64>,
    /// Entries validated in this cell.
    pub entries: u64,
}

/// Evaluates one cell: validates one family's records against one model.
pub fn evaluate_cell(
    run: &FamilyRun,
    algorithm: &Algorithm,
    model: Option<&DetectionModel>,
) -> Cell {
    let held_out = run.family.is_held_out();
    let Some(model) = model else {
        return Cell {
            family: run.family.tag().to_owned(),
            algorithm: algorithm.name().to_owned(),
            held_out,
            detection_rate: 0.0,
            false_alarm_rate: 0.0,
            time_to_detect_s: None,
            entries: 0,
        };
    };
    let dm = DetectorManager::new(ComputeCluster::new(2));
    let truth = run.truth();
    let summary = dm.validate_features(&run.records, &truth, model);
    // Time-to-detect: the earliest-stamped record that is both truly
    // malicious and flagged. Records arrive in canonical store order, so
    // the minimum is scanned explicitly rather than assumed first.
    let mut first_hit: Option<SimTime> = None;
    for r in &run.records {
        if truth(r) && model.is_malicious(r) == Some(true) {
            first_hit = Some(match first_hit {
                Some(t) if t <= r.meta.timestamp => t,
                _ => r.meta.timestamp,
            });
        }
    }
    let time_to_detect_s = first_hit
        .map(|t| (t.as_micros().saturating_sub(run.attack_start.as_micros())) as f64 / 1_000_000.0);
    Cell {
        family: run.family.tag().to_owned(),
        algorithm: algorithm.name().to_owned(),
        held_out,
        detection_rate: summary.confusion.detection_rate(),
        false_alarm_rate: summary.confusion.false_alarm_rate(),
        time_to_detect_s,
        entries: summary.total_entries(),
    }
}

/// Per-unseen-family generalization summary: how well models trained on
/// base attacks carry over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Generalization {
    /// The held-out family's tag.
    pub family: String,
    /// Mean detection rate across all algorithms.
    pub mean_detection_rate: f64,
    /// Mean false-alarm rate across all algorithms.
    pub mean_false_alarm_rate: f64,
    /// The best-generalizing algorithm and its detection rate.
    pub best_algorithm: String,
    /// Detection rate of `best_algorithm`.
    pub best_detection_rate: f64,
}

/// The complete evaluation matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixReport {
    /// The master seed.
    pub seed: u64,
    /// Whether smoke subsampling shrank the workloads.
    pub smoke: bool,
    /// The chaos scenario composed into every run, if any.
    pub chaos: Option<String>,
    /// Whether the stochastic link model was installed.
    pub link_model: bool,
    /// Every (family × algorithm) cell, families outermost, both in
    /// fixed taxonomy/menu order.
    pub cells: Vec<Cell>,
    /// Held-out generalization summaries, one per unseen family.
    pub generalization: Vec<Generalization>,
}

impl MatrixReport {
    /// The canonical byte-comparable JSON form.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, athena_types::AthenaError> {
        serde_json::to_string(self).map_err(|e| athena_types::AthenaError::Model(e.to_string()))
    }

    /// Writes the JSON artifact (the CI gate archives this).
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn save_json(&self, path: &std::path::Path) -> Result<(), athena_types::AthenaError> {
        let json = self.to_json()?;
        std::fs::write(path, json)
            .map_err(|e| athena_types::AthenaError::Model(format!("write {}: {e}", path.display())))
    }

    /// The cell for `(family_tag, algorithm_name)`, if present.
    pub fn cell(&self, family: &str, algorithm: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.family == family && c.algorithm == algorithm)
    }
}

/// Runs the whole matrix: one deployment per family, one training pass
/// per algorithm over the base families, then every cell.
pub fn run_matrix(cfg: &MatrixConfig) -> MatrixReport {
    let runs: Vec<FamilyRun> = AttackFamily::all()
        .iter()
        .map(|f| run_family(*f, cfg))
        .collect();
    let (base, held): (Vec<&FamilyRun>, Vec<&FamilyRun>) =
        runs.iter().partition(|r| !r.family.is_held_out());
    let models = train_models(&base);
    let mut cells = Vec::with_capacity(runs.len() * models.len());
    for run in &runs {
        for (algorithm, model) in &models {
            cells.push(evaluate_cell(run, algorithm, model.as_ref()));
        }
    }
    let generalization = held
        .iter()
        .map(|run| summarize_generalization(run, &cells))
        .collect();
    MatrixReport {
        seed: cfg.seed,
        smoke: cfg.smoke,
        chaos: cfg.chaos.map(|s| s.name().to_owned()),
        link_model: cfg.link_model.is_some(),
        cells,
        generalization,
    }
}

fn summarize_generalization(run: &FamilyRun, cells: &[Cell]) -> Generalization {
    let tag = run.family.tag();
    let family_cells: Vec<&Cell> = cells.iter().filter(|c| c.family == tag).collect();
    let n = family_cells.len().max(1) as f64;
    let mean_dr = family_cells.iter().map(|c| c.detection_rate).sum::<f64>() / n;
    let mean_far = family_cells.iter().map(|c| c.false_alarm_rate).sum::<f64>() / n;
    let best = family_cells
        .iter()
        .max_by(|a, b| {
            a.detection_rate
                .partial_cmp(&b.detection_rate)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|c| (c.algorithm.clone(), c.detection_rate))
        .unwrap_or_else(|| (String::new(), 0.0));
    Generalization {
        family: tag.to_owned(),
        mean_detection_rate: mean_dr,
        mean_false_alarm_rate: mean_far,
        best_algorithm: best.0,
        best_detection_rate: best.1,
    }
}

/// Recorded known-attack floors: `(family_tag, algorithm_name, min
/// detection rate, max false-alarm rate)`. These are the measured
/// seed-7 full-matrix numbers with a safety margin — the gate catches
/// regressions, not absolute quality. Only base-family cells with a
/// meaningful operating point are gated; held-out cells are reported,
/// never gated.
pub fn baselines() -> &'static [(&'static str, &'static str, f64, f64)] {
    BASELINES
}

/// The master seed the baselines were recorded under. Reports produced
/// with a different seed are informational and skip the gate.
pub const BASELINE_SEED: u64 = 7;

// SVM is excluded everywhere (its operating point swings with workload
// size), Threshold is excluded everywhere (0% DR after min-max
// normalization, by construction), and Gaussian Mixture is excluded on
// crossfire_lfa (it inverts there). flash_crowd is benign, so only its
// false-alarm ceiling is gated.
static BASELINES: &[(&str, &str, f64, f64)] = &[
    ("ddos_flood", "Gradient Boosted Tree", 0.85, 0.05),
    ("ddos_flood", "Decision Tree", 0.95, 0.02),
    ("ddos_flood", "Logistic Regression", 0.90, 0.05),
    ("ddos_flood", "Naive Bayes", 0.95, 0.10),
    ("ddos_flood", "Random Forest", 0.95, 0.02),
    ("ddos_flood", "Gaussian Mixture", 0.95, 0.15),
    ("ddos_flood", "K-Means", 0.90, 0.10),
    ("ddos_flood", "Lasso", 0.90, 0.05),
    ("ddos_flood", "Linear", 0.90, 0.05),
    ("ddos_flood", "Ridge", 0.90, 0.05),
    ("port_scan", "Gradient Boosted Tree", 0.95, 0.02),
    ("port_scan", "Decision Tree", 0.95, 0.02),
    ("port_scan", "Logistic Regression", 0.95, 0.03),
    ("port_scan", "Naive Bayes", 0.90, 0.05),
    ("port_scan", "Random Forest", 0.95, 0.02),
    ("port_scan", "Gaussian Mixture", 0.95, 0.15),
    ("port_scan", "K-Means", 0.95, 0.03),
    ("port_scan", "Lasso", 0.95, 0.03),
    ("port_scan", "Linear", 0.95, 0.03),
    ("port_scan", "Ridge", 0.95, 0.03),
    ("crossfire_lfa", "Gradient Boosted Tree", 0.95, 0.02),
    ("crossfire_lfa", "Decision Tree", 0.95, 0.02),
    ("crossfire_lfa", "Logistic Regression", 0.70, 0.02),
    ("crossfire_lfa", "Naive Bayes", 0.95, 0.03),
    ("crossfire_lfa", "Random Forest", 0.95, 0.02),
    ("crossfire_lfa", "K-Means", 0.95, 0.03),
    ("crossfire_lfa", "Lasso", 0.95, 0.03),
    ("crossfire_lfa", "Linear", 0.95, 0.03),
    ("crossfire_lfa", "Ridge", 0.95, 0.03),
    ("flash_crowd", "Gradient Boosted Tree", 0.0, 0.05),
    ("flash_crowd", "Decision Tree", 0.0, 0.02),
    ("flash_crowd", "Logistic Regression", 0.0, 0.05),
    ("flash_crowd", "Naive Bayes", 0.0, 0.25),
    ("flash_crowd", "Random Forest", 0.0, 0.02),
    ("flash_crowd", "SVM", 0.0, 0.10),
    ("flash_crowd", "Gaussian Mixture", 0.0, 0.15),
    ("flash_crowd", "K-Means", 0.0, 0.03),
    ("flash_crowd", "Lasso", 0.0, 0.05),
    ("flash_crowd", "Linear", 0.0, 0.05),
    ("flash_crowd", "Ridge", 0.0, 0.05),
];

/// Baseline violations in `report` (empty when the gate passes). Only
/// non-held-out cells are checked, and only for reports produced with
/// [`BASELINE_SEED`] — other seeds are exploratory.
pub fn regressions(report: &MatrixReport) -> Vec<String> {
    let mut out = Vec::new();
    if report.seed != BASELINE_SEED {
        return out;
    }
    for &(family, algorithm, min_dr, max_far) in baselines() {
        let Some(cell) = report.cell(family, algorithm) else {
            out.push(format!("{family} x {algorithm}: cell missing"));
            continue;
        };
        if cell.held_out {
            continue;
        }
        if cell.detection_rate < min_dr {
            out.push(format!(
                "{family} x {algorithm}: detection rate {:.4} < baseline {min_dr:.4}",
                cell.detection_rate
            ));
        }
        if cell.false_alarm_rate > max_far {
            out.push(format!(
                "{family} x {algorithm}: false-alarm rate {:.4} > baseline {max_far:.4}",
                cell.false_alarm_rate
            ));
        }
    }
    out
}
