//! Online-vs-batch evaluation over the Table-IV attack families.
//!
//! Pairs each `athena-stream` online learner with its batch Table-IV
//! counterpart and measures both on the *same* per-family deployment
//! records:
//!
//! - the **batch** arm trains once on the family's full record set and
//!   is validated against it (the Table-IV protocol, via
//!   [`crate::matrix::evaluate_cell`]);
//! - the **online** arm is evaluated *prequentially* (test-then-train):
//!   every record is first scored by the model as fitted on the records
//!   before it, then consumed by `partial_fit` — the standard streaming
//!   protocol, strictly harder than batch because early records are
//!   scored by a barely-fitted model.
//!
//! The whole report is a pure function of [`MatrixConfig`]:
//! byte-identical across reruns and `ATHENA_THREADS` widths. The
//! `table_stream` binary prints the comparison and writes the
//! `BENCH_stream.json` artifact the CI gate archives.

use crate::matrix::{evaluate_cell, run_family, FamilyRun, MatrixConfig};
use athena_apps::{DdosDetector, DdosDetectorConfig};
use athena_compute::ComputeCluster;
use athena_core::DetectorManager;
use athena_ml::algorithms::kmeans::KMeansParams;
use athena_ml::{Algorithm, LabeledPoint};
use athena_stream::OnlineSpec;
use athena_types::SimTime;
use athena_workloads::AttackFamily;
use serde::{Deserialize, Serialize};

/// The online learners and their batch Table-IV counterparts, in fixed
/// report order.
pub fn pairings() -> Vec<(OnlineSpec, Algorithm)> {
    vec![
        (OnlineSpec::NaiveBayes, Algorithm::NaiveBayes),
        (
            OnlineSpec::SequentialKMeans { k: 8 },
            Algorithm::KMeans(KMeansParams {
                k: 8,
                ..KMeansParams::default()
            }),
        ),
        (
            OnlineSpec::Quantile {
                feature: 4,
                q: 0.99,
            },
            Algorithm::threshold(4, 350.0),
        ),
    ]
}

/// One measured arm (online or batch) of a comparison cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arm {
    /// The algorithm's display tag.
    pub algorithm: String,
    /// Fraction of malicious entries flagged.
    pub detection_rate: f64,
    /// Fraction of benign entries flagged.
    pub false_alarm_rate: f64,
    /// Virtual seconds from attack start to the first true positive.
    pub time_to_detect_s: Option<f64>,
    /// Entries scored in this arm.
    pub entries: u64,
}

/// One (family × pairing) comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCell {
    /// The attack family's tag.
    pub family: String,
    /// Whether the family is held out of the Table-IV training split.
    pub held_out: bool,
    /// The prequential online arm.
    pub online: Arm,
    /// The batch Table-IV arm.
    pub batch: Arm,
}

/// The complete online-vs-batch report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// The master seed.
    pub seed: u64,
    /// Whether smoke subsampling shrank the workloads.
    pub smoke: bool,
    /// Every (family × pairing) cell, families outermost.
    pub cells: Vec<StreamCell>,
}

impl StreamReport {
    /// The canonical byte-comparable JSON form.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, athena_types::AthenaError> {
        serde_json::to_string(self).map_err(|e| athena_types::AthenaError::Model(e.to_string()))
    }

    /// Writes the JSON artifact (the CI gate archives this).
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn save_json(&self, path: &std::path::Path) -> Result<(), athena_types::AthenaError> {
        let json = self.to_json()?;
        std::fs::write(path, json)
            .map_err(|e| athena_types::AthenaError::Model(format!("write {}: {e}", path.display())))
    }
}

fn zero_arm(algorithm: &str) -> Arm {
    Arm {
        algorithm: algorithm.to_owned(),
        detection_rate: 0.0,
        false_alarm_rate: 0.0,
        time_to_detect_s: None,
        entries: 0,
    }
}

/// Prequential (test-then-train) evaluation of one online learner over
/// one family's records, in canonical store order: each record is
/// scored by the model fitted on everything before it, then learned.
pub fn prequential(run: &FamilyRun, spec: &OnlineSpec) -> Arm {
    let det = DdosDetector::new(DdosDetectorConfig::default());
    let features = DdosDetector::features();
    let truth = run.truth();
    let labeled: Vec<(SimTime, LabeledPoint)> = run
        .records
        .iter()
        .filter_map(|r| {
            r.vector(&features).map(|v| {
                let label = if truth(r) { 1.0 } else { 0.0 };
                (r.meta.timestamp, LabeledPoint::new(v, label))
            })
        })
        .collect();
    let points: Vec<LabeledPoint> = labeled.iter().map(|(_, p)| p.clone()).collect();
    let Ok(fitted) = det.preprocessor().fit(&points) else {
        return zero_arm(spec.tag());
    };
    let prepared = fitted.apply(&points);
    assert_eq!(
        prepared.len(),
        labeled.len(),
        "the DDoS preprocessor is 1:1; sampling steps would break pairing"
    );
    let mut model = spec.build();
    let (mut tp, mut fp, mut tn, mut missed) = (0u64, 0u64, 0u64, 0u64);
    let mut first_hit: Option<SimTime> = None;
    for ((t, _), p) in labeled.iter().zip(prepared.iter()) {
        let malicious = p.is_malicious();
        let flagged = model.predict(&p.features) >= 0.5;
        match (malicious, flagged) {
            (true, true) => {
                tp += 1;
                first_hit = Some(match first_hit {
                    Some(prev) if prev <= *t => prev,
                    _ => *t,
                });
            }
            (true, false) => missed += 1,
            (false, true) => fp += 1,
            (false, false) => tn += 1,
        }
        model.partial_fit(p);
    }
    let rate = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    Arm {
        algorithm: spec.tag().to_owned(),
        detection_rate: rate(tp, tp + missed),
        false_alarm_rate: rate(fp, fp + tn),
        time_to_detect_s: first_hit.map(|t| {
            (t.as_micros().saturating_sub(run.attack_start.as_micros())) as f64 / 1_000_000.0
        }),
        entries: tp + fp + tn + missed,
    }
}

/// The batch counterpart: the Table-IV protocol on the same records
/// (train on the family's full record set, validate against it).
pub fn batch_arm(run: &FamilyRun, algorithm: &Algorithm) -> Arm {
    let det = DdosDetector::new(DdosDetectorConfig::default());
    let features = DdosDetector::features();
    let dm = DetectorManager::new(ComputeCluster::new(2));
    let model = dm
        .generate_detection_model(
            &run.records,
            &features,
            run.truth(),
            &det.preprocessor(),
            algorithm,
        )
        .ok();
    let cell = evaluate_cell(run, algorithm, model.as_ref());
    Arm {
        algorithm: cell.algorithm,
        detection_rate: cell.detection_rate,
        false_alarm_rate: cell.false_alarm_rate,
        time_to_detect_s: cell.time_to_detect_s,
        entries: cell.entries,
    }
}

/// Runs the whole comparison: one deployment per family, every pairing
/// measured online (prequentially) and batch on its records.
pub fn run_stream(cfg: &MatrixConfig) -> StreamReport {
    let runs: Vec<FamilyRun> = AttackFamily::all()
        .iter()
        .map(|f| run_family(*f, cfg))
        .collect();
    let mut cells = Vec::new();
    for run in &runs {
        for (spec, algorithm) in pairings() {
            cells.push(StreamCell {
                family: run.family.tag().to_owned(),
                held_out: run.family.is_held_out(),
                online: prequential(run, &spec),
                batch: batch_arm(run, &algorithm),
            });
        }
    }
    StreamReport {
        seed: cfg.seed,
        smoke: cfg.smoke,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> MatrixConfig {
        MatrixConfig {
            seed: 7,
            smoke: true,
            ..MatrixConfig::default()
        }
    }

    #[test]
    fn online_naive_bayes_detects_the_flood_prequentially() {
        let run = run_family(AttackFamily::Ddos, &smoke_cfg());
        let arm = prequential(&run, &OnlineSpec::NaiveBayes);
        assert!(arm.entries > 0);
        assert!(
            arm.detection_rate > 0.9,
            "prequential NB detection rate {}",
            arm.detection_rate
        );
        assert!(
            arm.false_alarm_rate < 0.15,
            "prequential NB false-alarm rate {}",
            arm.false_alarm_rate
        );
        assert!(arm.time_to_detect_s.is_some());
    }

    #[test]
    fn prequential_is_deterministic() {
        let run = run_family(AttackFamily::Ddos, &smoke_cfg());
        let a = prequential(&run, &OnlineSpec::NaiveBayes);
        let b = prequential(&run, &OnlineSpec::NaiveBayes);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = StreamReport {
            seed: 7,
            smoke: true,
            cells: vec![StreamCell {
                family: "ddos_flood".to_owned(),
                held_out: false,
                online: zero_arm("online-naive-bayes"),
                batch: zero_arm("Naive Bayes"),
            }],
        };
        let json = report.to_json().unwrap();
        let back: StreamReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
