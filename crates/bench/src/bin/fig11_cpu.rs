//! Figure 11 — average CPU usage while handling flow events, with and
//! without Athena.
//!
//! The paper drives dummy flows through six physical switches and plots
//! controller CPU utilization against the flow-event rate: bare ONOS
//! stays near 31 % while ONOS+Athena climbs with the number of flow
//! entries and saturates around 140 K flows/s (Athena maintains internal
//! state per flow to generate stateful features).
//!
//! Reproduction: we measure the *actual* CPU cost of handling a
//! statistics cycle carrying N flow entries through the controller, with
//! and without the Athena interceptor, and convert cost-per-flow-event
//! into utilization at each offered rate: `CPU% = rate × cost_per_event`,
//! capped at 100 %.

use athena_bench::{compare_row, env_scale, header};
use athena_controller::ControllerCluster;
use athena_core::{Athena, AthenaConfig};
use athena_dataplane::{ControllerLink, Topology};
use athena_openflow::{FlowStatsEntry, MatchFields, OfMessage, StatsReply};
use athena_types::{Dpid, FiveTuple, Ipv4Addr, SimDuration, SimTime, Xid};
use std::time::Instant;

/// Builds a flow-stats reply carrying `n` distinct flow entries.
fn stats_reply(n: usize, seed: u32) -> OfMessage {
    let entries: Vec<FlowStatsEntry> = (0..n)
        .map(|i| {
            let ft = FiveTuple::tcp(
                Ipv4Addr::from_raw(0x0a00_0000 + seed + i as u32),
                (1024 + i % 50_000) as u16,
                Ipv4Addr::from_raw(0x0aff_0000 + (i as u32 % 251)),
                80,
            );
            FlowStatsEntry {
                table_id: 0,
                match_fields: MatchFields::exact_five_tuple(ft),
                priority: 100,
                duration: SimDuration::from_secs(5),
                idle_timeout: SimDuration::from_secs(30),
                hard_timeout: SimDuration::ZERO,
                cookie: 1 << 48,
                packet_count: 100 + i as u64,
                byte_count: 10_000 + i as u64,
                actions: vec![],
            }
        })
        .collect();
    OfMessage::StatsReply {
        xid: Xid::athena_marked(seed),
        body: StatsReply::Flow(entries),
    }
}

/// Measures the cost (seconds) of handling one flow-stats event through
/// the given cluster, amortized over `reps` repetitions.
fn cost_per_flow_event(
    cluster: &mut ControllerCluster,
    flows_per_reply: usize,
    reps: usize,
) -> f64 {
    // Warm-up.
    let _ = cluster.on_message(Dpid::new(1), stats_reply(flows_per_reply, 0), SimTime::ZERO);
    let start = Instant::now();
    for i in 0..reps {
        let msg = stats_reply(flows_per_reply, (i as u32 + 1) * 100_000);
        let _ = cluster.on_message(
            Dpid::new((i % 6 + 1) as u64),
            msg,
            SimTime::from_secs(i as u64),
        );
    }
    start.elapsed().as_secs_f64() / (reps * flows_per_reply) as f64
}

fn main() {
    println!("{}", header("Figure 11 — CPU usage vs flow-event rate"));
    let flows_per_reply = env_scale("ATHENA_FIG11_FLOWS", 2_000);
    let reps = env_scale("ATHENA_FIG11_REPS", 10);
    let topo = Topology::enterprise();

    // Baseline controller (stats replies only update counters).
    let mut bare = ControllerCluster::new(&topo);
    let bare_cost = cost_per_flow_event(&mut bare, flows_per_reply, reps);

    // Athena-attached controller: every flow entry becomes features,
    // variation state, and store publications.
    let athena = Athena::new(AthenaConfig::default());
    let mut with_athena = ControllerCluster::new(&topo);
    athena.attach(&mut with_athena);
    let athena_cost = cost_per_flow_event(&mut with_athena, flows_per_reply, reps);

    println!(
        "measured cost per flow event: bare {:.2} us, with Athena {:.2} us\n",
        bare_cost * 1e6,
        athena_cost * 1e6
    );

    // The curve: utilization at each offered flow-event rate. The paper's
    // x-axis tops out around 160K flows/s.
    println!(
        "{:>14} {:>14} {:>14}",
        "flows/s", "ONOS CPU%", "ONOS+Athena CPU%"
    );
    let mut saturation_rate = None;
    let mut baseline_at_saturation = 0.0;
    for rate in (20_000..=200_000).step_by(20_000) {
        let bare_cpu = (rate as f64 * bare_cost * 100.0).min(100.0);
        let athena_cpu = (rate as f64 * athena_cost * 100.0).min(100.0);
        println!("{rate:>14} {bare_cpu:>13.1}% {athena_cpu:>13.1}%");
        if athena_cpu >= 100.0 && saturation_rate.is_none() {
            saturation_rate = Some(rate);
            baseline_at_saturation = bare_cpu;
        }
    }
    let saturation = saturation_rate.unwrap_or(200_000);

    println!();
    println!("{}", header("paper vs measured"));
    println!(
        "{}",
        compare_row(
            "Athena saturation point",
            "~140K flows/s",
            &format!("~{}K flows/s", saturation / 1000),
        )
    );
    println!(
        "{}",
        compare_row(
            "Baseline CPU at Athena's saturation",
            "~31%",
            &format!("{baseline_at_saturation:.0}%"),
        )
    );
    println!(
        "{}",
        compare_row(
            "Cost ratio (Athena / bare)",
            "n/a (not reported)",
            &format!("{:.1}x", athena_cost / bare_cost),
        )
    );

    assert!(
        athena_cost > 1.5 * bare_cost,
        "Athena must cost visibly more per flow event"
    );
    assert!(
        saturation <= 200_000,
        "Athena should saturate within the swept range"
    );
    println!("\nshape verified: Athena's per-flow state pushes CPU to saturation while the baseline stays low");
}
