//! Sharded-engine scalability on fat-tree topologies up to 100k hosts:
//! packet-in throughput of the sharded, batched, wheel-expiry engine at
//! 1/2/4/8 workers against the unsharded per-tick-scan engine, plus a
//! byte-identity check that every width produces the same simulation.
//!
//! Following the Figure-10 virtual-time methodology (the CI box may have
//! one core), the engine runs once per width with chunk accounting on;
//! the run's completion time at width *W* is modeled as
//! `wall − Σ chunk costs + Σ LPT-makespan(W)` — the sequential phases at
//! face value, the pool phases placed on *W* workers longest-first.
//! Packet-in throughput is `packet-ins / modeled time`. The baseline is
//! the pre-sharding engine (`Network`, `ExpiryMode::Scan`) timed on the
//! same workload. Results land in `BENCH_scale.json` (override with
//! `ATHENA_SCALE_JSON`).
//!
//! Set `ATHENA_BENCH_SMOKE=1` for the <60 s CI workload.

use athena_bench::{env_scale, header};
use athena_dataplane::{
    workload, ExpiryMode, LearningControllerStub, Network, NetworkConfig, ShardPlan,
    ShardedNetwork, Topology,
};
use athena_parallel::{set_accounting, take_jobs, JobStats};
use athena_types::{SimDuration, SimTime};
use std::time::Instant;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];
const RUN_SECS: u64 = 10;

fn smoke() -> bool {
    athena_types::env_flag("ATHENA_BENCH_SMOKE")
}

/// One topology scale: fat-tree parameters and the injected flow count.
struct Scale {
    k: usize,
    hosts_per_edge: usize,
    flows: usize,
}

/// One scale's measured row.
struct Row {
    hosts: usize,
    switches: usize,
    shards: usize,
    flows: usize,
    packet_ins: u64,
    baseline_pps: f64,
    baseline_wall_ms: f64,
    sharded_pps: Vec<f64>,
    speedup: Vec<f64>,
    wall_ms: Vec<f64>,
}

fn workload_for(topo: &Topology, flows: usize) -> Vec<athena_dataplane::FlowSpec> {
    workload::benign_mix_on(topo, flows, SimDuration::from_secs(8), 20170610)
}

/// Everything a width could perturb, flattened to a comparable string.
fn digest(net: &ShardedNetwork, ctrl: &LearningControllerStub) -> String {
    let mut tables = String::new();
    // Sample a deterministic spread of switches (full tables at 100k
    // hosts would make the digest itself the bottleneck).
    for (i, s) in net.topology().switches.iter().enumerate() {
        if i % 7 == 0 {
            if let Some(sw) = net.switch(s.dpid) {
                tables.push_str(&format!("{}:{};", s.dpid.raw(), sw.flow_count()));
            }
        }
    }
    format!(
        "{:?}|{}|{}|{tables}",
        net.counters(),
        ctrl.installs(),
        net.active_flows().len(),
    )
}

fn run_scale(scale: &Scale) -> Row {
    let topo = Topology::fat_tree_with_hosts(scale.k, scale.hosts_per_edge);
    let flows = workload_for(&topo, scale.flows);
    let plan = ShardPlan::auto(&topo);
    let shards = plan.n_shards();

    // Baseline: the unsharded engine with per-tick full-table scans —
    // the pre-sharding engine, wall-timed (construction excluded for
    // both engines; the timers cover inject + run only).
    let mut base = Network::with_config(
        topo.clone(),
        NetworkConfig {
            expiry: ExpiryMode::Scan,
            ..NetworkConfig::default()
        },
    );
    let mut base_ctrl = LearningControllerStub::new(&base);
    let t0 = Instant::now();
    base.inject_flows(flows.clone());
    base.run_until(SimTime::from_secs(RUN_SECS), &mut base_ctrl);
    let base_wall = t0.elapsed();
    let base_pps = base.counters().packet_ins as f64 / base_wall.as_secs_f64();

    let mut row = Row {
        hosts: topo.hosts.len(),
        switches: topo.switches.len(),
        shards,
        flows: scale.flows,
        packet_ins: 0,
        baseline_pps: base_pps,
        baseline_wall_ms: base_wall.as_secs_f64() * 1e3,
        sharded_pps: Vec::new(),
        speedup: Vec::new(),
        wall_ms: Vec::new(),
    };

    // One measured run at width 1: on a single-core host that is the
    // only uncontended timing available, and with per-item chunk costs
    // it is all the LPT model needs to place any width. The wider runs
    // below are pure byte-identity gates.
    let mut reference: Option<String> = None;
    let mut wall1: u64 = 0;
    let mut jobs1: Vec<JobStats> = Vec::new();
    for &w in &WIDTHS {
        std::env::set_var("ATHENA_THREADS", w.to_string());
        if w == 1 {
            set_accounting(true);
        }
        let mut net =
            ShardedNetwork::with_plan(topo.clone(), NetworkConfig::default(), plan.clone());
        let mut ctrl = LearningControllerStub::for_topology(topo.clone());
        let t0 = Instant::now();
        net.inject_flows(flows.clone());
        net.run_until(SimTime::from_secs(RUN_SECS), &mut ctrl);
        let wall = t0.elapsed().as_nanos() as u64;
        if w == 1 {
            wall1 = wall;
            jobs1 = take_jobs();
            set_accounting(false);
            row.packet_ins = net.counters().packet_ins;
        }
        row.wall_ms.push(wall as f64 / 1e6);

        // Byte-identity gate: every width must produce the same run.
        let d = digest(&net, &ctrl);
        match &reference {
            None => reference = Some(d),
            Some(r) => assert_eq!(
                *r, d,
                "sharded run at {w} workers diverges from the width-1 run"
            ),
        }
    }
    std::env::remove_var("ATHENA_THREADS");

    let serial: u64 = jobs1.iter().map(JobStats::serial_ns).sum();
    let seq = wall1 - serial.min(wall1);
    if std::env::var("ATHENA_SCALE_DEBUG").is_ok() {
        let mut by_cost: Vec<&JobStats> = jobs1.iter().collect();
        by_cost.sort_by_key(|j| std::cmp::Reverse(j.serial_ns()));
        for j in by_cost.iter().take(8) {
            let (argmax, max_item) = j
                .chunk_costs_ns
                .iter()
                .copied()
                .enumerate()
                .max_by_key(|&(_, c)| c)
                .unwrap_or((0, 0));
            eprintln!(
                "  job items={:>4} serial={:>8.1}ms max_item={:>8.1}ms ({:.0}%) at idx {}",
                j.items,
                j.serial_ns() as f64 / 1e6,
                max_item as f64 / 1e6,
                100.0 * max_item as f64 / j.serial_ns().max(1) as f64,
                argmax
            );
        }
    }
    for &w in &WIDTHS {
        let modeled_pool: u64 = jobs1.iter().map(|j| j.makespan_ns(w)).sum();
        let modeled = seq + modeled_pool;
        if std::env::var("ATHENA_SCALE_DEBUG").is_ok() {
            eprintln!(
                "debug w={w}: wall1={:.0}ms serial={:.0}ms ({:.0}%) makespan={:.0}ms modeled={:.0}ms jobs={}",
                wall1 as f64 / 1e6,
                serial as f64 / 1e6,
                100.0 * serial as f64 / wall1 as f64,
                modeled_pool as f64 / 1e6,
                modeled as f64 / 1e6,
                jobs1.len()
            );
        }
        let pps = row.packet_ins as f64 / (modeled as f64 / 1e9);
        row.sharded_pps.push(pps);
        row.speedup.push(pps / base_pps.max(1e-9));
    }
    row
}

fn json_row(r: &Row) -> String {
    let nums = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "    {{\"hosts\": {}, \"switches\": {}, \"shards\": {}, \"flows\": {}, \"packet_ins\": {}, \
         \"workers\": [1, 2, 4, 8], \"baseline_pps\": {:.1}, \"baseline_wall_ms\": {:.1}, \
         \"sharded_pps\": [{}], \"speedup_vs_unsharded\": [{}], \"wall_ms\": [{}]}}",
        r.hosts,
        r.switches,
        r.shards,
        r.flows,
        r.packet_ins,
        r.baseline_pps,
        r.baseline_wall_ms,
        nums(&r.sharded_pps),
        nums(&r.speedup),
        nums(&r.wall_ms)
    )
}

fn main() {
    println!(
        "{}",
        header("athena-scale — sharded engine throughput vs the unsharded engine")
    );
    println!(
        "methodology: one run per width with chunk accounting; modeled time =\n\
         wall − serial + LPT-makespan(W). Baseline: unsharded Network, full-scan\n\
         expiry, wall-timed. Byte-identity asserted across widths per scale.\n"
    );

    let scales: Vec<Scale> = if smoke() {
        vec![
            Scale {
                k: 4,
                hosts_per_edge: 50,
                flows: env_scale("ATHENA_SCALE_FLOWS", 150),
            },
            Scale {
                k: 8,
                hosts_per_edge: 32,
                flows: env_scale("ATHENA_SCALE_FLOWS", 250),
            },
            Scale {
                k: 8,
                hosts_per_edge: 100,
                flows: env_scale("ATHENA_SCALE_FLOWS", 400),
            },
        ]
    } else {
        vec![
            // 10_016, 50_048, and 100_096 hosts.
            Scale {
                k: 8,
                hosts_per_edge: 313,
                flows: env_scale("ATHENA_SCALE_FLOWS", 3_000),
            },
            Scale {
                k: 16,
                hosts_per_edge: 391,
                flows: env_scale("ATHENA_SCALE_FLOWS", 6_000),
            },
            Scale {
                k: 16,
                hosts_per_edge: 782,
                flows: env_scale("ATHENA_SCALE_FLOWS", 10_000),
            },
        ]
    };

    println!(
        "{:>8} {:>9} {:>7} {:>7} {:>11} {:>13} {:>8}",
        "hosts", "switches", "shards", "workers", "pkt-in/s", "baseline/s", "speedup"
    );
    // ATHENA_SCALE_ONLY=i runs a single scale row (development aid).
    let only: Option<usize> = std::env::var("ATHENA_SCALE_ONLY")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut rows = Vec::new();
    for (i, scale) in scales.iter().enumerate() {
        if only.is_some_and(|o| o != i) {
            continue;
        }
        let row = run_scale(scale);
        for (k, &w) in WIDTHS.iter().enumerate() {
            println!(
                "{:>8} {:>9} {:>7} {:>7} {:>11.0} {:>13.0} {:>7.2}x",
                if k == 0 {
                    row.hosts.to_string()
                } else {
                    String::new()
                },
                if k == 0 {
                    row.switches.to_string()
                } else {
                    String::new()
                },
                if k == 0 {
                    row.shards.to_string()
                } else {
                    String::new()
                },
                w,
                row.sharded_pps[k],
                row.baseline_pps,
                row.speedup[k]
            );
        }
        rows.push(row);
    }

    let json_path =
        std::env::var("ATHENA_SCALE_JSON").unwrap_or_else(|_| "BENCH_scale.json".to_owned());
    let body = rows.iter().map(json_row).collect::<Vec<_>>().join(",\n");
    let json = format!("{{\n  \"rows\": [\n{body}\n  ]\n}}\n");
    std::fs::write(&json_path, json).expect("write BENCH_scale.json");
    println!("\nwrote {json_path}");

    // Acceptance: ≥ 5× packet-in throughput over the unsharded engine at
    // 8 workers on the largest topology (byte-identity asserted above).
    // The smoke topologies are too small to amortize pool dispatch, so
    // the throughput bar applies to the full run only — byte-identity
    // is asserted in both modes.
    let last = rows.last().expect("at least one scale");
    let speedup_at_8 = last.speedup[3];
    if smoke() {
        println!(
            "\nsmoke: byte-identity verified at all widths ({} hosts); \
             throughput bar applies to the full run",
            last.hosts
        );
        return;
    }
    assert!(
        speedup_at_8 >= 5.0,
        "sharded engine at 8 workers below 5x over unsharded at {} hosts: {speedup_at_8:.2}",
        last.hosts
    );
    println!(
        "\nverified: {:.2}x packet-in throughput at 8 workers over the unsharded engine \
         ({} hosts), byte-identical at all widths",
        speedup_at_8, last.hosts
    );
}
