//! Fault-tolerance table — the chaos matrix as an evaluation artifact.
//!
//! Runs every canonical fault [`Scenario`] over the enterprise topology
//! with a fixed DDoS-era workload, a seeded fault plan injected
//! mid-run, and reports per-scenario what the fault machinery did
//! (events injected, messages dropped/delayed/duplicated, mastership
//! elections) next to what the network still achieved (delivered
//! bytes, features stored). Every row is deterministic under the seed;
//! the bin re-runs one scenario and asserts bit-identical counters.
//!
//! Knobs: `ATHENA_FAULT_FLOWS` (benign flow count, default 120),
//! `ATHENA_FAULT_SEED` (plan + chaos seed, default 7).

use athena_bench::{env_scale, header};
use athena_controller::ControllerCluster;
use athena_core::{Athena, AthenaConfig, UiManager};
use athena_dataplane::{workload, Network, Topology};
use athena_faults::{run_with_faults, ChaosChannel, FaultInjector, Scenario};
use athena_types::{SimDuration, SimTime};

const INJECT_AT: SimTime = SimTime::from_secs(10);
const RECOVER_AT: SimTime = SimTime::from_secs(20);
const END: SimTime = SimTime::from_secs(30);

struct Outcome {
    injected: u64,
    dropped: u64,
    delayed: u64,
    duplicated: u64,
    elections: u64,
    delivered_bytes: u64,
    features: usize,
}

fn run(scenario: Scenario, seed: u64, n_flows: usize) -> Outcome {
    let topo = Topology::enterprise();
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);
    let mut chaos = ChaosChannel::new(cluster, seed);
    net.inject_flows(workload::benign_mix_on(
        &topo,
        n_flows,
        SimDuration::from_secs(25),
        seed.wrapping_add(1),
    ));
    let store_nodes = athena.runtime().store.node_count();
    let plan = scenario.plan(&topo, store_nodes, seed, INJECT_AT, RECOVER_AT);
    let mut injector = FaultInjector::new(plan).with_store(athena.runtime().store.clone());
    run_with_faults(&mut net, END, &mut chaos, &mut injector);
    assert!(injector.finished(), "{}: plan not drained", scenario.name());
    let msg = chaos.counters();
    Outcome {
        injected: injector.counters().injected,
        dropped: msg.dropped,
        delayed: msg.delayed,
        duplicated: msg.duplicated,
        elections: chaos.inner().failover_counters().elections,
        delivered_bytes: net.delivered_bytes(),
        features: athena.stored_feature_count(),
    }
}

fn main() {
    println!("{}", header("Fault tolerance — chaos matrix summary"));
    let seed = env_scale("ATHENA_FAULT_SEED", 7) as u64;
    let n_flows = env_scale("ATHENA_FAULT_FLOWS", 120);

    let mut rows = Vec::new();
    for &scenario in Scenario::all() {
        let o = run(scenario, seed, n_flows);
        assert!(
            o.delivered_bytes > 0,
            "{}: network delivered nothing under fault",
            scenario.name()
        );
        assert!(
            o.features > 0,
            "{}: no features stored under fault",
            scenario.name()
        );
        rows.push(vec![
            scenario.name().to_owned(),
            o.injected.to_string(),
            o.dropped.to_string(),
            o.delayed.to_string(),
            o.duplicated.to_string(),
            o.elections.to_string(),
            o.delivered_bytes.to_string(),
            o.features.to_string(),
        ]);
    }
    let ui = UiManager::new();
    println!(
        "{}",
        ui.render_table(
            &[
                "Scenario",
                "Injected",
                "Dropped",
                "Delayed",
                "Dup'd",
                "Elections",
                "Bytes",
                "Features",
            ],
            &rows
        )
    );

    // Determinism spot-check: the same seed reproduces the same row.
    let a = run(Scenario::MessageDrop, seed, n_flows);
    let b = run(Scenario::MessageDrop, seed, n_flows);
    assert_eq!(
        (a.injected, a.dropped, a.delivered_bytes, a.features),
        (b.injected, b.dropped, b.delivered_bytes, b.features),
        "identically-seeded chaos runs diverged"
    );
    println!(
        "all {} scenarios survived; determinism spot-check passed (seed {seed})",
        rows.len()
    );
}
