//! Ablation: the compute scheduler's cost model vs the Figure 10 curve.
//!
//! DESIGN.md calls out the virtual-time scheduler's calibrated serial
//! fraction (0.15, which lands a 6-node job at the paper's ~27.6 % of the
//! 1-node time). This ablation sweeps the serial fraction and the
//! per-task overhead to show how each shapes the speedup curve — and that
//! the *qualitative* result (linear decrease) survives every setting.

use athena_bench::{env_scale, header};
use athena_compute::{ComputeCluster, SchedulerConfig};
use athena_ml::LabeledPoint;
use athena_telemetry::Telemetry;
use athena_types::SimDuration;

fn speedup_curve(config: SchedulerConfig, points: &[LabeledPoint], tel: &Telemetry) -> Vec<f64> {
    let mut times = Vec::new();
    for nodes in 1..=6 {
        let cluster = ComputeCluster::with_config(nodes, config);
        cluster.bind_telemetry(tel);
        let ds = cluster.parallelize(points.to_vec(), 24);
        // The Figure 10 workload shape: a full pass with model-evaluation
        // sized per-point work (so task time, not fixed overhead, is the
        // quantity the cost model divides across nodes).
        let _ = ds.fold(
            0.0f64,
            |a, p| {
                let mut acc = a;
                for k in 0..64 {
                    acc += (p.features[0] + f64::from(k)).sqrt();
                }
                acc
            },
            |a, b| a + b,
        );
        times.push(cluster.total_virtual_time().as_secs_f64());
    }
    let t1 = times[0];
    times.into_iter().map(|t| t / t1).collect()
}

fn main() {
    println!(
        "{}",
        header("Ablation — scheduler cost model vs the Figure 10 curve")
    );
    let entries = env_scale("ATHENA_ABLATION_ENTRIES", 300_000);
    let tel = Telemetry::new();
    let points: Vec<LabeledPoint> = (0..entries)
        .map(|i| LabeledPoint::new(vec![(i % 97) as f64, (i % 13) as f64], 0.0))
        .collect();

    println!(
        "{:<44} {:>8} {:>8} {:>8} {:>8}",
        "configuration", "2 nodes", "4 nodes", "6 nodes", "paper"
    );
    let mut six_node: Vec<(String, f64)> = Vec::new();
    for serial in [0.0f64, 0.08, 0.15, 0.30] {
        let cfg = SchedulerConfig {
            serial_fraction: serial,
            ..SchedulerConfig::default()
        };
        let curve = speedup_curve(cfg, &points, &tel);
        println!(
            "serial fraction {serial:<27} {:>7.1}% {:>7.1}% {:>7.1}% {:>8}",
            curve[1] * 100.0,
            curve[3] * 100.0,
            curve[5] * 100.0,
            if (serial - 0.15).abs() < 1e-9 {
                "27.6%"
            } else {
                ""
            }
        );
        six_node.push((format!("serial={serial}"), curve[5]));
    }
    for task_overhead_ms in [0u64, 10, 50] {
        let cfg = SchedulerConfig {
            task_overhead: SimDuration::from_millis(task_overhead_ms),
            ..SchedulerConfig::default()
        };
        let curve = speedup_curve(cfg, &points, &tel);
        println!(
            "task overhead {task_overhead_ms:>3} ms{:<24} {:>7.1}% {:>7.1}% {:>7.1}%",
            "",
            curve[1] * 100.0,
            curve[3] * 100.0,
            curve[5] * 100.0,
        );
        six_node.push((format!("task={task_overhead_ms}ms"), curve[5]));
    }

    // Shape checks: every configuration still decreases monotonically,
    // and a larger serial fraction always flattens the curve.
    for (label, six) in &six_node {
        assert!(*six < 1.0, "{label} did not speed up at all");
    }
    assert!(
        six_node[0].1 < six_node[1].1
            && six_node[1].1 < six_node[2].1
            && six_node[2].1 < six_node[3].1,
        "serial fraction must monotonically flatten the curve"
    );
    println!("\nshape verified: the curve stays linear-decreasing in every configuration;");
    println!("the serial fraction sets where the 6-node point lands (0.15 -> paper's 27.6%)");
    println!("\n{}", tel.report().render());
}
