//! Figure 10 — scalability: total testing (validation) time for the DDoS
//! detector as compute nodes scale 1 → 6.
//!
//! The paper measures a 37.37 M-entry validation job on a Spark cluster
//! and reports a *linear* decrease, with the 6-node time ≈ 27.6 % of the
//! single-node time, and under 10 % overhead for the Athena-hosted job
//! versus a raw Spark job. Our compute substrate executes the same work
//! and accounts completion time in virtual time (see DESIGN.md §3.4),
//! which reproduces the same curve deterministically on a 1-core host.

use athena_apps::dataset::{DdosDataset, FEATURES};
use athena_apps::{DdosDetector, DdosDetectorConfig};
use athena_bench::{compare_row, env_scale, header};
use athena_compute::ComputeCluster;
use athena_core::DetectorManager;
use athena_ml::{group_digits, ConfusionMatrix, Model};
use athena_telemetry::Telemetry;

fn main() {
    println!(
        "{}",
        header("Figure 10 — testing time vs number of compute nodes")
    );
    let entries = env_scale("ATHENA_FIG10_ENTRIES", 500_000);
    println!(
        "dataset: {} entries (paper: 37,370,466; scale with ATHENA_FIG10_ENTRIES)\n",
        group_digits(entries as u64)
    );
    let data = DdosDataset::generate(entries, 20170610);
    let det = DdosDetector::new(DdosDetectorConfig::default());
    let features: Vec<String> = FEATURES.iter().map(|s| (*s).to_owned()).collect();

    // Train once on a subset; Figure 10 sweeps the *testing* phase.
    let tel = Telemetry::new();
    let train_compute = ComputeCluster::new(6);
    train_compute.bind_telemetry(&tel);
    let trainer = DetectorManager::with_telemetry(train_compute, &tel);
    let model = trainer
        .generate_from_points(
            data.points[..entries / 10].to_vec(),
            &features,
            &det.preprocessor(),
            &det.config.algorithm,
        )
        .expect("model");

    println!(
        "{:<8} {:>16} {:>16} {:>12} {:>12}",
        "nodes", "athena (vt ms)", "raw spark (vt ms)", "% of 1-node", "overhead"
    );
    let mut athena_times = Vec::new();
    let mut spark_times = Vec::new();
    for nodes in 1..=6 {
        let sweep_compute = ComputeCluster::new(nodes);
        sweep_compute.bind_telemetry(&tel);
        let dm = DetectorManager::with_telemetry(sweep_compute, &tel);
        let (summary, athena_vt) = dm.validate_points_distributed(data.points.clone(), &model);
        assert_eq!(summary.total_entries(), entries as u64);

        // The raw-Spark comparator: the same validation written directly
        // against the dataset API, skipping Athena's detector-manager
        // plumbing (per-point preprocessor objects, summary assembly).
        let cluster = ComputeCluster::new(nodes);
        let before = cluster.total_virtual_time();
        let ds = cluster.parallelize(data.points.clone(), 24);
        let model_for_job = model.clone();
        let partials = ds.map_partitions(move |part| {
            let mut cm = ConfusionMatrix::default();
            for p in part {
                let prepared = model_for_job.preprocessor.apply_point(p);
                cm.record(
                    p.is_malicious(),
                    model_for_job.model.predict(&prepared.features) >= 0.5,
                );
            }
            vec![cm]
        });
        let mut merged = ConfusionMatrix::default();
        for cm in partials.collect() {
            merged.merge(&cm);
        }
        let spark_vt = cluster.total_virtual_time() - before;

        let overhead = (athena_vt.as_secs_f64() - spark_vt.as_secs_f64()) / spark_vt.as_secs_f64();
        athena_times.push(athena_vt);
        spark_times.push(spark_vt);
        println!(
            "{nodes:<8} {:>16} {:>16} {:>11.1}% {:>11.1}%",
            athena_vt.as_millis(),
            spark_vt.as_millis(),
            athena_vt.as_secs_f64() / athena_times[0].as_secs_f64() * 100.0,
            overhead * 100.0
        );
    }

    let six_node_pct = athena_times[5].as_secs_f64() / athena_times[0].as_secs_f64();
    let max_overhead = athena_times
        .iter()
        .zip(&spark_times)
        .map(|(a, s)| (a.as_secs_f64() - s.as_secs_f64()) / s.as_secs_f64())
        .fold(f64::NEG_INFINITY, f64::max);

    println!();
    println!("{}", header("paper vs measured"));
    println!(
        "{}",
        compare_row(
            "Decrease with nodes",
            "linear",
            "monotone decreasing (see table)",
        )
    );
    println!(
        "{}",
        compare_row(
            "6-node time / 1-node time",
            "~27.6%",
            &format!("{:.1}%", six_node_pct * 100.0),
        )
    );
    println!(
        "{}",
        compare_row(
            "Athena overhead vs raw Spark",
            "< 10%",
            &format!("max {:.1}%", max_overhead * 100.0),
        )
    );

    assert!(
        athena_times.windows(2).all(|w| w[1] <= w[0]),
        "testing time must decrease monotonically with nodes"
    );
    assert!(
        six_node_pct > 0.15 && six_node_pct < 0.45,
        "6-node time should land near the paper's 27.6%: {six_node_pct}"
    );
    assert!(
        max_overhead < 0.10,
        "athena overhead must stay under 10%: {max_overhead}"
    );
    println!("\nshape verified: linear decrease, 6-node ≈ paper's 27.6%, overhead < 10%");
    println!("\n{}", tel.report().render());
}
