//! Parallel-execution scalability: per-subsystem speedup of the
//! `athena-parallel` pool at 1/2/4/8 workers, and a byte-identity check
//! that every width produces the same answer.
//!
//! The host may have a single CPU core (the CI box does), so wall-clock
//! speedup cannot demonstrate scaling there — worse, per-width wall
//! timing of chunks is *contaminated* there: a chunk timed while
//! sibling workers timeslice the same core is charged for its time
//! descheduled, and one such phantom cost pins the LPT makespan.
//! Following the Figure-10 virtual-time methodology, each subsystem
//! therefore runs once at width 1 with per-item cost accounting (the
//! only uncontended timing the box can produce), and its completion
//! time at width *W* is **modeled** by grouping those item costs into
//! the exact chunks a width-*W* run would claim and placing the chunk
//! sums on *W* workers longest-first (LPT —
//! `athena_parallel::modeled_makespan_ns`). The reported speedup is
//! `Σ serial / Σ makespan(W)`; the wider widths still execute for real
//! as byte-identity gates, with wall time printed alongside for
//! multi-core hosts. Results are written to `BENCH_parallel.json`
//! (override with `ATHENA_PARALLEL_JSON`).
//!
//! Set `ATHENA_BENCH_SMOKE=1` for the <60 s CI workload.

use athena_apps::dataset::{DdosDataset, FEATURES};
use athena_apps::{DdosDetector, DdosDetectorConfig};
use athena_bench::{env_scale, header};
use athena_compute::ComputeCluster;
use athena_core::{DetectorManager, FeatureGenerator};
use athena_ml::data::LabeledPoint;
use athena_ml::sweep::{cross_validate, fit_all, table_iv_roster};
use athena_ml::Algorithm;
use athena_openflow::{Action, FlowStatsEntry, MatchFields, OfMessage, StatsReply};
use athena_parallel::{modeled_makespan_ns, set_accounting, take_jobs, JobStats};
use athena_store::{doc, Filter, FindOptions, StoreCluster};
use athena_telemetry::Telemetry;
use athena_types::{
    AppId, ControllerId, Dpid, FiveTuple, Ipv4Addr, PortNo, SimDuration, SimTime, Xid,
};
use std::time::Instant;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn smoke() -> bool {
    athena_types::env_flag("ATHENA_BENCH_SMOKE")
}

/// One subsystem's sweep: modeled virtual ms, modeled speedup, and wall
/// ms at each width.
struct Row {
    name: &'static str,
    virtual_ms: Vec<f64>,
    speedup: Vec<f64>,
    wall_ms: Vec<f64>,
}

/// Runs `work` once per width with chunk accounting on, asserts the
/// digest is byte-identical at every width, and models the speedup from
/// the measured chunk costs.
fn measure(name: &'static str, mut work: impl FnMut() -> String) -> Row {
    let mut row = Row {
        name,
        virtual_ms: Vec::new(),
        speedup: Vec::new(),
        wall_ms: Vec::new(),
    };
    // Width 1 first: the only uncontended timing a single-core host can
    // produce (a chunk wall-timed while seven sibling workers timeslice
    // the same core is charged for its time *descheduled*, and one such
    // phantom cost pins the LPT makespan — the feature-extraction row
    // once regressed at width 8 exactly this way). Accounting records
    // per-item costs; each wider width is modeled by re-chunking those
    // costs exactly as a real run at that width would
    // (`modeled_makespan_ns`) and placing the chunk sums LPT. The wider
    // runs below still execute for real — as byte-identity gates, with
    // wall time reported alongside.
    std::env::set_var("ATHENA_THREADS", "1");
    set_accounting(true);
    let t0 = Instant::now();
    let baseline = work();
    let wall1 = t0.elapsed();
    let jobs = take_jobs();
    set_accounting(false);
    let serial: u64 = jobs.iter().map(JobStats::serial_ns).sum();
    assert!(serial > 0, "{name}: no pool jobs were recorded at width 1");
    for &w in &WIDTHS {
        let wall = if w == 1 {
            wall1
        } else {
            std::env::set_var("ATHENA_THREADS", w.to_string());
            let t0 = Instant::now();
            let digest = work();
            let wall = t0.elapsed();
            assert_eq!(
                baseline, digest,
                "{name}: output at {w} workers diverges from the width-1 run"
            );
            wall
        };
        let modeled: u64 = jobs
            .iter()
            .map(|j| modeled_makespan_ns(&j.chunk_costs_ns, w))
            .sum();
        row.virtual_ms.push(modeled as f64 / 1e6);
        row.speedup.push(serial as f64 / modeled.max(1) as f64);
        row.wall_ms.push(wall.as_secs_f64() * 1e3);
    }
    std::env::remove_var("ATHENA_THREADS");
    row
}

fn fig10_row() -> Row {
    let entries = env_scale(
        "ATHENA_PARALLEL_ENTRIES",
        if smoke() { 80_000 } else { 150_000 },
    );
    let data = DdosDataset::generate(entries, 20170610);
    let det = DdosDetector::new(DdosDetectorConfig::default());
    let features: Vec<String> = FEATURES.iter().map(|s| (*s).to_owned()).collect();
    let tel = Telemetry::off();
    let trainer = DetectorManager::with_telemetry(ComputeCluster::new(4), &tel);
    let model = trainer
        .generate_from_points(
            data.points[..entries / 10].to_vec(),
            &features,
            &det.preprocessor(),
            &det.config.algorithm,
        )
        .expect("model");
    let points = data.points;
    measure("compute/fig10-validate", move || {
        let dm = DetectorManager::with_telemetry(ComputeCluster::new(4), &tel);
        let (summary, _vt) = dm.validate_points_distributed(points.clone(), &model);
        format!(
            "{:?} benign={} malicious={}",
            summary.confusion, summary.benign_unique_flows, summary.malicious_unique_flows
        )
    })
}

/// Two well-separated blobs, deterministic (no RNG).
fn blobs(n: usize) -> Vec<LabeledPoint> {
    let mut data = Vec::with_capacity(2 * n);
    for i in 0..n {
        let x = (i % 10) as f64 * 0.01 + (i % 97) as f64 * 1e-4;
        data.push(LabeledPoint::new(vec![x, 1.0 - x], 0.0));
        data.push(LabeledPoint::new(vec![5.0 + x, 6.0 - x], 1.0));
    }
    data
}

/// The Table-IV sweep: one pool task per algorithm, then k-fold
/// cross-validation (one task per fold).
fn ml_row() -> Row {
    let n = env_scale(
        "ATHENA_PARALLEL_SWEEP_POINTS",
        if smoke() { 80 } else { 250 },
    );
    let data = blobs(n);
    measure("ml/table-iv-sweep", move || {
        let fits = fit_all(table_iv_roster(), &data);
        let folds = cross_validate(&Algorithm::decision_tree(), &data, 8);
        let mut digest = String::new();
        for f in &fits {
            digest.push_str(&format!("{} {:?};", f.algorithm.name(), f.result));
        }
        for r in &folds {
            digest.push_str(&format!("fold{} {:?};", r.fold, r.result));
        }
        digest
    })
}

/// Cross-shard scans: a 6-node cluster answering non-indexed range
/// queries, one pool task per shard with an ordered id merge.
fn store_row() -> Row {
    let docs = env_scale("ATHENA_PARALLEL_DOCS", if smoke() { 1_500 } else { 6_000 });
    let cluster = StoreCluster::new(6, 2);
    let coll = cluster.collection("bench");
    coll.insert_many((0..docs).map(|i| doc! { "i" => i as i64, "v" => (i as i64 * 7) % 1000 }))
        .expect("insert");
    measure("store/cross-shard-find", move || {
        let mut digest = String::new();
        for lo in [100i64, 300, 500, 700, 900] {
            let hits = coll.find(&Filter::gt("v", lo), &FindOptions::default());
            let id_sum: u64 = hits.iter().map(|d| d.id.0).sum();
            digest.push_str(&format!("gt{lo}:{}:{id_sum};", hits.len()));
        }
        digest
    })
}

/// Feature extraction from one large FLOW_STATS snapshot: per-entry flow
/// records and per-host aggregates.
fn generator_row() -> Row {
    let n = env_scale("ATHENA_PARALLEL_FLOWS", if smoke() { 768 } else { 3_000 });
    let entries: Vec<FlowStatsEntry> = (0..n)
        .map(|i| {
            let src = Ipv4Addr::new(10, ((i >> 6) % 200) as u8, (i % 64) as u8, 1);
            let dst = Ipv4Addr::new(10, 200, ((i * 13) % 250) as u8, 2);
            FlowStatsEntry {
                table_id: 0,
                match_fields: MatchFields::exact_five_tuple(FiveTuple::tcp(
                    src,
                    1024 + (i % 5000) as u16,
                    dst,
                    80,
                )),
                priority: 100,
                duration: SimDuration::from_secs(5 + (i % 30) as u64),
                idle_timeout: SimDuration::from_secs(30),
                hard_timeout: SimDuration::ZERO,
                cookie: (i % 7) as u64,
                packet_count: 10 + (i % 1000) as u64,
                byte_count: 1000 + (i % 100_000) as u64,
                actions: vec![Action::Output(PortNo::new(2))],
            }
        })
        .collect();
    let msg = OfMessage::StatsReply {
        xid: Xid::athena_marked(1),
        body: StatsReply::Flow(entries),
    };
    measure("core/feature-extraction", move || {
        let mut generator = FeatureGenerator::new(ControllerId::new(0));
        let records = generator.ingest(Dpid::new(1), &msg, SimTime::from_secs(6), &|c| {
            AppId::new(c as u32)
        });
        format!("{}:{records:?}", records.len())
    })
}

fn json_row(row: &Row) -> String {
    let nums = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "    {{\"subsystem\": \"{}\", \"workers\": [1, 2, 4, 8], \"virtual_ms\": [{}], \"speedup\": [{}], \"wall_ms\": [{}]}}",
        row.name,
        nums(&row.virtual_ms),
        nums(&row.speedup),
        nums(&row.wall_ms)
    )
}

fn main() {
    println!(
        "{}",
        header("athena-parallel — modeled speedup at 1/2/4/8 workers")
    );
    println!(
        "methodology: width-1 measured item costs, re-chunked per width and placed LPT\n\
         (virtual time); wall time alongside. Outputs byte-identical at every width.\n"
    );

    let rows = [fig10_row(), ml_row(), store_row(), generator_row()];

    println!(
        "{:<26} {:>7} {:>12} {:>9} {:>10}",
        "subsystem", "workers", "virtual ms", "speedup", "wall ms"
    );
    for row in &rows {
        for (k, &w) in WIDTHS.iter().enumerate() {
            println!(
                "{:<26} {:>7} {:>12.2} {:>8.2}x {:>10.1}",
                if k == 0 { row.name } else { "" },
                w,
                row.virtual_ms[k],
                row.speedup[k],
                row.wall_ms[k]
            );
        }
    }

    let json_path =
        std::env::var("ATHENA_PARALLEL_JSON").unwrap_or_else(|_| "BENCH_parallel.json".to_owned());
    let body = rows.iter().map(json_row).collect::<Vec<_>>().join(",\n");
    let json = format!("{{\n  \"rows\": [\n{body}\n  ]\n}}\n");
    std::fs::write(&json_path, json).expect("write BENCH_parallel.json");
    println!("\nwrote {json_path}");

    // Acceptance: ≥ 2.5× modeled speedup at 4 workers on the Figure-10
    // scalability workload; every width byte-identical (asserted above).
    let fig10_speedup_at_4 = rows[0].speedup[2];
    assert!(
        fig10_speedup_at_4 >= 2.5,
        "fig10 workload speedup at 4 workers below 2.5x: {fig10_speedup_at_4:.2}"
    );
    println!(
        "\nverified: fig10 workload {:.2}x at 4 workers (>= 2.5x), outputs byte-identical at all widths",
        fig10_speedup_at_4
    );
}
