//! Figure 9 — the NAE analysis: per-switch packet counts over time while
//! the LB app and the security app compete. The paper's figure shows a
//! sawtooth (soft-timeout expiry) until the security app activates, then
//! the takeover: the waypoint switch saturates while the balanced path
//! starves.

use athena_apps::{NaeMonitor, NaeMonitorConfig};
use athena_bench::{compare_row, header};
use athena_controller::apps::{LoadBalancer, SecurityApp};
use athena_controller::ControllerCluster;
use athena_core::{Athena, AthenaConfig};
use athena_dataplane::{FlowSpec, Network, Topology};
use athena_types::{Dpid, FiveTuple, Ipv4Addr, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const ACTIVATE_AT: u64 = 120;
const RUN_FOR: u64 = 240;

fn main() {
    println!(
        "{}",
        header("Figure 9 — NAE: per-switch packet counts, LB vs security app")
    );
    let topo = Topology::nae();
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    cluster.add_processor(Box::new(LoadBalancer::new((
        Ipv4Addr::new(10, 0, 4, 0),
        24,
    ))));
    cluster.add_processor(Box::new(
        SecurityApp::new(Dpid::new(6)).activate_at(SimTime::from_secs(ACTIVATE_AT)),
    ));
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);
    let monitor = NaeMonitor::new(NaeMonitorConfig::default());
    monitor.deploy(&athena);

    // FTP-dominated client traffic ("the network is dominated by FTP
    // flows"), arriving continuously.
    let ftp = Ipv4Addr::new(10, 0, 4, 1);
    let web = Ipv4Addr::new(10, 0, 4, 2);
    let mut rng = StdRng::seed_from_u64(41);
    let mut flows = Vec::new();
    for t in (0..RUN_FOR - 10).step_by(2) {
        // Clients behind S1 only: both candidate paths (via S3 and via
        // S6) are available to them, so the LB can actually balance.
        let client = topo.hosts[rng.random_range(0..4)].ip;
        let (server, port) = if rng.random_range(0.0..1.0) < 0.8 {
            (ftp, 21)
        } else {
            (web, 80)
        };
        flows.push(
            FlowSpec::new(
                FiveTuple::tcp(client, rng.random_range(30_000..60_000), server, port),
                SimTime::from_secs(t),
                SimDuration::from_secs(8),
                4_000_000,
            )
            .bidirectional(0.1),
        );
    }
    net.inject_flows(flows);
    net.run_until(SimTime::from_secs(RUN_FOR), &mut cluster);

    let series = monitor.series();
    println!(
        "{}",
        athena.show_series("per-switch packet counts (S3 vs S6)", &series)
    );
    println!("CSV:\n{}", athena.ui().to_csv(&series));

    // Quantify the takeover: mean per-sample packet share of S6 before
    // and after activation.
    let violations = monitor.check_sla();
    let share = |from: u64, to: u64| -> (f64, f64) {
        let mut s3 = 0.0;
        let mut s6 = 0.0;
        for (label, pts) in &series {
            for (t, v) in pts {
                if *t >= from as f64 && *t < to as f64 {
                    if label.contains("003") {
                        s3 += v;
                    } else {
                        s6 += v;
                    }
                }
            }
        }
        (s3, s6)
    };
    let (b3, b6) = share(10, ACTIVATE_AT);
    let (a3, a6) = share(ACTIVATE_AT, RUN_FOR);
    let before_ratio = b6 / (b3 + b6).max(1.0);
    let after_ratio = a6 / (a3 + a6).max(1.0);

    println!("{}", header("paper vs measured"));
    println!(
        "{}",
        compare_row(
            "Before activation",
            "balanced across S3/S6 (sawtooth)",
            &format!("S6 share {:.0}%", before_ratio * 100.0),
        )
    );
    println!(
        "{}",
        compare_row(
            "After activation (03:58 in paper)",
            "security app takes over; S3 starves",
            &format!("S6 share {:.0}%", after_ratio * 100.0),
        )
    );
    println!(
        "{}",
        compare_row(
            "SLA violations detected",
            "alerted via Athena UI manager",
            &format!(
                "{} (first at {:?}s)",
                violations.len(),
                violations.first().map(|v| v.at.as_secs_f64())
            ),
        )
    );

    assert!(
        before_ratio > 0.3 && before_ratio < 0.7,
        "pre-activation should be roughly balanced: {before_ratio}"
    );
    assert!(
        after_ratio > 0.8,
        "post-activation S6 must dominate: {after_ratio}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.at >= SimTime::from_secs(ACTIVATE_AT)),
        "SLA violations must appear after activation"
    );
    println!("\nshape verified: balanced -> takeover at t={ACTIVATE_AT}s, SLA alarms raised");
}
