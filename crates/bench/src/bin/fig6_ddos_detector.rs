//! Figure 6 — the DDoS detector's validation report.
//!
//! The paper validates 37,370,466 entries (a 50 GB testbed capture) with
//! a K-Means (K=8) model and reports a 99.23 % detection rate and 4.46 %
//! false-alarm rate. This harness regenerates the report on the
//! statistically matched synthetic dataset at a configurable scale
//! (`ATHENA_FIG6_ENTRIES`, default 373,704 = 1 % of the paper's entry
//! count) and prints the paper-vs-measured comparison.

use athena_apps::dataset::{DdosDataset, FEATURES};
use athena_apps::{DdosDetector, DdosDetectorConfig};
use athena_bench::{compare_row, env_scale, header, pct};
use athena_compute::ComputeCluster;
use athena_core::{DetectorManager, UiManager};
use athena_ml::group_digits;

fn main() {
    println!(
        "{}",
        header("Figure 6 — DDoS detector output (K-Means, K=8)")
    );
    let entries = env_scale("ATHENA_FIG6_ENTRIES", 373_704);
    println!(
        "dataset: {} entries (paper: 37,370,466; scale with ATHENA_FIG6_ENTRIES)\n",
        group_digits(entries as u64)
    );

    let data = DdosDataset::generate(entries, 20170607);
    let (train, test) = data.points.split_at(entries / 2);

    let det = DdosDetector::new(DdosDetectorConfig::default());
    let features: Vec<String> = FEATURES.iter().map(|s| (*s).to_owned()).collect();
    let mut dm = DetectorManager::new(ComputeCluster::new(6));
    dm.distributed_threshold = 10_000; // use the cluster like the paper

    let model = dm
        .generate_from_points(
            train.to_vec(),
            &features,
            &det.preprocessor(),
            &det.config.algorithm,
        )
        .expect("model generation");

    let mut summary = dm.validate_points(test, &model);
    summary.benign_unique_flows = data.benign_unique_flows;
    summary.malicious_unique_flows = data.malicious_unique_flows;

    let ui = UiManager::new();
    println!("{}\n", ui.render_summary(&summary));

    println!("{}", header("paper vs measured"));
    let c = &summary.confusion;
    println!(
        "{}",
        compare_row("Total entries", "37,370,466", &group_digits(c.total()))
    );
    println!(
        "{}",
        compare_row(
            "Benign : Malicious split",
            "25% : 75%",
            &format!(
                "{} : {}",
                pct(c.actual_benign() as f64 / c.total() as f64),
                pct(c.actual_malicious() as f64 / c.total() as f64)
            ),
        )
    );
    println!(
        "{}",
        compare_row(
            "Detection Rate",
            "0.9923 (99.23%)",
            &format!("{:.4} ({})", c.detection_rate(), pct(c.detection_rate())),
        )
    );
    println!(
        "{}",
        compare_row(
            "False Alarm Rate",
            "0.0446 (4.46%)",
            &format!(
                "{:.4} ({})",
                c.false_alarm_rate(),
                pct(c.false_alarm_rate())
            ),
        )
    );
    println!(
        "{}",
        compare_row(
            "Clusters",
            "K(8), Iterations(20), Runs(5)",
            "same configuration",
        )
    );

    // Shape assertions: the detector must land in the paper's operating
    // region (high detection, low-single-digit false alarms).
    assert!(
        c.detection_rate() > 0.97,
        "detection rate off the paper's operating point"
    );
    assert!(
        c.false_alarm_rate() < 0.10,
        "false alarms off the paper's operating point"
    );
    println!("\nshape verified: detection > 97%, false alarms < 10%");
}
