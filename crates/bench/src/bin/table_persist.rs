//! Persistence table — the durability layer as an evaluation artifact.
//!
//! Exercises the `athena-persist` journal through each subsystem that
//! writes one — the feature store, the trained-model snapshots, and the
//! controller cluster — and reports per subsystem the WAL append
//! throughput, the checkpoint size and duration, and the crash-recovery
//! replay time. The paper outsources durability to MongoDB's journal and
//! Spark's lineage; this table is the reproduction's equivalent budget.
//! The `persist/*` telemetry slice is printed at exit.
//!
//! Knobs: `ATHENA_PERSIST_DOCS` (store documents, default 4000),
//! `ATHENA_PERSIST_FLOWS` (controller workload flows, default 60).

use athena_bench::{env_scale, header};
use athena_controller::ControllerCluster;
use athena_core::{DetectionModel, DetectorManager, UiManager};
use athena_dataplane::{workload, Network, Topology};
use athena_ml::Algorithm;
use athena_persist::PersistConfig;
use athena_store::{doc, StoreCluster};
use athena_telemetry::Telemetry;
use athena_types::{SimDuration, SimTime, VirtualClock};
use std::path::PathBuf;
use std::time::Instant;

struct Row {
    subsystem: &'static str,
    wal_records: u64,
    wal_bytes: u64,
    append_throughput: f64, // records per second of pure append time
    checkpoint_bytes: u64,
    checkpoint_ms: f64,
    replayed: u64,
    replay_ms: f64,
}

impl Row {
    fn render(&self) -> Vec<String> {
        vec![
            self.subsystem.to_owned(),
            self.wal_records.to_string(),
            self.wal_bytes.to_string(),
            format!("{:.0}", self.append_throughput),
            self.checkpoint_bytes.to_string(),
            format!("{:.2}", self.checkpoint_ms),
            self.replayed.to_string(),
            format!("{:.2}", self.replay_ms),
        ]
    }
}

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "athena-table-persist-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Pure-append throughput from the journal's own `_append_ns` histogram:
/// records divided by time spent inside `Journal::append`.
fn throughput(tel: &Telemetry, name: &str) -> (u64, u64, f64) {
    let m = tel.metrics();
    let records = m.counter("persist", &format!("{name}_wal_records")).get();
    let bytes = m.counter("persist", &format!("{name}_wal_bytes")).get();
    let append_ns = m
        .histogram("persist", &format!("{name}_append_ns"))
        .snapshot()
        .sum;
    let per_sec = if append_ns == 0 {
        0.0
    } else {
        records as f64 / (append_ns as f64 / 1e9)
    };
    (records, bytes, per_sec)
}

fn store_row(tel: &Telemetry, docs: usize) -> Row {
    let dir = bench_dir("store");
    let clock = VirtualClock::new();
    let cluster = StoreCluster::new(3, 2);
    cluster
        .attach_persistence(PersistConfig::new(&dir), clock.clone(), tel)
        .expect("store journal");
    let coll = cluster.collection("bench");
    coll.create_index("sw");
    for i in 0..docs as i64 {
        clock.advance_by(SimDuration::from_millis(1));
        coll.insert(doc! { "sw" => i % 16, "bytes" => i * 1400, "packets" => i })
            .expect("insert");
    }
    let t = Instant::now();
    cluster.checkpoint().expect("checkpoint");
    let checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
    // A WAL tail past the checkpoint, so recovery replays records too.
    for i in 0..(docs / 2) as i64 {
        clock.advance_by(SimDuration::from_millis(1));
        coll.insert(doc! { "sw" => i % 16, "tail" => true })
            .expect("insert");
    }
    let (wal_records, wal_bytes, append_throughput) = throughput(tel, "store");
    let checkpoint_bytes = tel
        .metrics()
        .histogram("persist", "store_checkpoint_bytes")
        .snapshot()
        .max;
    drop((coll, cluster)); // crash

    let recovered = StoreCluster::new(3, 2);
    let t = Instant::now();
    let report = recovered
        .attach_persistence(
            PersistConfig::new(&dir),
            VirtualClock::new(),
            &Telemetry::off(),
        )
        .expect("store recovery");
    let replay_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        report.docs_restored, docs as u64,
        "checkpoint lost documents"
    );
    assert_eq!(report.ops_replayed, (docs / 2) as u64, "tail lost records");
    let _ = std::fs::remove_dir_all(&dir);
    Row {
        subsystem: "store",
        wal_records,
        wal_bytes,
        append_throughput,
        checkpoint_bytes,
        checkpoint_ms,
        replayed: report.ops_replayed,
        replay_ms,
    }
}

fn model_row() -> Row {
    let dir = bench_dir("model");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let data = athena_apps::dataset::DdosDataset::generate(4_000, 8);
    let features: Vec<String> = athena_apps::dataset::FEATURES
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let det = athena_apps::DdosDetector::new(athena_apps::DdosDetectorConfig::default());
    let dm = DetectorManager::new(athena_compute::ComputeCluster::new(2));
    let model = dm
        .generate_from_points(
            data.points.clone(),
            &features,
            &det.preprocessor(),
            &Algorithm::NaiveBayes,
        )
        .expect("train");
    let path = dir.join("model.snap");
    let t = Instant::now();
    model
        .save_to(&path, SimTime::from_secs(1))
        .expect("save model");
    let checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
    let checkpoint_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let t = Instant::now();
    let loaded = DetectionModel::load_from(&path).expect("load model");
    let replay_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(loaded, model, "model snapshot round-trip diverged");
    let _ = std::fs::remove_dir_all(&dir);
    Row {
        subsystem: "model",
        // Model snapshots are single checkpoint files, not WAL streams.
        wal_records: 0,
        wal_bytes: 0,
        append_throughput: 0.0,
        checkpoint_bytes,
        checkpoint_ms,
        replayed: 1,
        replay_ms,
    }
}

fn controller_row(tel: &Telemetry, n_flows: usize) -> Row {
    let dir = bench_dir("controller");
    let topo = Topology::enterprise();
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    cluster
        .attach_persistence(PersistConfig::new(&dir), tel)
        .expect("controller journal");
    net.inject_flows(workload::benign_mix_on(
        &topo,
        n_flows,
        SimDuration::from_secs(15),
        11,
    ));
    net.run_until(SimTime::from_secs(10), &mut cluster);
    let t = Instant::now();
    cluster.checkpoint().expect("checkpoint");
    let checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
    net.run_until(SimTime::from_secs(20), &mut cluster);
    let (wal_records, wal_bytes, append_throughput) = throughput(tel, "controller");
    let checkpoint_bytes = tel
        .metrics()
        .histogram("persist", "controller_checkpoint_bytes")
        .snapshot()
        .max;
    drop(cluster); // crash

    let mut recovered = ControllerCluster::new(&topo);
    let t = Instant::now();
    let report = recovered
        .attach_persistence(PersistConfig::new(&dir), &Telemetry::off())
        .expect("controller recovery");
    let replay_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(
        report.checkpoint_applied,
        "controller checkpoint not applied"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Row {
        subsystem: "controller",
        wal_records,
        wal_bytes,
        append_throughput,
        checkpoint_bytes,
        checkpoint_ms,
        replayed: report.ops_replayed,
        replay_ms,
    }
}

fn main() {
    println!(
        "{}",
        header("Persistence — WAL, checkpoint, and recovery budget")
    );
    let docs = env_scale("ATHENA_PERSIST_DOCS", 4000);
    let n_flows = env_scale("ATHENA_PERSIST_FLOWS", 60);

    let tel = Telemetry::new();
    let rows = [
        store_row(&tel, docs),
        model_row(),
        controller_row(&tel, n_flows),
    ];
    let ui = UiManager::new();
    println!(
        "{}",
        ui.render_table(
            &[
                "Subsystem",
                "WAL recs",
                "WAL bytes",
                "Append rec/s",
                "Ckpt bytes",
                "Ckpt ms",
                "Replayed",
                "Replay ms",
            ],
            &rows.iter().map(Row::render).collect::<Vec<_>>()
        )
    );

    // The persist/* telemetry slice, as every subsystem surfaced it.
    let mut report = tel.report();
    report.counters.retain(|e| e.key.subsystem == "persist");
    report.gauges.retain(|e| e.key.subsystem == "persist");
    report.histograms.retain(|e| e.key.subsystem == "persist");
    println!("{}", report.render());
}
