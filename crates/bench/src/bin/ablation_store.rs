//! Ablation: the feature store's design knobs vs Athena's control-plane
//! overhead (the design choice behind Table IX and the paper's §VII-C
//! discussion, which proposes "replacing MongoDB with a high-performance
//! database like Cassandra").
//!
//! Sweeps the replication factor and store-cluster size and measures the
//! resulting Cbench throughput, quantifying how much of the overhead is
//! durability (replication), how much is the write path itself, and what
//! the no-DB ceiling is.

use athena_bench::{env_scale, header, pct};
use athena_controller::cbench::{summarize, throughput_round, CbenchResponder};
use athena_controller::ControllerCluster;
use athena_core::{Athena, AthenaConfig};
use athena_dataplane::Topology;
use athena_telemetry::Telemetry;

fn measure(
    topo: &Topology,
    config: Option<AthenaConfig>,
    rounds: usize,
    events: u64,
    tel: &Telemetry,
) -> f64 {
    let rounds: Vec<_> = (0..rounds)
        .map(|i| {
            let athena = config.map(|c| Athena::with_telemetry(c, tel.clone()));
            let mut cluster = ControllerCluster::bare(topo);
            cluster.add_processor(Box::new(CbenchResponder));
            if let Some(a) = &athena {
                a.attach(&mut cluster);
            }
            throughput_round(&mut cluster, events, 500 + i as u64)
        })
        .collect();
    summarize(&rounds).avg
}

fn main() {
    println!(
        "{}",
        header("Ablation — store design vs control-plane throughput")
    );
    let rounds = env_scale("ATHENA_ABLATION_ROUNDS", 10);
    let events = env_scale("ATHENA_ABLATION_EVENTS", 10_000) as u64;
    let topo = Topology::enterprise();
    let tel = Telemetry::new();

    let baseline = measure(&topo, None, rounds, events, &tel);
    println!("bare controller: {baseline:.0} responses/s\n");
    println!(
        "{:<34} {:>14} {:>12}",
        "configuration", "responses/s", "overhead"
    );

    let mut rows: Vec<(String, f64)> = Vec::new();
    // No-DB ceiling.
    rows.push((
        "feature extraction only (no DB)".into(),
        measure(
            &topo,
            Some(AthenaConfig {
                store_enabled: false,
                ..AthenaConfig::default()
            }),
            rounds,
            events,
            &tel,
        ),
    ));
    // Replication sweep on 3 nodes.
    for repl in [1usize, 2, 3] {
        rows.push((
            format!("3-node store, replication {repl}"),
            measure(
                &topo,
                Some(AthenaConfig {
                    store_nodes: 3,
                    store_replication: repl,
                    ..AthenaConfig::default()
                }),
                rounds,
                events,
                &tel,
            ),
        ));
    }
    // Cluster-size sweep at replication 2.
    for nodes in [1usize, 6] {
        rows.push((
            format!("{nodes}-node store, replication {}", 2.min(nodes)),
            measure(
                &topo,
                Some(AthenaConfig {
                    store_nodes: nodes,
                    store_replication: 2,
                    ..AthenaConfig::default()
                }),
                rounds,
                events,
                &tel,
            ),
        ));
    }
    for (label, rate) in &rows {
        println!(
            "{label:<34} {rate:>14.0} {:>12}",
            pct(1.0 - rate / baseline)
        );
    }

    // Shape checks: no-DB is the fastest Athena configuration, and
    // higher replication never helps throughput.
    let no_db = rows[0].1;
    assert!(rows[1..].iter().all(|(_, r)| *r <= no_db * 1.05));
    let (r1, r2, r3) = (rows[1].1, rows[2].1, rows[3].1);
    assert!(
        r1 >= r2 * 0.9 && r2 >= r3 * 0.9,
        "replication should not speed writes: {r1:.0} {r2:.0} {r3:.0}"
    );
    println!("\nshape verified: publication dominates; replication adds monotone write cost");
    println!("(the paper's Cassandra proposal corresponds to the lighter configurations above)");
    println!("\n{}", tel.report().render());
}
