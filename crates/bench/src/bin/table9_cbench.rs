//! Table IX — Cbench flow-install throughput with and without Athena,
//! over 50 rounds.
//!
//! The paper reports (responses/s): without Athena avg 831,366; with
//! Athena avg 389,584 (53.13 % overhead); with Athena but no DB
//! operations avg 658,514 (20.79 % overhead) — pinning the cost on the
//! MongoDB publication path. This harness runs the same three
//! configurations through the in-process Cbench driver; absolute rates
//! differ from the paper's Xeon testbed, but the ordering and overhead
//! magnitudes are the measured quantities.

use athena_bench::{compare_row, env_scale, header, pct};
use athena_controller::cbench::{summarize, throughput_round, CbenchResponder, CbenchRound};
use athena_controller::ControllerCluster;
use athena_core::{Athena, AthenaConfig};
use athena_dataplane::Topology;
use athena_telemetry::Telemetry;

#[derive(Clone, Copy)]
enum Config {
    Without,
    WithDb,
    NoDb,
}

/// One configuration, measured over `rounds` rounds. Every round gets a
/// fresh deployment so the in-memory store stays at steady-state size —
/// the analogue of MongoDB's flat per-insert cost (it pages to disk; our
/// substitute would otherwise accumulate millions of documents across
/// rounds and measure allocator pressure instead of write cost).
fn run_rounds(
    topo: &Topology,
    config: Config,
    rounds: usize,
    events: u64,
    tel: &Telemetry,
) -> Vec<CbenchRound> {
    (0..rounds)
        .map(|i| {
            let athena = match config {
                Config::Without => None,
                Config::WithDb => {
                    Some(Athena::with_telemetry(AthenaConfig::default(), tel.clone()))
                }
                Config::NoDb => Some(Athena::with_telemetry(
                    AthenaConfig {
                        store_enabled: false,
                        ..AthenaConfig::default()
                    },
                    tel.clone(),
                )),
            };
            let mut cluster = ControllerCluster::bare(topo);
            cluster.add_processor(Box::new(CbenchResponder));
            if let Some(a) = &athena {
                a.attach(&mut cluster);
            }
            throughput_round(&mut cluster, events, 1000 + i as u64)
        })
        .collect()
}

fn main() {
    println!(
        "{}",
        header("Table IX — Cbench flow-install throughput (responses/s)")
    );
    let rounds = env_scale("ATHENA_CBENCH_ROUNDS", 50);
    let events = env_scale("ATHENA_CBENCH_EVENTS", 20_000) as u64;
    println!("{rounds} rounds x {events} packet-ins (ATHENA_CBENCH_ROUNDS/_EVENTS)\n");
    let topo = Topology::enterprise();
    // One telemetry handle aggregates every Athena-enabled round; its
    // enabled-path cost is a few atomic ops per record, identical in the
    // with-DB and no-DB configurations, so the overhead ratios stand.
    let tel = Telemetry::new();

    // 1. Baseline: the bare controller.
    let without = summarize(&run_rounds(&topo, Config::Without, rounds, events, &tel));
    // 2. With Athena (features published to the store cluster).
    let with_db = summarize(&run_rounds(&topo, Config::WithDb, rounds, events, &tel));
    // 3. With Athena, DB publication disabled.
    let no_db = summarize(&run_rounds(&topo, Config::NoDb, rounds, events, &tel));

    println!("{:<16} {:>12} {:>12} {:>12}", "", "MIN", "MAX", "AVG");
    for (label, s) in [
        ("Without", &without),
        ("With", &with_db),
        ("With (no DB)", &no_db),
    ] {
        println!(
            "{label:<16} {:>12.0} {:>12.0} {:>12.0}",
            s.min, s.max, s.avg
        );
    }
    let overhead_db = 1.0 - with_db.avg / without.avg;
    let overhead_nodb = 1.0 - no_db.avg / without.avg;
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "Overhead",
        pct(1.0 - with_db.min / without.min),
        pct(1.0 - with_db.max / without.max),
        pct(overhead_db),
    );
    println!(
        "{:<16} {:>12} {:>12} {:>12}\n",
        "(no DB)",
        pct(1.0 - no_db.min / without.min),
        pct(1.0 - no_db.max / without.max),
        pct(overhead_nodb),
    );

    println!("{}", header("paper vs measured"));
    println!(
        "{}",
        compare_row(
            "Without Athena (avg rps)",
            "831,366",
            &format!("{:.0}", without.avg),
        )
    );
    println!(
        "{}",
        compare_row(
            "With Athena (avg rps)",
            "389,584",
            &format!("{:.0}", with_db.avg),
        )
    );
    println!(
        "{}",
        compare_row(
            "With, no DB (avg rps)",
            "658,514",
            &format!("{:.0}", no_db.avg),
        )
    );
    println!(
        "{}",
        compare_row("Avg overhead (with DB)", "53.13%", &pct(overhead_db))
    );
    println!(
        "{}",
        compare_row("Avg overhead (no DB)", "20.79%", &pct(overhead_nodb))
    );

    assert!(
        without.avg > no_db.avg && no_db.avg > with_db.avg,
        "ordering must hold: without > no-db > with-db"
    );
    // The paper's discussion: "the performance overhead of our system
    // primarily originates from MongoDB related operations". In
    // time-per-event terms: the DB's share of Athena's added latency.
    let t_without = 1.0 / without.avg;
    let t_with = 1.0 / with_db.avg;
    let t_nodb = 1.0 / no_db.avg;
    let db_share = (t_with - t_nodb) / (t_with - t_without);
    println!(
        "\nDB operations account for {:.0}% of Athena's added per-event latency",
        db_share * 100.0
    );
    assert!(
        db_share > 0.5,
        "DB publication must dominate the overhead (paper: primary source)"
    );
    println!("shape verified: without > no-DB > with-DB; DB operations dominate the overhead");
    println!("\n{}", tel.report().render());
}
