//! Online-vs-batch learner comparison as an evaluation artifact.
//!
//! Runs every Table-IV attack family once and measures each
//! `athena-stream` online learner against its batch counterpart on the
//! same records: the batch arm trains on the family's full record set
//! (the Table-IV protocol), the online arm is scored prequentially
//! (test-then-train, strictly harder). Prints the per-family DR / FAR /
//! time-to-detect comparison and writes the byte-stable JSON artifact
//! (default `target/BENCH_stream.json`, override with
//! `ATHENA_STREAM_JSON`). A rerun of the ddos_flood family re-derives
//! its online arms and asserts bit-identical results.
//!
//! Knobs: `ATHENA_CHAOS_SMOKE` (halve workloads; cells never skipped),
//! `ATHENA_STREAM_SEED` (master seed, default 7).

use athena_bench::matrix::{run_family, MatrixConfig};
use athena_bench::stream::{pairings, prequential, run_stream};
use athena_bench::{env_scale, header};
use athena_workloads::AttackFamily;

fn main() {
    let cfg = MatrixConfig {
        seed: env_scale("ATHENA_STREAM_SEED", 7) as u64,
        ..MatrixConfig::default()
    };
    println!("{}", header("Online vs batch learners per attack family"));
    println!("seed={} smoke={}", cfg.seed, cfg.smoke);

    let report = run_stream(&cfg);
    println!(
        "{:<22} {:<22} {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7}",
        "family", "pairing", "on-DR", "on-FAR", "on-TTD", "bat-DR", "bat-FAR", "bat-TTD"
    );
    let ttd = |t: Option<f64>| t.map_or_else(|| "-".to_owned(), |t| format!("{t:.1}"));
    for c in &report.cells {
        println!(
            "{:<22} {:<22} {:>7.2}% {:>7.2}% {:>7} | {:>7.2}% {:>7.2}% {:>7}",
            c.family,
            c.online.algorithm,
            c.online.detection_rate * 100.0,
            c.online.false_alarm_rate * 100.0,
            ttd(c.online.time_to_detect_s),
            c.batch.detection_rate * 100.0,
            c.batch.false_alarm_rate * 100.0,
            ttd(c.batch.time_to_detect_s),
        );
    }

    // The gate's floor: on the known flood, online Naive Bayes must
    // reach the batch operating point's neighborhood prequentially.
    let nb = report
        .cells
        .iter()
        .find(|c| c.family == "ddos_flood" && c.online.algorithm == "online-naive-bayes")
        .expect("ddos_flood online-NB cell");
    assert!(
        nb.online.detection_rate > 0.9,
        "online NB detection rate {:.4} regressed",
        nb.online.detection_rate
    );
    assert!(
        nb.online.false_alarm_rate < 0.15,
        "online NB false-alarm rate {:.4} regressed",
        nb.online.false_alarm_rate
    );

    // Determinism spot-check: the ddos_flood online arms re-derive
    // bit-identical from a fresh deployment.
    let rerun = run_family(AttackFamily::Ddos, &cfg);
    for (spec, _) in pairings() {
        let arm = prequential(&rerun, &spec);
        let original = report
            .cells
            .iter()
            .find(|c| c.family == "ddos_flood" && c.online.algorithm == arm.algorithm)
            .expect("cell exists");
        assert_eq!(arm, original.online, "rerun diverged for {}", arm.algorithm);
    }
    println!("\ndeterminism spot-check: ddos_flood online arms re-derived bit-identical");

    let path = std::env::var("ATHENA_STREAM_JSON")
        .unwrap_or_else(|_| "target/BENCH_stream.json".to_owned());
    report.save_json(std::path::Path::new(&path)).expect("save");
    println!("wrote {path}");
}
