//! Table VIII — usability: source lines of code for the same DDoS
//! detector on Athena vs. a raw compute-cluster ("Spark") baseline vs. a
//! BSP ("Hama") baseline.
//!
//! The three implementations live in `athena-apps/src/sloc/` and are
//! *functional* (the test suite asserts they reach the same detection
//! quality on the same dataset); this harness counts their marked
//! application code and, to keep everyone honest, re-runs all three.

use athena_apps::sloc::{self, measured_sloc};
use athena_bench::{compare_row, header};
use athena_core::UiManager;

const ATHENA_SRC: &str = include_str!("../../../apps/src/sloc/ddos_athena.rs");
const SPARK_SRC: &str = include_str!("../../../apps/src/sloc/ddos_spark.rs");
const BSP_SRC: &str = include_str!("../../../apps/src/sloc/ddos_bsp.rs");

fn main() {
    println!(
        "{}",
        header("Table VIII — SLoC for a DDoS detector per implementation")
    );
    let athena = measured_sloc(ATHENA_SRC);
    let spark = measured_sloc(SPARK_SRC);
    let bsp = measured_sloc(BSP_SRC);

    let ui = UiManager::new();
    println!(
        "{}",
        ui.render_table(
            &["DDoS detector", "Athena", "Spark-style", "BSP (Hama-style)"],
            &[
                vec![
                    "K-Means".into(),
                    athena.to_string(),
                    spark.to_string(),
                    bsp.to_string(),
                ],
                vec![
                    "Logistic Regression".into(),
                    athena.to_string(),
                    spark.to_string(),
                    bsp.to_string(),
                ],
            ],
        )
    );
    println!("(both algorithm variants share the same parameterized app code here,\n so the two rows coincide; the paper's Java versions differed by a few lines)\n");

    println!("{}", header("paper vs measured"));
    println!(
        "{}",
        compare_row(
            "Athena K-Means / LogReg",
            "45 / 42 lines",
            &format!("{athena} lines"),
        )
    );
    println!(
        "{}",
        compare_row(
            "Spark K-Means / LogReg",
            "825 / 851 lines",
            &format!("{spark} lines"),
        )
    );
    println!(
        "{}",
        compare_row(
            "Hama K-Means / LogReg",
            "817 / 829 lines",
            &format!("{bsp} lines"),
        )
    );
    println!(
        "{}",
        compare_row(
            "Athena / baseline ratio",
            "~5%",
            &format!(
                "{:.1}% (vs spark), {:.1}% (vs bsp)",
                athena as f64 / spark as f64 * 100.0,
                athena as f64 / bsp as f64 * 100.0
            ),
        )
    );

    // Honesty check: the implementations must all work and agree.
    println!("\nre-running all three implementations on 8,000 shared samples…");
    let samples = sloc::generate_raw_samples(8_000, 99);
    let (train, test) = samples.split_at(4_000);
    for (name, out) in [
        ("athena", sloc::ddos_athena::run_kmeans(train, test)),
        ("spark ", sloc::ddos_spark::run_kmeans(train, test)),
        ("bsp   ", sloc::ddos_bsp::run_kmeans(train, test)),
    ] {
        println!(
            "  {name}: detection {:.3}, false alarms {:.3}",
            out.confusion.detection_rate(),
            out.confusion.false_alarm_rate()
        );
        assert!(out.confusion.detection_rate() > 0.9);
    }
    assert!(athena * 5 < spark && athena * 5 < bsp);
    println!("\nshape verified: Athena app is a small fraction of either baseline");
}
