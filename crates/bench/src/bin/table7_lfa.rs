//! Table VII — link-flooding-attack detection and mitigation: the Spiffy
//! comparison, plus a live run demonstrating that the Athena-based
//! mitigation actually clears the congestion (which is the point of the
//! table: same capability, no custom hardware).

use athena_apps::{LfaMitigator, LfaMitigatorConfig};
use athena_bench::header;
use athena_controller::ControllerCluster;
use athena_core::{Athena, AthenaConfig, UiManager};
use athena_dataplane::{workload, Network, Topology};
use athena_types::{Dpid, PortNo, SimDuration, SimTime};

fn main() {
    println!(
        "{}",
        header("Table VII — LFA detection & mitigation (Spiffy vs Athena)")
    );
    let ui = UiManager::new();
    let rows: Vec<Vec<String>> = LfaMitigator::capability_comparison()
        .into_iter()
        .skip(1)
        .map(|r| r.iter().map(|s| (*s).to_owned()).collect())
        .collect();
    println!(
        "{}",
        ui.render_table(&["Category", "Spiffy [26]", "Athena"], &rows)
    );

    println!("{}", header("live mitigation run (Crossfire on link 2->3)"));
    let topo = Topology::linear(4, 6);
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);
    let mut lfa = LfaMitigator::new(LfaMitigatorConfig::default());
    lfa.deploy(&athena);

    net.inject_flows(workload::benign_mix_on(
        &topo,
        40,
        SimDuration::from_secs(60),
        31,
    ));
    net.inject_flows(workload::crossfire(
        &topo,
        Dpid::new(2),
        Dpid::new(3),
        workload::CrossfireParams {
            start: SimTime::from_secs(10),
            duration: SimDuration::from_secs(60),
            n_flows: 400,
            per_flow_rate_bps: 5_000_000,
        },
        32,
    ));

    let bottleneck = topo
        .link_from(Dpid::new(2), PortNo::new(1))
        .expect("bottleneck link");
    let mut peak_before = 0.0f64;
    let mut peak_after = 0.0f64;
    let mut blocked = 0usize;
    for step in 1..=8u64 {
        net.run_until(SimTime::from_secs(step * 10), &mut cluster);
        let util = net.link(bottleneck).map_or(0.0, |l| l.utilization());
        if blocked == 0 {
            peak_before = peak_before.max(util);
        } else {
            peak_after = peak_after.max(util);
        }
        blocked += lfa.mitigate(&athena).len();
        println!(
            "t={:>3}s  link 2->3 offered/capacity {util:>5.2}  blocked so far {blocked}",
            step * 10
        );
    }
    println!(
        "\npeak utilization before mitigation: {peak_before:.2}, after: {peak_after:.2}, bots blocked: {blocked}"
    );
    assert!(peak_before > 1.0, "the attack must congest the link");
    assert!(
        peak_after < peak_before,
        "mitigation must reduce congestion"
    );
    assert!(blocked > 0, "mitigation must block bots");
    println!("shape verified: congestion detected and removed via Block reactions");
}
