//! The Table-IV evaluation matrix as an evaluation artifact.
//!
//! Runs every (attack family × Table-IV algorithm) cell: base families
//! train the models, held-out mutant families measure generalization to
//! attacks the models never saw. Prints the detection-rate /
//! false-alarm-rate / time-to-detect table, the per-family
//! generalization summary, and writes the byte-stable JSON artifact
//! (default `target/BENCH_matrix.json`, override with
//! `ATHENA_MATRIX_JSON`). A rerun of one family re-derives its cells
//! and asserts bit-identical results.
//!
//! Knobs: `ATHENA_CHAOS_SMOKE` (halve workloads; cells never skipped),
//! `ATHENA_MATRIX_SEED` (master seed, default 7).

use athena_bench::matrix::{
    evaluate_cell, regressions, run_family, run_matrix, train_models, MatrixConfig,
};
use athena_bench::{env_scale, header};
use athena_workloads::AttackFamily;

fn main() {
    let cfg = MatrixConfig {
        seed: env_scale("ATHENA_MATRIX_SEED", 7) as u64,
        ..MatrixConfig::default()
    };
    println!("{}", header("Table IV: attack x algorithm matrix"));
    println!(
        "seed={} smoke={} link_model={} chaos={:?}",
        cfg.seed,
        cfg.smoke,
        cfg.link_model.is_some(),
        cfg.chaos.map(|s| s.name()),
    );

    let report = run_matrix(&cfg);
    println!(
        "{:<22} {:<24} {:>6} {:>8} {:>8} {:>8}",
        "family", "algorithm", "held", "DR", "FAR", "TTD(s)"
    );
    for c in &report.cells {
        println!(
            "{:<22} {:<24} {:>6} {:>7.2}% {:>7.2}% {:>8}",
            c.family,
            c.algorithm,
            if c.held_out { "yes" } else { "no" },
            c.detection_rate * 100.0,
            c.false_alarm_rate * 100.0,
            c.time_to_detect_s
                .map_or_else(|| "-".to_owned(), |t| format!("{t:.1}")),
        );
    }
    println!();
    println!("{}", header("Unseen-attack generalization"));
    for g in &report.generalization {
        println!(
            "{:<22} mean DR {:>6.2}%  mean FAR {:>6.2}%  best: {} ({:.2}%)",
            g.family,
            g.mean_detection_rate * 100.0,
            g.mean_false_alarm_rate * 100.0,
            g.best_algorithm,
            g.best_detection_rate * 100.0,
        );
    }

    let bad = regressions(&report);
    assert!(bad.is_empty(), "baseline regressions: {bad:?}");

    // Determinism spot-check: one family's cells re-derive bit-identical.
    let rerun = run_family(AttackFamily::Ddos, &cfg);
    let base_runs: Vec<_> = AttackFamily::base()
        .iter()
        .map(|f| run_family(*f, &cfg))
        .collect();
    let models = train_models(&base_runs.iter().collect::<Vec<_>>());
    for (algorithm, model) in &models {
        let cell = evaluate_cell(&rerun, algorithm, model.as_ref());
        let original = report
            .cell(&cell.family, &cell.algorithm)
            .expect("cell exists");
        assert_eq!(&cell, original, "rerun diverged for {}", cell.algorithm);
    }
    println!("\ndeterminism spot-check: ddos_flood row re-derived bit-identical");

    let path = std::env::var("ATHENA_MATRIX_JSON")
        .unwrap_or_else(|_| "target/BENCH_matrix.json".to_owned());
    report.save_json(std::path::Path::new(&path)).expect("save");
    println!("wrote {path}");
}
