//! Table VI — the DDoS test-environment comparison: Braga et al. \[10\]
//! vs. the Athena evaluation topology. The Athena column is read off the
//! *actual* simulated deployment, not hard-coded.

use athena_bench::header;
use athena_controller::ControllerCluster;
use athena_core::UiManager;
use athena_dataplane::Topology;

fn main() {
    println!("{}", header("Table VI — DDoS test environment"));
    let topo = Topology::enterprise();
    let cluster = ControllerCluster::new(&topo);

    let physical = topo.switches.iter().filter(|s| s.dpid.raw() <= 6).count();
    let ovs = topo.switches.len() - physical;
    let rows = vec![
        vec![
            "Switch".to_owned(),
            "3 OF switches".to_owned(),
            format!(
                "{} OF switches ({} physical, {} OVS)",
                topo.switches.len(),
                physical,
                ovs
            ),
        ],
        vec![
            "Link".to_owned(),
            "3 links".to_owned(),
            format!("{} links", topo.unidirectional_link_count()),
        ],
        vec![
            "Controller".to_owned(),
            "1 instance".to_owned(),
            format!("{} instances", cluster.instance_count()),
        ],
        vec![
            "Feature".to_owned(),
            "6-tuples".to_owned(),
            format!("{}-tuples", athena_core::catalog::DDOS_10_TUPLE.len()),
        ],
        vec![
            "Algorithm".to_owned(),
            "SOM".to_owned(),
            "K-Means".to_owned(),
        ],
    ];
    let ui = UiManager::new();
    println!(
        "{}",
        ui.render_table(
            &["Category", "Braga et al. [10]", "Athena (this repo)"],
            &rows
        )
    );

    // Sanity: the measured values match the paper's Table VI claims.
    assert_eq!(topo.switches.len(), 18);
    assert_eq!(topo.unidirectional_link_count(), 48);
    assert_eq!(cluster.instance_count(), 3);
    println!("all Table VI quantities verified against the live topology");
}
