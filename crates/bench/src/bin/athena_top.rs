//! `athena-top` — the health view of a full Athena deployment under
//! chaos, plus the observe-layer overhead sweep.
//!
//! Runs the chaos-matrix DDoS scenario (controller crash at 10 s,
//! rejoin at 20 s) with the observe pipeline bound everywhere, printing
//! the live health table (series, rates, firing alerts) every 5 virtual
//! seconds — a `top` for the simulated SDN. Then sweeps
//! `ATHENA_THREADS` ∈ {1, 2, 4, 8}, timing each width with the observe
//! layer off and on; simulated outcomes and the deterministic alert
//! stream must be byte-identical at every width. Results land in
//! `BENCH_obs.json` (override `ATHENA_OBS_JSON`) and the final health
//! report in `target/observe-report.json`.
//!
//! Set `ATHENA_BENCH_SMOKE=1` for the <60 s CI workload.

use athena_bench::header;
use athena_controller::ControllerCluster;
use athena_core::{Athena, AthenaConfig};
use athena_dataplane::{workload, Network, Topology};
use athena_faults::{run_with_faults, ChaosChannel, FaultInjector, Scenario};
use athena_observe::Observe;
use athena_telemetry::Telemetry;
use athena_types::{SimDuration, SimTime};
use std::time::Instant;

const SEED: u64 = 7;
const INJECT_AT: SimTime = SimTime::from_secs(10);
const RECOVER_AT: SimTime = SimTime::from_secs(20);
const END: SimTime = SimTime::from_secs(35);
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn smoke() -> bool {
    athena_types::env_flag("ATHENA_BENCH_SMOKE")
}

fn scaled(n: usize) -> usize {
    if smoke() {
        n / 2
    } else {
        n
    }
}

/// Deterministic outcome of one run: store contents plus (when observed)
/// the rendered deterministic alert stream and trace-id sequence.
struct Outcome {
    digest: String,
    alerts: String,
    wall_ms: f64,
    obs: Option<Observe>,
}

/// One chaos run. `observe` binds the full observe pipeline; `live`
/// prints the health table every 5 virtual seconds while running.
fn run_once(observe: bool, live: bool) -> Outcome {
    let tel = if observe {
        Telemetry::new()
    } else {
        Telemetry::off()
    };
    let obs = if observe {
        Observe::with_telemetry(SEED, &tel)
    } else {
        Observe::disabled()
    };
    let topo = Topology::enterprise();
    let mut net = Network::new(topo.clone());
    net.bind_telemetry(&tel);
    net.bind_observe(&obs);
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::with_observe(AthenaConfig::default(), tel.clone(), obs.clone());
    athena.attach(&mut cluster);
    let mut chaos = ChaosChannel::new(cluster, SEED);
    chaos.bind_telemetry(&tel);
    chaos.bind_observe(&obs);

    let victim = topo.hosts[0].ip;
    net.inject_flows(workload::benign_mix_on(
        &topo,
        scaled(120),
        SimDuration::from_secs(30),
        101,
    ));
    net.inject_flows(workload::ddos_flood(
        &topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(8),
            duration: SimDuration::from_secs(22),
            n_flows: scaled(250),
            ..workload::DdosParams::default()
        },
        102,
    ));

    let store_nodes = athena.runtime().store.node_count();
    let plan = Scenario::ControllerCrash.plan(&topo, store_nodes, SEED, INJECT_AT, RECOVER_AT);
    let mut injector = FaultInjector::new(plan).with_store(athena.runtime().store.clone());
    injector.bind_telemetry(&tel);

    let t0 = Instant::now();
    while net.now() < END {
        let next = (net.now() + SimDuration::from_secs(5)).min(END);
        run_with_faults(&mut net, next, &mut chaos, &mut injector);
        if live {
            println!("{}", obs.report().render());
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(injector.finished(), "fault events left unapplied");

    let alerts = obs
        .deterministic_alert_events()
        .iter()
        .map(|e| e.render())
        .collect::<Vec<_>>()
        .join("\n");
    Outcome {
        digest: athena.runtime().store.contents(),
        alerts,
        wall_ms,
        obs: if observe { Some(obs) } else { None },
    }
}

fn main() {
    println!(
        "{}",
        header("athena-top — chaos health view + observe overhead at 1/2/4/8 workers")
    );

    // The live view: one observed run at the default pool width,
    // printing the health table every 5 virtual seconds.
    println!("-- live health (controller crash at 10s, rejoin at 20s) --\n");
    let live = run_once(true, true);
    let live_obs = live.obs.as_ref().expect("observed run");
    std::fs::create_dir_all("target").expect("create target/");
    live_obs
        .report()
        .save_json("target/observe-report.json")
        .expect("write observe-report.json");
    println!("wrote target/observe-report.json");

    // The overhead sweep: off vs on at every pool width.
    let mut rows = Vec::new();
    let mut baseline_digest: Option<String> = None;
    let mut baseline_alerts: Option<String> = None;
    for &w in &WIDTHS {
        std::env::set_var("ATHENA_THREADS", w.to_string());
        let off = run_once(false, false);
        let on = run_once(true, false);
        std::env::remove_var("ATHENA_THREADS");
        // Byte-identity: the observe layer changes nothing simulated,
        // and neither does the pool width.
        assert_eq!(
            off.digest, on.digest,
            "observe layer changed simulated outcomes at width {w}"
        );
        match &baseline_digest {
            None => baseline_digest = Some(on.digest),
            Some(b) => assert_eq!(*b, on.digest, "outcomes diverged at width {w}"),
        }
        match &baseline_alerts {
            None => baseline_alerts = Some(on.alerts),
            Some(b) => assert_eq!(*b, on.alerts, "alert stream diverged at width {w}"),
        }
        let overhead = on.wall_ms / off.wall_ms.max(1e-9);
        rows.push((w, off.wall_ms, on.wall_ms, overhead));
    }

    println!(
        "\n{:>7} {:>10} {:>10} {:>9}",
        "workers", "off ms", "on ms", "overhead"
    );
    for (w, off_ms, on_ms, overhead) in &rows {
        println!("{w:>7} {off_ms:>10.1} {on_ms:>10.1} {overhead:>8.3}x");
    }
    assert!(
        !baseline_alerts.unwrap_or_default().is_empty(),
        "the chaos run must produce deterministic alert transitions"
    );

    let json_path =
        std::env::var("ATHENA_OBS_JSON").unwrap_or_else(|_| "BENCH_obs.json".to_owned());
    let body = rows
        .iter()
        .map(|(w, off_ms, on_ms, overhead)| {
            format!(
                "    {{\"workers\": {w}, \"off_ms\": {off_ms:.3}, \"on_ms\": {on_ms:.3}, \
                 \"overhead\": {overhead:.4}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let report = live_obs.report();
    let json = format!(
        "{{\n  \"scenario\": \"controller-crash\",\n  \"seed\": {SEED},\n  \
         \"traces\": {},\n  \"spans\": {},\n  \"alerts\": {},\n  \"rows\": [\n{body}\n  ]\n}}\n",
        report.traces,
        report.spans,
        report.alerts.len(),
    );
    std::fs::write(&json_path, json).expect("write BENCH_obs.json");
    println!("\nwrote {json_path}");
    println!("verified: outcomes and deterministic alert streams byte-identical at all widths");
}
