//! The fault injector: drives a [`FaultPlan`] against the live system
//! from the dataplane event loop.

use crate::chaos::FaultTarget;
use crate::plan::{FaultKind, FaultPlan};
use athena_dataplane::{ControllerLink, Network};
use athena_store::StoreCluster;
use athena_telemetry::{Counter, Telemetry};
use athena_types::SimTime;

/// Counters for applied fault events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Total events applied.
    pub injected: u64,
    /// Link down/degrade/restore events applied.
    pub link_events: u64,
    /// Switch reboots applied.
    pub switch_reboots: u64,
    /// Controller crash/rejoin events applied.
    pub controller_events: u64,
    /// Store node down/up transitions applied.
    pub store_events: u64,
    /// Message-fault profile changes applied.
    pub message_profile_changes: u64,
}

/// Applies a [`FaultPlan`]'s events to the network, control plane, and
/// (optionally) store as virtual time passes.
///
/// Drive it between ticks — [`run_with_faults`] does — so every tick sees
/// a consistent fault state; under a fixed plan seed the whole run is
/// deterministic.
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
    store: Option<StoreCluster>,
    counters: FaultCounters,
    injected_tel: Counter,
    link_tel: Counter,
    reboot_tel: Counter,
    controller_tel: Counter,
    store_tel: Counter,
    profile_tel: Counter,
}

impl FaultInjector {
    /// Creates an injector over a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            cursor: 0,
            store: None,
            counters: FaultCounters::default(),
            injected_tel: Counter::detached(),
            link_tel: Counter::detached(),
            reboot_tel: Counter::detached(),
            controller_tel: Counter::detached(),
            store_tel: Counter::detached(),
            profile_tel: Counter::detached(),
        }
    }

    /// Attaches a store cluster handle (clones share state, so pass a
    /// clone of the one the system under test uses) for
    /// [`FaultKind::StoreNodeDown`]/[`FaultKind::StoreNodeUp`] events.
    pub fn with_store(mut self, store: StoreCluster) -> Self {
        self.store = Some(store);
        self
    }

    /// Routes the injector's `faults/*` counters into `tel`.
    pub fn bind_telemetry(&mut self, tel: &Telemetry) {
        use athena_telemetry::names;
        let m = tel.metrics();
        let sub = names::faults::SUBSYSTEM;
        self.injected_tel = m.counter(sub, names::faults::INJECTED);
        self.link_tel = m.counter(sub, names::faults::LINK_EVENTS);
        self.reboot_tel = m.counter(sub, names::faults::SWITCH_REBOOTS);
        self.controller_tel = m.counter(sub, names::faults::CONTROLLER_EVENTS);
        self.store_tel = m.counter(sub, names::faults::STORE_EVENTS);
        self.profile_tel = m.counter(sub, names::faults::MESSAGE_PROFILE_CHANGES);
    }

    /// The plan being driven.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters for events applied so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// `true` once every scheduled event has been applied.
    pub fn finished(&self) -> bool {
        self.cursor >= self.plan.events().len()
    }

    /// Applies every event due at or before `now`. Returns how many were
    /// applied.
    pub fn apply_due<T: FaultTarget>(
        &mut self,
        now: SimTime,
        net: &mut Network,
        ctrl: &mut T,
    ) -> usize {
        let mut applied = 0;
        while let Some(ev) = self.plan.events().get(self.cursor) {
            if ev.at > now {
                break;
            }
            let kind = ev.kind;
            self.cursor += 1;
            applied += 1;
            self.counters.injected += 1;
            self.injected_tel.inc();
            match kind {
                FaultKind::LinkDown { a, b } => {
                    net.set_link_state(a, b, 0.0);
                    self.counters.link_events += 1;
                    self.link_tel.inc();
                }
                FaultKind::LinkDegrade { a, b, factor } => {
                    net.set_link_state(a, b, factor);
                    self.counters.link_events += 1;
                    self.link_tel.inc();
                }
                FaultKind::LinkRestore { a, b } => {
                    net.set_link_state(a, b, 1.0);
                    self.counters.link_events += 1;
                    self.link_tel.inc();
                }
                FaultKind::SwitchReboot { dpid } => {
                    net.reboot_switch(dpid);
                    self.counters.switch_reboots += 1;
                    self.reboot_tel.inc();
                }
                FaultKind::ControllerCrash { instance } => {
                    ctrl.crash(instance);
                    self.counters.controller_events += 1;
                    self.controller_tel.inc();
                }
                FaultKind::ControllerRejoin { instance } => {
                    ctrl.rejoin(instance);
                    self.counters.controller_events += 1;
                    self.controller_tel.inc();
                }
                FaultKind::StoreNodeDown { node } => {
                    if let Some(store) = &self.store {
                        store.set_node_up(node, false);
                    }
                    self.counters.store_events += 1;
                    self.store_tel.inc();
                }
                FaultKind::StoreNodeUp { node } => {
                    if let Some(store) = &self.store {
                        store.set_node_up(node, true);
                    }
                    self.counters.store_events += 1;
                    self.store_tel.inc();
                }
                FaultKind::MessageFaults { profile } => {
                    ctrl.set_message_faults(profile);
                    self.counters.message_profile_changes += 1;
                    self.profile_tel.inc();
                }
            }
        }
        applied
    }
}

/// Runs the simulation to `until`, applying due fault events before each
/// tick — the chaos-matrix main loop. Equivalent to
/// [`Network::run_until`] plus fault injection (gauges are flushed at the
/// end, as `run_until` does).
pub fn run_with_faults<C: ControllerLink + FaultTarget>(
    net: &mut Network,
    until: SimTime,
    ctrl: &mut C,
    injector: &mut FaultInjector,
) {
    while net.now() < until {
        injector.apply_due(net.now(), net, ctrl);
        net.step(ctrl);
    }
    injector.apply_due(net.now(), net, ctrl);
    net.flush_gauges();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosChannel;
    use crate::plan::{MessageFaultProfile, Scenario};
    use athena_controller::ControllerCluster;
    use athena_dataplane::{workload, Topology};
    use athena_types::{ControllerId, SimDuration};

    fn harness() -> (Network, ControllerCluster, Topology) {
        let topo = Topology::enterprise();
        let net = Network::new(topo.clone());
        let cluster = ControllerCluster::new(&topo);
        (net, cluster, topo)
    }

    #[test]
    fn events_apply_at_their_scheduled_times() {
        let (mut net, mut cluster, _) = harness();
        let plan = FaultPlan::new(1)
            .at(
                SimTime::from_secs(3),
                FaultKind::ControllerCrash {
                    instance: ControllerId::new(0),
                },
            )
            .at(
                SimTime::from_secs(6),
                FaultKind::ControllerRejoin {
                    instance: ControllerId::new(0),
                },
            );
        let mut inj = FaultInjector::new(plan);
        while net.now() < SimTime::from_secs(4) {
            inj.apply_due(net.now(), &mut net, &mut cluster);
            net.step(&mut cluster);
        }
        assert!(!cluster.instance_alive(ControllerId::new(0)));
        assert!(!inj.finished());
        run_with_faults(&mut net, SimTime::from_secs(8), &mut cluster, &mut inj);
        assert!(cluster.instance_alive(ControllerId::new(0)));
        assert!(inj.finished());
        assert_eq!(inj.counters().controller_events, 2);
        assert_eq!(inj.counters().injected, 2);
    }

    #[test]
    fn link_and_switch_events_reach_the_dataplane() {
        let (mut net, mut cluster, topo) = harness();
        net.inject_flows(workload::benign_mix_on(
            &topo,
            40,
            SimDuration::from_secs(20),
            11,
        ));
        let plan =
            Scenario::SwitchReboot.plan(&topo, 0, 5, SimTime::from_secs(6), SimTime::from_secs(12));
        let mut inj = FaultInjector::new(plan);
        run_with_faults(&mut net, SimTime::from_secs(10), &mut cluster, &mut inj);
        assert_eq!(inj.counters().switch_reboots, 1);
        assert!(net.delivered_bytes() > 0);
    }

    #[test]
    fn store_events_flip_node_state_through_the_shared_handle() {
        let (mut net, mut cluster, _) = harness();
        let store = StoreCluster::new(3, 2);
        let plan = FaultPlan::new(2)
            .at(SimTime::from_secs(2), FaultKind::StoreNodeDown { node: 1 })
            .at(SimTime::from_secs(5), FaultKind::StoreNodeUp { node: 1 });
        let mut inj = FaultInjector::new(plan).with_store(store.clone());
        run_with_faults(&mut net, SimTime::from_secs(3), &mut cluster, &mut inj);
        assert!(!store.node_is_up(1));
        run_with_faults(&mut net, SimTime::from_secs(6), &mut cluster, &mut inj);
        assert!(store.node_is_up(1));
        assert_eq!(inj.counters().store_events, 2);
    }

    #[test]
    fn message_profile_events_reach_the_chaos_channel() {
        let tel = Telemetry::new();
        let (mut net, cluster, topo) = harness();
        let mut chaos = ChaosChannel::new(cluster, 13);
        chaos.bind_telemetry(&tel);
        net.inject_flows(workload::benign_mix_on(
            &topo,
            40,
            SimDuration::from_secs(12),
            13,
        ));
        let plan = FaultPlan::new(13)
            .at(
                SimTime::from_secs(3),
                FaultKind::MessageFaults {
                    profile: MessageFaultProfile::drops(0.5),
                },
            )
            .at(
                SimTime::from_secs(9),
                FaultKind::MessageFaults {
                    profile: MessageFaultProfile::none(),
                },
            );
        let mut inj = FaultInjector::new(plan);
        inj.bind_telemetry(&tel);
        run_with_faults(&mut net, SimTime::from_secs(12), &mut chaos, &mut inj);
        assert!(chaos.counters().dropped > 0, "no drops recorded");
        assert!(chaos.profile().is_none(), "profile not cleared");
        let m = tel.metrics();
        assert_eq!(m.counter("faults", "message_profile_changes").get(), 2);
        assert_eq!(m.counter("faults", "injected").get(), 2);
        assert_eq!(
            m.counter("faults", "msgs_dropped").get(),
            chaos.counters().dropped
        );
    }

    #[test]
    fn whole_run_is_deterministic_under_a_seed() {
        let run = || {
            let topo = Topology::enterprise();
            let mut net = Network::new(topo.clone());
            let cluster = ControllerCluster::new(&topo);
            let mut chaos = ChaosChannel::new(cluster, 21);
            net.inject_flows(workload::benign_mix_on(
                &topo,
                60,
                SimDuration::from_secs(15),
                21,
            ));
            let plan = Scenario::MessageDrop.plan(
                &topo,
                0,
                21,
                SimTime::from_secs(4),
                SimTime::from_secs(10),
            );
            let mut inj = FaultInjector::new(plan);
            run_with_faults(&mut net, SimTime::from_secs(15), &mut chaos, &mut inj);
            (
                net.counters(),
                chaos.counters(),
                chaos.inner().counters(),
                inj.counters(),
            )
        };
        assert_eq!(run(), run());
    }
}
