//! Deterministic, seeded fault injection for the Athena reproduction.
//!
//! Athena's claim (DSN 2017) is anomaly detection that keeps working on a
//! *distributed* substrate — an ONOS controller cluster, a replicated
//! store, distributed compute. That claim is only testable if failures
//! are scripted and reproducible, not injected by hand. This crate
//! provides:
//!
//! - [`FaultPlan`] / [`FaultKind`] — a sorted, virtual-time schedule of
//!   fault events: link flap/degrade, switch reboot, controller-instance
//!   crash/rejoin, store-replica outage/partition, and southbound
//!   message drop/delay/duplication ([`plan`] module),
//! - [`Scenario`] — the canonical chaos-matrix scenarios, each expanding
//!   to a plan as a pure function of `(topology, seed)`,
//! - [`FaultInjector`] — applies due events between dataplane ticks
//!   ([`run_with_faults`] is the drive loop), surfacing `faults/*`
//!   telemetry counters ([`injector`] module),
//! - [`ChaosChannel`] — a [`athena_dataplane::ControllerLink`] wrapper
//!   that drops/delays/duplicates southbound messages under a seeded
//!   profile ([`chaos`] module), and the [`FaultTarget`] trait the
//!   injector uses to reach controller-crash and message-fault knobs.
//!
//! Everything runs on virtual time with explicit seeds: the same
//! topology, workload, and plan seed reproduce the same run byte for
//! byte (asserted by the chaos determinism e2e test).
//!
//! # Examples
//!
//! ```
//! use athena_controller::ControllerCluster;
//! use athena_dataplane::{workload, Network, Topology};
//! use athena_faults::{run_with_faults, ChaosChannel, FaultInjector, Scenario};
//! use athena_types::{SimDuration, SimTime};
//!
//! let topo = Topology::enterprise();
//! let mut net = Network::new(topo.clone());
//! let mut ctrl = ChaosChannel::new(ControllerCluster::new(&topo), 42);
//! net.inject_flows(workload::benign_mix_on(&topo, 30, SimDuration::from_secs(10), 42));
//! let plan = Scenario::LinkFlap.plan(&topo, 0, 42, SimTime::from_secs(4), SimTime::from_secs(8));
//! let mut injector = FaultInjector::new(plan);
//! run_with_faults(&mut net, SimTime::from_secs(12), &mut ctrl, &mut injector);
//! assert!(injector.finished());
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
pub mod chaos;
pub mod injector;
pub mod plan;

pub use chaos::{ChaosChannel, FaultTarget, MessageFaultCounters};
pub use injector::{run_with_faults, FaultCounters, FaultInjector};
pub use plan::{FaultEvent, FaultKind, FaultPlan, MessageFaultProfile, Scenario};
