//! The chaos channel: a [`ControllerLink`] wrapper that drops, delays,
//! and duplicates southbound messages under a seeded profile.

use crate::plan::MessageFaultProfile;
use athena_controller::ControllerCluster;
use athena_dataplane::ControllerLink;
use athena_observe::Observe;
use athena_openflow::OfMessage;
use athena_telemetry::{names, Counter, Telemetry};
use athena_types::{ControllerId, Dpid, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// What the fault injector needs from a control plane: instance
/// crash/rejoin semantics and a message-fault knob. Control planes
/// without a notion of instances (test stubs) use the no-op defaults.
pub trait FaultTarget {
    /// Crashes a controller instance; returns how many switches moved.
    fn crash(&mut self, instance: ControllerId) -> usize {
        let _ = instance;
        0
    }

    /// Rejoins a crashed instance; returns how many switches moved back.
    fn rejoin(&mut self, instance: ControllerId) -> usize {
        let _ = instance;
        0
    }

    /// Replaces the active southbound message-fault profile.
    fn set_message_faults(&mut self, profile: MessageFaultProfile) {
        let _ = profile;
    }
}

impl FaultTarget for ControllerCluster {
    fn crash(&mut self, instance: ControllerId) -> usize {
        self.crash_instance(instance).len()
    }

    fn rejoin(&mut self, instance: ControllerId) -> usize {
        self.rejoin_instance(instance).len()
    }
}

impl FaultTarget for athena_dataplane::LearningControllerStub {}

/// Counters for the chaos channel's message faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageFaultCounters {
    /// Messages silently dropped.
    pub dropped: u64,
    /// Messages processed twice.
    pub duplicated: u64,
    /// Messages held back and delivered late.
    pub delayed: u64,
}

/// Wraps any [`ControllerLink`], injecting southbound message faults
/// (switch→controller direction) according to the active
/// [`MessageFaultProfile`]. With the default (empty) profile the wrapper
/// is transparent: no RNG draws, no behavioral change.
///
/// Delayed messages are re-delivered from [`ControllerLink::on_tick`], in
/// arrival order, once their release time passes — everything stays on
/// virtual time, so runs are deterministic under a fixed seed.
pub struct ChaosChannel<C> {
    inner: C,
    rng: StdRng,
    profile: MessageFaultProfile,
    delayed: VecDeque<(SimTime, Dpid, OfMessage)>,
    counters: MessageFaultCounters,
    dropped_tel: Counter,
    duplicated_tel: Counter,
    delayed_tel: Counter,
    observe: Observe,
}

impl<C> ChaosChannel<C> {
    /// Wraps `inner`, drawing fault decisions from `seed`. Starts with no
    /// message faults; the injector (or caller) activates a profile.
    pub fn new(inner: C, seed: u64) -> Self {
        ChaosChannel {
            inner,
            rng: StdRng::seed_from_u64(seed ^ 0xc4a0_5c4a),
            profile: MessageFaultProfile::none(),
            delayed: VecDeque::new(),
            counters: MessageFaultCounters::default(),
            dropped_tel: Counter::detached(),
            duplicated_tel: Counter::detached(),
            delayed_tel: Counter::detached(),
            observe: Observe::disabled(),
        }
    }

    /// Routes the channel's fault counters into `tel`.
    pub fn bind_telemetry(&mut self, tel: &Telemetry) {
        let m = tel.metrics();
        let sub = names::faults::SUBSYSTEM;
        self.dropped_tel = m.counter(sub, names::faults::MSGS_DROPPED);
        self.duplicated_tel = m.counter(sub, names::faults::MSGS_DUPLICATED);
        self.delayed_tel = m.counter(sub, names::faults::MSGS_DELAYED);
    }

    /// Routes causal events (drop/delay/duplicate decisions) and the
    /// late-delivery spans into `obs`.
    pub fn bind_observe(&mut self, obs: &Observe) {
        self.observe = obs.clone();
    }

    /// The wrapped control plane.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Mutable access to the wrapped control plane.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// The channel's fault counters.
    pub fn counters(&self) -> MessageFaultCounters {
        self.counters
    }

    /// The active profile.
    pub fn profile(&self) -> MessageFaultProfile {
        self.profile
    }

    /// Messages currently held in the delay queue.
    pub fn delayed_len(&self) -> usize {
        self.delayed.len()
    }
}

impl<C: ControllerLink> ControllerLink for ChaosChannel<C> {
    fn on_message(&mut self, from: Dpid, msg: OfMessage, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        if self.profile.is_none() {
            return self.inner.on_message(from, msg, now);
        }
        // Fixed draw order (drop, delay, dup) keeps the stream aligned
        // across runs with the same seed and message sequence.
        if self.profile.drop_p > 0.0 && self.rng.random_bool(self.profile.drop_p) {
            self.counters.dropped += 1;
            self.dropped_tel.inc();
            self.observe
                .event("faults", "msg_dropped", format!("dpid={}", from.raw()));
            return Vec::new();
        }
        if self.profile.delay_p > 0.0 && self.rng.random_bool(self.profile.delay_p) {
            self.counters.delayed += 1;
            self.delayed_tel.inc();
            self.observe
                .event("faults", "msg_delayed", format!("dpid={}", from.raw()));
            self.delayed
                .push_back((now + self.profile.delay, from, msg));
            return Vec::new();
        }
        if self.profile.dup_p > 0.0 && self.rng.random_bool(self.profile.dup_p) {
            self.counters.duplicated += 1;
            self.duplicated_tel.inc();
            let span = self.observe.span_at("faults", "chaos_hop", now);
            let mut out = self.inner.on_message(from, msg.clone(), now);
            out.extend(self.inner.on_message(from, msg, now));
            span.finish(format!("duplicated dpid={}", from.raw()));
            return out;
        }
        self.inner.on_message(from, msg, now)
    }

    fn on_tick(&mut self, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        let mut out = Vec::new();
        while let Some((release, _, _)) = self.delayed.front() {
            if *release > now {
                break;
            }
            let Some((_, from, msg)) = self.delayed.pop_front() else {
                break;
            };
            // Late delivery starts a fresh trace root: the original
            // packet-in's context is long gone by release time.
            let span = self.observe.span_at("faults", "delayed_delivery", now);
            out.extend(self.inner.on_message(from, msg, now));
            span.finish(format!("dpid={}", from.raw()));
        }
        out.extend(self.inner.on_tick(now));
        out
    }
}

impl<C: FaultTarget> FaultTarget for ChaosChannel<C> {
    fn crash(&mut self, instance: ControllerId) -> usize {
        self.inner.crash(instance)
    }

    fn rejoin(&mut self, instance: ControllerId) -> usize {
        self.inner.rejoin(instance)
    }

    fn set_message_faults(&mut self, profile: MessageFaultProfile) {
        self.profile = profile;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::SimDuration;

    /// Records every message it sees; replies nothing.
    #[derive(Default)]
    struct Sink {
        seen: Vec<(Dpid, SimTime)>,
    }

    impl ControllerLink for Sink {
        fn on_message(
            &mut self,
            from: Dpid,
            _msg: OfMessage,
            now: SimTime,
        ) -> Vec<(Dpid, OfMessage)> {
            self.seen.push((from, now));
            Vec::new()
        }
    }

    impl FaultTarget for Sink {}

    fn hello(i: u32) -> OfMessage {
        OfMessage::Hello {
            xid: athena_types::Xid::new(i),
            version: 4,
        }
    }

    #[test]
    fn empty_profile_is_transparent() {
        let mut ch = ChaosChannel::new(Sink::default(), 1);
        for i in 1..=50 {
            ch.on_message(Dpid::new(1), hello(i), SimTime::from_secs(1));
        }
        assert_eq!(ch.inner().seen.len(), 50);
        assert_eq!(ch.counters(), MessageFaultCounters::default());
    }

    #[test]
    fn drops_are_seeded_and_counted() {
        let run = |seed| {
            let mut ch = ChaosChannel::new(Sink::default(), seed);
            ch.set_message_faults(MessageFaultProfile::drops(0.5));
            for i in 1..=200 {
                ch.on_message(Dpid::new(1), hello(i), SimTime::from_secs(1));
            }
            (ch.inner().seen.len(), ch.counters())
        };
        let (n1, c1) = run(7);
        let (n2, c2) = run(7);
        assert_eq!(n1, n2);
        assert_eq!(c1, c2);
        assert!(
            c1.dropped > 50 && c1.dropped < 150,
            "dropped {}",
            c1.dropped
        );
        assert_eq!(n1 as u64 + c1.dropped, 200);
    }

    #[test]
    fn delayed_messages_arrive_after_release() {
        let mut ch = ChaosChannel::new(Sink::default(), 3);
        ch.set_message_faults(MessageFaultProfile::delays(1.0, SimDuration::from_secs(3)));
        ch.on_message(Dpid::new(1), hello(1), SimTime::from_secs(1));
        assert!(ch.inner().seen.is_empty());
        assert_eq!(ch.delayed_len(), 1);
        // Not due yet.
        ch.on_tick(SimTime::from_secs(2));
        assert!(ch.inner().seen.is_empty());
        // Due: release = 1 + 3 = 4.
        ch.on_tick(SimTime::from_secs(4));
        assert_eq!(ch.inner().seen, vec![(Dpid::new(1), SimTime::from_secs(4))]);
        assert_eq!(ch.counters().delayed, 1);
        assert_eq!(ch.delayed_len(), 0);
    }

    #[test]
    fn duplicates_double_process() {
        let tel = Telemetry::new();
        let mut ch = ChaosChannel::new(Sink::default(), 5);
        ch.bind_telemetry(&tel);
        ch.set_message_faults(MessageFaultProfile::duplicates(1.0));
        ch.on_message(Dpid::new(2), hello(1), SimTime::from_secs(1));
        assert_eq!(ch.inner().seen.len(), 2);
        assert_eq!(ch.counters().duplicated, 1);
        assert_eq!(tel.metrics().counter("faults", "msgs_duplicated").get(), 1);
    }

    #[test]
    fn clearing_the_profile_restores_transparency() {
        let mut ch = ChaosChannel::new(Sink::default(), 9);
        ch.set_message_faults(MessageFaultProfile::drops(1.0));
        ch.on_message(Dpid::new(1), hello(1), SimTime::from_secs(1));
        assert!(ch.inner().seen.is_empty());
        ch.set_message_faults(MessageFaultProfile::none());
        ch.on_message(Dpid::new(1), hello(2), SimTime::from_secs(2));
        assert_eq!(ch.inner().seen.len(), 1);
    }
}
