//! Fault plans: seeded, virtual-time schedules of fault events.
//!
//! A [`FaultPlan`] is a sorted list of [`FaultEvent`]s. Everything about a
//! plan — which link flaps, which controller instance dies, when the store
//! partition heals — is a pure function of the topology, the scenario, and
//! the seed, so a run under a plan is reproducible bit-for-bit.

use athena_dataplane::Topology;
use athena_types::{ControllerId, Dpid, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Southbound message-fault probabilities, applied by
/// [`crate::ChaosChannel`] to every switch→controller message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageFaultProfile {
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a delivered message is processed twice.
    pub dup_p: f64,
    /// Probability a message is held back by [`MessageFaultProfile::delay`].
    pub delay_p: f64,
    /// How long delayed messages are held.
    pub delay: SimDuration,
}

impl Default for MessageFaultProfile {
    fn default() -> Self {
        MessageFaultProfile {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay: SimDuration::ZERO,
        }
    }
}

impl MessageFaultProfile {
    /// The healthy profile: no message faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Drops each message with probability `p`.
    pub fn drops(p: f64) -> Self {
        MessageFaultProfile {
            drop_p: p,
            ..Self::default()
        }
    }

    /// Duplicates each message with probability `p`.
    pub fn duplicates(p: f64) -> Self {
        MessageFaultProfile {
            dup_p: p,
            ..Self::default()
        }
    }

    /// Delays each message by `delay` with probability `p`.
    pub fn delays(p: f64, delay: SimDuration) -> Self {
        MessageFaultProfile {
            delay_p: p,
            delay,
            ..Self::default()
        }
    }

    /// `true` if the profile injects nothing.
    pub fn is_none(&self) -> bool {
        self.drop_p <= 0.0 && self.dup_p <= 0.0 && self.delay_p <= 0.0
    }
}

/// One kind of fault the injector can apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Both directions of the `a`↔`b` link go down (capacity factor 0).
    LinkDown {
        /// One endpoint switch.
        a: Dpid,
        /// The other endpoint switch.
        b: Dpid,
    },
    /// Both directions of the `a`↔`b` link degrade to `factor` capacity.
    LinkDegrade {
        /// One endpoint switch.
        a: Dpid,
        /// The other endpoint switch.
        b: Dpid,
        /// Remaining capacity fraction in `(0, 1)`.
        factor: f64,
    },
    /// The `a`↔`b` link returns to full capacity.
    LinkRestore {
        /// One endpoint switch.
        a: Dpid,
        /// The other endpoint switch.
        b: Dpid,
    },
    /// A switch power-cycles: flow table and port counters wiped.
    SwitchReboot {
        /// The rebooting switch.
        dpid: Dpid,
    },
    /// A controller instance crashes; its switches re-elect masters.
    ControllerCrash {
        /// The crashing instance.
        instance: ControllerId,
    },
    /// A crashed controller instance rejoins and reclaims its switches.
    ControllerRejoin {
        /// The rejoining instance.
        instance: ControllerId,
    },
    /// A store replica goes down (writes hand off, reads degrade).
    StoreNodeDown {
        /// Index of the node.
        node: usize,
    },
    /// A downed store replica comes back.
    StoreNodeUp {
        /// Index of the node.
        node: usize,
    },
    /// Replaces the active southbound message-fault profile
    /// (`MessageFaultProfile::none()` clears it).
    MessageFaults {
        /// The profile to apply from this event on.
        profile: MessageFaultProfile,
    },
}

/// A fault scheduled at a virtual instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault applies (takes effect on the first tick at or after
    /// this time).
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, sorted schedule of fault events.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given seed (the seed also drives the chaos
    /// channel's message-fault draws).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds an event, keeping the schedule sorted by time (ties keep
    /// insertion order, so plans are deterministic).
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The canonical fault scenarios the chaos matrix runs — one per fault
/// class the paper's distributed substrate must absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// A core link goes down mid-run and comes back (flap).
    LinkFlap,
    /// A core link degrades to a quarter of its capacity, then recovers.
    LinkDegrade,
    /// A switch reboots, losing all flow state and counters.
    SwitchReboot,
    /// A controller instance crashes and later rejoins.
    ControllerCrash,
    /// One store replica goes down and later recovers.
    StoreOutage,
    /// A minority of store replicas drop out simultaneously (partition),
    /// then heal.
    StorePartition,
    /// Southbound messages are dropped with probability 0.3.
    MessageDrop,
    /// Southbound messages are delayed two ticks with probability 0.5.
    MessageDelay,
    /// Southbound messages are duplicated with probability 0.5.
    MessageDuplicate,
}

impl Scenario {
    /// Every scenario, in a fixed order.
    pub fn all() -> &'static [Scenario] {
        &[
            Scenario::LinkFlap,
            Scenario::LinkDegrade,
            Scenario::SwitchReboot,
            Scenario::ControllerCrash,
            Scenario::StoreOutage,
            Scenario::StorePartition,
            Scenario::MessageDrop,
            Scenario::MessageDelay,
            Scenario::MessageDuplicate,
        ]
    }

    /// A stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::LinkFlap => "link_flap",
            Scenario::LinkDegrade => "link_degrade",
            Scenario::SwitchReboot => "switch_reboot",
            Scenario::ControllerCrash => "controller_crash",
            Scenario::StoreOutage => "store_outage",
            Scenario::StorePartition => "store_partition",
            Scenario::MessageDrop => "message_drop",
            Scenario::MessageDelay => "message_delay",
            Scenario::MessageDuplicate => "message_duplicate",
        }
    }

    /// Builds this scenario's plan for a topology: the fault strikes at
    /// `inject_at` and heals at `recover_at` (instantaneous faults like a
    /// reboot only use `inject_at`). Target selection — which link,
    /// switch, instance, or store node — is drawn from `seed`, so the
    /// same `(topology, scenario, seed)` always yields the same plan.
    ///
    /// `store_nodes` is the node count of the store cluster the injector
    /// will drive (0 is fine for store scenarios — they become empty
    /// plans, so pass the real count when running them).
    pub fn plan(
        self,
        topo: &Topology,
        store_nodes: usize,
        seed: u64,
        inject_at: SimTime,
        recover_at: SimTime,
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_0000 ^ self as u64);
        let plan = FaultPlan::new(seed);
        match self {
            Scenario::LinkFlap => {
                let (a, b) = pick_link(topo, &mut rng);
                plan.at(inject_at, FaultKind::LinkDown { a, b })
                    .at(recover_at, FaultKind::LinkRestore { a, b })
            }
            Scenario::LinkDegrade => {
                let (a, b) = pick_link(topo, &mut rng);
                plan.at(inject_at, FaultKind::LinkDegrade { a, b, factor: 0.25 })
                    .at(recover_at, FaultKind::LinkRestore { a, b })
            }
            Scenario::SwitchReboot => {
                let dpid = pick_switch(topo, &mut rng);
                plan.at(inject_at, FaultKind::SwitchReboot { dpid })
            }
            Scenario::ControllerCrash => {
                let instance = pick_instance(topo, &mut rng);
                plan.at(inject_at, FaultKind::ControllerCrash { instance })
                    .at(recover_at, FaultKind::ControllerRejoin { instance })
            }
            Scenario::StoreOutage => {
                if store_nodes == 0 {
                    return plan;
                }
                let node = rng.random_range(0..store_nodes);
                plan.at(inject_at, FaultKind::StoreNodeDown { node })
                    .at(recover_at, FaultKind::StoreNodeUp { node })
            }
            Scenario::StorePartition => {
                if store_nodes == 0 {
                    return plan;
                }
                // A strict minority drops out so quorum writes survive.
                let k = ((store_nodes.saturating_sub(1)) / 2).max(1);
                let first = rng.random_range(0..store_nodes);
                let mut plan = plan;
                for i in 0..k {
                    let node = (first + i) % store_nodes;
                    plan = plan
                        .at(inject_at, FaultKind::StoreNodeDown { node })
                        .at(recover_at, FaultKind::StoreNodeUp { node });
                }
                plan
            }
            Scenario::MessageDrop => {
                profile_window(plan, MessageFaultProfile::drops(0.3), inject_at, recover_at)
            }
            Scenario::MessageDelay => profile_window(
                plan,
                MessageFaultProfile::delays(0.5, SimDuration::from_secs(2)),
                inject_at,
                recover_at,
            ),
            Scenario::MessageDuplicate => profile_window(
                plan,
                MessageFaultProfile::duplicates(0.5),
                inject_at,
                recover_at,
            ),
        }
    }
}

fn profile_window(
    plan: FaultPlan,
    profile: MessageFaultProfile,
    inject_at: SimTime,
    recover_at: SimTime,
) -> FaultPlan {
    plan.at(inject_at, FaultKind::MessageFaults { profile }).at(
        recover_at,
        FaultKind::MessageFaults {
            profile: MessageFaultProfile::none(),
        },
    )
}

/// Picks an inter-switch link, deterministically from the rng.
fn pick_link(topo: &Topology, rng: &mut StdRng) -> (Dpid, Dpid) {
    let mut pairs: Vec<(Dpid, Dpid)> = topo.links.iter().map(|l| (l.a.0, l.b.0)).collect();
    pairs.sort_by_key(|(a, b)| (a.raw(), b.raw()));
    pairs.dedup();
    if pairs.is_empty() {
        return (Dpid::new(0), Dpid::new(0));
    }
    pairs[rng.random_range(0..pairs.len())]
}

/// Picks a switch, deterministically from the rng.
fn pick_switch(topo: &Topology, rng: &mut StdRng) -> Dpid {
    let mut dpids: Vec<Dpid> = topo.switches.iter().map(|s| s.dpid).collect();
    dpids.sort();
    if dpids.is_empty() {
        return Dpid::new(0);
    }
    dpids[rng.random_range(0..dpids.len())]
}

/// Picks a controller instance, deterministically from the rng.
fn pick_instance(topo: &Topology, rng: &mut StdRng) -> ControllerId {
    let mut ids: Vec<ControllerId> = topo.switches.iter().map(|s| s.controller).collect();
    ids.sort();
    ids.dedup();
    if ids.is_empty() {
        return ControllerId::new(0);
    }
    ids[rng.random_range(0..ids.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_sorted_and_deterministic() {
        let topo = Topology::enterprise();
        for &s in Scenario::all() {
            let a = s.plan(&topo, 3, 42, SimTime::from_secs(10), SimTime::from_secs(20));
            let b = s.plan(&topo, 3, 42, SimTime::from_secs(10), SimTime::from_secs(20));
            assert_eq!(a, b, "{} not deterministic", s.name());
            assert!(
                a.events().windows(2).all(|w| w[0].at <= w[1].at),
                "{} not sorted",
                s.name()
            );
            assert!(!a.is_empty(), "{} plans nothing", s.name());
        }
    }

    #[test]
    fn seeds_change_targets() {
        let topo = Topology::enterprise();
        let plans: Vec<FaultPlan> = (0..8)
            .map(|seed| {
                Scenario::SwitchReboot.plan(
                    &topo,
                    3,
                    seed,
                    SimTime::from_secs(10),
                    SimTime::from_secs(20),
                )
            })
            .collect();
        let distinct = plans
            .iter()
            .map(|p| format!("{:?}", p.events()))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 1, "seed does not influence target choice");
    }

    #[test]
    fn partition_downs_a_strict_minority() {
        let topo = Topology::enterprise();
        let plan = Scenario::StorePartition.plan(
            &topo,
            5,
            7,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        let downs = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::StoreNodeDown { .. }))
            .count();
        assert_eq!(downs, 2);
        let ups = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::StoreNodeUp { .. }))
            .count();
        assert_eq!(ups, downs);
    }

    #[test]
    fn builder_sorts_out_of_order_events() {
        let plan = FaultPlan::new(1)
            .at(
                SimTime::from_secs(9),
                FaultKind::SwitchReboot { dpid: Dpid::new(1) },
            )
            .at(
                SimTime::from_secs(3),
                FaultKind::SwitchReboot { dpid: Dpid::new(2) },
            );
        assert_eq!(plan.events()[0].at, SimTime::from_secs(3));
        assert_eq!(plan.len(), 2);
    }
}
