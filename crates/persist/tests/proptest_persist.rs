//! Corruption-injection properties for the persist layer.
//!
//! A journal directory is written with a known history (appends, optionally
//! a mid-history checkpoint), then mangled — bit flips anywhere, truncation,
//! duplicated segments, reordered segments — and reopened. Recovery must
//! never panic and must never yield state that is not a *prefix* of the
//! true history: a (possibly older) checkpoint we actually took, followed
//! by consecutive genuine records. Silent corruption — wrong payloads,
//! reordered ops, invented records — fails the property.

use athena_persist::record::kind;
use athena_persist::{read_snapshot_file, write_snapshot_file, Journal, PersistConfig};
use athena_types::SimTime;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn test_dir() -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "athena-persist-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn op_payload(seq: u64) -> Vec<u8> {
    format!("op-{seq}-padding-to-make-records-nontrivial").into_bytes()
}

fn ckpt_payload(seq: u64) -> Vec<u8> {
    format!("ckpt-after-{seq}").into_bytes()
}

/// Small segments so histories span several files.
fn config(dir: &Path) -> PersistConfig {
    PersistConfig {
        dir: dir.to_path_buf(),
        segment_max_bytes: 160,
    }
}

/// Writes `n_ops` appends, checkpointing after op `ckpt_at` (0 = never).
fn write_history(dir: &Path, n_ops: u64, ckpt_at: u64) {
    let (mut j, _) = Journal::open(config(dir)).unwrap();
    for seq in 1..=n_ops {
        j.append(kind::STORE_OP, &op_payload(seq), SimTime::from_micros(seq))
            .unwrap();
        if seq == ckpt_at {
            j.checkpoint(&ckpt_payload(seq), SimTime::from_micros(seq))
                .unwrap();
        }
    }
}

/// All persist files in the directory, sorted for determinism.
fn files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .collect();
    out.sort();
    out
}

/// Reopens the directory and checks the prefix property.
fn assert_recovery_sound(dir: &Path, n_ops: u64, ckpt_at: u64) {
    let (_, recovery) = Journal::open(config(dir)).expect("recovery must not error");
    let base_seq = match &recovery.checkpoint {
        Some(ck) => {
            // Any recovered checkpoint must be one we genuinely took.
            prop_assert!(ckpt_at > 0, "recovered a checkpoint that was never written");
            prop_assert_eq!(ck.seq, ckpt_at);
            prop_assert_eq!(&ck.payload, &ckpt_payload(ckpt_at));
            ck.seq
        }
        None => 0,
    };
    prop_assert!(recovery.tail.len() as u64 <= n_ops);
    for (i, rec) in recovery.tail.iter().enumerate() {
        let want_seq = base_seq + 1 + i as u64;
        prop_assert_eq!(rec.seq, want_seq, "tail seq not consecutive");
        prop_assert!(want_seq <= n_ops, "tail contains a record never appended");
        prop_assert_eq!(&rec.payload, &op_payload(want_seq), "payload mismatch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single bit flip anywhere in any persist file never panics, never
    /// errors, and never surfaces non-genuine state.
    #[test]
    fn bit_flips_never_yield_corrupt_state(
        n_ops in 1u64..32,
        ckpt_frac in 0u64..100,
        file_pick in 0usize..64,
        byte_pick in 0usize..4096,
        bit in 0u32..8,
    ) {
        let ckpt_at = n_ops * ckpt_frac / 100;
        let dir = test_dir();
        write_history(&dir, n_ops, ckpt_at);
        let fs = files(&dir);
        let path = &fs[file_pick % fs.len()];
        let mut bytes = std::fs::read(path).unwrap();
        if !bytes.is_empty() {
            let pos = byte_pick % bytes.len();
            bytes[pos] ^= 1 << bit;
            std::fs::write(path, &bytes).unwrap();
        }
        assert_recovery_sound(&dir, n_ops, ckpt_at);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Truncating any file at any point (a torn write) recovers a clean
    /// prefix of the history.
    #[test]
    fn truncation_never_yields_corrupt_state(
        n_ops in 1u64..32,
        ckpt_frac in 0u64..100,
        file_pick in 0usize..64,
        cut_frac in 0u64..100,
    ) {
        let ckpt_at = n_ops * ckpt_frac / 100;
        let dir = test_dir();
        write_history(&dir, n_ops, ckpt_at);
        let fs = files(&dir);
        let path = &fs[file_pick % fs.len()];
        let bytes = std::fs::read(path).unwrap();
        let keep = (bytes.len() as u64 * cut_frac / 100) as usize;
        std::fs::write(path, &bytes[..keep]).unwrap();
        assert_recovery_sound(&dir, n_ops, ckpt_at);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Duplicating a WAL segment under a fresh (later) name only produces
    /// already-seen sequence numbers, which recovery skips: the history is
    /// intact and nothing is applied twice.
    #[test]
    fn duplicated_segments_are_idempotent(
        n_ops in 1u64..32,
        ckpt_frac in 0u64..100,
        file_pick in 0usize..64,
    ) {
        let ckpt_at = n_ops * ckpt_frac / 100;
        let dir = test_dir();
        write_history(&dir, n_ops, ckpt_at);
        let segs: Vec<PathBuf> = files(&dir)
            .into_iter()
            .filter(|p| p.extension().is_some_and(|e| e == "log"))
            .collect();
        if !segs.is_empty() {
            let src = &segs[file_pick % segs.len()];
            std::fs::copy(src, dir.join("wal-000099.log")).unwrap();
            let (_, recovery) = Journal::open(config(&dir)).expect("recovery must not error");
            // Duplication loses nothing: the full post-checkpoint tail is
            // still recovered exactly once.
            prop_assert_eq!(recovery.tail.len() as u64, n_ops - ckpt_at);
            prop_assert!(recovery.stats.duplicates_skipped > 0);
            assert_recovery_sound(&dir, n_ops, ckpt_at);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Swapping two segment file names (reordered segments) never yields
    /// out-of-order or invented state — recovery stops at the resulting
    /// sequence gap instead.
    #[test]
    fn reordered_segments_never_yield_corrupt_state(
        n_ops in 1u64..48,
        ckpt_frac in 0u64..100,
        pick_a in 0usize..64,
        pick_b in 0usize..64,
    ) {
        let ckpt_at = n_ops * ckpt_frac / 100;
        let dir = test_dir();
        write_history(&dir, n_ops, ckpt_at);
        let segs: Vec<PathBuf> = files(&dir)
            .into_iter()
            .filter(|p| p.extension().is_some_and(|e| e == "log"))
            .collect();
        if segs.len() >= 2 {
            let a = &segs[pick_a % segs.len()];
            let b = &segs[pick_b % segs.len()];
            if a != b {
                let tmp = dir.join("swap.tmp");
                std::fs::rename(a, &tmp).unwrap();
                std::fs::rename(b, a).unwrap();
                std::fs::rename(&tmp, b).unwrap();
            }
        }
        assert_recovery_sound(&dir, n_ops, ckpt_at);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Standalone snapshot files (model persistence) reject every single-bit
    /// flip with an error — never a panic, never a silently-different
    /// payload.
    #[test]
    fn snapshot_files_reject_bit_flips(
        payload in proptest::collection::vec(0u8..=255, 0..200),
        byte_pick in 0usize..4096,
        bit in 0u32..8,
    ) {
        let dir = test_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        write_snapshot_file(&path, kind::MODEL, &payload, SimTime::from_secs(1)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = byte_pick % bytes.len();
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(read_snapshot_file(&path, kind::MODEL).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
