//! Write-ahead logging and checkpoint/restore for the Athena reproduction.
//!
//! The Athena paper (Lee et al., DSN 2017) delegates durability to its
//! backing services: MongoDB journals the feature database, and Spark
//! recomputes lost partitions. This reproduction's store, controllers, and
//! trained models are in-process, so this crate supplies the equivalent
//! guarantee from scratch:
//!
//! - [`record`] — versioned record framing with CRC32 checksums, shared by
//!   WAL segments, checkpoint files, and standalone model snapshots,
//! - [`crc`] — the checksum itself (IEEE, const-table, allocation-free),
//! - [`wal`] — an append-only segmented log that truncates torn or corrupt
//!   tails on replay instead of panicking,
//! - [`journal`] — WAL + point-in-time checkpoints under one data
//!   directory; recovery = newest valid checkpoint + WAL tail replay.
//!
//! Everything is deterministic: records are stamped with virtual time
//! ([`athena_types::SimTime`]), file names are derived from sequence
//! numbers, and nothing is fsynced — the crate models crash-consistent
//! recovery for the simulation, not disk physics.
//!
//! # Examples
//!
//! ```
//! use athena_persist::{Journal, PersistConfig, record::kind};
//! use athena_types::SimTime;
//!
//! let dir = std::env::temp_dir().join(format!("athena-persist-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let (mut journal, recovery) = Journal::open(PersistConfig::new(&dir))?;
//! assert!(recovery.checkpoint.is_none());
//! journal.append(kind::STORE_OP, b"insert {..}", SimTime::from_secs(1))?;
//! journal.checkpoint(b"full snapshot", SimTime::from_secs(2))?;
//!
//! // A later open recovers the checkpoint (and any WAL tail after it).
//! let (_journal, recovery) = Journal::open(PersistConfig::new(&dir))?;
//! assert_eq!(recovery.checkpoint.unwrap().payload, b"full snapshot");
//! std::fs::remove_dir_all(&dir).unwrap();
//! # Ok::<(), athena_types::AthenaError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod crc;
pub mod journal;
pub mod record;
pub mod wal;

pub use crc::crc32;
pub use journal::{
    read_snapshot_file, write_snapshot_file, Checkpoint, Journal, PersistConfig, Recovery,
};
pub use record::{Decoded, Record};
pub use wal::{Replay, ReplayStats, Wal};
