//! The append-only, segmented write-ahead log.
//!
//! Segments are named `wal-NNNNNN.log` (zero-padded, so lexicographic order
//! is append order) under the journal's data directory. Appends go to the
//! highest segment and roll over once it would exceed the configured
//! segment size. Nothing is fsynced — durability in this deterministic
//! reproduction means "what made it to the file system", mirroring how the
//! paper leans on MongoDB's journal without managing disks itself.
//!
//! Replay walks segments in order and decodes records front-to-back:
//!
//! - a torn or corrupt record ends the log — the tail is *physically
//!   truncated* from the segment, later segments are ignored (their records
//!   would leave a gap), and the event is counted, never panicked on;
//! - a record whose sequence number is `<=` the last accepted one is a
//!   duplicate (e.g. a copied segment) and is skipped;
//! - a forward jump in sequence numbers means records were lost between
//!   segments; replay stops there rather than apply post-gap state.

use crate::record::{self, Decoded, Record};
use athena_types::{AthenaError, Result, SimTime};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Statistics from one replay pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Valid records accepted.
    pub replayed: u64,
    /// Torn or corrupt tails truncated (at most one per replay — the log
    /// ends at the first).
    pub tails_truncated: u64,
    /// Records skipped because their sequence number was already seen.
    pub duplicates_skipped: u64,
    /// Replay stopped early at a forward sequence gap.
    pub stopped_at_gap: bool,
}

/// Result of replaying a WAL directory.
#[derive(Debug, Default)]
pub struct Replay {
    /// Accepted records, in sequence order.
    pub records: Vec<Record>,
    /// What happened along the way.
    pub stats: ReplayStats,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> AthenaError {
    AthenaError::Persist(format!("{what} {}: {e}", path.display()))
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

/// Lists WAL segment files in `dir`, sorted by segment index.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(segs),
        Err(e) => return Err(io_err("read dir", dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir", dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segs.push((idx, entry.path()));
        }
    }
    segs.sort();
    Ok(segs)
}

/// Replays every segment under `dir`, truncating the first torn/corrupt
/// tail in place and skipping duplicate sequence numbers. `after_seq`
/// filters out records already covered by a checkpoint.
pub fn replay_dir(dir: &Path, after_seq: u64) -> Result<Replay> {
    let mut out = Replay::default();
    let mut last_seq = after_seq;
    for (_, path) in list_segments(dir)? {
        let bytes = fs::read(&path).map_err(|e| io_err("read", &path, e))?;
        let mut offset = 0;
        while offset < bytes.len() {
            match record::decode(&bytes[offset..]) {
                Decoded::Record(rec, consumed) => {
                    offset += consumed;
                    if rec.seq <= last_seq {
                        out.stats.duplicates_skipped += 1;
                        continue;
                    }
                    if rec.seq > last_seq + 1 {
                        // A forward gap: records between last_seq and
                        // rec.seq are missing. Applying later state would
                        // be silently wrong — stop here.
                        out.stats.stopped_at_gap = true;
                        return Ok(out);
                    }
                    last_seq = rec.seq;
                    out.stats.replayed += 1;
                    out.records.push(rec);
                }
                Decoded::Incomplete | Decoded::Corrupt => {
                    // Torn or corrupt tail: cut it off and end the log here.
                    let f = fs::OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(|e| io_err("open", &path, e))?;
                    f.set_len(offset as u64)
                        .map_err(|e| io_err("truncate", &path, e))?;
                    out.stats.tails_truncated += 1;
                    return Ok(out);
                }
            }
        }
    }
    Ok(out)
}

/// The writer half: appends framed records to the current segment.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    segment_max_bytes: u64,
    seg_index: u64,
    seg_bytes: u64,
}

impl Wal {
    /// Opens the WAL under `dir` for appending, continuing the highest
    /// existing segment.
    pub fn open(dir: &Path, segment_max_bytes: u64) -> Result<Self> {
        fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, e))?;
        let (seg_index, seg_bytes) = match list_segments(dir)?.last() {
            Some((idx, path)) => {
                let len = fs::metadata(path)
                    .map_err(|e| io_err("stat", path, e))?
                    .len();
                (*idx, len)
            }
            None => (0, 0),
        };
        Ok(Wal {
            dir: dir.to_path_buf(),
            segment_max_bytes,
            seg_index,
            seg_bytes,
        })
    }

    /// Appends one framed record, rolling to a new segment when the current
    /// one is full. Returns the encoded length in bytes.
    pub fn append(&mut self, kind: u8, seq: u64, time: SimTime, payload: &[u8]) -> Result<usize> {
        let bytes = record::encode(kind, seq, time, payload);
        if self.seg_bytes > 0 && self.seg_bytes + bytes.len() as u64 > self.segment_max_bytes {
            self.seg_index += 1;
            self.seg_bytes = 0;
        }
        let path = segment_path(&self.dir, self.seg_index);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        f.write_all(&bytes)
            .map_err(|e| io_err("append", &path, e))?;
        self.seg_bytes += bytes.len() as u64;
        Ok(bytes.len())
    }

    /// Deletes every segment and resets to segment 0 — called after a
    /// checkpoint supersedes the log.
    pub fn reset(&mut self) -> Result<()> {
        for (_, path) in list_segments(&self.dir)? {
            fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
        }
        self.seg_index = 0;
        self.seg_bytes = 0;
        Ok(())
    }

    /// Number of the segment currently being appended to.
    pub fn segment_index(&self) -> u64 {
        self.seg_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::kind;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "athena-wal-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn fill(wal: &mut Wal, n: u64) {
        for seq in 1..=n {
            wal.append(
                kind::STORE_OP,
                seq,
                SimTime::from_micros(seq),
                format!("payload {seq}").as_bytes(),
            )
            .unwrap();
        }
    }

    #[test]
    fn append_replay_round_trips() {
        let dir = test_dir();
        let mut wal = Wal::open(&dir, 1 << 20).unwrap();
        fill(&mut wal, 10);
        let replay = replay_dir(&dir, 0).unwrap();
        assert_eq!(replay.stats.replayed, 10);
        assert_eq!(replay.stats.tails_truncated, 0);
        assert_eq!(replay.records.len(), 10);
        assert_eq!(replay.records[4].payload, b"payload 5");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rolls_segments_and_replays_across_them() {
        let dir = test_dir();
        let mut wal = Wal::open(&dir, 128).unwrap();
        fill(&mut wal, 20);
        assert!(wal.segment_index() > 0, "expected rollover");
        let replay = replay_dir(&dir, 0).unwrap();
        assert_eq!(replay.stats.replayed, 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = test_dir();
        let mut wal = Wal::open(&dir, 1 << 20).unwrap();
        fill(&mut wal, 5);
        let path = segment_path(&dir, 0);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let replay = replay_dir(&dir, 0).unwrap();
        assert_eq!(replay.stats.replayed, 4);
        assert_eq!(replay.stats.tails_truncated, 1);
        // The truncated log now replays cleanly.
        let again = replay_dir(&dir, 0).unwrap();
        assert_eq!(again.stats.replayed, 4);
        assert_eq!(again.stats.tails_truncated, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicated_segment_is_skipped() {
        let dir = test_dir();
        let mut wal = Wal::open(&dir, 1 << 20).unwrap();
        fill(&mut wal, 6);
        fs::copy(segment_path(&dir, 0), segment_path(&dir, 1)).unwrap();
        let replay = replay_dir(&dir, 0).unwrap();
        assert_eq!(replay.stats.replayed, 6);
        assert_eq!(replay.stats.duplicates_skipped, 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_continues_the_sequence() {
        let dir = test_dir();
        let mut wal = Wal::open(&dir, 256).unwrap();
        fill(&mut wal, 8);
        drop(wal);
        let mut wal = Wal::open(&dir, 256).unwrap();
        for seq in 9..=12 {
            wal.append(kind::STORE_OP, seq, SimTime::from_micros(seq), b"more")
                .unwrap();
        }
        let replay = replay_dir(&dir, 0).unwrap();
        assert_eq!(replay.stats.replayed, 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn after_seq_filters_checkpoint_covered_records() {
        let dir = test_dir();
        let mut wal = Wal::open(&dir, 1 << 20).unwrap();
        fill(&mut wal, 10);
        let replay = replay_dir(&dir, 7).unwrap();
        assert_eq!(replay.stats.replayed, 3);
        assert_eq!(replay.records[0].seq, 8);
        fs::remove_dir_all(&dir).unwrap();
    }
}
