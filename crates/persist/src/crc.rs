//! CRC32 (IEEE 802.3, polynomial `0xEDB88320`) over byte slices.
//!
//! The table is built in a `const` context so the checksum path allocates
//! nothing and needs no lazy initialization — WAL appends sit on the store
//! write path.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// A streaming CRC32 state; feed it slices, then [`Crc32::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub const fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            let idx = ((crc ^ b as u32) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Finalizes and returns the checksum.
    pub const fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut c = Crc32::new();
        c.update(b"The quick brown fox ");
        c.update(b"jumps over the lazy dog");
        assert_eq!(c.finish(), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"athena write-ahead log record payload".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
