//! The journal: a WAL plus point-in-time checkpoints under one data
//! directory, with crash-consistent recovery.
//!
//! File layout under the configured directory:
//!
//! ```text
//! <dir>/wal-000000.log    append-only segments (see [`crate::wal`])
//! <dir>/wal-000001.log
//! <dir>/ckpt-00000000000000000042.ck   one framed CHECKPOINT record;
//!                                      42 = highest WAL seq it covers
//! ```
//!
//! A checkpoint supersedes the WAL: writing one deletes the segments, and
//! appends continue with the next sequence number. Recovery loads the
//! newest checkpoint whose record validates (corrupt ones are skipped, not
//! panicked on) and replays whatever WAL tail follows it.

use crate::record::{self, kind, Decoded, Record};
use crate::wal::{replay_dir, ReplayStats, Wal};
use athena_telemetry::{Counter, Histogram, Telemetry};
use athena_types::{AthenaError, Result, SimTime};
use std::fs;
use std::path::{Path, PathBuf};

/// Where and how a journal stores its files.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Data directory (created on open).
    pub dir: PathBuf,
    /// WAL segment rollover threshold in bytes.
    pub segment_max_bytes: u64,
}

impl PersistConfig {
    /// Config with the default 1 MiB segment size.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            segment_max_bytes: 1 << 20,
        }
    }
}

/// A validated checkpoint loaded during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Highest WAL sequence number the snapshot covers.
    pub seq: u64,
    /// Virtual time at which it was taken.
    pub time: SimTime,
    /// The snapshot payload.
    pub payload: Vec<u8>,
}

/// Everything recovered when a journal is opened.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Newest valid checkpoint, if any.
    pub checkpoint: Option<Checkpoint>,
    /// WAL records after the checkpoint, in sequence order.
    pub tail: Vec<Record>,
    /// WAL replay statistics.
    pub stats: ReplayStats,
    /// Checkpoint files that failed validation and were skipped.
    pub corrupt_checkpoints_skipped: u64,
}

#[derive(Debug, Default)]
struct JournalTelemetry {
    append_ns: Option<Histogram>,
    checkpoint_ns: Option<Histogram>,
    checkpoint_bytes: Option<Histogram>,
    wal_records: Counter,
    wal_bytes: Counter,
    checkpoints_written: Counter,
    records_replayed: Counter,
    tails_truncated: Counter,
}

/// An open journal: append WAL records, take checkpoints.
#[derive(Debug)]
pub struct Journal {
    config: PersistConfig,
    wal: Wal,
    next_seq: u64,
    tel: JournalTelemetry,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> AthenaError {
    AthenaError::Persist(format!("{what} {}: {e}", path.display()))
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:020}.ck"))
}

fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err("read dir", dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir", dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".ck"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Reads and validates a checkpoint file: exactly one CHECKPOINT record.
fn load_checkpoint(path: &Path) -> Option<Checkpoint> {
    let bytes = fs::read(path).ok()?;
    match record::decode(&bytes) {
        Decoded::Record(rec, consumed)
            if rec.kind == kind::CHECKPOINT && consumed == bytes.len() =>
        {
            Some(Checkpoint {
                seq: rec.seq,
                time: rec.time,
                payload: rec.payload,
            })
        }
        _ => None,
    }
}

impl Journal {
    /// Opens (or creates) the journal, running recovery first. Returns the
    /// journal positioned after the last valid record, plus everything a
    /// caller needs to rebuild state.
    pub fn open(config: PersistConfig) -> Result<(Journal, Recovery)> {
        fs::create_dir_all(&config.dir).map_err(|e| io_err("create dir", &config.dir, e))?;
        let mut recovery = Recovery::default();
        for (_, path) in list_checkpoints(&config.dir)?.iter().rev() {
            match load_checkpoint(path) {
                Some(ck) => {
                    recovery.checkpoint = Some(ck);
                    break;
                }
                None => recovery.corrupt_checkpoints_skipped += 1,
            }
        }
        let after_seq = recovery.checkpoint.as_ref().map_or(0, |c| c.seq);
        let replay = replay_dir(&config.dir, after_seq)?;
        recovery.stats = replay.stats;
        let last_seq = replay.records.last().map_or(after_seq, |r| r.seq);
        recovery.tail = replay.records;
        let wal = Wal::open(&config.dir, config.segment_max_bytes)?;
        Ok((
            Journal {
                config,
                wal,
                next_seq: last_seq + 1,
                tel: JournalTelemetry::default(),
            },
            recovery,
        ))
    }

    /// Opens the journal and routes `persist/<subsystem>_*` metrics into
    /// `tel`, including the recovery counters from this open.
    pub fn open_with_telemetry(
        config: PersistConfig,
        tel: &Telemetry,
        subsystem: &str,
    ) -> Result<(Journal, Recovery)> {
        let (mut journal, recovery) = Journal::open(config)?;
        journal.bind_telemetry(tel, subsystem);
        journal.tel.records_replayed.add(recovery.stats.replayed);
        journal
            .tel
            .tails_truncated
            .add(recovery.stats.tails_truncated + recovery.corrupt_checkpoints_skipped);
        Ok((journal, recovery))
    }

    /// Routes this journal's metrics into `tel` under the `persist`
    /// subsystem, tagged with `name` (e.g. `store`, `controller`).
    pub fn bind_telemetry(&mut self, tel: &Telemetry, name: &str) {
        use athena_telemetry::names::persist as p;
        let m = tel.metrics();
        let hist = |suffix: &str| m.histogram(p::SUBSYSTEM, &format!("{name}{suffix}"));
        let ctr = |suffix: &str| m.counter(p::SUBSYSTEM, &format!("{name}{suffix}"));
        self.tel.append_ns = Some(hist(p::APPEND_NS_SUFFIX));
        self.tel.checkpoint_ns = Some(hist(p::CHECKPOINT_NS_SUFFIX));
        self.tel.checkpoint_bytes = Some(hist(p::CHECKPOINT_BYTES_SUFFIX));
        self.tel.wal_records = ctr(p::WAL_RECORDS_SUFFIX);
        self.tel.wal_bytes = ctr(p::WAL_BYTES_SUFFIX);
        self.tel.checkpoints_written = ctr(p::CHECKPOINTS_SUFFIX);
        self.tel.records_replayed = ctr(p::RECORDS_REPLAYED_SUFFIX);
        self.tel.tails_truncated = ctr(p::TAILS_TRUNCATED_SUFFIX);
    }

    /// Appends one record to the WAL, returning its sequence number.
    pub fn append(&mut self, kind: u8, payload: &[u8], now: SimTime) -> Result<u64> {
        let timer = self.tel.append_ns.as_ref().map(Histogram::start_timer);
        let seq = self.next_seq;
        let len = self.wal.append(kind, seq, now, payload)?;
        self.next_seq += 1;
        self.tel.wal_records.inc();
        self.tel.wal_bytes.add(len as u64);
        if let (Some(t), Some(h)) = (timer, self.tel.append_ns.as_ref()) {
            t.observe(h);
        }
        Ok(seq)
    }

    /// Writes a checkpoint covering every record appended so far, then
    /// deletes the superseded WAL segments.
    pub fn checkpoint(&mut self, payload: &[u8], now: SimTime) -> Result<u64> {
        let timer = self.tel.checkpoint_ns.as_ref().map(Histogram::start_timer);
        let covered = self.next_seq - 1;
        let bytes = record::encode(kind::CHECKPOINT, covered, now, payload);
        let path = checkpoint_path(&self.config.dir, covered);
        fs::write(&path, &bytes).map_err(|e| io_err("write", &path, e))?;
        self.wal.reset()?;
        self.tel.checkpoints_written.inc();
        if let Some(h) = &self.tel.checkpoint_bytes {
            h.record(bytes.len() as u64);
        }
        if let (Some(t), Some(h)) = (timer, self.tel.checkpoint_ns.as_ref()) {
            t.observe(h);
        }
        Ok(covered)
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

/// Writes a standalone single-record snapshot file (used for trained-model
/// persistence): the same framing as the journal, one record, seq 0.
pub fn write_snapshot_file(path: &Path, kind: u8, payload: &[u8], now: SimTime) -> Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| io_err("create dir", parent, e))?;
    }
    let bytes = record::encode(kind, 0, now, payload);
    fs::write(path, &bytes).map_err(|e| io_err("write", path, e))
}

/// Reads a standalone snapshot file back, validating framing, CRC, and the
/// expected record kind. Corruption is an error, never a panic.
pub fn read_snapshot_file(path: &Path, expected_kind: u8) -> Result<(SimTime, Vec<u8>)> {
    let bytes = fs::read(path).map_err(|e| io_err("read", path, e))?;
    match record::decode(&bytes) {
        Decoded::Record(rec, consumed) if consumed == bytes.len() => {
            if rec.kind != expected_kind {
                return Err(AthenaError::Persist(format!(
                    "snapshot {}: kind {} where {} expected",
                    path.display(),
                    rec.kind,
                    expected_kind
                )));
            }
            Ok((rec.time, rec.payload))
        }
        Decoded::Record(..) => Err(AthenaError::Persist(format!(
            "snapshot {}: trailing bytes after record",
            path.display()
        ))),
        Decoded::Incomplete => Err(AthenaError::Persist(format!(
            "snapshot {}: torn record",
            path.display()
        ))),
        Decoded::Corrupt => Err(AthenaError::Persist(format!(
            "snapshot {}: corrupt record",
            path.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "athena-journal-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn fresh_journal_recovers_nothing() {
        let dir = test_dir();
        let (journal, recovery) = Journal::open(PersistConfig::new(&dir)).unwrap();
        assert!(recovery.checkpoint.is_none());
        assert!(recovery.tail.is_empty());
        assert_eq!(journal.next_seq(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_checkpoint_append_recovers_in_order() {
        let dir = test_dir();
        {
            let (mut j, _) = Journal::open(PersistConfig::new(&dir)).unwrap();
            j.append(kind::STORE_OP, b"a", SimTime::from_secs(1))
                .unwrap();
            j.append(kind::STORE_OP, b"b", SimTime::from_secs(2))
                .unwrap();
            j.checkpoint(b"snapshot-at-2", SimTime::from_secs(2))
                .unwrap();
            j.append(kind::STORE_OP, b"c", SimTime::from_secs(3))
                .unwrap();
        }
        let (j, rec) = Journal::open(PersistConfig::new(&dir)).unwrap();
        let ck = rec.checkpoint.expect("checkpoint");
        assert_eq!(ck.payload, b"snapshot-at-2");
        assert_eq!(ck.seq, 2);
        assert_eq!(rec.tail.len(), 1);
        assert_eq!(rec.tail[0].payload, b"c");
        assert_eq!(j.next_seq(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_older_one() {
        let dir = test_dir();
        {
            let (mut j, _) = Journal::open(PersistConfig::new(&dir)).unwrap();
            j.append(kind::STORE_OP, b"a", SimTime::from_secs(1))
                .unwrap();
            j.checkpoint(b"first", SimTime::from_secs(1)).unwrap();
            j.append(kind::STORE_OP, b"b", SimTime::from_secs(2))
                .unwrap();
            j.checkpoint(b"second", SimTime::from_secs(2)).unwrap();
        }
        // Flip a payload bit in the newest checkpoint.
        let newest = checkpoint_path(&dir, 2);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let (_, rec) = Journal::open(PersistConfig::new(&dir)).unwrap();
        let ck = rec.checkpoint.expect("older checkpoint");
        assert_eq!(ck.payload, b"first");
        assert_eq!(rec.corrupt_checkpoints_skipped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_counters_track_appends_and_recovery() {
        let dir = test_dir();
        let tel = Telemetry::new();
        {
            let (mut j, _) =
                Journal::open_with_telemetry(PersistConfig::new(&dir), &tel, "store").unwrap();
            j.append(kind::STORE_OP, b"x", SimTime::from_secs(1))
                .unwrap();
            j.append(kind::STORE_OP, b"y", SimTime::from_secs(1))
                .unwrap();
            j.checkpoint(b"snap", SimTime::from_secs(1)).unwrap();
        }
        let m = tel.metrics();
        assert_eq!(m.counter("persist", "store_wal_records").get(), 2);
        assert_eq!(m.counter("persist", "store_checkpoints").get(), 1);
        assert!(m.counter("persist", "store_wal_bytes").get() > 0);
        let tel2 = Telemetry::new();
        {
            let (mut j, _) =
                Journal::open_with_telemetry(PersistConfig::new(&dir), &tel2, "store").unwrap();
            j.append(kind::STORE_OP, b"z", SimTime::from_secs(2))
                .unwrap();
        }
        let (_, rec) =
            Journal::open_with_telemetry(PersistConfig::new(&dir), &tel2, "store").unwrap();
        assert_eq!(rec.tail.len(), 1);
        assert_eq!(
            tel2.metrics()
                .counter("persist", "store_records_replayed")
                .get(),
            1
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_files_round_trip_and_reject_corruption() {
        let dir = test_dir();
        let path = dir.join("model.snap");
        write_snapshot_file(&path, kind::MODEL, b"model-json", SimTime::from_secs(9)).unwrap();
        let (time, payload) = read_snapshot_file(&path, kind::MODEL).unwrap();
        assert_eq!(time, SimTime::from_secs(9));
        assert_eq!(payload, b"model-json");
        assert!(read_snapshot_file(&path, kind::STORE_OP).is_err());
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot_file(&path, kind::MODEL).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
