//! Versioned record framing for WAL segments and checkpoint files.
//!
//! Every durable byte in the persist layer — WAL appends and checkpoint
//! snapshots alike — is one framed record:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        b"AWL1"
//!      4     1  version      (currently 1)
//!      5     1  kind         record type tag (see [`kind`])
//!      6     2  reserved     zero
//!      8     8  seq          u64 LE, monotone per journal
//!     16     8  time_us      u64 LE, virtual-time stamp in microseconds
//!     24     4  payload_len  u32 LE
//!     28     4  crc32        IEEE CRC32 over bytes 0..28 ++ payload
//!     32     …  payload
//! ```
//!
//! The CRC covers the header (minus itself) and the payload, so a bit flip
//! anywhere in a record is detected. Decoding distinguishes a *torn* tail
//! (not enough bytes for the frame it promises — the write was cut off) from
//! a *corrupt* record (bad magic/version/CRC or an absurd length): recovery
//! truncates both, but the distinction feeds telemetry and tests.

use crate::crc::Crc32;
use athena_types::SimTime;

/// File magic for framed records ("Athena Write-ahead Log v1").
pub const MAGIC: [u8; 4] = *b"AWL1";
/// Current framing version.
pub const VERSION: u8 = 1;
/// Framed header length in bytes (payload follows).
pub const HEADER_LEN: usize = 32;
/// Upper bound on a single record payload; anything larger decodes as
/// corrupt rather than driving a giant allocation off a flipped length.
pub const MAX_PAYLOAD: u32 = 256 * 1024 * 1024;

/// Record type tags. One byte; stable across versions.
pub mod kind {
    /// A store collection operation (insert/update/delete/index).
    pub const STORE_OP: u8 = 1;
    /// A serialized trained detection model snapshot.
    pub const MODEL: u8 = 2;
    /// A controller mastership event.
    pub const MASTERSHIP: u8 = 3;
    /// A controller flow-rule install/removal.
    pub const FLOW_RULE: u8 = 4;
    /// A point-in-time checkpoint snapshot.
    pub const CHECKPOINT: u8 = 5;
}

/// A decoded framed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record type tag (see [`kind`]).
    pub kind: u8,
    /// Journal sequence number.
    pub seq: u64,
    /// Virtual-time stamp.
    pub time: SimTime,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Outcome of decoding the front of a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A valid record and the number of bytes it consumed.
    Record(Record, usize),
    /// The buffer ends mid-record — a torn write.
    Incomplete,
    /// The bytes are not a valid record — corruption.
    Corrupt,
}

/// Encodes one framed record.
pub fn encode(kind: u8, seq: u64, time: SimTime, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(kind);
    buf.extend_from_slice(&[0, 0]);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&time.as_micros().to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&buf);
    crc.update(payload);
    buf.extend_from_slice(&crc.finish().to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decodes the record at the front of `buf`.
pub fn decode(buf: &[u8]) -> Decoded {
    if buf.is_empty() {
        return Decoded::Incomplete;
    }
    if buf.len() < HEADER_LEN {
        // A prefix of a valid header is a torn write; bytes that already
        // disagree with the magic are corruption.
        let n = buf.len().min(MAGIC.len());
        return if buf[..n] == MAGIC[..n] {
            Decoded::Incomplete
        } else {
            Decoded::Corrupt
        };
    }
    if buf[0..4] != MAGIC || buf[4] != VERSION {
        return Decoded::Corrupt;
    }
    let payload_len = le_u32(&buf[24..28]);
    if payload_len > MAX_PAYLOAD {
        return Decoded::Corrupt;
    }
    let total = HEADER_LEN + payload_len as usize;
    if buf.len() < total {
        return Decoded::Incomplete;
    }
    let stored_crc = le_u32(&buf[28..32]);
    let mut crc = Crc32::new();
    crc.update(&buf[..28]);
    crc.update(&buf[HEADER_LEN..total]);
    if crc.finish() != stored_crc {
        return Decoded::Corrupt;
    }
    let rec = Record {
        kind: buf[5],
        seq: le_u64(&buf[8..16]),
        time: SimTime::from_micros(le_u64(&buf[16..24])),
        payload: buf[HEADER_LEN..total].to_vec(),
    };
    Decoded::Record(rec, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        encode(kind::STORE_OP, 42, SimTime::from_secs(7), b"payload bytes")
    }

    #[test]
    fn round_trips() {
        let bytes = sample();
        match decode(&bytes) {
            Decoded::Record(rec, consumed) => {
                assert_eq!(consumed, bytes.len());
                assert_eq!(rec.kind, kind::STORE_OP);
                assert_eq!(rec.seq, 42);
                assert_eq!(rec.time, SimTime::from_secs(7));
                assert_eq!(rec.payload, b"payload bytes");
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_incomplete_not_corrupt() {
        let bytes = sample();
        for cut in 1..bytes.len() {
            match decode(&bytes[..cut]) {
                Decoded::Incomplete => {}
                other => panic!("cut at {cut}: expected incomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn any_bit_flip_is_detected() {
        let bytes = sample();
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x10;
            match decode(&flipped) {
                Decoded::Record(rec, _) => {
                    panic!("flip at byte {byte} yielded a record: {rec:?}")
                }
                Decoded::Incomplete | Decoded::Corrupt => {}
            }
        }
    }

    #[test]
    fn absurd_length_is_corrupt() {
        let mut bytes = sample();
        bytes[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&bytes), Decoded::Corrupt);
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = encode(kind::CHECKPOINT, 0, SimTime::ZERO, b"");
        assert!(matches!(decode(&bytes), Decoded::Record(r, 32) if r.payload.is_empty()));
    }
}
