//! Bounded mutation operators applied to base attack traces.
//!
//! Every unseen-attack variant is a *mutation* of a base generator: rates
//! are scaled, probe schedules stretched, packet sizes inflated, starts
//! jittered. Each operator draws its parameter from a declared closed
//! interval ([`BOUNDS`]) so the mutant stays a recognizable member of its
//! family — the property suite asserts sampled parameters never leave
//! these intervals.

use athena_dataplane::FlowSpec;
use athena_types::SimDuration;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Closed parameter intervals every mutation draw must respect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationBounds {
    /// Rate multiplier interval.
    pub rate_scale: (f64, f64),
    /// Flow-duration multiplier interval.
    pub duration_scale: (f64, f64),
    /// Packet-size multiplier interval.
    pub packet_size_scale: (f64, f64),
    /// Extra per-flow start jitter in seconds.
    pub start_jitter_s: (f64, f64),
}

/// The declared mutation-operator bounds (documented in DESIGN.md §14).
pub const BOUNDS: MutationBounds = MutationBounds {
    rate_scale: (0.25, 4.0),
    duration_scale: (0.5, 8.0),
    packet_size_scale: (0.5, 4.0),
    start_jitter_s: (0.0, 5.0),
};

/// One concrete draw of the mutation operators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MutationParams {
    /// Multiplies every flow's offered rate.
    pub rate_scale: f64,
    /// Multiplies every flow's duration.
    pub duration_scale: f64,
    /// Multiplies every flow's packet size.
    pub packet_size_scale: f64,
    /// Upper bound of the extra uniform start jitter, in seconds.
    pub start_jitter_s: f64,
}

impl MutationParams {
    /// The no-op mutation (base families carry this).
    pub fn identity() -> Self {
        MutationParams {
            rate_scale: 1.0,
            duration_scale: 1.0,
            packet_size_scale: 1.0,
            start_jitter_s: 0.0,
        }
    }

    /// Draws parameters uniformly from the given sub-intervals, which are
    /// clamped into the declared [`BOUNDS`] first — a family cannot
    /// request a draw outside the taxonomy.
    pub fn sample(
        rng: &mut StdRng,
        rate: (f64, f64),
        duration: (f64, f64),
        packet_size: (f64, f64),
        jitter: (f64, f64),
    ) -> Self {
        MutationParams {
            rate_scale: draw(rng, rate, BOUNDS.rate_scale),
            duration_scale: draw(rng, duration, BOUNDS.duration_scale),
            packet_size_scale: draw(rng, packet_size, BOUNDS.packet_size_scale),
            start_jitter_s: draw(rng, jitter, BOUNDS.start_jitter_s),
        }
    }

    /// Whether every parameter lies inside the declared [`BOUNDS`].
    pub fn in_bounds(&self) -> bool {
        within(self.rate_scale, BOUNDS.rate_scale)
            && within(self.duration_scale, BOUNDS.duration_scale)
            && within(self.packet_size_scale, BOUNDS.packet_size_scale)
            && within(self.start_jitter_s, BOUNDS.start_jitter_s)
    }

    /// Applies the operators to a base trace in place. Rates keep the
    /// generators' 8 kbit/s floor, packet sizes the simulator's 64-byte
    /// floor, durations a 100 ms floor; start jitter draws one uniform
    /// offset per flow from `rng`.
    pub fn apply(&self, flows: &mut [FlowSpec], rng: &mut StdRng) {
        for f in flows.iter_mut() {
            f.rate_bps = ((f.rate_bps as f64 * self.rate_scale) as u64).max(8_000);
            f.duration = SimDuration::from_secs_f64(
                (f.duration.as_secs_f64() * self.duration_scale).max(0.1),
            );
            f.packet_size = ((f64::from(f.packet_size) * self.packet_size_scale) as u32).max(64);
            if self.start_jitter_s > 0.0 {
                let j = rng.random_range(0.0..self.start_jitter_s);
                f.start += SimDuration::from_secs_f64(j);
            }
        }
    }
}

fn draw(rng: &mut StdRng, want: (f64, f64), bound: (f64, f64)) -> f64 {
    let lo = want.0.clamp(bound.0, bound.1);
    let hi = want.1.clamp(bound.0, bound.1);
    if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    }
}

fn within(x: f64, bound: (f64, f64)) -> bool {
    (bound.0..=bound.1).contains(&x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::{FiveTuple, Ipv4Addr, SimTime};
    use rand::SeedableRng;

    fn base_flow() -> FlowSpec {
        FlowSpec::new(
            FiveTuple::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                5000,
                Ipv4Addr::new(10, 0, 0, 2),
                53,
            ),
            SimTime::from_secs(5),
            SimDuration::from_secs(10),
            1_000_000,
        )
    }

    #[test]
    fn identity_is_in_bounds_and_a_noop() {
        let p = MutationParams::identity();
        assert!(p.in_bounds());
        let mut flows = vec![base_flow()];
        let mut rng = StdRng::seed_from_u64(1);
        p.apply(&mut flows, &mut rng);
        assert_eq!(flows[0], base_flow());
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let pa = MutationParams::sample(&mut a, (1.5, 4.0), (0.5, 1.0), (1.0, 2.0), (0.0, 2.0));
        let pb = MutationParams::sample(&mut b, (1.5, 4.0), (0.5, 1.0), (1.0, 2.0), (0.0, 2.0));
        assert_eq!(pa, pb);
        assert!(pa.in_bounds());
    }

    #[test]
    fn requested_intervals_are_clamped_into_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = MutationParams::sample(
            &mut rng,
            (0.0, 100.0),
            (0.0, 100.0),
            (0.0, 100.0),
            (-5.0, 100.0),
        );
        assert!(p.in_bounds(), "{p:?}");
    }

    #[test]
    fn apply_respects_floors() {
        let p = MutationParams {
            rate_scale: 0.25,
            duration_scale: 0.5,
            packet_size_scale: 0.5,
            start_jitter_s: 1.0,
        };
        let mut flows = vec![base_flow()];
        let mut rng = StdRng::seed_from_u64(2);
        p.apply(&mut flows, &mut rng);
        assert!(flows[0].rate_bps >= 8_000);
        assert!(flows[0].packet_size >= 64);
        assert!(flows[0].duration >= SimDuration::from_millis(100));
        assert!(flows[0].start >= SimTime::from_secs(5));
    }
}
