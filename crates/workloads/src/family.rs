//! The attack-family taxonomy: base (training) families and unseen
//! (held-out) mutants.
//!
//! Base families are the paper's evaluation scenarios — DDoS flood,
//! vertical port scan, Crossfire-style LFA, and the benign flash crowd.
//! Unseen families are seed-deterministic mutations and blends of those
//! generators: rate-scaled floods, slow-and-low scans, amplification/
//! reflection floods, control-channel saturation against the controller
//! itself, and a flood/scan blend. Every generated attack carries its
//! ground-truth flow labels and a `held_out` flag so the ML layer trains
//! only on base attacks and is tested on the mutants.

use crate::mutate::MutationParams;
use athena_dataplane::workload::{self, CrossfireParams, DdosParams};
use athena_dataplane::{FlowSpec, Topology};
use athena_types::{Dpid, FiveTuple, Ipv4Addr, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One attack family of the generalization suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackFamily {
    /// Base: the Figure 6 flooding DDoS (spoofed UDP toward one victim).
    Ddos,
    /// Base: a vertical TCP port scan from one scanner.
    PortScan,
    /// Base: the Crossfire-style link-flooding attack.
    Lfa,
    /// Base: a benign flash crowd (volume anomaly, not an attack).
    FlashCrowd,
    /// Unseen: the DDoS flood with mutated rate/duration operators.
    RateScaledDdos,
    /// Unseen: the port scan stretched slow-and-low below rate triggers.
    SlowLowScan,
    /// Unseen: an amplification/reflection flood (small spoofed requests,
    /// large reflected responses converging on the victim).
    AmplificationFlood,
    /// Unseen: control-channel saturation — a storm of unique micro-flows
    /// whose table misses flood the controller with packet-ins.
    ControlSaturation,
    /// Unseen: a blended flood + scan composite.
    BlendedFloodScan,
}

/// Parameters shared by every family's generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// The victim/target/server address.
    pub target: Ipv4Addr,
    /// When the attack starts.
    pub start: SimTime,
    /// How long the attack window lasts.
    pub duration: SimDuration,
    /// Attack size (flows, probes, or clients depending on the family).
    pub n_flows: usize,
    /// The LFA target link (defaults to the linear topology bottleneck).
    pub lfa_link: Option<(Dpid, Dpid)>,
}

impl AttackConfig {
    /// The evaluation-matrix defaults against `target`.
    pub fn new(target: Ipv4Addr) -> Self {
        AttackConfig {
            target,
            start: SimTime::from_secs(8),
            duration: SimDuration::from_secs(22),
            n_flows: 150,
            lfa_link: None,
        }
    }
}

/// A generated, labeled attack trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedAttack {
    /// The family that produced the trace.
    pub family: AttackFamily,
    /// The mutation-operator draw (identity for base families).
    pub params: MutationParams,
    /// The flows, each carrying its ground-truth `malicious` label.
    pub flows: Vec<FlowSpec>,
}

impl GeneratedAttack {
    /// Whether this trace must be excluded from training splits.
    pub fn held_out(&self) -> bool {
        self.family.is_held_out()
    }

    /// The family's stable snake_case tag.
    pub fn name(&self) -> &'static str {
        self.family.tag()
    }

    /// The ground-truth malicious 5-tuples, sorted and deduplicated.
    pub fn malicious_tuples(&self) -> Vec<FiveTuple> {
        let mut tuples: Vec<FiveTuple> = self
            .flows
            .iter()
            .filter(|f| f.malicious)
            .map(|f| f.five_tuple)
            .collect();
        tuples.sort_unstable();
        tuples.dedup();
        tuples
    }

    /// The canonical byte-comparable form of the trace (JSON of the flow
    /// list, in generation order) — the property suite's determinism key.
    pub fn trace_json(&self) -> String {
        serde_json::to_string(&self.flows).unwrap_or_default()
    }
}

impl AttackFamily {
    /// Every family, base families first.
    pub fn all() -> &'static [AttackFamily] {
        &[
            AttackFamily::Ddos,
            AttackFamily::PortScan,
            AttackFamily::Lfa,
            AttackFamily::FlashCrowd,
            AttackFamily::RateScaledDdos,
            AttackFamily::SlowLowScan,
            AttackFamily::AmplificationFlood,
            AttackFamily::ControlSaturation,
            AttackFamily::BlendedFloodScan,
        ]
    }

    /// The base (training) families.
    pub fn base() -> &'static [AttackFamily] {
        &AttackFamily::all()[..4]
    }

    /// The unseen (held-out) families.
    pub fn unseen() -> &'static [AttackFamily] {
        &AttackFamily::all()[4..]
    }

    /// Whether the family is excluded from training splits.
    pub fn is_held_out(self) -> bool {
        !matches!(
            self,
            AttackFamily::Ddos
                | AttackFamily::PortScan
                | AttackFamily::Lfa
                | AttackFamily::FlashCrowd
        )
    }

    /// Whether the family's flows are attack traffic (the flash crowd is
    /// the one benign anomaly in the taxonomy).
    pub fn is_malicious(self) -> bool {
        !matches!(self, AttackFamily::FlashCrowd)
    }

    /// The stable snake_case tag used in reports and JSON artifacts.
    pub fn tag(self) -> &'static str {
        match self {
            AttackFamily::Ddos => "ddos_flood",
            AttackFamily::PortScan => "port_scan",
            AttackFamily::Lfa => "crossfire_lfa",
            AttackFamily::FlashCrowd => "flash_crowd",
            AttackFamily::RateScaledDdos => "rate_scaled_ddos",
            AttackFamily::SlowLowScan => "slow_low_scan",
            AttackFamily::AmplificationFlood => "amplification_flood",
            AttackFamily::ControlSaturation => "control_saturation",
            AttackFamily::BlendedFloodScan => "blended_flood_scan",
        }
    }

    /// The topology the family's canonical deployment runs on: the LFA
    /// needs the linear core whose bottleneck the decoy paths share;
    /// everything else runs on the enterprise fabric.
    pub fn canonical_topology(self) -> Topology {
        match self {
            AttackFamily::Lfa => Topology::linear(4, 6),
            _ => Topology::enterprise(),
        }
    }

    /// Generates the family's labeled trace, deterministic in `seed`.
    pub fn generate(self, topo: &Topology, cfg: &AttackConfig, seed: u64) -> GeneratedAttack {
        let tag_seed = seed ^ (0x57ac_0000 + self as u64);
        let mut rng = StdRng::seed_from_u64(tag_seed);
        let (params, flows) = match self {
            AttackFamily::Ddos => (
                MutationParams::identity(),
                workload::ddos_flood(topo, cfg.target, ddos_params(cfg, 1.0, 1.0), tag_seed),
            ),
            AttackFamily::PortScan => (
                MutationParams::identity(),
                workload::port_scan(
                    scanner_for(topo, cfg.target),
                    cfg.target,
                    cfg.n_flows.min(u16::MAX as usize) as u16,
                    cfg.start,
                    tag_seed,
                ),
            ),
            AttackFamily::Lfa => {
                let (a, b) = cfg.lfa_link.unwrap_or((Dpid::new(2), Dpid::new(3)));
                (
                    MutationParams::identity(),
                    workload::crossfire(
                        topo,
                        a,
                        b,
                        CrossfireParams {
                            n_flows: cfg.n_flows,
                            per_flow_rate_bps: 6_000_000,
                            start: cfg.start,
                            duration: cfg.duration,
                        },
                        tag_seed,
                    ),
                )
            }
            AttackFamily::FlashCrowd => (
                MutationParams::identity(),
                workload::flash_crowd(
                    topo,
                    cfg.target,
                    cfg.n_flows,
                    cfg.start,
                    cfg.duration,
                    tag_seed,
                ),
            ),
            AttackFamily::RateScaledDdos => {
                // Rate-scaled mutant: the same flood shape, pushed harder
                // and stretched — outside the trained volume envelope.
                let params = MutationParams::sample(
                    &mut rng,
                    (1.5, 4.0),
                    (1.2, 2.0),
                    (1.0, 1.0),
                    (0.0, 0.0),
                );
                let mut flows = workload::ddos_flood(
                    topo,
                    cfg.target,
                    ddos_params(cfg, 1.0, 1.0),
                    tag_seed ^ 0xd1,
                );
                params.apply(&mut flows, &mut rng);
                (params, flows)
            }
            AttackFamily::SlowLowScan => {
                // Slow-and-low mutant: the probe schedule is stretched far
                // past the scan window and each probe trickles.
                let params = MutationParams::sample(
                    &mut rng,
                    (0.25, 0.5),
                    (2.0, 8.0),
                    (1.0, 1.0),
                    (0.0, 5.0),
                );
                let mut flows = workload::port_scan(
                    scanner_for(topo, cfg.target),
                    cfg.target,
                    cfg.n_flows.min(u16::MAX as usize) as u16,
                    cfg.start,
                    tag_seed ^ 0xd2,
                );
                let stretch = cfg.duration.as_secs_f64() * params.duration_scale;
                for f in &mut flows {
                    let offset = rng.random_range(0.0..stretch.max(1.0));
                    f.start = cfg.start + SimDuration::from_secs_f64(offset);
                }
                params.apply(&mut flows, &mut rng);
                (params, flows)
            }
            AttackFamily::AmplificationFlood => {
                let params = MutationParams::sample(
                    &mut rng,
                    (1.0, 2.0),
                    (1.0, 1.0),
                    (2.0, 4.0),
                    (0.0, 0.0),
                );
                let flows = amplification_flood(topo, cfg, &params, &mut rng);
                (params, flows)
            }
            AttackFamily::ControlSaturation => (
                MutationParams::identity(),
                control_saturation(topo, cfg, &mut rng),
            ),
            AttackFamily::BlendedFloodScan => {
                let params = MutationParams::sample(
                    &mut rng,
                    (0.5, 1.5),
                    (1.0, 1.0),
                    (1.0, 1.0),
                    (0.0, 2.0),
                );
                let mut flows = workload::ddos_flood(
                    topo,
                    cfg.target,
                    ddos_params(&half(cfg), 1.0, 1.0),
                    tag_seed ^ 0xd3,
                );
                flows.extend(workload::port_scan(
                    scanner_for(topo, cfg.target),
                    cfg.target,
                    (cfg.n_flows / 2).min(u16::MAX as usize) as u16,
                    cfg.start,
                    tag_seed ^ 0xd4,
                ));
                params.apply(&mut flows, &mut rng);
                (params, flows)
            }
        };
        GeneratedAttack {
            family: self,
            params,
            flows,
        }
    }
}

fn ddos_params(cfg: &AttackConfig, rate_scale: f64, duration_scale: f64) -> DdosParams {
    DdosParams {
        n_flows: cfg.n_flows,
        n_bots: 20,
        total_rate_bps: (400_000_000f64 * rate_scale) as u64,
        start: cfg.start,
        duration: SimDuration::from_secs_f64(cfg.duration.as_secs_f64() * duration_scale),
    }
}

fn half(cfg: &AttackConfig) -> AttackConfig {
    AttackConfig {
        n_flows: (cfg.n_flows / 2).max(1),
        ..*cfg
    }
}

/// The first host that is not the target — the scanner/bot ingress.
fn scanner_for(topo: &Topology, target: Ipv4Addr) -> Ipv4Addr {
    topo.hosts
        .iter()
        .map(|h| h.ip)
        .find(|ip| *ip != target)
        .unwrap_or(target)
}

/// Reflection flood: bots send tiny spoofed requests to reflector service
/// ports; the reflectors answer the victim with amplified responses. Both
/// legs are ground-truth malicious.
fn amplification_flood(
    topo: &Topology,
    cfg: &AttackConfig,
    params: &MutationParams,
    rng: &mut StdRng,
) -> Vec<FlowSpec> {
    let others: Vec<Ipv4Addr> = topo
        .hosts
        .iter()
        .map(|h| h.ip)
        .filter(|ip| *ip != cfg.target)
        .collect();
    if others.len() < 2 {
        return Vec::new();
    }
    let n_reflectors = others.len().min(12);
    let reflectors = &others[..n_reflectors];
    let bots = &others[n_reflectors / 2..];
    let amp_packet = ((1200f64 * params.packet_size_scale) as u32).clamp(64, 1500);
    let response_rate = (2_000_000f64 * params.rate_scale) as u64;
    let mut flows = Vec::with_capacity(cfg.n_flows);
    for i in 0..cfg.n_flows {
        let offset =
            SimDuration::from_micros(rng.random_range(0..cfg.duration.as_micros().max(1)) / 2);
        let dur = SimDuration::from_secs_f64(rng.random_range(1.0..4.0));
        if i % 3 == 0 {
            // The trigger leg: a tiny spoofed request into a reflector.
            let bot = bots[rng.random_range(0..bots.len())];
            let reflector = reflectors[rng.random_range(0..reflectors.len())];
            let ft = FiveTuple::udp(bot, rng.random_range(1024..u16::MAX), reflector, 123);
            flows.push(
                FlowSpec::new(ft, cfg.start + offset, dur, 64_000)
                    .with_packet_size(64)
                    .malicious(),
            );
        } else {
            // The amplified leg: a large reflected response at the victim.
            let reflector = reflectors[rng.random_range(0..reflectors.len())];
            let ft = FiveTuple::udp(reflector, 123, cfg.target, rng.random_range(1024..u16::MAX));
            flows.push(
                FlowSpec::new(ft, cfg.start + offset, dur, response_rate)
                    .with_packet_size(amp_packet)
                    .malicious(),
            );
        }
    }
    flows
}

/// Control-channel saturation: every flow is a unique micro-flow, so each
/// one misses every flow table it touches and punts to the controller —
/// the attack's target is the control plane's packet-in path, not a host.
fn control_saturation(topo: &Topology, cfg: &AttackConfig, rng: &mut StdRng) -> Vec<FlowSpec> {
    let hosts: Vec<Ipv4Addr> = topo.hosts.iter().map(|h| h.ip).collect();
    if hosts.len() < 2 {
        return Vec::new();
    }
    let mut flows = Vec::with_capacity(cfg.n_flows);
    for i in 0..cfg.n_flows {
        let src = hosts[rng.random_range(0..hosts.len())];
        let dst = loop {
            let d = hosts[rng.random_range(0..hosts.len())];
            if d != src {
                break d;
            }
        };
        // Ports derived from the flow index guarantee tuple uniqueness:
        // every activation is a fresh table miss.
        let src_port = 1024 + (i % 60_000) as u16;
        let dst_port = 1 + ((i * 131) % 50_000) as u16;
        let offset = SimDuration::from_micros(rng.random_range(0..cfg.duration.as_micros().max(1)));
        flows.push(
            FlowSpec::new(
                FiveTuple::udp(src, src_port, dst, dst_port),
                cfg.start + offset,
                SimDuration::from_secs_f64(0.4),
                64_000,
            )
            .with_packet_size(64)
            .malicious(),
        );
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_partitioned() {
        assert_eq!(AttackFamily::all().len(), 9);
        assert_eq!(AttackFamily::base().len(), 4);
        assert_eq!(AttackFamily::unseen().len(), 5);
        for f in AttackFamily::base() {
            assert!(!f.is_held_out(), "{f:?}");
        }
        for f in AttackFamily::unseen() {
            assert!(f.is_held_out(), "{f:?}");
        }
    }

    #[test]
    fn every_family_generates_a_deterministic_labeled_trace() {
        for &family in AttackFamily::all() {
            let topo = family.canonical_topology();
            let cfg = AttackConfig {
                n_flows: 60,
                ..AttackConfig::new(topo.hosts[0].ip)
            };
            let a = family.generate(&topo, &cfg, 42);
            let b = family.generate(&topo, &cfg, 42);
            assert_eq!(a, b, "{family:?} not seed-deterministic");
            assert!(!a.flows.is_empty(), "{family:?} generated nothing");
            assert!(a.params.in_bounds(), "{family:?} params out of bounds");
            if family.is_malicious() {
                assert!(
                    a.flows.iter().all(|f| f.malicious),
                    "{family:?} attack flows must be labeled malicious"
                );
                assert!(!a.malicious_tuples().is_empty());
            } else {
                assert!(
                    a.flows.iter().all(|f| !f.malicious),
                    "{family:?} benign anomaly must not carry attack labels"
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let topo = AttackFamily::Ddos.canonical_topology();
        let cfg = AttackConfig::new(topo.hosts[0].ip);
        let a = AttackFamily::Ddos.generate(&topo, &cfg, 1);
        let b = AttackFamily::Ddos.generate(&topo, &cfg, 2);
        assert_ne!(a.trace_json(), b.trace_json());
    }

    #[test]
    fn control_saturation_tuples_are_unique() {
        let topo = Topology::enterprise();
        let cfg = AttackConfig {
            n_flows: 200,
            ..AttackConfig::new(topo.hosts[0].ip)
        };
        let a = AttackFamily::ControlSaturation.generate(&topo, &cfg, 7);
        let tuples = a.malicious_tuples();
        assert_eq!(tuples.len(), a.flows.len(), "every micro-flow is unique");
    }

    #[test]
    fn unseen_mutants_depart_from_their_base() {
        let topo = Topology::enterprise();
        let cfg = AttackConfig::new(topo.hosts[0].ip);
        let base = AttackFamily::Ddos.generate(&topo, &cfg, 5);
        let mutant = AttackFamily::RateScaledDdos.generate(&topo, &cfg, 5);
        assert_ne!(base.trace_json(), mutant.trace_json());
        assert!(mutant.params.rate_scale > 1.0);
    }
}
