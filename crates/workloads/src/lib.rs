//! # athena-workloads — the unseen-attack generalization suite
//!
//! The paper evaluates Athena on attacks its detectors were trained on.
//! This crate closes the generalization gap: it wraps the base dataplane
//! workload generators (DDoS flood, port scan, Crossfire LFA, flash
//! crowd) in an [`AttackFamily`] taxonomy and adds seed-deterministic
//! *unseen* variants — rate-scaled floods, slow-and-low scans,
//! amplification/reflection floods, control-channel saturation, and
//! flood/scan blends — built by applying bounded [`mutate`] operators to
//! the base traces. Every [`GeneratedAttack`] carries ground-truth flow
//! labels and a held-out flag, so the ML layer trains only on base
//! families ([`training_split`]) and is evaluated on the mutants.
//!
//! The evaluation-matrix harness in `crates/bench` consumes this crate to
//! run every (attack × Table-IV algorithm) cell.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod family;
pub mod mutate;

pub use family::{AttackConfig, AttackFamily, GeneratedAttack};
pub use mutate::{MutationBounds, MutationParams, BOUNDS};

use athena_telemetry::{names, Telemetry};

/// Records a generated attack in the `workloads/*` telemetry counters.
pub fn record_generation(tel: &Telemetry, attack: &GeneratedAttack) {
    let m = tel.metrics();
    m.counter(
        names::workloads::SUBSYSTEM,
        names::workloads::ATTACKS_GENERATED,
    )
    .inc();
    m.counter(
        names::workloads::SUBSYSTEM,
        names::workloads::FLOWS_GENERATED,
    )
    .add(attack.flows.len() as u64);
    if attack.held_out() {
        m.counter(
            names::workloads::SUBSYSTEM,
            names::workloads::HELD_OUT_GENERATED,
        )
        .inc();
    }
    if attack.params != MutationParams::identity() {
        m.counter(
            names::workloads::SUBSYSTEM,
            names::workloads::MUTATIONS_APPLIED,
        )
        .inc();
    }
}

/// Splits generated attacks into the training set (base families only)
/// and the held-out evaluation set. The ML layer must never see a
/// held-out trace at fit time — the property suite enforces this.
pub fn training_split(
    attacks: &[GeneratedAttack],
) -> (Vec<&GeneratedAttack>, Vec<&GeneratedAttack>) {
    let (held, train): (Vec<&GeneratedAttack>, Vec<&GeneratedAttack>) =
        attacks.iter().partition(|a| a.held_out());
    (train, held)
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_dataplane::Topology;

    #[test]
    fn training_split_excludes_held_out_families() {
        let topo = Topology::enterprise();
        let cfg = AttackConfig {
            n_flows: 20,
            ..AttackConfig::new(topo.hosts[0].ip)
        };
        let attacks: Vec<GeneratedAttack> = AttackFamily::all()
            .iter()
            .map(|f| f.generate(&topo, &cfg, 11))
            .collect();
        let (train, held) = training_split(&attacks);
        assert_eq!(train.len(), AttackFamily::base().len());
        assert_eq!(held.len(), AttackFamily::unseen().len());
        assert!(train.iter().all(|a| !a.held_out()));
        assert!(held.iter().all(|a| a.held_out()));
    }

    #[test]
    fn record_generation_uses_declared_names() {
        let tel = Telemetry::new();
        let topo = Topology::enterprise();
        let cfg = AttackConfig {
            n_flows: 10,
            ..AttackConfig::new(topo.hosts[0].ip)
        };
        let base = AttackFamily::Ddos.generate(&topo, &cfg, 1);
        let mutant = AttackFamily::RateScaledDdos.generate(&topo, &cfg, 1);
        record_generation(&tel, &base);
        record_generation(&tel, &mutant);
        let report = tel.report();
        assert!(names::undeclared(&report).is_empty());
    }
}
