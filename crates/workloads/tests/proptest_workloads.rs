//! Property tests for the attack-generator family: determinism, label
//! consistency, mutation-operator bounds, and the training-split guard,
//! across randomly drawn seeds and parameter intervals.

use athena_workloads::{training_split, AttackConfig, AttackFamily, MutationParams, BOUNDS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A strategy over every family, base and held-out alike.
fn any_family() -> impl Strategy<Value = AttackFamily> {
    (0usize..AttackFamily::all().len()).prop_map(|i| AttackFamily::all()[i])
}

fn generate(family: AttackFamily, seed: u64) -> athena_workloads::GeneratedAttack {
    let topo = family.canonical_topology();
    let cfg = AttackConfig::new(topo.hosts[0].ip);
    family.generate(&topo, &cfg, seed)
}

proptest! {
    /// Same family + same seed ⇒ byte-identical trace, whatever the seed.
    #[test]
    fn same_seed_means_byte_identical_trace(family in any_family(), seed in 0u64..1_000_000) {
        let a = generate(family, seed);
        let b = generate(family, seed);
        prop_assert_eq!(a.trace_json(), b.trace_json());
        prop_assert_eq!(a.params, b.params);
    }

    /// Ground-truth labels match the family's nature: attack families
    /// label every generated flow malicious, the benign flash crowd
    /// labels none.
    #[test]
    fn labels_are_consistent_with_the_injected_flows(family in any_family(), seed in 0u64..100_000) {
        let attack = generate(family, seed);
        prop_assert!(!attack.flows.is_empty());
        if family.is_malicious() {
            prop_assert!(attack.flows.iter().all(|f| f.malicious));
            prop_assert!(!attack.malicious_tuples().is_empty());
        } else {
            prop_assert!(attack.flows.iter().all(|f| !f.malicious));
            prop_assert!(attack.malicious_tuples().is_empty());
        }
    }

    /// Whatever interval a caller requests, sampled parameters stay
    /// inside the declared taxonomy bounds.
    #[test]
    fn sampled_mutations_stay_within_declared_bounds(
        seed in 0u64..1_000_000,
        r in (0.01f64..10.0, 0.01f64..10.0),
        d in (0.01f64..20.0, 0.01f64..20.0),
        p in (0.01f64..10.0, 0.01f64..10.0),
        j in (0.0f64..30.0, 0.0f64..30.0),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let norm = |(a, b): (f64, f64)| if a <= b { (a, b) } else { (b, a) };
        let params = MutationParams::sample(&mut rng, norm(r), norm(d), norm(p), norm(j));
        prop_assert!(params.in_bounds(), "{params:?} outside {BOUNDS:?}");
    }

    /// Every family's own recorded parameters are in bounds too.
    #[test]
    fn generated_params_are_always_in_bounds(family in any_family(), seed in 0u64..100_000) {
        let attack = generate(family, seed);
        prop_assert!(attack.params.in_bounds());
        if !family.is_held_out() {
            prop_assert_eq!(attack.params, MutationParams::identity());
        }
    }

    /// The training split never leaks a held-out attack, whatever mix
    /// of families was generated.
    #[test]
    fn training_split_never_contains_held_out(seeds in proptest::collection::vec(0u64..50_000, 1..6)) {
        let attacks: Vec<_> = seeds
            .iter()
            .enumerate()
            .flat_map(|(i, s)| {
                AttackFamily::all()
                    .iter()
                    .skip(i % 3)
                    .map(|f| generate(*f, *s))
                    .collect::<Vec<_>>()
            })
            .collect();
        let (train, held) = training_split(&attacks);
        prop_assert!(train.iter().all(|a| !a.held_out()));
        prop_assert!(held.iter().all(|a| a.held_out()));
        prop_assert_eq!(train.len() + held.len(), attacks.len());
    }
}
