//! The parallel Table-IV sweep: per-algorithm and per-fold fitting on
//! the `athena-parallel` pool.
//!
//! The paper trains 11 algorithm types (Table IV) over the same feature
//! set; each fit is independent, so the sweep is embarrassingly parallel
//! — as is k-fold cross-validation of a single algorithm. Both helpers
//! return results **in submission order** (the pool's ordered
//! reduction), so a sweep report is byte-identical at any
//! `ATHENA_THREADS` setting.

use crate::algorithms::forest::ForestParams;
use crate::algorithms::gbt::GbtParams;
use crate::algorithms::gmm::GmmParams;
use crate::algorithms::linear::LinearParams;
use crate::algorithms::logistic::LogisticParams;
use crate::algorithms::svm::SvmParams;
use crate::data::LabeledPoint;
use crate::metrics::ConfusionMatrix;
use crate::model::{Algorithm, TrainedModel};
use athena_types::Result;
use std::sync::Arc;

/// One fitted entry of a sweep, in roster order.
#[derive(Debug, Clone)]
pub struct AlgoFit {
    /// The algorithm that was fitted.
    pub algorithm: Algorithm,
    /// The fit outcome (training errors are per-entry, not sweep-fatal).
    pub result: Result<TrainedModel>,
}

/// One fold's held-out evaluation, in fold order.
#[derive(Debug, Clone)]
pub struct FoldReport {
    /// Fold index in `0..folds`.
    pub fold: usize,
    /// Confusion matrix over the held-out fold (or the training error).
    pub result: Result<ConfusionMatrix>,
}

/// The paper's Table-IV roster: the 11 trainable algorithms with their
/// default hyperparameters (clusterers default to `k = 2`, benign vs
/// anomalous).
pub fn table_iv_roster() -> Vec<Algorithm> {
    vec![
        Algorithm::GradientBoostedTrees(GbtParams::default()),
        Algorithm::DecisionTree(crate::algorithms::tree::TreeParams::default()),
        Algorithm::LogisticRegression(LogisticParams::default()),
        Algorithm::NaiveBayes,
        Algorithm::RandomForest(ForestParams::default()),
        Algorithm::Svm(SvmParams::default()),
        Algorithm::GaussianMixture(GmmParams::default()),
        Algorithm::kmeans(2),
        Algorithm::Lasso {
            params: LinearParams::default(),
            lambda: 0.1,
        },
        Algorithm::Linear(LinearParams::default()),
        Algorithm::Ridge {
            params: LinearParams::default(),
            lambda: 0.1,
        },
    ]
}

/// Fits every algorithm in `algorithms` over `data`, one pool task per
/// algorithm. Results come back in roster order regardless of which
/// worker finished first.
pub fn fit_all(algorithms: Vec<Algorithm>, data: &[LabeledPoint]) -> Vec<AlgoFit> {
    let data = Arc::new(data.to_vec());
    athena_parallel::par_map(algorithms, move |a| AlgoFit {
        algorithm: a.clone(),
        result: a.fit(&data),
    })
}

/// Deterministic k-fold cross-validation, one pool task per fold: point
/// `i` belongs to fold `i % folds`, each fold trains on the rest and is
/// evaluated on its held-out points via [`TrainedModel::verdict_and_cluster`].
pub fn cross_validate(
    algorithm: &Algorithm,
    data: &[LabeledPoint],
    folds: usize,
) -> Vec<FoldReport> {
    let folds = folds.clamp(2, data.len().max(2));
    let data = Arc::new(data.to_vec());
    let algo = algorithm.clone();
    athena_parallel::par_map_indexed(folds, move |fold| {
        let train: Vec<LabeledPoint> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| i % folds != fold)
            .map(|(_, p)| p.clone())
            .collect();
        let result = algo.fit(&train).map(|model| {
            let mut cm = ConfusionMatrix::default();
            for (_, p) in data.iter().enumerate().filter(|(i, _)| i % folds == fold) {
                let (predicted, _) = model.verdict_and_cluster(&p.features);
                cm.record(p.is_malicious(), predicted);
            }
            cm
        });
        FoldReport { fold, result }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize) -> Vec<LabeledPoint> {
        let mut data = Vec::new();
        for i in 0..n {
            let x = (i % 10) as f64 * 0.01;
            data.push(LabeledPoint::new(vec![x, x], 0.0));
            data.push(LabeledPoint::new(vec![5.0 + x, 5.0 + x], 1.0));
        }
        data
    }

    #[test]
    fn sweep_fits_whole_roster_in_order() {
        let roster = table_iv_roster();
        let names: Vec<&str> = roster.iter().map(Algorithm::name).collect();
        let fits = fit_all(roster, &blobs(60));
        assert_eq!(fits.len(), 11);
        let got: Vec<&str> = fits.iter().map(|f| f.algorithm.name()).collect();
        assert_eq!(got, names, "results must come back in roster order");
        for f in &fits {
            assert!(f.result.is_ok(), "{} failed to fit", f.algorithm.name());
        }
    }

    #[test]
    fn cross_validation_covers_every_point_once() {
        let data = blobs(40);
        let reports = cross_validate(&Algorithm::decision_tree(), &data, 5);
        assert_eq!(reports.len(), 5);
        let total: u64 = reports
            .iter()
            .map(|r| r.result.as_ref().map(ConfusionMatrix::total).unwrap_or(0))
            .sum();
        assert_eq!(total, data.len() as u64);
        for r in &reports {
            let cm = r.result.as_ref().expect("fold fits");
            assert!(cm.detection_rate() > 0.9, "fold {}: {cm:?}", r.fold);
        }
    }

    #[test]
    fn sweep_results_are_identical_across_widths() {
        let data = blobs(50);
        let summarize = |fits: &[AlgoFit]| -> Vec<String> {
            fits.iter()
                .map(|f| match &f.result {
                    Ok(m) => format!("{} {:?}", f.algorithm.name(), m),
                    Err(e) => format!("{} err {e}", f.algorithm.name()),
                })
                .collect()
        };
        std::env::set_var("ATHENA_THREADS", "1");
        let seq = summarize(&fit_all(table_iv_roster(), &data));
        std::env::set_var("ATHENA_THREADS", "8");
        let par = summarize(&fit_all(table_iv_roster(), &data));
        std::env::remove_var("ATHENA_THREADS");
        assert_eq!(seq, par);
    }
}
