//! The Athena machine-learning library (MLlib substitute).
//!
//! The Athena paper ships 11 machine-learning algorithms spanning five
//! categories (Table IV), executed on a Spark cluster. This crate
//! implements all of them from scratch, on top of [`athena_compute`] for
//! distributed training:
//!
//! | Category | Algorithms |
//! |----------|------------|
//! | Boosting | Gradient-Boosted Trees |
//! | Classification | Decision Tree, Logistic Regression, Naive Bayes, Random Forest, SVM |
//! | Clustering | Gaussian Mixture, K-Means |
//! | Regression | Lasso, Linear, Ridge |
//! | Simple | Threshold |
//!
//! The [`Algorithm`] enum is the configuration surface the paper's
//! Detector Manager exposes ("an operator does not have to consider the
//! characteristics of each ML type"): every algorithm is fitted with the
//! same call and yields a [`TrainedModel`] with a uniform
//! [`Model::predict`]. Preprocessors ([`preprocess`]) mirror the paper's
//! four (*weighting*, *sampling*, *normalization*, *marking*), and
//! [`metrics`] computes the exact report of the paper's Figure 6
//! (entries, detection rate, false-alarm rate, per-cluster composition).
//!
//! # Examples
//!
//! ```
//! use athena_ml::{Algorithm, LabeledPoint, Model};
//!
//! // Two well-separated blobs.
//! let mut data = Vec::new();
//! for i in 0..50 {
//!     let x = f64::from(i % 10) * 0.01;
//!     data.push(LabeledPoint::new(vec![x, x], 0.0));
//!     data.push(LabeledPoint::new(vec![5.0 + x, 5.0 + x], 1.0));
//! }
//! let model = Algorithm::kmeans(2).fit(&data)?;
//! let a = model.predict(&[0.0, 0.0]);
//! let b = model.predict(&[5.0, 5.0]);
//! assert_ne!(a, b);
//! # Ok::<(), athena_types::AthenaError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod algorithms;
pub mod data;
pub mod linalg;
pub mod metrics;
pub mod model;
pub mod preprocess;
pub mod sweep;

pub use algorithms::forest::RandomForestModel;
pub use algorithms::gbt::GbtClassifier;
pub use algorithms::gmm::GaussianMixtureModel;
pub use algorithms::kmeans::KMeansModel;
pub use algorithms::linear::LinearModel;
pub use algorithms::logistic::LogisticModel;
pub use algorithms::naive_bayes::NaiveBayesModel;
pub use algorithms::svm::SvmModel;
pub use algorithms::threshold::ThresholdModel;
pub use algorithms::tree::DecisionTreeModel;
pub use data::LabeledPoint;
pub use linalg::{mean_of, DenseVector};
pub use metrics::{group_digits, ClusterReport, ConfusionMatrix, ValidationSummary};
pub use model::{Algorithm, AlgorithmCategory, Model, TrainedModel};
pub use preprocess::{FittedPreprocessor, Normalization, Preprocessor};
pub use sweep::{cross_validate, fit_all, table_iv_roster, AlgoFit, FoldReport};
