//! Minimal dense linear algebra for the ML algorithms.

use serde::{Deserialize, Serialize};
use std::ops::{Deref, DerefMut};

/// A dense `f64` vector with the handful of operations the algorithms use.
///
/// # Examples
///
/// ```
/// use athena_ml::DenseVector;
/// let a = DenseVector::from(vec![1.0, 2.0]);
/// let b = DenseVector::from(vec![3.0, 4.0]);
/// assert_eq!(a.dot(&b), 11.0);
/// assert!((a.squared_distance(&b) - 8.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DenseVector(pub Vec<f64>);

impl DenseVector {
    /// The zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        DenseVector(vec![0.0; dim])
    }

    /// The dimension.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Dot product.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &DenseVector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Dot product against a plain slice.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot_slice(&self, other: &[f64]) -> f64 {
        assert_eq!(self.dim(), other.len(), "dimension mismatch");
        self.0.iter().zip(other).map(|(a, b)| a * b).sum()
    }

    /// Adds `scale * other` in place.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn axpy(&mut self, scale: f64, other: &[f64]) {
        assert_eq!(self.dim(), other.len(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(other) {
            *a += scale * b;
        }
    }

    /// Multiplies every component by `s` in place.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.0 {
            *a *= s;
        }
    }

    /// Squared Euclidean distance to a slice.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn squared_distance(&self, other: &[f64]) -> f64 {
        assert_eq!(self.dim(), other.len(), "dimension mismatch");
        self.0
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|a| a * a).sum::<f64>().sqrt()
    }
}

impl From<Vec<f64>> for DenseVector {
    fn from(v: Vec<f64>) -> Self {
        DenseVector(v)
    }
}

impl Deref for DenseVector {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.0
    }
}

impl DerefMut for DenseVector {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.0
    }
}

/// Component-wise mean of a set of equal-dimension slices.
///
/// Returns `None` for an empty input.
pub fn mean_of<'a>(rows: impl IntoIterator<Item = &'a [f64]>) -> Option<DenseVector> {
    let mut it = rows.into_iter();
    let first = it.next()?;
    let mut acc = DenseVector(first.to_vec());
    let mut n = 1usize;
    for row in it {
        acc.axpy(1.0, row);
        n += 1;
    }
    acc.scale(1.0 / n as f64);
    Some(acc)
}

/// Squared Euclidean distance between two slices.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let v = DenseVector::from(vec![3.0, 4.0]);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(&v), 25.0);
        assert_eq!(v.dot_slice(&[1.0, 1.0]), 7.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut v = DenseVector::zeros(3);
        v.axpy(2.0, &[1.0, 2.0, 3.0]);
        assert_eq!(v.0, vec![2.0, 4.0, 6.0]);
        v.scale(0.5);
        assert_eq!(v.0, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_rejects_mismatched_dims() {
        let _ = DenseVector::zeros(2).dot(&DenseVector::zeros(3));
    }

    #[test]
    fn mean_of_rows() {
        let rows: Vec<Vec<f64>> = vec![vec![0.0, 2.0], vec![2.0, 4.0]];
        let m = mean_of(rows.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(m.0, vec![1.0, 3.0]);
        assert!(mean_of(std::iter::empty()).is_none());
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(-1000.0) >= 0.0); // no NaN/underflow panic
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }
}
