//! Detection-quality metrics: the exact quantities of the paper's Figure 6.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary confusion matrix counted in *entries* (the paper reports entry
/// counts, e.g. "True Positive : 27,780,926 entries").
///
/// # Examples
///
/// ```
/// use athena_ml::ConfusionMatrix;
/// let mut cm = ConfusionMatrix::default();
/// cm.record(true, true);   // malicious, detected  -> TP
/// cm.record(false, false); // benign, passed       -> TN
/// cm.record(false, true);  // benign, flagged      -> FP
/// assert_eq!(cm.detection_rate(), 1.0);
/// assert_eq!(cm.false_alarm_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ConfusionMatrix {
    /// Malicious entries classified malicious.
    pub true_positive: u64,
    /// Benign entries classified malicious.
    pub false_positive: u64,
    /// Benign entries classified benign.
    pub true_negative: u64,
    /// Malicious entries classified benign.
    pub false_negative: u64,
}

impl ConfusionMatrix {
    /// Records one entry: `(actual_malicious, predicted_malicious)`.
    pub fn record(&mut self, actual_malicious: bool, predicted_malicious: bool) {
        match (actual_malicious, predicted_malicious) {
            (true, true) => self.true_positive += 1,
            (true, false) => self.false_negative += 1,
            (false, true) => self.false_positive += 1,
            (false, false) => self.true_negative += 1,
        }
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positive += other.true_positive;
        self.false_positive += other.false_positive;
        self.true_negative += other.true_negative;
        self.false_negative += other.false_negative;
    }

    /// Total entries.
    pub fn total(&self) -> u64 {
        self.true_positive + self.false_positive + self.true_negative + self.false_negative
    }

    /// Actual-malicious entries.
    pub fn actual_malicious(&self) -> u64 {
        self.true_positive + self.false_negative
    }

    /// Actual-benign entries.
    pub fn actual_benign(&self) -> u64 {
        self.true_negative + self.false_positive
    }

    /// Detection rate (recall): `TP / (TP + FN)`; zero when undefined.
    pub fn detection_rate(&self) -> f64 {
        ratio(self.true_positive, self.actual_malicious())
    }

    /// False-alarm rate: `FP / (FP + TN)`; zero when undefined.
    pub fn false_alarm_rate(&self) -> f64 {
        ratio(self.false_positive, self.actual_benign())
    }

    /// Precision: `TP / (TP + FP)`; zero when undefined.
    pub fn precision(&self) -> f64 {
        ratio(self.true_positive, self.true_positive + self.false_positive)
    }

    /// Accuracy: `(TP + TN) / total`; zero when undefined.
    pub fn accuracy(&self) -> f64 {
        ratio(self.true_positive + self.true_negative, self.total())
    }

    /// F1 score; zero when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.detection_rate();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Per-cluster composition, for clustering-based detectors (Figure 6 lists
/// `Cluster #k: Benign (…entries), Malicious (…entries)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ClusterReport {
    /// The cluster index.
    pub cluster: usize,
    /// Actually-benign entries assigned to the cluster.
    pub benign: u64,
    /// Actually-malicious entries assigned to the cluster.
    pub malicious: u64,
    /// Whether the detector treats this cluster as malicious.
    pub flagged_malicious: bool,
}

impl ClusterReport {
    /// Total entries in the cluster.
    pub fn total(&self) -> u64 {
        self.benign + self.malicious
    }
}

/// The validation summary Athena prints after `ValidateFeatures` — the
/// paper's Figure 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ValidationSummary {
    /// The confusion matrix over all validated entries.
    pub confusion: ConfusionMatrix,
    /// Unique flows seen among benign entries.
    pub benign_unique_flows: u64,
    /// Unique flows seen among malicious entries.
    pub malicious_unique_flows: u64,
    /// A description of the model configuration (algorithm + parameters).
    pub model_info: String,
    /// Per-cluster composition (empty for non-clustering models).
    pub clusters: Vec<ClusterReport>,
}

impl ValidationSummary {
    /// Total validated entries.
    pub fn total_entries(&self) -> u64 {
        self.confusion.total()
    }
}

impl fmt::Display for ValidationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.confusion;
        writeln!(f, "Total : {} entries", group_digits(c.total()))?;
        writeln!(
            f,
            "Benign : {} entries ({} unique flows)",
            group_digits(c.actual_benign()),
            group_digits(self.benign_unique_flows)
        )?;
        writeln!(
            f,
            "Malicious : {} entries ({} unique flows)",
            group_digits(c.actual_malicious()),
            group_digits(self.malicious_unique_flows)
        )?;
        writeln!(
            f,
            "True Positive : {} entries",
            group_digits(c.true_positive)
        )?;
        writeln!(
            f,
            "False Positive : {} entries",
            group_digits(c.false_positive)
        )?;
        writeln!(
            f,
            "True Negative : {} entries",
            group_digits(c.true_negative)
        )?;
        writeln!(
            f,
            "False Negative : {} entries",
            group_digits(c.false_negative)
        )?;
        writeln!(f, "Detection Rate : {}", c.detection_rate())?;
        writeln!(f, "False Alarm Rate: {}", c.false_alarm_rate())?;
        if !self.model_info.is_empty() {
            writeln!(f, "{}", self.model_info)?;
        }
        for cr in &self.clusters {
            writeln!(
                f,
                "Cluster #{}: Benign ({} entries), Malicious ({} entries){}",
                cr.cluster,
                group_digits(cr.benign),
                group_digits(cr.malicious),
                if cr.flagged_malicious {
                    " [flagged]"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

/// Formats an integer with thousands separators (`37370466` →
/// `"37,370,466"`), matching the paper's report format.
pub fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> ConfusionMatrix {
        ConfusionMatrix {
            true_positive: 90,
            false_negative: 10,
            true_negative: 95,
            false_positive: 5,
        }
    }

    #[test]
    fn rates() {
        let c = filled();
        assert!((c.detection_rate() - 0.9).abs() < 1e-12);
        assert!((c.false_alarm_rate() - 0.05).abs() < 1e-12);
        assert!((c.accuracy() - 0.925).abs() < 1e-12);
        assert!((c.precision() - 90.0 / 95.0).abs() < 1e-12);
        assert!(c.f1() > 0.9);
        assert_eq!(c.total(), 200);
    }

    #[test]
    fn empty_matrix_rates_are_zero_not_nan() {
        let c = ConfusionMatrix::default();
        assert_eq!(c.detection_rate(), 0.0);
        assert_eq!(c.false_alarm_rate(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn record_routes_correctly() {
        let mut c = ConfusionMatrix::default();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!(
            (
                c.true_positive,
                c.false_negative,
                c.false_positive,
                c.true_negative
            ),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = filled();
        a.merge(&filled());
        assert_eq!(a.total(), 400);
        assert_eq!(a.true_positive, 180);
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(37_370_466), "37,370,466");
    }

    #[test]
    fn summary_display_matches_paper_shape() {
        let s = ValidationSummary {
            confusion: filled(),
            benign_unique_flows: 25,
            malicious_unique_flows: 160,
            model_info: "Cluster (K-Means)".into(),
            clusters: vec![ClusterReport {
                cluster: 0,
                benign: 5,
                malicious: 90,
                flagged_malicious: true,
            }],
        };
        let text = s.to_string();
        assert!(text.contains("Detection Rate : 0.9"));
        assert!(text.contains("Cluster #0: Benign (5 entries), Malicious (90 entries)"));
        assert!(text.contains("False Alarm Rate: 0.05"));
    }
}
