//! Gradient-boosted trees for binary classification (logistic loss) —
//! the paper's "Boosting" category.

use crate::algorithms::tree::{DecisionTreeModel, TreeParams};
use crate::data::LabeledPoint;
use crate::linalg::sigmoid;
use athena_types::{AthenaError, Result};
use serde::{Deserialize, Serialize};

/// GBT hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtParams {
    /// Boosting rounds (trees).
    pub rounds: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Base-learner parameters.
    pub tree: TreeParams,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            rounds: 30,
            learning_rate: 0.3,
            tree: TreeParams {
                max_depth: 3,
                ..TreeParams::default()
            },
        }
    }
}

/// A fitted gradient-boosted-trees classifier.
///
/// The model maintains an additive log-odds score
/// `F(x) = F0 + lr * Σ tree_i(x)` where each tree is a regression tree fit
/// to the pseudo-residuals `y - sigmoid(F)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbtClassifier {
    base_score: f64,
    trees: Vec<DecisionTreeModel>,
    /// The parameters used.
    pub params: GbtParams,
}

impl GbtClassifier {
    /// Fits by gradient boosting on the logistic loss.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for empty/ragged data or bad
    /// hyperparameters.
    pub fn fit(params: GbtParams, data: &[LabeledPoint]) -> Result<Self> {
        crate::data::check_dims(data)?;
        if params.rounds == 0 {
            return Err(AthenaError::Ml("gbt needs at least one round".into()));
        }
        if params.learning_rate <= 0.0 {
            return Err(AthenaError::Ml("learning rate must be positive".into()));
        }
        // F0 = log-odds of the base rate.
        let pos = data.iter().filter(|p| p.is_malicious()).count() as f64;
        let rate = (pos / data.len() as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (rate / (1.0 - rate)).ln();

        let mut scores = vec![base_score; data.len()];
        let mut trees = Vec::with_capacity(params.rounds);
        for _ in 0..params.rounds {
            // Pseudo-residuals of the logistic loss.
            let residuals: Vec<LabeledPoint> = data
                .iter()
                .zip(&scores)
                .map(|(p, s)| LabeledPoint::new(p.features.clone(), p.label - sigmoid(*s)))
                .collect();
            let tree = DecisionTreeModel::fit_regression(params.tree, &residuals)?;
            for (s, p) in scores.iter_mut().zip(data) {
                *s += params.learning_rate * tree.predict_value(&p.features);
            }
            trees.push(tree);
        }
        Ok(GbtClassifier {
            base_score,
            trees,
            params,
        })
    }

    /// The additive log-odds score.
    pub fn decision(&self, x: &[f64]) -> f64 {
        self.base_score
            + self.params.learning_rate * self.trees.iter().map(|t| t.predict_value(x)).sum::<f64>()
    }

    /// Probability that `x` is malicious.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision(x))
    }

    /// Number of boosted trees.
    pub fn rounds(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_data::{accuracy, blobs};

    #[test]
    fn high_accuracy_on_separable_blobs() {
        let data = blobs(100, 3, 61);
        let m = GbtClassifier::fit(GbtParams::default(), &data).unwrap();
        assert!(accuracy(&data, |x| m.predict_proba(x)) > 0.98);
    }

    #[test]
    fn more_rounds_do_not_hurt_training_accuracy() {
        let data = blobs(80, 2, 67);
        let small = GbtClassifier::fit(
            GbtParams {
                rounds: 2,
                ..GbtParams::default()
            },
            &data,
        )
        .unwrap();
        let big = GbtClassifier::fit(
            GbtParams {
                rounds: 40,
                ..GbtParams::default()
            },
            &data,
        )
        .unwrap();
        let acc_small = accuracy(&data, |x| small.predict_proba(x));
        let acc_big = accuracy(&data, |x| big.predict_proba(x));
        assert!(acc_big >= acc_small - 1e-9);
        assert_eq!(big.rounds(), 40);
    }

    #[test]
    fn handles_single_class_gracefully() {
        // All benign: base rate clamped; every prediction stays benign.
        let data: Vec<LabeledPoint> = (0..20)
            .map(|i| LabeledPoint::new(vec![f64::from(i)], 0.0))
            .collect();
        let m = GbtClassifier::fit(GbtParams::default(), &data).unwrap();
        assert!(m.predict_proba(&[5.0]) < 0.5);
    }

    #[test]
    fn rejects_bad_params() {
        let data = blobs(5, 2, 1);
        assert!(GbtClassifier::fit(
            GbtParams {
                rounds: 0,
                ..GbtParams::default()
            },
            &data
        )
        .is_err());
        assert!(GbtClassifier::fit(
            GbtParams {
                learning_rate: 0.0,
                ..GbtParams::default()
            },
            &data
        )
        .is_err());
        assert!(GbtClassifier::fit(GbtParams::default(), &[]).is_err());
    }
}
