//! Threshold detection — the paper's "Simple" category.
//!
//! A threshold detector needs no learning phase: the paper notes Athena
//! "exports a pre-defined model without a learning phase when using other
//! algorithms (e.g., threshold-based detection)".

use serde::{Deserialize, Serialize};

/// The comparison direction of a threshold rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ThresholdDirection {
    /// Anomalous when the feature is at or above the threshold.
    #[default]
    Above,
    /// Anomalous when the feature is at or below the threshold.
    Below,
}

/// A threshold rule on a single feature.
///
/// # Examples
///
/// ```
/// use athena_ml::ThresholdModel;
/// let m = ThresholdModel::above(0, 100.0);
/// assert_eq!(m.score(&[150.0]), 1.0);
/// assert_eq!(m.score(&[50.0]), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdModel {
    /// The feature index tested.
    pub feature: usize,
    /// The threshold.
    pub threshold: f64,
    /// The comparison direction.
    pub direction: ThresholdDirection,
}

impl ThresholdModel {
    /// Anomalous when `features[feature] >= threshold`.
    pub fn above(feature: usize, threshold: f64) -> Self {
        ThresholdModel {
            feature,
            threshold,
            direction: ThresholdDirection::Above,
        }
    }

    /// Anomalous when `features[feature] <= threshold`.
    pub fn below(feature: usize, threshold: f64) -> Self {
        ThresholdModel {
            feature,
            threshold,
            direction: ThresholdDirection::Below,
        }
    }

    /// Returns `1.0` when the rule fires, `0.0` otherwise. Missing
    /// features never fire.
    pub fn score(&self, x: &[f64]) -> f64 {
        let Some(v) = x.get(self.feature) else {
            return 0.0;
        };
        let fired = match self.direction {
            ThresholdDirection::Above => *v >= self.threshold,
            ThresholdDirection::Below => *v <= self.threshold,
        };
        f64::from(u8::from(fired))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn above_and_below() {
        let m = ThresholdModel::above(1, 10.0);
        assert_eq!(m.score(&[0.0, 10.0]), 1.0);
        assert_eq!(m.score(&[0.0, 9.9]), 0.0);
        let m = ThresholdModel::below(0, -5.0);
        assert_eq!(m.score(&[-5.0]), 1.0);
        assert_eq!(m.score(&[0.0]), 0.0);
    }

    #[test]
    fn missing_feature_never_fires() {
        let m = ThresholdModel::above(3, 0.0);
        assert_eq!(m.score(&[1.0]), 0.0);
    }
}
