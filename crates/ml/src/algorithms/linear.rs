//! Linear, Ridge, and Lasso regression via (proximal) gradient descent —
//! the paper's "Regression" category.

use crate::data::LabeledPoint;
use crate::linalg::DenseVector;
use athena_types::{AthenaError, Result};
use serde::{Deserialize, Serialize};

/// The regularization flavor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Regularizer {
    /// Ordinary least squares.
    #[default]
    None,
    /// Ridge (L2) with the given strength.
    Ridge(f64),
    /// Lasso (L1) with the given strength, via proximal soft-thresholding.
    Lasso(f64),
}

/// Regression hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearParams {
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Regularization.
    pub regularizer: Regularizer,
}

impl Default for LinearParams {
    fn default() -> Self {
        // The conservative rate keeps full-batch GD stable for feature
        // magnitudes up to ~5 without normalization.
        LinearParams {
            iterations: 800,
            learning_rate: 0.02,
            regularizer: Regularizer::None,
        }
    }
}

/// A fitted linear model `y = w·x + b`.
///
/// # Examples
///
/// ```
/// use athena_ml::{LabeledPoint, LinearModel};
/// use athena_ml::algorithms::linear::LinearParams;
///
/// // y = 2x + 1
/// let data: Vec<LabeledPoint> = (0..20)
///     .map(|i| {
///         let x = f64::from(i) / 10.0;
///         LabeledPoint::new(vec![x], 2.0 * x + 1.0)
///     })
///     .collect();
/// let m = LinearModel::fit(LinearParams::default(), &data)?;
/// assert!((m.predict_value(&[1.0]) - 3.0).abs() < 0.1);
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Feature weights.
    pub weights: DenseVector,
    /// Intercept.
    pub bias: f64,
    /// The parameters used.
    pub params: LinearParams,
}

impl LinearModel {
    /// Fits by gradient descent on the mean-squared error, with the chosen
    /// regularizer (L2 gradient, or L1 proximal soft-threshold).
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for empty/ragged data or a bad learning
    /// rate.
    pub fn fit(params: LinearParams, data: &[LabeledPoint]) -> Result<Self> {
        let dim = crate::data::check_dims(data)?;
        if params.learning_rate <= 0.0 || !params.learning_rate.is_finite() {
            return Err(AthenaError::Ml("learning rate must be positive".into()));
        }
        if let Regularizer::Ridge(l) | Regularizer::Lasso(l) = params.regularizer {
            if l < 0.0 {
                return Err(AthenaError::Ml(
                    "regularization strength must be non-negative".into(),
                ));
            }
        }
        let mut w = DenseVector::zeros(dim);
        let mut b = 0.0;
        let n = data.len() as f64;
        for _ in 0..params.iterations {
            let mut grad_w = DenseVector::zeros(dim);
            let mut grad_b = 0.0;
            for p in data {
                let err = w.dot_slice(&p.features) + b - p.label;
                grad_w.axpy(2.0 * err / n, &p.features);
                grad_b += 2.0 * err / n;
            }
            if let Regularizer::Ridge(l) = params.regularizer {
                grad_w.axpy(2.0 * l, &w);
            }
            w.axpy(-params.learning_rate, &grad_w);
            b -= params.learning_rate * grad_b;
            if let Regularizer::Lasso(l) = params.regularizer {
                let tau = params.learning_rate * l;
                for wi in w.iter_mut() {
                    *wi = soft_threshold(*wi, tau);
                }
            }
        }
        Ok(LinearModel {
            weights: w,
            bias: b,
            params,
        })
    }

    /// The predicted regression value.
    pub fn predict_value(&self, x: &[f64]) -> f64 {
        self.weights.dot_slice(x) + self.bias
    }

    /// Mean squared error over a data set.
    pub fn mse(&self, data: &[LabeledPoint]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter()
            .map(|p| {
                let e = self.predict_value(&p.features) - p.label;
                e * e
            })
            .sum::<f64>()
            / data.len() as f64
    }
}

fn soft_threshold(x: f64, tau: f64) -> f64 {
    if x > tau {
        x - tau
    } else if x < -tau {
        x + tau
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data(slope: &[f64], intercept: f64, n: usize) -> Vec<LabeledPoint> {
        (0..n)
            .map(|i| {
                let x: Vec<f64> = (0..slope.len())
                    .map(|d| f64::from((i + d * 3) as u32 % 10) / 10.0)
                    .collect();
                let y: f64 = x.iter().zip(slope).map(|(xi, s)| xi * s).sum::<f64>() + intercept;
                LabeledPoint::new(x, y)
            })
            .collect()
    }

    #[test]
    fn recovers_a_line() {
        let data = line_data(&[2.0, -1.0], 0.5, 100);
        let m = LinearModel::fit(
            LinearParams {
                iterations: 2000,
                learning_rate: 0.3,
                regularizer: Regularizer::None,
            },
            &data,
        )
        .unwrap();
        assert!(m.mse(&data) < 1e-3, "mse {}", m.mse(&data));
        assert!((m.weights[0] - 2.0).abs() < 0.1);
        assert!((m.weights[1] + 1.0).abs() < 0.1);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let data = line_data(&[5.0], 0.0, 50);
        let plain = LinearModel::fit(
            LinearParams {
                iterations: 1000,
                learning_rate: 0.3,
                regularizer: Regularizer::None,
            },
            &data,
        )
        .unwrap();
        let ridge = LinearModel::fit(
            LinearParams {
                iterations: 1000,
                learning_rate: 0.3,
                regularizer: Regularizer::Ridge(1.0),
            },
            &data,
        )
        .unwrap();
        assert!(ridge.weights[0].abs() < plain.weights[0].abs());
    }

    #[test]
    fn lasso_zeroes_irrelevant_features() {
        // Second feature is pure noise with zero true weight.
        let data: Vec<LabeledPoint> = (0..100)
            .map(|i| {
                let x0 = f64::from(i % 10) / 10.0;
                let noise = f64::from((i * 7) % 10) / 10.0;
                LabeledPoint::new(vec![x0, noise], 3.0 * x0)
            })
            .collect();
        let m = LinearModel::fit(
            LinearParams {
                iterations: 2000,
                learning_rate: 0.2,
                regularizer: Regularizer::Lasso(0.02),
            },
            &data,
        )
        .unwrap();
        assert!(m.weights[0] > 1.0, "kept the real feature: {:?}", m.weights);
        assert!(
            m.weights[1].abs() < 0.05,
            "zeroed the noise feature: {:?}",
            m.weights
        );
    }

    #[test]
    fn soft_threshold_behaviour() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(LinearModel::fit(LinearParams::default(), &[]).is_err());
        let data = line_data(&[1.0], 0.0, 5);
        assert!(LinearModel::fit(
            LinearParams {
                learning_rate: -1.0,
                ..LinearParams::default()
            },
            &data
        )
        .is_err());
        assert!(LinearModel::fit(
            LinearParams {
                regularizer: Regularizer::Lasso(-1.0),
                ..LinearParams::default()
            },
            &data
        )
        .is_err());
    }
}
