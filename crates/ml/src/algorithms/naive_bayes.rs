//! Gaussian Naive Bayes binary classification.

use crate::data::LabeledPoint;
use athena_types::{AthenaError, Result};
use serde::{Deserialize, Serialize};

/// Per-class Gaussian statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClassStats {
    log_prior: f64,
    mean: Vec<f64>,
    variance: Vec<f64>,
}

impl ClassStats {
    fn log_likelihood(&self, x: &[f64]) -> f64 {
        let mut acc = self.log_prior;
        for ((xi, mi), vi) in x.iter().zip(&self.mean).zip(&self.variance) {
            let v = vi.max(1e-9);
            acc += -0.5 * ((xi - mi) * (xi - mi) / v + v.ln());
        }
        acc
    }
}

/// A fitted Gaussian Naive Bayes classifier over binary labels.
///
/// # Examples
///
/// ```
/// use athena_ml::{LabeledPoint, NaiveBayesModel};
/// let data = vec![
///     LabeledPoint::new(vec![0.0], 0.0),
///     LabeledPoint::new(vec![0.1], 0.0),
///     LabeledPoint::new(vec![5.0], 1.0),
///     LabeledPoint::new(vec![5.1], 1.0),
/// ];
/// let m = NaiveBayesModel::fit(&data)?;
/// assert!(m.predict_proba(&[5.0]) > 0.5);
/// assert!(m.predict_proba(&[0.0]) < 0.5);
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaiveBayesModel {
    benign: ClassStats,
    malicious: ClassStats,
}

impl NaiveBayesModel {
    /// Fits class-conditional Gaussians plus priors.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for empty/ragged data or data with only
    /// one class.
    pub fn fit(data: &[LabeledPoint]) -> Result<Self> {
        let dim = crate::data::check_dims(data)?;
        let (pos, neg): (Vec<&LabeledPoint>, Vec<&LabeledPoint>) =
            data.iter().partition(|p| p.is_malicious());
        if pos.is_empty() || neg.is_empty() {
            return Err(AthenaError::Ml(
                "naive bayes requires both classes in training data".into(),
            ));
        }
        let n = data.len() as f64;
        let stats = |class: &[&LabeledPoint]| -> ClassStats {
            let cn = class.len() as f64;
            let mut mean = vec![0.0; dim];
            for p in class {
                for (m, x) in mean.iter_mut().zip(&p.features) {
                    *m += x / cn;
                }
            }
            let mut variance = vec![0.0; dim];
            for p in class {
                for ((v, x), m) in variance.iter_mut().zip(&p.features).zip(&mean) {
                    *v += (x - m) * (x - m) / cn;
                }
            }
            ClassStats {
                log_prior: (cn / n).ln(),
                mean,
                variance,
            }
        };
        Ok(NaiveBayesModel {
            benign: stats(&neg),
            malicious: stats(&pos),
        })
    }

    /// Builds a model directly from per-class first and second moments,
    /// for incremental fitters (e.g. the streaming pipeline's
    /// Welford-accumulated naive Bayes) that maintain counts, means,
    /// and population variances online and freeze them into a
    /// deployable model without replaying the data.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] when either class is empty or the
    /// moment vectors disagree on dimension.
    pub fn from_moments(
        benign: (u64, Vec<f64>, Vec<f64>),
        malicious: (u64, Vec<f64>, Vec<f64>),
    ) -> Result<Self> {
        let (bn, bm, bv) = benign;
        let (pn, pm, pv) = malicious;
        if bn == 0 || pn == 0 {
            return Err(AthenaError::Ml(
                "naive bayes requires both classes in training data".into(),
            ));
        }
        let dim = bm.len();
        if dim == 0 || bv.len() != dim || pm.len() != dim || pv.len() != dim {
            return Err(AthenaError::Ml(
                "naive bayes moment vectors disagree on dimension".into(),
            ));
        }
        let n = (bn + pn) as f64;
        Ok(NaiveBayesModel {
            benign: ClassStats {
                log_prior: (bn as f64 / n).ln(),
                mean: bm,
                variance: bv,
            },
            malicious: ClassStats {
                log_prior: (pn as f64 / n).ln(),
                mean: pm,
                variance: pv,
            },
        })
    }

    /// Posterior probability that `x` is malicious.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let lp = self.malicious.log_likelihood(x);
        let ln = self.benign.log_likelihood(x);
        let max = lp.max(ln);
        let ep = (lp - max).exp();
        let en = (ln - max).exp();
        ep / (ep + en)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_data::{accuracy, blobs};

    #[test]
    fn high_accuracy_on_separable_blobs() {
        let data = blobs(150, 4, 17);
        let m = NaiveBayesModel::fit(&data).unwrap();
        assert!(accuracy(&data, |x| m.predict_proba(x)) > 0.98);
    }

    #[test]
    fn probabilities_are_valid() {
        let data = blobs(50, 2, 3);
        let m = NaiveBayesModel::fit(&data).unwrap();
        for p in &data {
            let prob = m.predict_proba(&p.features);
            assert!((0.0..=1.0).contains(&prob));
        }
    }

    #[test]
    fn requires_both_classes() {
        let one_class: Vec<LabeledPoint> = (0..10)
            .map(|i| LabeledPoint::new(vec![f64::from(i)], 0.0))
            .collect();
        assert!(NaiveBayesModel::fit(&one_class).is_err());
        assert!(NaiveBayesModel::fit(&[]).is_err());
    }
}
