//! Random forests: bootstrap-aggregated decision trees with feature
//! bagging.

use crate::algorithms::tree::{DecisionTreeModel, TreeParams, TreeTask};
use crate::data::LabeledPoint;
use athena_types::{AthenaError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree parameters.
    pub tree: TreeParams,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            trees: 20,
            tree: TreeParams::default(),
            seed: 42,
        }
    }
}

/// A fitted random forest: `predict` averages per-tree votes, so the score
/// is the fraction of trees voting malicious.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForestModel {
    /// The ensemble members.
    pub trees: Vec<DecisionTreeModel>,
    /// The parameters used.
    pub params: ForestParams,
}

impl RandomForestModel {
    /// Fits `trees` classification trees, each on a bootstrap sample with
    /// `ceil(sqrt(dim))` randomly chosen features.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for empty/ragged data or zero trees.
    pub fn fit(params: ForestParams, data: &[LabeledPoint]) -> Result<Self> {
        let dim = crate::data::check_dims(data)?;
        if params.trees == 0 {
            return Err(AthenaError::Ml("forest needs at least one tree".into()));
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        let n_features = ((dim as f64).sqrt().ceil() as usize).clamp(1, dim);
        let mut trees = Vec::with_capacity(params.trees);
        for _ in 0..params.trees {
            // Bootstrap sample (with replacement).
            let sample: Vec<LabeledPoint> = (0..data.len())
                .map(|_| data[rng.random_range(0..data.len())].clone())
                .collect();
            // Feature bagging.
            let mut feats: Vec<usize> = (0..dim).collect();
            feats.shuffle(&mut rng);
            feats.truncate(n_features);
            trees.push(DecisionTreeModel::fit_with_features(
                params.tree,
                TreeTask::Classification,
                &sample,
                Some(&feats),
            )?);
        }
        Ok(RandomForestModel { trees, params })
    }

    /// The fraction of trees voting malicious (`>= 0.5` = malicious).
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let votes: f64 = self
            .trees
            .iter()
            .map(|t| f64::from(u8::from(t.predict_value(x) >= 0.5)))
            .sum();
        votes / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_data::{accuracy, blobs};

    #[test]
    fn high_accuracy_on_separable_blobs() {
        let data = blobs(100, 4, 53);
        let m = RandomForestModel::fit(ForestParams::default(), &data).unwrap();
        assert!(accuracy(&data, |x| m.predict_proba(x)) > 0.97);
    }

    #[test]
    fn builds_the_requested_number_of_trees() {
        let data = blobs(30, 2, 7);
        let m = RandomForestModel::fit(
            ForestParams {
                trees: 7,
                ..ForestParams::default()
            },
            &data,
        )
        .unwrap();
        assert_eq!(m.trees.len(), 7);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let data = blobs(40, 3, 13);
        let a = RandomForestModel::fit(ForestParams::default(), &data).unwrap();
        let b = RandomForestModel::fit(ForestParams::default(), &data).unwrap();
        assert_eq!(a.trees.len(), b.trees.len());
        for (x, y) in a.trees.iter().zip(&b.trees) {
            assert_eq!(x.root, y.root);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(RandomForestModel::fit(ForestParams::default(), &[]).is_err());
        let data = blobs(5, 2, 1);
        assert!(RandomForestModel::fit(
            ForestParams {
                trees: 0,
                ..ForestParams::default()
            },
            &data
        )
        .is_err());
    }
}
