//! The eleven Athena algorithms plus threshold detection.
//!
//! Every module exposes a model type with a `fit` constructor and a
//! `predict` method; [`crate::model::Algorithm`] provides the uniform
//! configuration-based entry point the paper's Detector Manager exports.

pub mod forest;
pub mod gbt;
pub mod gmm;
pub mod kmeans;
pub mod linear;
pub mod logistic;
pub mod naive_bayes;
pub mod svm;
pub mod threshold;
pub mod tree;

#[cfg(test)]
pub(crate) mod test_data {
    use crate::data::LabeledPoint;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Two Gaussian-ish blobs: benign near the origin, malicious near
    /// (4, 4, ...). Interleaved so partition-based algorithms see both.
    pub fn blobs(n_per_class: usize, dim: usize, seed: u64) -> Vec<LabeledPoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n_per_class * 2);
        for _ in 0..n_per_class {
            let benign: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
            out.push(LabeledPoint::new(benign, 0.0));
            let malicious: Vec<f64> = (0..dim)
                .map(|_| 4.0 + rng.random_range(-1.0..1.0))
                .collect();
            out.push(LabeledPoint::new(malicious, 1.0));
        }
        out
    }

    /// Fraction of points the score function classifies correctly, where
    /// `score >= 0.5` means malicious.
    pub fn accuracy(data: &[LabeledPoint], mut score: impl FnMut(&[f64]) -> f64) -> f64 {
        let correct = data
            .iter()
            .filter(|p| (score(&p.features) >= 0.5) == p.is_malicious())
            .count();
        correct as f64 / data.len() as f64
    }
}
