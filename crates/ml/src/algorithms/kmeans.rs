//! K-Means clustering with k-means++ seeding, multiple runs, and a
//! distributed (per-partition aggregation) training path.
//!
//! This is the algorithm the paper's flagship DDoS detector uses
//! (Figure 6: `K(8), Iterations(20), Runs(5), InitializedMode(k-means||)`).

use crate::data::LabeledPoint;
use crate::linalg::{squared_distance, DenseVector};
use athena_compute::Dataset;
use athena_types::{AthenaError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// K-Means hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansParams {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per run.
    pub max_iterations: usize,
    /// Independent restarts; the lowest-cost run wins.
    pub runs: usize,
    /// Convergence threshold on total centroid movement.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        KMeansParams {
            k: 8,
            max_iterations: 20,
            runs: 5,
            epsilon: 1e-4,
            seed: 42,
        }
    }
}

/// A fitted K-Means model: the centroids and the final cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansModel {
    /// Cluster centroids.
    pub centroids: Vec<DenseVector>,
    /// Final within-cluster sum of squared distances (training cost).
    pub cost: f64,
    /// The parameters used.
    pub params: KMeansParams,
}

impl KMeansModel {
    /// Fits K-Means on an in-memory slice.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for an empty/ragged set or `k == 0`.
    pub fn fit(params: KMeansParams, data: &[LabeledPoint]) -> Result<Self> {
        let dim = crate::data::check_dims(data)?;
        validate(&params, data.len())?;
        let points: Vec<&[f64]> = data.iter().map(|p| p.features.as_slice()).collect();
        let mut best: Option<(Vec<DenseVector>, f64)> = None;
        for run in 0..params.runs.max(1) {
            let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(run as u64));
            let mut centroids = plus_plus_init(&points, params.k, &mut rng);
            let mut cost = f64::INFINITY;
            for _ in 0..params.max_iterations {
                let (sums, counts, new_cost) = assign_and_sum(&points, &centroids, dim);
                let movement = update_centroids(&mut centroids, &sums, &counts);
                cost = new_cost;
                if movement < params.epsilon {
                    break;
                }
            }
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((centroids, cost));
            }
        }
        let (centroids, cost) = best.expect("at least one run");
        Ok(KMeansModel {
            centroids,
            cost,
            params,
        })
    }

    /// Fits K-Means with the Lloyd step distributed over a compute
    /// cluster: each partition produces per-centroid `(sum, count)` pairs,
    /// combined on the driver — the MLlib execution shape.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for an empty dataset or `k == 0`.
    pub fn fit_distributed(params: KMeansParams, data: &Dataset<LabeledPoint>) -> Result<Self> {
        if data.is_empty() {
            return Err(AthenaError::Ml("empty training set".into()));
        }
        validate(&params, data.len())?;
        // Seed centroids from a driver-side sample.
        let sample: Vec<LabeledPoint> = data.sample(sample_fraction(data.len())).collect();
        let sample = if sample.is_empty() {
            data.sample(1.0).collect()
        } else {
            sample
        };
        let dim = crate::data::check_dims(&sample)?;
        let sample_refs: Vec<&[f64]> = sample.iter().map(|p| p.features.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut centroids = plus_plus_init(&sample_refs, params.k, &mut rng);

        let mut cost = f64::INFINITY;
        for _ in 0..params.max_iterations {
            let centroids_snapshot = centroids.clone();
            // One distributed job per Lloyd iteration.
            let partials = data.map_partitions(move |part| {
                let points: Vec<&[f64]> = part.iter().map(|p| p.features.as_slice()).collect();
                let (sums, counts, c) = assign_and_sum(&points, &centroids_snapshot, dim);
                vec![(sums, counts, c)]
            });
            let mut sums = vec![DenseVector::zeros(dim); centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            let mut new_cost = 0.0;
            for (ps, pc, c) in partials.collect() {
                for (j, s) in ps.iter().enumerate() {
                    sums[j].axpy(1.0, s);
                    counts[j] += pc[j];
                }
                new_cost += c;
            }
            let movement = update_centroids(&mut centroids, &sums, &counts);
            cost = new_cost;
            if movement < params.epsilon {
                break;
            }
        }
        Ok(KMeansModel {
            centroids,
            cost,
            params,
        })
    }

    /// Index of the nearest centroid.
    pub fn cluster_of(&self, x: &[f64]) -> usize {
        nearest(&self.centroids, x).0
    }

    /// Squared distance to the nearest centroid (an anomaly score).
    pub fn distance_to_nearest(&self, x: &[f64]) -> f64 {
        nearest(&self.centroids, x).1
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Total within-cluster sum of squared distances over `data`.
    pub fn compute_cost(&self, data: &[LabeledPoint]) -> f64 {
        data.iter()
            .map(|p| self.distance_to_nearest(&p.features))
            .sum()
    }
}

fn validate(params: &KMeansParams, n: usize) -> Result<()> {
    if params.k == 0 {
        return Err(AthenaError::Ml("k must be positive".into()));
    }
    if n == 0 {
        return Err(AthenaError::Ml("empty training set".into()));
    }
    Ok(())
}

fn sample_fraction(n: usize) -> f64 {
    // Aim for ~10k seed points.
    (10_000.0 / n as f64).clamp(0.001, 1.0)
}

/// k-means++ seeding (the serial analogue of k-means||).
fn plus_plus_init(points: &[&[f64]], k: usize, rng: &mut StdRng) -> Vec<DenseVector> {
    let first = points[rng.random_range(0..points.len())];
    let mut centroids = vec![DenseVector(first.to_vec())];
    let mut d2: Vec<f64> = points.iter().map(|p| squared_distance(p, first)).collect();
    while centroids.len() < k.min(points.len()) {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            points[rng.random_range(0..points.len())]
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = points[points.len() - 1];
            for (p, w) in points.iter().zip(&d2) {
                if target < *w {
                    chosen = p;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.push(DenseVector(next.to_vec()));
        for (p, w) in points.iter().zip(d2.iter_mut()) {
            *w = w.min(squared_distance(p, next));
        }
    }
    // If k > distinct points, pad with copies so cluster_of stays in range.
    while centroids.len() < k {
        centroids.push(centroids[0].clone());
    }
    centroids
}

fn nearest(centroids: &[DenseVector], x: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = c.squared_distance(x);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// Assigns points to centroids, returning per-centroid sums, counts, and
/// the total cost.
fn assign_and_sum(
    points: &[&[f64]],
    centroids: &[DenseVector],
    dim: usize,
) -> (Vec<DenseVector>, Vec<usize>, f64) {
    let mut sums = vec![DenseVector::zeros(dim); centroids.len()];
    let mut counts = vec![0usize; centroids.len()];
    let mut cost = 0.0;
    for p in points {
        let (i, d) = nearest(centroids, p);
        sums[i].axpy(1.0, p);
        counts[i] += 1;
        cost += d;
    }
    (sums, counts, cost)
}

/// Moves centroids to their cluster means; returns total movement.
fn update_centroids(centroids: &mut [DenseVector], sums: &[DenseVector], counts: &[usize]) -> f64 {
    let mut movement = 0.0;
    for ((c, s), n) in centroids.iter_mut().zip(sums).zip(counts) {
        if *n == 0 {
            continue; // empty cluster keeps its centroid
        }
        let mut new = s.clone();
        new.scale(1.0 / *n as f64);
        movement += c.squared_distance(&new).sqrt();
        *c = new;
    }
    movement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_data::blobs;
    use athena_compute::ComputeCluster;

    #[test]
    fn separates_two_blobs() {
        let data = blobs(100, 3, 1);
        let model = KMeansModel::fit(
            KMeansParams {
                k: 2,
                ..KMeansParams::default()
            },
            &data,
        )
        .unwrap();
        let a = model.cluster_of(&[0.0, 0.0, 0.0]);
        let b = model.cluster_of(&[4.0, 4.0, 4.0]);
        assert_ne!(a, b);
        // Every benign point lands in the benign cluster.
        for p in &data {
            let expect = if p.is_malicious() { b } else { a };
            assert_eq!(model.cluster_of(&p.features), expect);
        }
    }

    #[test]
    fn more_clusters_never_increase_cost() {
        let data = blobs(80, 2, 7);
        let mut last = f64::INFINITY;
        for k in [1, 2, 4, 8] {
            let model = KMeansModel::fit(
                KMeansParams {
                    k,
                    runs: 3,
                    ..KMeansParams::default()
                },
                &data,
            )
            .unwrap();
            let cost = model.compute_cost(&data);
            assert!(cost <= last + 1e-6, "k={k}: {cost} > {last}");
            last = cost;
        }
    }

    #[test]
    fn distributed_matches_serial_shape() {
        let data = blobs(150, 2, 3);
        let cluster = ComputeCluster::new(4);
        let ds = cluster.parallelize(data.clone(), 8);
        let params = KMeansParams {
            k: 2,
            max_iterations: 30,
            ..KMeansParams::default()
        };
        let dist = KMeansModel::fit_distributed(params, &ds).unwrap();
        assert_eq!(dist.k(), 2);
        // Same separation property as the serial fit.
        assert_ne!(dist.cluster_of(&[0.0, 0.0]), dist.cluster_of(&[4.0, 4.0]));
        // Distributed training ran jobs on the cluster.
        assert!(cluster.job_count() > 0);
    }

    #[test]
    fn k_larger_than_points_is_padded() {
        let data = blobs(2, 2, 5);
        let model = KMeansModel::fit(
            KMeansParams {
                k: 16,
                ..KMeansParams::default()
            },
            &data,
        )
        .unwrap();
        assert_eq!(model.k(), 16);
        assert!(model.cluster_of(&[0.0, 0.0]) < 16);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(KMeansModel::fit(KMeansParams::default(), &[]).is_err());
        let data = blobs(5, 2, 0);
        assert!(KMeansModel::fit(
            KMeansParams {
                k: 0,
                ..KMeansParams::default()
            },
            &data
        )
        .is_err());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let data = blobs(50, 2, 9);
        let params = KMeansParams {
            k: 3,
            ..KMeansParams::default()
        };
        let a = KMeansModel::fit(params, &data).unwrap();
        let b = KMeansModel::fit(params, &data).unwrap();
        assert_eq!(a.centroids, b.centroids);
    }
}
