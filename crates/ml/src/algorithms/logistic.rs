//! Logistic regression with full-batch gradient descent, L2
//! regularization, and a distributed (per-partition gradient) training
//! path.

use crate::data::LabeledPoint;
use crate::linalg::{sigmoid, DenseVector};
use athena_compute::Dataset;
use athena_types::{AthenaError, Result};
use serde::{Deserialize, Serialize};

/// Logistic-regression hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticParams {
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams {
            iterations: 100,
            learning_rate: 0.5,
            l2: 1e-4,
        }
    }
}

/// A fitted logistic-regression model.
///
/// # Examples
///
/// ```
/// use athena_ml::{LabeledPoint, LogisticModel};
/// use athena_ml::algorithms::logistic::LogisticParams;
///
/// let data: Vec<LabeledPoint> = (0..40)
///     .map(|i| {
///         let x = f64::from(i) / 10.0;
///         LabeledPoint::new(vec![x], f64::from(u8::from(x > 2.0)))
///     })
///     .collect();
/// let m = LogisticModel::fit(LogisticParams::default(), &data)?;
/// assert!(m.predict_proba(&[4.0]) > 0.5);
/// assert!(m.predict_proba(&[0.0]) < 0.5);
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticModel {
    /// Feature weights.
    pub weights: DenseVector,
    /// Intercept.
    pub bias: f64,
    /// The parameters used.
    pub params: LogisticParams,
}

impl LogisticModel {
    /// Fits by full-batch gradient descent.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for empty or ragged data.
    pub fn fit(params: LogisticParams, data: &[LabeledPoint]) -> Result<Self> {
        let dim = crate::data::check_dims(data)?;
        validate(&params)?;
        let mut w = DenseVector::zeros(dim);
        let mut b = 0.0;
        let n = data.len() as f64;
        for _ in 0..params.iterations {
            let mut grad_w = DenseVector::zeros(dim);
            let mut grad_b = 0.0;
            for p in data {
                let err = sigmoid(w.dot_slice(&p.features) + b) - p.label;
                grad_w.axpy(err / n, &p.features);
                grad_b += err / n;
            }
            grad_w.axpy(params.l2, &w);
            w.axpy(-params.learning_rate, &grad_w);
            b -= params.learning_rate * grad_b;
        }
        Ok(LogisticModel {
            weights: w,
            bias: b,
            params,
        })
    }

    /// Fits with the gradient computation distributed over a compute
    /// cluster: each partition produces a partial gradient, summed on the
    /// driver.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for an empty dataset.
    pub fn fit_distributed(params: LogisticParams, data: &Dataset<LabeledPoint>) -> Result<Self> {
        if data.is_empty() {
            return Err(AthenaError::Ml("empty training set".into()));
        }
        validate(&params)?;
        let n = data.len() as f64;
        let probe = data.sample((16.0 / n).clamp(0.0001, 1.0)).collect();
        let dim = probe
            .first()
            .map(LabeledPoint::dim)
            .ok_or_else(|| AthenaError::Ml("empty training set".into()))?;
        let mut w = DenseVector::zeros(dim);
        let mut b = 0.0;
        for _ in 0..params.iterations {
            let w_snapshot = w.clone();
            let b_snapshot = b;
            let partials = data.map_partitions(move |part| {
                let mut gw = DenseVector::zeros(dim);
                let mut gb = 0.0;
                for p in part {
                    let err = sigmoid(w_snapshot.dot_slice(&p.features) + b_snapshot) - p.label;
                    gw.axpy(err, &p.features);
                    gb += err;
                }
                vec![(gw, gb)]
            });
            let mut grad_w = DenseVector::zeros(dim);
            let mut grad_b = 0.0;
            for (gw, gb) in partials.collect() {
                grad_w.axpy(1.0 / n, &gw);
                grad_b += gb / n;
            }
            grad_w.axpy(params.l2, &w);
            w.axpy(-params.learning_rate, &grad_w);
            b -= params.learning_rate * grad_b;
        }
        Ok(LogisticModel {
            weights: w,
            bias: b,
            params,
        })
    }

    /// Probability that `x` is malicious.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.weights.dot_slice(x) + self.bias)
    }
}

fn validate(params: &LogisticParams) -> Result<()> {
    if params.learning_rate <= 0.0 || !params.learning_rate.is_finite() {
        return Err(AthenaError::Ml("learning rate must be positive".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_data::{accuracy, blobs};
    use athena_compute::ComputeCluster;

    #[test]
    fn high_accuracy_on_separable_blobs() {
        let data = blobs(120, 3, 23);
        let m = LogisticModel::fit(LogisticParams::default(), &data).unwrap();
        assert!(accuracy(&data, |x| m.predict_proba(x)) > 0.98);
    }

    #[test]
    fn distributed_matches_serial_closely() {
        let data = blobs(120, 2, 29);
        let serial = LogisticModel::fit(LogisticParams::default(), &data).unwrap();
        let cluster = ComputeCluster::new(4);
        let ds = cluster.parallelize(data.clone(), 6);
        let dist = LogisticModel::fit_distributed(LogisticParams::default(), &ds).unwrap();
        // Full-batch gradients are exact regardless of partitioning.
        for (a, b) in serial.weights.iter().zip(dist.weights.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!((serial.bias - dist.bias).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_params_and_data() {
        assert!(LogisticModel::fit(LogisticParams::default(), &[]).is_err());
        let data = blobs(5, 2, 1);
        assert!(LogisticModel::fit(
            LogisticParams {
                learning_rate: 0.0,
                ..LogisticParams::default()
            },
            &data
        )
        .is_err());
    }
}
