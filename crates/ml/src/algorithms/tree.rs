//! CART decision trees: Gini classification and variance-reduction
//! regression (the regression mode is the base learner for
//! gradient-boosted trees).

use crate::data::LabeledPoint;
use athena_types::Result;
use serde::{Deserialize, Serialize};

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Candidate thresholds examined per feature (quantile-based).
    pub max_bins: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_samples_split: 4,
            max_bins: 32,
        }
    }
}

/// The split criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TreeTask {
    /// Binary classification via Gini impurity; leaves store the malicious
    /// fraction.
    #[default]
    Classification,
    /// Regression via variance reduction; leaves store the mean label.
    Regression,
}

/// A tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A leaf with its prediction value.
    Leaf(f64),
    /// An internal split: `x[feature] <= threshold` goes left.
    Split {
        /// The split feature index.
        feature: usize,
        /// The split threshold.
        threshold: f64,
        /// Subtree for `x[feature] <= threshold`.
        left: Box<Node>,
        /// Subtree for `x[feature] > threshold`.
        right: Box<Node>,
    },
}

impl Node {
    /// Depth of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// Number of leaves in the subtree.
    pub fn leaves(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Split { left, right, .. } => left.leaves() + right.leaves(),
        }
    }
}

/// A fitted CART decision tree.
///
/// # Examples
///
/// ```
/// use athena_ml::{DecisionTreeModel, LabeledPoint};
/// use athena_ml::algorithms::tree::TreeParams;
///
/// let data = vec![
///     LabeledPoint::new(vec![0.0], 0.0),
///     LabeledPoint::new(vec![1.0], 0.0),
///     LabeledPoint::new(vec![10.0], 1.0),
///     LabeledPoint::new(vec![11.0], 1.0),
/// ];
/// let m = DecisionTreeModel::fit(TreeParams::default(), &data)?;
/// assert!(m.predict_value(&[12.0]) > 0.5);
/// assert!(m.predict_value(&[0.5]) < 0.5);
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeModel {
    /// The root node.
    pub root: Node,
    /// The task the tree was fitted for.
    pub task: TreeTask,
    /// The parameters used.
    pub params: TreeParams,
}

impl DecisionTreeModel {
    /// Fits a classification tree (Gini impurity).
    ///
    /// # Errors
    ///
    /// Returns [`athena_types::AthenaError::Ml`] for empty/ragged data.
    pub fn fit(params: TreeParams, data: &[LabeledPoint]) -> Result<Self> {
        Self::fit_task(params, TreeTask::Classification, data)
    }

    /// Fits a regression tree (variance reduction).
    ///
    /// # Errors
    ///
    /// Returns [`athena_types::AthenaError::Ml`] for empty/ragged data.
    pub fn fit_regression(params: TreeParams, data: &[LabeledPoint]) -> Result<Self> {
        Self::fit_task(params, TreeTask::Regression, data)
    }

    /// Fits a tree restricted to a subset of features (used by random
    /// forests for feature bagging). `None` means all features.
    pub fn fit_with_features(
        params: TreeParams,
        task: TreeTask,
        data: &[LabeledPoint],
        features: Option<&[usize]>,
    ) -> Result<Self> {
        let dim = crate::data::check_dims(data)?;
        let all: Vec<usize>;
        let feats = match features {
            Some(f) => f,
            None => {
                all = (0..dim).collect();
                &all
            }
        };
        let idx: Vec<usize> = (0..data.len()).collect();
        let root = build(params, task, data, &idx, feats, 0);
        Ok(DecisionTreeModel { root, task, params })
    }

    fn fit_task(params: TreeParams, task: TreeTask, data: &[LabeledPoint]) -> Result<Self> {
        Self::fit_with_features(params, task, data, None)
    }

    /// The tree's raw prediction (malicious fraction for classification,
    /// mean label for regression).
    pub fn predict_value(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

fn leaf_value(task: TreeTask, data: &[LabeledPoint], idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    let sum: f64 = idx.iter().map(|&i| data[i].label).sum();
    match task {
        // Both are the mean label; classification leaves are the
        // malicious fraction because labels are 0/1.
        TreeTask::Classification | TreeTask::Regression => sum / idx.len() as f64,
    }
}

fn impurity(task: TreeTask, data: &[LabeledPoint], idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    let n = idx.len() as f64;
    match task {
        TreeTask::Classification => {
            let p: f64 = idx.iter().filter(|&&i| data[i].is_malicious()).count() as f64 / n;
            2.0 * p * (1.0 - p) // Gini for two classes
        }
        TreeTask::Regression => {
            let mean: f64 = idx.iter().map(|&i| data[i].label).sum::<f64>() / n;
            idx.iter()
                .map(|&i| (data[i].label - mean) * (data[i].label - mean))
                .sum::<f64>()
                / n
        }
    }
}

fn build(
    params: TreeParams,
    task: TreeTask,
    data: &[LabeledPoint],
    idx: &[usize],
    features: &[usize],
    depth: usize,
) -> Node {
    let parent_impurity = impurity(task, data, idx);
    if depth >= params.max_depth || idx.len() < params.min_samples_split || parent_impurity < 1e-12
    {
        return Node::Leaf(leaf_value(task, data, idx));
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted impurity)
    for &f in features {
        for threshold in candidate_thresholds(data, idx, f, params.max_bins) {
            let (left, right): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| data[i].features[f] <= threshold);
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let n = idx.len() as f64;
            let w = (left.len() as f64 / n) * impurity(task, data, &left)
                + (right.len() as f64 / n) * impurity(task, data, &right);
            if best.as_ref().is_none_or(|(_, _, bw)| w < *bw) {
                best = Some((f, threshold, w));
            }
        }
    }

    match best {
        Some((feature, threshold, w)) if w < parent_impurity - 1e-12 => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
                .iter()
                .partition(|&&i| data[i].features[feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(params, task, data, &left_idx, features, depth + 1)),
                right: Box::new(build(params, task, data, &right_idx, features, depth + 1)),
            }
        }
        _ => Node::Leaf(leaf_value(task, data, idx)),
    }
}

/// Quantile-based candidate thresholds for one feature.
fn candidate_thresholds(
    data: &[LabeledPoint],
    idx: &[usize],
    feature: usize,
    max_bins: usize,
) -> Vec<f64> {
    let mut values: Vec<f64> = idx.iter().map(|&i| data[i].features[feature]).collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    values.dedup();
    if values.len() <= 1 {
        return Vec::new();
    }
    let bins = max_bins.max(2).min(values.len() - 1);
    let mut out = Vec::with_capacity(bins);
    for b in 1..=bins {
        let pos = b * (values.len() - 1) / (bins + 1);
        let t = (values[pos] + values[pos + 1]) / 2.0;
        if out.last() != Some(&t) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_data::{accuracy, blobs};

    #[test]
    fn high_accuracy_on_separable_blobs() {
        let data = blobs(100, 3, 41);
        let m = DecisionTreeModel::fit(TreeParams::default(), &data).unwrap();
        assert!(accuracy(&data, |x| m.predict_value(x)) > 0.98);
    }

    #[test]
    fn respects_max_depth() {
        let data = blobs(100, 2, 43);
        let m = DecisionTreeModel::fit(
            TreeParams {
                max_depth: 2,
                ..TreeParams::default()
            },
            &data,
        )
        .unwrap();
        assert!(m.root.depth() <= 3); // root + 2 levels
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let data: Vec<LabeledPoint> = (0..20)
            .map(|i| LabeledPoint::new(vec![f64::from(i)], 0.0))
            .collect();
        let m = DecisionTreeModel::fit(TreeParams::default(), &data).unwrap();
        assert_eq!(m.root, Node::Leaf(0.0));
    }

    #[test]
    fn regression_tree_fits_a_step() {
        let data: Vec<LabeledPoint> = (0..40)
            .map(|i| {
                let x = f64::from(i);
                LabeledPoint::new(vec![x], if x < 20.0 { 1.0 } else { 9.0 })
            })
            .collect();
        let m = DecisionTreeModel::fit_regression(TreeParams::default(), &data).unwrap();
        assert!((m.predict_value(&[5.0]) - 1.0).abs() < 1e-9);
        assert!((m.predict_value(&[35.0]) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn feature_restriction_is_honored() {
        // Only feature 1 is informative, but we restrict to feature 0.
        let data: Vec<LabeledPoint> = (0..40)
            .map(|i| {
                let y = f64::from(u8::from(i >= 20));
                LabeledPoint::new(vec![0.5, f64::from(i)], y)
            })
            .collect();
        let m = DecisionTreeModel::fit_with_features(
            TreeParams::default(),
            TreeTask::Classification,
            &data,
            Some(&[0]),
        )
        .unwrap();
        // Feature 0 is constant, so the tree cannot split.
        assert_eq!(m.root.leaves(), 1);
    }

    #[test]
    fn rejects_empty_data() {
        assert!(DecisionTreeModel::fit(TreeParams::default(), &[]).is_err());
    }
}
