//! Gaussian Mixture Model clustering via expectation-maximization with
//! diagonal covariances.

use crate::algorithms::kmeans::{KMeansModel, KMeansParams};
use crate::data::LabeledPoint;
use athena_types::{AthenaError, Result};
use serde::{Deserialize, Serialize};

/// GMM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmmParams {
    /// Number of mixture components.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Convergence threshold on mean log-likelihood improvement.
    pub epsilon: f64,
    /// RNG seed (used by the K-Means initialization).
    pub seed: u64,
}

impl Default for GmmParams {
    fn default() -> Self {
        GmmParams {
            k: 2,
            max_iterations: 50,
            epsilon: 1e-5,
            seed: 42,
        }
    }
}

/// One mixture component: weight, mean, and diagonal variance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianComponent {
    /// Mixing weight (components sum to 1).
    pub weight: f64,
    /// Component mean.
    pub mean: Vec<f64>,
    /// Per-dimension variance (diagonal covariance).
    pub variance: Vec<f64>,
}

impl GaussianComponent {
    /// Log density of `x` under this component (up to the shared constant).
    fn log_density(&self, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for ((xi, mi), vi) in x.iter().zip(&self.mean).zip(&self.variance) {
            let v = vi.max(1e-9);
            acc += -0.5 * ((xi - mi) * (xi - mi) / v + v.ln());
        }
        acc + self.weight.max(1e-300).ln()
    }
}

/// A fitted Gaussian mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixtureModel {
    /// The mixture components.
    pub components: Vec<GaussianComponent>,
    /// Final mean log-likelihood on the training data.
    pub log_likelihood: f64,
    /// The parameters used.
    pub params: GmmParams,
}

impl GaussianMixtureModel {
    /// Fits a GMM with EM, initialized from a short K-Means run.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for empty/ragged data or `k == 0`.
    pub fn fit(params: GmmParams, data: &[LabeledPoint]) -> Result<Self> {
        let dim = crate::data::check_dims(data)?;
        if params.k == 0 {
            return Err(AthenaError::Ml("k must be positive".into()));
        }
        let n = data.len();
        // K-Means initialization.
        let km = KMeansModel::fit(
            KMeansParams {
                k: params.k,
                max_iterations: 5,
                runs: 1,
                epsilon: 1e-3,
                seed: params.seed,
            },
            data,
        )?;
        let mut components: Vec<GaussianComponent> = km
            .centroids
            .iter()
            .map(|c| GaussianComponent {
                weight: 1.0 / params.k as f64,
                mean: c.0.clone(),
                variance: vec![1.0; dim],
            })
            .collect();

        let mut resp = vec![vec![0.0f64; params.k]; n];
        let mut last_ll = f64::NEG_INFINITY;
        let mut ll = last_ll;
        for _ in 0..params.max_iterations {
            // E step.
            ll = 0.0;
            for (p, r) in data.iter().zip(resp.iter_mut()) {
                let logs: Vec<f64> = components
                    .iter()
                    .map(|c| c.log_density(&p.features))
                    .collect();
                let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut total = 0.0;
                for (ri, l) in r.iter_mut().zip(&logs) {
                    *ri = (l - max).exp();
                    total += *ri;
                }
                for ri in r.iter_mut() {
                    *ri /= total;
                }
                ll += max + total.ln();
            }
            ll /= n as f64;
            if (ll - last_ll).abs() < params.epsilon {
                break;
            }
            last_ll = ll;
            // M step.
            for (j, comp) in components.iter_mut().enumerate() {
                let nj: f64 = resp.iter().map(|r| r[j]).sum();
                let nj_safe = nj.max(1e-12);
                comp.weight = nj / n as f64;
                for d in 0..dim {
                    let mean: f64 = data
                        .iter()
                        .zip(&resp)
                        .map(|(p, r)| r[j] * p.features[d])
                        .sum::<f64>()
                        / nj_safe;
                    comp.mean[d] = mean;
                }
                for d in 0..dim {
                    let var: f64 = data
                        .iter()
                        .zip(&resp)
                        .map(|(p, r)| {
                            let diff = p.features[d] - comp.mean[d];
                            r[j] * diff * diff
                        })
                        .sum::<f64>()
                        / nj_safe;
                    comp.variance[d] = var.max(1e-6);
                }
            }
        }
        Ok(GaussianMixtureModel {
            components,
            log_likelihood: ll,
            params,
        })
    }

    /// Index of the most likely component for `x`.
    pub fn cluster_of(&self, x: &[f64]) -> usize {
        self.components
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.log_density(x)
                    .partial_cmp(&b.log_density(x))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map_or(0, |(i, _)| i)
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_data::blobs;

    #[test]
    fn separates_two_blobs() {
        let data = blobs(100, 2, 11);
        let model = GaussianMixtureModel::fit(GmmParams::default(), &data).unwrap();
        let a = model.cluster_of(&[0.0, 0.0]);
        let b = model.cluster_of(&[4.0, 4.0]);
        assert_ne!(a, b);
        let correct = data
            .iter()
            .filter(|p| {
                let expect = if p.is_malicious() { b } else { a };
                model.cluster_of(&p.features) == expect
            })
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn weights_sum_to_one() {
        let data = blobs(60, 3, 2);
        let model = GaussianMixtureModel::fit(
            GmmParams {
                k: 3,
                ..GmmParams::default()
            },
            &data,
        )
        .unwrap();
        let total: f64 = model.components.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-6, "weights sum to {total}");
    }

    #[test]
    fn log_likelihood_is_finite() {
        let data = blobs(40, 2, 4);
        let model = GaussianMixtureModel::fit(GmmParams::default(), &data).unwrap();
        assert!(model.log_likelihood.is_finite());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(GaussianMixtureModel::fit(GmmParams::default(), &[]).is_err());
        let data = blobs(5, 2, 0);
        assert!(GaussianMixtureModel::fit(
            GmmParams {
                k: 0,
                ..GmmParams::default()
            },
            &data
        )
        .is_err());
    }
}
