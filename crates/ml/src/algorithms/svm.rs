//! Linear support-vector machine trained with the Pegasos stochastic
//! sub-gradient method.

use crate::data::LabeledPoint;
use crate::linalg::DenseVector;
use athena_types::{AthenaError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// SVM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmParams {
    /// Stochastic sub-gradient steps.
    pub iterations: usize,
    /// Regularization strength (Pegasos λ).
    pub lambda: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            iterations: 20_000,
            lambda: 1e-3,
            seed: 42,
        }
    }
}

/// A fitted linear SVM.
///
/// # Examples
///
/// ```
/// use athena_ml::{LabeledPoint, SvmModel};
/// use athena_ml::algorithms::svm::SvmParams;
///
/// let mut data = Vec::new();
/// for i in 0..50 {
///     let x = f64::from(i) * 0.02;
///     data.push(LabeledPoint::new(vec![x], 0.0));
///     data.push(LabeledPoint::new(vec![3.0 + x], 1.0));
/// }
/// let m = SvmModel::fit(SvmParams::default(), &data)?;
/// assert!(m.decision(&[4.0]) > 0.0);
/// assert!(m.decision(&[0.0]) < 0.0);
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    /// Feature weights.
    pub weights: DenseVector,
    /// Intercept.
    pub bias: f64,
    /// The parameters used.
    pub params: SvmParams,
}

impl SvmModel {
    /// Fits with Pegasos. Labels are mapped `{0, 1} → {-1, +1}`.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for empty/ragged data or a
    /// non-positive λ.
    pub fn fit(params: SvmParams, data: &[LabeledPoint]) -> Result<Self> {
        let dim = crate::data::check_dims(data)?;
        if params.lambda <= 0.0 {
            return Err(AthenaError::Ml("lambda must be positive".into()));
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut w = DenseVector::zeros(dim);
        let mut b = 0.0;
        for t in 1..=params.iterations.max(1) {
            let p = &data[rng.random_range(0..data.len())];
            let y = if p.is_malicious() { 1.0 } else { -1.0 };
            let eta = 1.0 / (params.lambda * t as f64);
            let margin = y * (w.dot_slice(&p.features) + b);
            // w <- (1 - eta*lambda) w [+ eta*y*x if margin violated]
            w.scale(1.0 - eta * params.lambda);
            if margin < 1.0 {
                w.axpy(eta * y, &p.features);
                b += eta * y;
            }
        }
        Ok(SvmModel {
            weights: w,
            bias: b,
            params,
        })
    }

    /// The signed distance to the separating hyperplane (positive =
    /// malicious side).
    pub fn decision(&self, x: &[f64]) -> f64 {
        self.weights.dot_slice(x) + self.bias
    }

    /// Hard classification score: `1.0` for the malicious side, else `0.0`.
    pub fn predict_class(&self, x: &[f64]) -> f64 {
        f64::from(u8::from(self.decision(x) > 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_data::{accuracy, blobs};

    #[test]
    fn high_accuracy_on_separable_blobs() {
        let data = blobs(150, 3, 31);
        let m = SvmModel::fit(SvmParams::default(), &data).unwrap();
        assert!(accuracy(&data, |x| m.predict_class(x)) > 0.97);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let data = blobs(40, 2, 5);
        let a = SvmModel::fit(SvmParams::default(), &data).unwrap();
        let b = SvmModel::fit(SvmParams::default(), &data).unwrap();
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(SvmModel::fit(SvmParams::default(), &[]).is_err());
        let data = blobs(5, 2, 1);
        assert!(SvmModel::fit(
            SvmParams {
                lambda: 0.0,
                ..SvmParams::default()
            },
            &data
        )
        .is_err());
    }
}
