//! Training data: labeled feature vectors.

use serde::{Deserialize, Serialize};

/// A feature vector with a label.
///
/// For anomaly-detection tasks the label convention is `0.0` = benign and
/// `1.0` = malicious (the paper's *Marking* preprocessor annotates
/// malicious entries); regression tasks use arbitrary real labels, and
/// clustering ignores the label during fitting but uses it afterwards to
/// name clusters.
///
/// # Examples
///
/// ```
/// use athena_ml::LabeledPoint;
/// let p = LabeledPoint::new(vec![1.0, 2.0], 1.0);
/// assert!(p.is_malicious());
/// assert_eq!(p.dim(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LabeledPoint {
    /// The feature vector.
    pub features: Vec<f64>,
    /// The label.
    pub label: f64,
}

impl LabeledPoint {
    /// Creates a labeled point.
    pub fn new(features: Vec<f64>, label: f64) -> Self {
        LabeledPoint { features, label }
    }

    /// Creates an unlabeled point (label `0.0`).
    pub fn unlabeled(features: Vec<f64>) -> Self {
        LabeledPoint {
            features,
            label: 0.0,
        }
    }

    /// The feature dimension.
    pub fn dim(&self) -> usize {
        self.features.len()
    }

    /// `true` if the label marks the point as malicious (`label >= 0.5`).
    pub fn is_malicious(&self) -> bool {
        self.label >= 0.5
    }
}

/// Checks that every point has the same dimension; returns it.
///
/// # Errors
///
/// Returns [`athena_types::AthenaError::Ml`] if the set is empty or ragged.
pub fn check_dims(data: &[LabeledPoint]) -> athena_types::Result<usize> {
    let first = data
        .first()
        .ok_or_else(|| athena_types::AthenaError::Ml("empty training set".into()))?;
    let dim = first.dim();
    if dim == 0 {
        return Err(athena_types::AthenaError::Ml(
            "zero-dimensional features".into(),
        ));
    }
    for (i, p) in data.iter().enumerate() {
        if p.dim() != dim {
            return Err(athena_types::AthenaError::Ml(format!(
                "ragged features: point {i} has dim {} but expected {dim}",
                p.dim()
            )));
        }
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_dims() {
        assert!(LabeledPoint::new(vec![1.0], 1.0).is_malicious());
        assert!(!LabeledPoint::new(vec![1.0], 0.0).is_malicious());
        assert!(!LabeledPoint::unlabeled(vec![1.0, 2.0]).is_malicious());
    }

    #[test]
    fn check_dims_accepts_uniform() {
        let data = vec![LabeledPoint::unlabeled(vec![1.0, 2.0]); 5];
        assert_eq!(check_dims(&data).unwrap(), 2);
    }

    #[test]
    fn check_dims_rejects_empty_and_ragged() {
        assert!(check_dims(&[]).is_err());
        assert!(check_dims(&[LabeledPoint::unlabeled(vec![])]).is_err());
        let ragged = vec![
            LabeledPoint::unlabeled(vec![1.0]),
            LabeledPoint::unlabeled(vec![1.0, 2.0]),
        ];
        assert!(check_dims(&ragged).is_err());
    }
}
