//! The uniform algorithm interface the Detector Manager exposes.
//!
//! The paper stresses that "an operator does not have to consider the
//! characteristics of each ML type": configuring K-Means and configuring a
//! Decision Tree use the same APIs, and the Detector Manager
//! auto-configures the per-type details (e.g. using the *Marking* labels
//! to name clusters). [`Algorithm`] is that configuration surface and
//! [`TrainedModel`] the uniform result.

use crate::algorithms::forest::{ForestParams, RandomForestModel};
use crate::algorithms::gbt::{GbtClassifier, GbtParams};
use crate::algorithms::gmm::{GaussianMixtureModel, GmmParams};
use crate::algorithms::kmeans::{KMeansModel, KMeansParams};
use crate::algorithms::linear::{LinearModel, LinearParams, Regularizer};
use crate::algorithms::logistic::{LogisticModel, LogisticParams};
use crate::algorithms::naive_bayes::NaiveBayesModel;
use crate::algorithms::svm::{SvmModel, SvmParams};
use crate::algorithms::threshold::ThresholdModel;
use crate::algorithms::tree::{DecisionTreeModel, TreeParams};
use crate::data::LabeledPoint;
use athena_compute::Dataset;
use athena_types::Result;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The algorithm categories of the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmCategory {
    /// Gradient-boosted trees.
    Boosting,
    /// Decision tree, logistic regression, naive Bayes, random forest, SVM.
    Classification,
    /// Gaussian mixture, K-Means.
    Clustering,
    /// Lasso, linear, ridge.
    Regression,
    /// Threshold.
    Simple,
}

/// A declarative algorithm configuration — the `Algorithm (a)` parameter
/// of the paper's `GenerateDetectionModel` API.
///
/// # Examples
///
/// ```
/// use athena_ml::{Algorithm, AlgorithmCategory};
/// let a = Algorithm::kmeans(5);
/// assert_eq!(a.category(), AlgorithmCategory::Clustering);
/// assert_eq!(a.name(), "K-Means");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Algorithm {
    /// Gradient-boosted trees.
    GradientBoostedTrees(GbtParams),
    /// CART decision tree.
    DecisionTree(TreeParams),
    /// Logistic regression.
    LogisticRegression(LogisticParams),
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// Random forest.
    RandomForest(ForestParams),
    /// Linear SVM (Pegasos).
    Svm(SvmParams),
    /// Gaussian mixture (EM).
    GaussianMixture(GmmParams),
    /// K-Means.
    KMeans(KMeansParams),
    /// Lasso regression.
    Lasso {
        /// Base regression parameters.
        params: LinearParams,
        /// L1 strength.
        lambda: f64,
    },
    /// Ordinary linear regression.
    Linear(LinearParams),
    /// Ridge regression.
    Ridge {
        /// Base regression parameters.
        params: LinearParams,
        /// L2 strength.
        lambda: f64,
    },
    /// Threshold rule (no learning phase).
    Threshold(ThresholdModel),
}

impl Algorithm {
    /// K-Means with `k` clusters and the paper's defaults (20 iterations,
    /// 5 runs).
    pub fn kmeans(k: usize) -> Self {
        Algorithm::KMeans(KMeansParams {
            k,
            ..KMeansParams::default()
        })
    }

    /// Logistic regression with default hyperparameters.
    pub fn logistic_regression() -> Self {
        Algorithm::LogisticRegression(LogisticParams::default())
    }

    /// A decision tree with default hyperparameters.
    pub fn decision_tree() -> Self {
        Algorithm::DecisionTree(TreeParams::default())
    }

    /// A threshold rule: anomalous when `feature >= threshold`.
    pub fn threshold(feature: usize, threshold: f64) -> Self {
        Algorithm::Threshold(ThresholdModel::above(feature, threshold))
    }

    /// The paper's category for this algorithm.
    pub fn category(&self) -> AlgorithmCategory {
        match self {
            Algorithm::GradientBoostedTrees(_) => AlgorithmCategory::Boosting,
            Algorithm::DecisionTree(_)
            | Algorithm::LogisticRegression(_)
            | Algorithm::NaiveBayes
            | Algorithm::RandomForest(_)
            | Algorithm::Svm(_) => AlgorithmCategory::Classification,
            Algorithm::GaussianMixture(_) | Algorithm::KMeans(_) => AlgorithmCategory::Clustering,
            Algorithm::Lasso { .. } | Algorithm::Linear(_) | Algorithm::Ridge { .. } => {
                AlgorithmCategory::Regression
            }
            Algorithm::Threshold(_) => AlgorithmCategory::Simple,
        }
    }

    /// The human-readable algorithm name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::GradientBoostedTrees(_) => "Gradient Boosted Tree",
            Algorithm::DecisionTree(_) => "Decision Tree",
            Algorithm::LogisticRegression(_) => "Logistic Regression",
            Algorithm::NaiveBayes => "Naive Bayes",
            Algorithm::RandomForest(_) => "Random Forest",
            Algorithm::Svm(_) => "SVM",
            Algorithm::GaussianMixture(_) => "Gaussian Mixture",
            Algorithm::KMeans(_) => "K-Means",
            Algorithm::Lasso { .. } => "Lasso",
            Algorithm::Linear(_) => "Linear",
            Algorithm::Ridge { .. } => "Ridge",
            Algorithm::Threshold(_) => "Threshold",
        }
    }

    /// Whether this algorithm needs a learning phase (everything except
    /// the threshold rule).
    pub fn needs_training(&self) -> bool {
        !matches!(self, Algorithm::Threshold(_))
    }

    /// Fits the algorithm on in-memory data.
    ///
    /// For clustering algorithms the Detector Manager's auto-configuration
    /// kicks in: after fitting, clusters are flagged malicious when the
    /// majority of their (marked) training points are malicious, so the
    /// resulting model validates features exactly like a classifier.
    ///
    /// # Errors
    ///
    /// Propagates the underlying algorithm's validation errors
    /// ([`athena_types::AthenaError::Ml`]).
    pub fn fit(&self, data: &[LabeledPoint]) -> Result<TrainedModel> {
        Ok(match self {
            Algorithm::GradientBoostedTrees(p) => TrainedModel::Gbt(GbtClassifier::fit(*p, data)?),
            Algorithm::DecisionTree(p) => {
                TrainedModel::DecisionTree(DecisionTreeModel::fit(*p, data)?)
            }
            Algorithm::LogisticRegression(p) => {
                TrainedModel::Logistic(LogisticModel::fit(*p, data)?)
            }
            Algorithm::NaiveBayes => TrainedModel::NaiveBayes(NaiveBayesModel::fit(data)?),
            Algorithm::RandomForest(p) => {
                TrainedModel::RandomForest(RandomForestModel::fit(*p, data)?)
            }
            Algorithm::Svm(p) => TrainedModel::Svm(SvmModel::fit(*p, data)?),
            Algorithm::GaussianMixture(p) => {
                let gmm = GaussianMixtureModel::fit(*p, data)?;
                let flagged = flag_clusters(data, gmm.k(), |x| gmm.cluster_of(x));
                TrainedModel::GaussianMixture {
                    model: gmm,
                    flagged,
                }
            }
            Algorithm::KMeans(p) => {
                let km = KMeansModel::fit(*p, data)?;
                let flagged = flag_clusters(data, km.k(), |x| km.cluster_of(x));
                TrainedModel::KMeans { model: km, flagged }
            }
            Algorithm::Lasso { params, lambda } => {
                let p = LinearParams {
                    regularizer: Regularizer::Lasso(*lambda),
                    ..*params
                };
                TrainedModel::Linear(LinearModel::fit(p, data)?)
            }
            Algorithm::Linear(p) => TrainedModel::Linear(LinearModel::fit(*p, data)?),
            Algorithm::Ridge { params, lambda } => {
                let p = LinearParams {
                    regularizer: Regularizer::Ridge(*lambda),
                    ..*params
                };
                TrainedModel::Linear(LinearModel::fit(p, data)?)
            }
            Algorithm::Threshold(t) => TrainedModel::Threshold(*t),
        })
    }

    /// Fits on a distributed dataset, using the distributed training path
    /// for the algorithms that have one (K-Means, logistic regression) and
    /// collecting to the driver for the rest — mirroring the paper's
    /// Attack Detector, which "distributes jobs to the computing cluster"
    /// for large datasets and "handles the request on a single instance"
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Propagates the underlying algorithm's validation errors.
    pub fn fit_distributed(&self, data: &Dataset<LabeledPoint>) -> Result<TrainedModel> {
        match self {
            Algorithm::KMeans(p) => {
                let km = KMeansModel::fit_distributed(*p, data)?;
                // Flag clusters with one distributed pass over the data.
                let k = km.k();
                let km_for_job = km.clone();
                let partials = data.map_partitions(move |part| {
                    let mut counts = vec![(0u64, 0u64); k];
                    for pt in part {
                        let c = km_for_job.cluster_of(&pt.features);
                        if pt.is_malicious() {
                            counts[c].1 += 1;
                        } else {
                            counts[c].0 += 1;
                        }
                    }
                    vec![counts]
                });
                let mut totals = vec![(0u64, 0u64); k];
                for part in partials.collect() {
                    for (t, p) in totals.iter_mut().zip(part) {
                        t.0 += p.0;
                        t.1 += p.1;
                    }
                }
                let flagged = totals.iter().map(|(b, m)| m > b).collect();
                Ok(TrainedModel::KMeans { model: km, flagged })
            }
            Algorithm::LogisticRegression(p) => Ok(TrainedModel::Logistic(
                LogisticModel::fit_distributed(*p, data)?,
            )),
            other => {
                let collected = data.collect();
                other.fit(&collected)
            }
        }
    }

    /// [`Algorithm::fit`] with the wall-clock training latency recorded
    /// into `hist` (nanoseconds; costs nothing when the histogram's
    /// telemetry domain is disabled).
    ///
    /// # Errors
    ///
    /// Propagates the underlying algorithm's validation errors.
    pub fn fit_timed(
        &self,
        data: &[LabeledPoint],
        hist: &athena_telemetry::Histogram,
    ) -> Result<TrainedModel> {
        let timer = hist.start_timer();
        let model = self.fit(data);
        timer.observe(hist);
        model
    }

    /// [`Algorithm::fit_distributed`] with the wall-clock training
    /// latency recorded into `hist`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying algorithm's validation errors.
    pub fn fit_distributed_timed(
        &self,
        data: &Dataset<LabeledPoint>,
        hist: &athena_telemetry::Histogram,
    ) -> Result<TrainedModel> {
        let timer = hist.start_timer();
        let model = self.fit_distributed(data);
        timer.observe(hist);
        model
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:?})", self.name(), self.category())
    }
}

/// Flags each cluster malicious when its marked-malicious members
/// outnumber its benign members.
fn flag_clusters(
    data: &[LabeledPoint],
    k: usize,
    cluster_of: impl Fn(&[f64]) -> usize,
) -> Vec<bool> {
    let mut counts = vec![(0u64, 0u64); k];
    for p in data {
        let c = cluster_of(&p.features);
        if p.is_malicious() {
            counts[c].1 += 1;
        } else {
            counts[c].0 += 1;
        }
    }
    counts.iter().map(|(b, m)| m > b).collect()
}

/// The uniform prediction interface every trained model implements.
pub trait Model {
    /// The detection score: `>= 0.5` means malicious (classification and
    /// clustering), or the raw regression value.
    fn predict(&self, x: &[f64]) -> f64;

    /// For clustering models, the cluster index of `x`.
    fn cluster_of(&self, x: &[f64]) -> Option<usize> {
        let _ = x;
        None
    }

    /// A one-line description of the model (used in Figure 6-style
    /// reports).
    fn describe(&self) -> String;
}

/// A trained detection model — the `Model (m)` parameter of the paper's
/// `ValidateFeatures` API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TrainedModel {
    /// Gradient-boosted trees.
    Gbt(GbtClassifier),
    /// Decision tree.
    DecisionTree(DecisionTreeModel),
    /// Logistic regression.
    Logistic(LogisticModel),
    /// Naive Bayes.
    NaiveBayes(NaiveBayesModel),
    /// Random forest.
    RandomForest(RandomForestModel),
    /// SVM.
    Svm(SvmModel),
    /// Gaussian mixture with per-cluster malicious flags.
    GaussianMixture {
        /// The fitted mixture.
        model: GaussianMixtureModel,
        /// Per-component malicious flags (majority label of members).
        flagged: Vec<bool>,
    },
    /// K-Means with per-cluster malicious flags.
    KMeans {
        /// The fitted clustering.
        model: KMeansModel,
        /// Per-cluster malicious flags (majority label of members).
        flagged: Vec<bool>,
    },
    /// Linear / Ridge / Lasso regression.
    Linear(LinearModel),
    /// Threshold rule.
    Threshold(ThresholdModel),
}

impl TrainedModel {
    /// One-pass verdict plus cluster assignment: clustering models
    /// compute the nearest cluster once and derive the verdict from its
    /// flag (validation loops call this instead of `predict` +
    /// `cluster_of`, which would scan the centroids twice).
    pub fn verdict_and_cluster(&self, x: &[f64]) -> (bool, Option<usize>) {
        match self {
            TrainedModel::KMeans { model, flagged } => {
                let c = model.cluster_of(x);
                (flagged.get(c).copied().unwrap_or(false), Some(c))
            }
            TrainedModel::GaussianMixture { model, flagged } => {
                let c = model.cluster_of(x);
                (flagged.get(c).copied().unwrap_or(false), Some(c))
            }
            other => (other.predict(x) >= 0.5, None),
        }
    }

    /// Number of clusters for clustering models.
    pub fn cluster_count(&self) -> Option<usize> {
        match self {
            TrainedModel::KMeans { model, .. } => Some(model.k()),
            TrainedModel::GaussianMixture { model, .. } => Some(model.k()),
            _ => None,
        }
    }
}

impl Model for TrainedModel {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            TrainedModel::Gbt(m) => m.predict_proba(x),
            TrainedModel::DecisionTree(m) => m.predict_value(x),
            TrainedModel::Logistic(m) => m.predict_proba(x),
            TrainedModel::NaiveBayes(m) => m.predict_proba(x),
            TrainedModel::RandomForest(m) => m.predict_proba(x),
            TrainedModel::Svm(m) => m.predict_class(x),
            TrainedModel::GaussianMixture { model, flagged } => f64::from(u8::from(
                *flagged.get(model.cluster_of(x)).unwrap_or(&false),
            )),
            TrainedModel::KMeans { model, flagged } => f64::from(u8::from(
                *flagged.get(model.cluster_of(x)).unwrap_or(&false),
            )),
            TrainedModel::Linear(m) => m.predict_value(x),
            TrainedModel::Threshold(m) => m.score(x),
        }
    }

    fn cluster_of(&self, x: &[f64]) -> Option<usize> {
        match self {
            TrainedModel::KMeans { model, .. } => Some(model.cluster_of(x)),
            TrainedModel::GaussianMixture { model, .. } => Some(model.cluster_of(x)),
            _ => None,
        }
    }

    fn describe(&self) -> String {
        match self {
            TrainedModel::Gbt(m) => format!("Boosting (GBT): rounds({})", m.rounds()),
            TrainedModel::DecisionTree(m) => {
                format!("Classification (Decision Tree): depth({})", m.root.depth())
            }
            TrainedModel::Logistic(m) => format!(
                "Classification (Logistic Regression): iterations({})",
                m.params.iterations
            ),
            TrainedModel::NaiveBayes(_) => "Classification (Naive Bayes)".to_owned(),
            TrainedModel::RandomForest(m) => {
                format!("Classification (Random Forest): trees({})", m.trees.len())
            }
            TrainedModel::Svm(m) => {
                format!("Classification (SVM): iterations({})", m.params.iterations)
            }
            TrainedModel::GaussianMixture { model, .. } => {
                format!(
                    "Cluster (Gaussian Mixture)\nCluster Information : K({})",
                    model.k()
                )
            }
            TrainedModel::KMeans { model, .. } => format!(
                "Cluster (K-Means)\nCluster Information : K({}), Iterations({}), Runs({}), \
                 Seed({}), InitializedMode(k-means||), Epsilon({:e})",
                model.k(),
                model.params.max_iterations,
                model.params.runs,
                model.params.seed,
                model.params.epsilon
            ),
            TrainedModel::Linear(m) => {
                format!("Regression ({:?})", m.params.regularizer)
            }
            TrainedModel::Threshold(t) => format!(
                "Simple (Threshold): feature({}) threshold({})",
                t.feature, t.threshold
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_data::{accuracy, blobs};

    fn all_trainable() -> Vec<Algorithm> {
        vec![
            Algorithm::GradientBoostedTrees(GbtParams::default()),
            Algorithm::DecisionTree(TreeParams::default()),
            Algorithm::LogisticRegression(LogisticParams::default()),
            Algorithm::NaiveBayes,
            Algorithm::RandomForest(ForestParams {
                trees: 10,
                ..ForestParams::default()
            }),
            Algorithm::Svm(SvmParams::default()),
            Algorithm::GaussianMixture(GmmParams::default()),
            Algorithm::KMeans(KMeansParams {
                k: 2,
                ..KMeansParams::default()
            }),
            Algorithm::Lasso {
                params: LinearParams::default(),
                lambda: 1e-3,
            },
            Algorithm::Linear(LinearParams::default()),
            Algorithm::Ridge {
                params: LinearParams::default(),
                lambda: 1e-3,
            },
        ]
    }

    #[test]
    fn eleven_algorithms_all_fit_and_detect() {
        let algorithms = all_trainable();
        assert_eq!(algorithms.len(), 11, "the paper ships 11 ML algorithms");
        let data = blobs(100, 3, 71);
        for a in algorithms {
            let model = a.fit(&data).unwrap();
            let acc = accuracy(&data, |x| model.predict(x));
            assert!(acc > 0.9, "{} reached only {acc}", a.name());
        }
    }

    #[test]
    fn categories_match_table_iv() {
        use AlgorithmCategory::*;
        let expect = [
            Boosting,
            Classification,
            Classification,
            Classification,
            Classification,
            Classification,
            Clustering,
            Clustering,
            Regression,
            Regression,
            Regression,
        ];
        for (a, cat) in all_trainable().iter().zip(expect) {
            assert_eq!(a.category(), cat, "{}", a.name());
        }
        assert_eq!(
            Algorithm::threshold(0, 1.0).category(),
            AlgorithmCategory::Simple
        );
    }

    #[test]
    fn threshold_needs_no_training() {
        let a = Algorithm::threshold(0, 10.0);
        assert!(!a.needs_training());
        // Fitting on an empty set works since no learning happens.
        let m = a.fit(&blobs(2, 1, 0)).unwrap();
        assert_eq!(m.predict(&[20.0]), 1.0);
    }

    #[test]
    fn clustering_models_expose_clusters() {
        let data = blobs(60, 2, 73);
        let m = Algorithm::kmeans(2).fit(&data).unwrap();
        assert_eq!(m.cluster_count(), Some(2));
        assert!(m.cluster_of(&[0.0, 0.0]).is_some());
        // Cluster flagging makes predict a detector.
        assert!(accuracy(&data, |x| m.predict(x)) > 0.95);
        // Non-clustering models expose no clusters.
        let t = Algorithm::threshold(0, 1.0).fit(&data).unwrap();
        assert_eq!(t.cluster_of(&[0.0, 0.0]), None);
    }

    #[test]
    fn distributed_fit_works_for_all() {
        use athena_compute::ComputeCluster;
        let data = blobs(80, 2, 79);
        let cluster = ComputeCluster::new(3);
        let ds = cluster.parallelize(data.clone(), 6);
        for a in [
            Algorithm::kmeans(2),
            Algorithm::logistic_regression(),
            Algorithm::NaiveBayes, // falls back to collect + serial fit
        ] {
            let m = a.fit_distributed(&ds).unwrap();
            assert!(
                accuracy(&data, |x| m.predict(x)) > 0.9,
                "{} distributed",
                a.name()
            );
        }
    }

    #[test]
    fn fit_timed_records_training_latency() {
        let tel = athena_telemetry::Telemetry::new();
        use athena_telemetry::names;
        let hist = tel
            .metrics()
            .histogram(names::ml::SUBSYSTEM, names::ml::FIT_NS);
        let data = blobs(40, 2, 91);
        let m = Algorithm::kmeans(2).fit_timed(&data, &hist).unwrap();
        assert_eq!(m.cluster_count(), Some(2));
        assert_eq!(hist.snapshot().count, 1);
        // Against a disabled domain, nothing is recorded but the fit
        // still runs.
        let off = athena_telemetry::Telemetry::off();
        let cold = off
            .metrics()
            .histogram(names::ml::SUBSYSTEM, names::ml::FIT_NS);
        Algorithm::kmeans(2).fit_timed(&data, &cold).unwrap();
        assert_eq!(cold.snapshot().count, 0);
    }

    #[test]
    fn describe_mentions_kmeans_configuration() {
        let data = blobs(30, 2, 83);
        let m = Algorithm::kmeans(2).fit(&data).unwrap();
        let d = m.describe();
        assert!(d.contains("K(2)"));
        assert!(d.contains("k-means||"));
    }
}
