//! The paper's four preprocessors: weighting, sampling, normalization,
//! and marking (Table IV).
//!
//! A [`Preprocessor`] is a declarative chain of steps; [`Preprocessor::fit`]
//! learns any data-dependent parameters (normalization statistics) and
//! yields a [`FittedPreprocessor`] that can be applied to training data and,
//! crucially, to *live* points during online validation with the same
//! parameters.

use crate::data::LabeledPoint;
use athena_types::{AthenaError, Result};
use serde::{Deserialize, Serialize};

/// A normalization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Normalization {
    /// Scale each feature to `[0, 1]` by its observed min/max.
    #[default]
    MinMax,
    /// Standardize each feature to zero mean, unit variance.
    ZScore,
}

/// One preprocessing step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Multiply each feature by a weight (emphasize certain features).
    Weighting(Vec<f64>),
    /// Keep a deterministic fraction of the points (every k-th).
    Sampling(f64),
    /// Standardize the range of independent variables.
    Normalization(Normalization),
    /// Mark points as malicious (label = 1) when a predicate on one
    /// feature holds: `feature[index] >= threshold`.
    Marking {
        /// The feature index tested.
        feature: usize,
        /// The threshold at or above which the point is marked malicious.
        threshold: f64,
    },
}

/// A declarative preprocessing chain.
///
/// # Examples
///
/// ```
/// use athena_ml::{LabeledPoint, Normalization, Preprocessor};
///
/// let data = vec![
///     LabeledPoint::unlabeled(vec![0.0, 100.0]),
///     LabeledPoint::unlabeled(vec![10.0, 300.0]),
/// ];
/// let fitted = Preprocessor::new()
///     .normalize(Normalization::MinMax)
///     .fit(&data)?;
/// let out = fitted.apply(&data);
/// assert_eq!(out[1].features, vec![1.0, 1.0]);
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Preprocessor {
    steps: Vec<Step>,
}

impl Preprocessor {
    /// Creates an empty (identity) chain.
    pub fn new() -> Self {
        Preprocessor::default()
    }

    /// Appends a weighting step.
    pub fn weight(mut self, weights: Vec<f64>) -> Self {
        self.steps.push(Step::Weighting(weights));
        self
    }

    /// Appends a sampling step keeping roughly `fraction` of the points.
    pub fn sample(mut self, fraction: f64) -> Self {
        self.steps.push(Step::Sampling(fraction));
        self
    }

    /// Appends a normalization step.
    pub fn normalize(mut self, n: Normalization) -> Self {
        self.steps.push(Step::Normalization(n));
        self
    }

    /// Appends a marking step: points with `feature[index] >= threshold`
    /// are labeled malicious.
    pub fn mark(mut self, feature: usize, threshold: f64) -> Self {
        self.steps.push(Step::Marking { feature, threshold });
        self
    }

    /// The steps in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Learns data-dependent parameters on `data`.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for an empty set, a weight vector whose
    /// length differs from the feature dimension, or an out-of-range
    /// sampling fraction or marking index.
    pub fn fit(&self, data: &[LabeledPoint]) -> Result<FittedPreprocessor> {
        let dim = crate::data::check_dims(data)?;
        let mut fitted = Vec::with_capacity(self.steps.len());
        // Normalization statistics must be computed on data transformed by
        // the *preceding* steps, so fit incrementally.
        let mut current: Vec<LabeledPoint> = data.to_vec();
        for step in &self.steps {
            let f = match step {
                Step::Weighting(w) => {
                    if w.len() != dim {
                        return Err(AthenaError::Ml(format!(
                            "weight vector has dim {} but features have dim {dim}",
                            w.len()
                        )));
                    }
                    FittedStep::Weighting(w.clone())
                }
                Step::Sampling(frac) => {
                    if !(0.0..=1.0).contains(frac) {
                        return Err(AthenaError::Ml(format!(
                            "sampling fraction {frac} outside [0, 1]"
                        )));
                    }
                    FittedStep::Sampling(*frac)
                }
                Step::Normalization(kind) => match kind {
                    Normalization::MinMax => {
                        let mut lo = vec![f64::INFINITY; dim];
                        let mut hi = vec![f64::NEG_INFINITY; dim];
                        for p in &current {
                            for (j, x) in p.features.iter().enumerate() {
                                lo[j] = lo[j].min(*x);
                                hi[j] = hi[j].max(*x);
                            }
                        }
                        FittedStep::MinMax { lo, hi }
                    }
                    Normalization::ZScore => {
                        let n = current.len() as f64;
                        let mut mean = vec![0.0; dim];
                        for p in &current {
                            for (j, x) in p.features.iter().enumerate() {
                                mean[j] += x / n;
                            }
                        }
                        let mut var = vec![0.0; dim];
                        for p in &current {
                            for (j, x) in p.features.iter().enumerate() {
                                var[j] += (x - mean[j]) * (x - mean[j]) / n;
                            }
                        }
                        let std: Vec<f64> = var.into_iter().map(|v| v.sqrt().max(1e-12)).collect();
                        FittedStep::ZScore { mean, std }
                    }
                },
                Step::Marking { feature, threshold } => {
                    if *feature >= dim {
                        return Err(AthenaError::Ml(format!(
                            "marking feature index {feature} out of range (dim {dim})"
                        )));
                    }
                    FittedStep::Marking {
                        feature: *feature,
                        threshold: *threshold,
                    }
                }
            };
            current = apply_step(&f, &current);
            fitted.push(f);
        }
        Ok(FittedPreprocessor { steps: fitted, dim })
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum FittedStep {
    Weighting(Vec<f64>),
    Sampling(f64),
    MinMax { lo: Vec<f64>, hi: Vec<f64> },
    ZScore { mean: Vec<f64>, std: Vec<f64> },
    Marking { feature: usize, threshold: f64 },
}

fn apply_step(step: &FittedStep, data: &[LabeledPoint]) -> Vec<LabeledPoint> {
    match step {
        FittedStep::Sampling(frac) => {
            if *frac >= 1.0 {
                return data.to_vec();
            }
            if *frac <= 0.0 {
                return Vec::new();
            }
            let keep_every = (1.0 / frac).round().max(1.0) as usize;
            data.iter().step_by(keep_every).cloned().collect()
        }
        other => data
            .iter()
            .map(|p| {
                let mut p = p.clone();
                apply_step_point(other, &mut p);
                p
            })
            .collect(),
    }
}

fn apply_step_point(step: &FittedStep, p: &mut LabeledPoint) {
    match step {
        FittedStep::Weighting(w) => {
            for (x, wi) in p.features.iter_mut().zip(w) {
                *x *= wi;
            }
        }
        FittedStep::MinMax { lo, hi } => {
            for (j, x) in p.features.iter_mut().enumerate() {
                let range = hi[j] - lo[j];
                *x = if range.abs() < 1e-12 {
                    0.0
                } else {
                    ((*x - lo[j]) / range).clamp(0.0, 1.0)
                };
            }
        }
        FittedStep::ZScore { mean, std } => {
            for (j, x) in p.features.iter_mut().enumerate() {
                *x = (*x - mean[j]) / std[j];
            }
        }
        FittedStep::Marking { feature, threshold } => {
            if p.features.get(*feature).copied().unwrap_or(0.0) >= *threshold {
                p.label = 1.0;
            }
        }
        FittedStep::Sampling(_) => {}
    }
}

/// A preprocessing chain with learned parameters, applicable to batches
/// and to single live points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedPreprocessor {
    steps: Vec<FittedStep>,
    dim: usize,
}

impl FittedPreprocessor {
    /// The feature dimension the chain was fitted on.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies the chain to a batch (sampling steps drop points).
    pub fn apply(&self, data: &[LabeledPoint]) -> Vec<LabeledPoint> {
        let mut current = data.to_vec();
        for step in &self.steps {
            current = apply_step(step, &current);
        }
        current
    }

    /// Applies the chain to one live point (sampling steps are skipped —
    /// online validation sees every event).
    pub fn apply_point(&self, p: &LabeledPoint) -> LabeledPoint {
        let mut p = p.clone();
        for step in &self.steps {
            apply_step_point(step, &mut p);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<LabeledPoint> {
        vec![
            LabeledPoint::unlabeled(vec![0.0, 10.0]),
            LabeledPoint::unlabeled(vec![5.0, 20.0]),
            LabeledPoint::unlabeled(vec![10.0, 30.0]),
        ]
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let f = Preprocessor::new()
            .normalize(Normalization::MinMax)
            .fit(&data())
            .unwrap();
        let out = f.apply(&data());
        assert_eq!(out[0].features, vec![0.0, 0.0]);
        assert_eq!(out[1].features, vec![0.5, 0.5]);
        assert_eq!(out[2].features, vec![1.0, 1.0]);
    }

    #[test]
    fn minmax_handles_constant_feature() {
        let d = vec![
            LabeledPoint::unlabeled(vec![7.0]),
            LabeledPoint::unlabeled(vec![7.0]),
        ];
        let f = Preprocessor::new()
            .normalize(Normalization::MinMax)
            .fit(&d)
            .unwrap();
        assert_eq!(f.apply(&d)[0].features, vec![0.0]);
    }

    #[test]
    fn zscore_standardizes() {
        let f = Preprocessor::new()
            .normalize(Normalization::ZScore)
            .fit(&data())
            .unwrap();
        let out = f.apply(&data());
        let mean: f64 = out.iter().map(|p| p.features[0]).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn weighting_scales_features() {
        let f = Preprocessor::new()
            .weight(vec![2.0, 0.0])
            .fit(&data())
            .unwrap();
        let out = f.apply(&data());
        assert_eq!(out[1].features, vec![10.0, 0.0]);
    }

    #[test]
    fn marking_labels_by_threshold() {
        let f = Preprocessor::new().mark(1, 25.0).fit(&data()).unwrap();
        let out = f.apply(&data());
        assert!(!out[0].is_malicious());
        assert!(!out[1].is_malicious());
        assert!(out[2].is_malicious());
    }

    #[test]
    fn sampling_drops_points_in_batch_but_not_online() {
        let d: Vec<LabeledPoint> = (0..100)
            .map(|i| LabeledPoint::unlabeled(vec![f64::from(i)]))
            .collect();
        let f = Preprocessor::new().sample(0.25).fit(&d).unwrap();
        let out = f.apply(&d);
        assert_eq!(out.len(), 25);
        // Online application never drops.
        let p = f.apply_point(&d[3]);
        assert_eq!(p.features, vec![3.0]);
    }

    #[test]
    fn normalization_after_weighting_uses_weighted_stats() {
        let f = Preprocessor::new()
            .weight(vec![10.0, 1.0])
            .normalize(Normalization::MinMax)
            .fit(&data())
            .unwrap();
        let out = f.apply(&data());
        // Still lands in [0,1] because stats were fitted post-weighting.
        assert!(out
            .iter()
            .all(|p| p.features.iter().all(|x| (0.0..=1.0).contains(x))));
    }

    #[test]
    fn fit_rejects_bad_configs() {
        assert!(Preprocessor::new().weight(vec![1.0]).fit(&data()).is_err());
        assert!(Preprocessor::new().sample(1.5).fit(&data()).is_err());
        assert!(Preprocessor::new().mark(9, 0.0).fit(&data()).is_err());
        assert!(Preprocessor::new().fit(&[]).is_err());
    }

    #[test]
    fn batch_and_point_application_agree() {
        let f = Preprocessor::new()
            .weight(vec![3.0, 0.5])
            .normalize(Normalization::ZScore)
            .mark(0, 1.0)
            .fit(&data())
            .unwrap();
        let batch = f.apply(&data());
        for (orig, b) in data().iter().zip(&batch) {
            let single = f.apply_point(orig);
            assert_eq!(&single, b);
        }
    }
}
