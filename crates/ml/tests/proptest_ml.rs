//! Property-based tests for the ML library: preprocessing invariants,
//! K-Means invariants, metric identities, and model totality.

use athena_ml::algorithms::kmeans::{KMeansModel, KMeansParams};
use athena_ml::{Algorithm, ConfusionMatrix, LabeledPoint, Model, Normalization, Preprocessor};
use proptest::prelude::*;

fn arb_points(dim: usize) -> impl Strategy<Value = Vec<LabeledPoint>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(-1000.0f64..1000.0, dim..=dim),
            any::<bool>(),
        ),
        4..60,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(v, label)| LabeledPoint::new(v, f64::from(u8::from(label))))
            .collect()
    })
}

proptest! {
    /// Min-max normalization always lands in [0, 1] on the fitted data,
    /// and batch vs single-point application agree.
    #[test]
    fn minmax_bounds_and_consistency(points in arb_points(3)) {
        let pre = Preprocessor::new().normalize(Normalization::MinMax);
        let fitted = pre.fit(&points).unwrap();
        let batch = fitted.apply(&points);
        for (orig, out) in points.iter().zip(&batch) {
            for x in &out.features {
                prop_assert!((0.0..=1.0).contains(x), "{x}");
            }
            prop_assert_eq!(&fitted.apply_point(orig), out);
        }
    }

    /// Z-score normalization produces near-zero means on the fitted data.
    #[test]
    fn zscore_centers(points in arb_points(2)) {
        let fitted = Preprocessor::new()
            .normalize(Normalization::ZScore)
            .fit(&points)
            .unwrap();
        let out = fitted.apply(&points);
        let n = out.len() as f64;
        for d in 0..2 {
            let mean: f64 = out.iter().map(|p| p.features[d]).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-6, "dim {d} mean {mean}");
        }
    }

    /// Weighting by w then by 1/w is the identity (for nonzero weights).
    #[test]
    fn weighting_inverts(points in arb_points(2), w0 in 0.1f64..10.0, w1 in 0.1f64..10.0) {
        let fwd = Preprocessor::new().weight(vec![w0, w1]).fit(&points).unwrap();
        let back = Preprocessor::new()
            .weight(vec![1.0 / w0, 1.0 / w1])
            .fit(&points)
            .unwrap();
        for p in &points {
            let roundtrip = back.apply_point(&fwd.apply_point(p));
            for (a, b) in roundtrip.features.iter().zip(&p.features) {
                prop_assert!((a - b).abs() < 1e-6 * b.abs().max(1.0));
            }
        }
    }

    /// K-Means always assigns every point to a cluster in range, and the
    /// training cost never increases when k grows (same seed).
    #[test]
    fn kmeans_assignment_in_range(points in arb_points(2), k in 1usize..6) {
        let params = KMeansParams { k, runs: 1, max_iterations: 5, ..KMeansParams::default() };
        let model = KMeansModel::fit(params, &points).unwrap();
        prop_assert_eq!(model.k(), k);
        for p in &points {
            prop_assert!(model.cluster_of(&p.features) < k);
        }
    }

    /// Lloyd iterations never increase the K-Means cost.
    #[test]
    fn kmeans_cost_monotone_in_iterations(points in arb_points(2)) {
        let short = KMeansModel::fit(
            KMeansParams { k: 3, runs: 1, max_iterations: 1, ..KMeansParams::default() },
            &points,
        )
        .unwrap();
        let long = KMeansModel::fit(
            KMeansParams { k: 3, runs: 1, max_iterations: 20, ..KMeansParams::default() },
            &points,
        )
        .unwrap();
        prop_assert!(
            long.compute_cost(&points) <= short.compute_cost(&points) + 1e-6,
            "{} > {}",
            long.compute_cost(&points),
            short.compute_cost(&points)
        );
    }

    /// Every trainable algorithm yields finite predictions on data it was
    /// trained on (totality), provided both classes are present.
    #[test]
    fn models_are_total(points in arb_points(3)) {
        let has_both = points.iter().any(LabeledPoint::is_malicious)
            && points.iter().any(|p| !p.is_malicious());
        prop_assume!(has_both);
        for a in [
            Algorithm::kmeans(2),
            Algorithm::logistic_regression(),
            Algorithm::decision_tree(),
            Algorithm::NaiveBayes,
        ] {
            let m = a.fit(&points).unwrap();
            for p in &points {
                let s = m.predict(&p.features);
                prop_assert!(s.is_finite(), "{} produced {s}", a.name());
            }
        }
    }

    /// Confusion-matrix identities: totals add up and rates stay in [0,1].
    #[test]
    fn confusion_identities(
        outcomes in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..200)
    ) {
        let mut cm = ConfusionMatrix::default();
        for (actual, predicted) in &outcomes {
            cm.record(*actual, *predicted);
        }
        prop_assert_eq!(cm.total() as usize, outcomes.len());
        prop_assert_eq!(cm.actual_benign() + cm.actual_malicious(), cm.total());
        for rate in [
            cm.detection_rate(),
            cm.false_alarm_rate(),
            cm.precision(),
            cm.accuracy(),
            cm.f1(),
        ] {
            prop_assert!((0.0..=1.0).contains(&rate), "{rate}");
        }
        // Merging with an empty matrix is the identity.
        let mut merged = cm;
        merged.merge(&ConfusionMatrix::default());
        prop_assert_eq!(merged, cm);
    }

    /// Sampling keeps roughly the requested fraction and never fabricates
    /// points.
    #[test]
    fn sampling_fraction(points in arb_points(1), frac in 0.05f64..1.0) {
        let fitted = Preprocessor::new().sample(frac).fit(&points).unwrap();
        let out = fitted.apply(&points);
        prop_assert!(out.len() <= points.len());
        for p in &out {
            prop_assert!(points.contains(p));
        }
        // Within a factor-2 band of the requested fraction (small sets
        // quantize hard).
        let expect = (points.len() as f64 * frac).max(1.0);
        prop_assert!(out.len() as f64 <= expect * 2.0 + 1.0);
        prop_assert!(out.len() as f64 >= expect / 2.5 - 1.0, "{} vs {expect}", out.len());
    }
}
