//! Ring-buffer sliding feature windows with O(1) add/evict aggregate
//! maintenance.
//!
//! The batch Feature Generator recomputes each window's aggregates from
//! scratch at every flush; a streaming consumer cannot afford that per
//! sample. [`RingWindow`] keeps the samples of the trailing window in a
//! ring buffer and maintains count/sum/min/max incrementally:
//!
//! - count and sum are **exact integer accumulators** (`u64`/`i128`),
//!   so incremental add/evict is associative and lands on bit-identical
//!   values to a full recompute — float accumulation would drift and
//!   break the byte-identity gate;
//! - min and max use monotonic deques, giving amortized O(1) per
//!   operation;
//! - derived floating-point views (mean, per-second rate) are computed
//!   from the exact sums through the *shared*
//!   [`Windowing`](athena_core::Windowing) definition, the same code
//!   path `FeatureGenerator::flush_window` uses — one windowing
//!   definition, two consumers.
//!
//! `proptest_window.rs` drives arbitrary insert/evict sequences and
//! asserts [`RingWindow::aggregate`] equals [`RingWindow::recompute`]
//! after every step.

use athena_core::Windowing;
use athena_telemetry::{names, Counter, Telemetry};
use athena_types::SimTime;
use std::collections::VecDeque;

/// Exact aggregates over the samples currently inside the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowAggregate {
    /// Number of samples in the window.
    pub count: u64,
    /// Exact sum of the integer samples.
    pub sum: i128,
    /// Smallest sample, `None` when empty.
    pub min: Option<i64>,
    /// Largest sample, `None` when empty.
    pub max: Option<i64>,
}

impl WindowAggregate {
    /// The empty aggregate.
    pub fn empty() -> Self {
        WindowAggregate {
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// Mean of the samples (0.0 when empty), derived from the exact
    /// sum so both the incremental and the recomputed aggregate produce
    /// the same bits.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Per-second event rate of the window under `w` — delegates to the
    /// shared [`Windowing::rate`] so stream and batch agree byte-for-byte.
    pub fn rate(&self, w: &Windowing) -> f64 {
        w.rate(self.count)
    }
}

/// A sliding window over timestamped integer samples with O(1)
/// amortized push/evict and exact incremental aggregates.
#[derive(Debug)]
pub struct RingWindow {
    windowing: Windowing,
    samples: VecDeque<(SimTime, i64)>,
    sum: i128,
    /// Front-to-back nondecreasing values: front is the window minimum.
    min_deque: VecDeque<(SimTime, i64)>,
    /// Front-to-back nonincreasing values: front is the window maximum.
    max_deque: VecDeque<(SimTime, i64)>,
    updates: Counter,
    evictions: Counter,
}

impl RingWindow {
    /// An empty window of the given shared windowing definition, with
    /// detached (no-op) metrics.
    pub fn new(windowing: Windowing) -> Self {
        RingWindow {
            windowing,
            samples: VecDeque::new(),
            sum: 0,
            min_deque: VecDeque::new(),
            max_deque: VecDeque::new(),
            updates: Counter::detached(),
            evictions: Counter::detached(),
        }
    }

    /// Like [`RingWindow::new`] with `stream/window_updates` and
    /// `stream/window_evictions` wired to `tel`.
    pub fn with_telemetry(windowing: Windowing, tel: &Telemetry) -> Self {
        RingWindow {
            updates: tel
                .metrics()
                .counter(names::stream::SUBSYSTEM, names::stream::WINDOW_UPDATES),
            evictions: tel
                .metrics()
                .counter(names::stream::SUBSYSTEM, names::stream::WINDOW_EVICTIONS),
            ..RingWindow::new(windowing)
        }
    }

    /// The window's shared windowing definition.
    pub fn windowing(&self) -> Windowing {
        self.windowing
    }

    /// Number of samples currently inside the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Pushes a sample observed at `at`, first evicting everything the
    /// window has slid past. Timestamps are expected nondecreasing (the
    /// record streams that feed this are); an out-of-order sample is
    /// accepted but triggers no eviction.
    pub fn push(&mut self, at: SimTime, value: i64) {
        self.evict_before(horizon(at, &self.windowing));
        self.samples.push_back((at, value));
        self.sum += i128::from(value);
        while self
            .min_deque
            .back()
            .is_some_and(|&(_, back)| back >= value)
        {
            self.min_deque.pop_back();
        }
        self.min_deque.push_back((at, value));
        while self
            .max_deque
            .back()
            .is_some_and(|&(_, back)| back <= value)
        {
            self.max_deque.pop_back();
        }
        self.max_deque.push_back((at, value));
        self.updates.inc();
    }

    /// Slides the window forward to `now` without adding a sample,
    /// evicting everything older than one width before `now`.
    pub fn advance_to(&mut self, now: SimTime) {
        self.evict_before(horizon(now, &self.windowing));
    }

    /// The incrementally-maintained aggregates: O(1).
    pub fn aggregate(&self) -> WindowAggregate {
        WindowAggregate {
            count: self.samples.len() as u64,
            sum: self.sum,
            min: self.min_deque.front().map(|&(_, v)| v),
            max: self.max_deque.front().map(|&(_, v)| v),
        }
    }

    /// The batch path: recomputes the same aggregates by scanning every
    /// retained sample. The proptest gate asserts this equals
    /// [`RingWindow::aggregate`] after arbitrary insert/evict
    /// sequences; production code has no reason to call it.
    pub fn recompute(&self) -> WindowAggregate {
        let mut agg = WindowAggregate::empty();
        for &(_, v) in &self.samples {
            agg.count += 1;
            agg.sum += i128::from(v);
            agg.min = Some(agg.min.map_or(v, |m| m.min(v)));
            agg.max = Some(agg.max.map_or(v, |m| m.max(v)));
        }
        agg
    }

    /// Drops samples strictly older than `cutoff` (the window covers
    /// `(now - width, now]`).
    fn evict_before(&mut self, cutoff: SimTime) {
        while let Some(&(t, v)) = self.samples.front() {
            if t >= cutoff {
                break;
            }
            self.samples.pop_front();
            self.sum -= i128::from(v);
            if self
                .min_deque
                .front()
                .is_some_and(|&(ft, fv)| ft == t && fv == v)
            {
                self.min_deque.pop_front();
            }
            if self
                .max_deque
                .front()
                .is_some_and(|&(ft, fv)| ft == t && fv == v)
            {
                self.max_deque.pop_front();
            }
            self.evictions.inc();
        }
    }
}

/// The eviction cutoff for a window ending at `at`: one width earlier,
/// saturating at time zero.
fn horizon(at: SimTime, w: &Windowing) -> SimTime {
    SimTime::from_micros(at.as_micros().saturating_sub(w.width().as_micros()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::SimDuration;

    fn w5() -> Windowing {
        Windowing::new(SimDuration::from_secs(5))
    }

    #[test]
    fn aggregates_track_pushes_and_evictions() {
        let mut w = RingWindow::new(w5());
        w.push(SimTime::from_secs(1), 10);
        w.push(SimTime::from_secs(2), -3);
        w.push(SimTime::from_secs(3), 7);
        let a = w.aggregate();
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 14);
        assert_eq!(a.min, Some(-3));
        assert_eq!(a.max, Some(10));
        // t=8 slides the window to (3, 8]: the samples at 1 and 2 leave.
        w.push(SimTime::from_secs(8), 1);
        let a = w.aggregate();
        assert_eq!(a.count, 2);
        assert_eq!(a.sum, 8);
        assert_eq!(a.min, Some(1));
        assert_eq!(a.max, Some(7));
        assert_eq!(a, w.recompute());
    }

    #[test]
    fn advance_to_empties_a_stale_window() {
        let mut w = RingWindow::new(w5());
        w.push(SimTime::from_secs(1), 4);
        w.advance_to(SimTime::from_secs(20));
        assert!(w.is_empty());
        assert_eq!(w.aggregate(), WindowAggregate::empty());
        assert_eq!(w.aggregate(), w.recompute());
    }

    #[test]
    fn rate_matches_the_shared_batch_formula() {
        let mut w = RingWindow::new(w5());
        for i in 0..10 {
            w.push(SimTime::from_micros(i * 100), 1);
        }
        // 10 events over the 5 s window: the batch MSG_*_RATE formula.
        assert_eq!(w.aggregate().rate(&w5()), 2.0);
    }

    #[test]
    fn duplicate_extremes_survive_partial_eviction() {
        let mut w = RingWindow::new(w5());
        w.push(SimTime::from_secs(1), 5);
        w.push(SimTime::from_secs(4), 5);
        w.push(SimTime::from_secs(7), 2);
        let a = w.aggregate();
        assert_eq!(a.max, Some(5));
        assert_eq!(a, w.recompute());
    }
}
