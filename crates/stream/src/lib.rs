//! athena-stream: the online learning pipeline (DESIGN.md §15).
//!
//! Turns Athena's batch train-then-test loop into *continuous*
//! detection, the operating point the paper pitches and RapidLearn's
//! learn→deploy→relearn loop argues for:
//!
//! - [`window`] — ring-buffer sliding feature windows with O(1)
//!   add/evict aggregate updates, provably equal to a full batch
//!   recompute (the proptest gate) and aligned to the Feature
//!   Generator's own [`athena_core::Windowing`] boundaries, so stream
//!   and batch share one windowing definition.
//! - [`online`] — cheap incremental learners (sequential k-means,
//!   streaming quantile/threshold, incremental naive Bayes) behind the
//!   [`OnlineModel`] trait, with deterministic `partial_fit`/`predict`
//!   and a `freeze` step that lowers them onto the batch
//!   [`athena_ml::TrainedModel`] representation.
//! - [`manager`] — the [`RetrainLoop`]: accumulates labeled live
//!   traffic in a bounded window, periodically fits a candidate model
//!   in the background (via `athena-parallel`), round-trips it through
//!   the persist snapshot format
//!   ([`DetectionModel::save_to`](athena_core::DetectionModel::save_to)
//!   /`load_from`), and hot-swaps it atomically into the running
//!   [`AttackDetector`](athena_core::AttackDetector) — the old model
//!   serves every record until the swap instant, bounding the
//!   detection gap.
//!
//! Every `stream/*` metric is declared in `athena_telemetry::names`;
//! the `e2e_stream.rs` gate asserts continuity (miss window ≤ 15
//! virtual seconds) under live attack while the model retrains, with
//! byte-identical verdicts across reruns and `ATHENA_THREADS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rust_2018_idioms)]

pub mod manager;
pub mod online;
pub mod window;

pub use manager::{RetrainLoop, RetrainPolicy, RetrainReport, StreamConfig};
pub use online::{
    IncrementalNaiveBayes, OnlineModel, OnlineSpec, SequentialKMeans, StreamingQuantile,
};
pub use window::{RingWindow, WindowAggregate};
