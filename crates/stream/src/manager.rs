//! The retrain loop: live window → background candidate fit →
//! snapshot → atomic hot-swap.
//!
//! [`RetrainLoop::deploy`] registers an online validator on the
//! [`Athena`] runtime with a caller-supplied bootstrap model, plus an
//! event handler that copies every matching feature record (labeled by
//! the app's ground-truth closure) into a bounded virtual-time
//! [`LiveWindow`]. Each [`RetrainLoop::tick`] then decides, on the
//! retrain cadence, whether to fit a candidate: the fit runs as a
//! background `athena-parallel` task (joined before the tick returns,
//! so verdict streams stay deterministic across `ATHENA_THREADS`), the
//! candidate round-trips through the persist snapshot format
//! (`DetectionModel::save_to`/`load_from` — the exact bytes a crash
//! recovery would reload), and is hot-swapped into the
//! [`AttackDetector`](athena_core::AttackDetector) under the detector
//! lock.
//!
//! **Gap bound:** the displaced model keeps scoring every record until
//! the swap instant, and the swap itself happens atomically under the
//! detector lock between two records — so the detection gap during a
//! retrain is bounded by the alert cadence of whichever model is
//! worse, never by retrain latency. The `stream/detection_gap_us`
//! histogram measures the observed gap between consecutive alerts in
//! virtual time; the `detection-gap-exceeded` alert rule and the
//! `e2e_stream.rs` gate both watch the ≤ 15 virtual-second bound.

use crate::online::OnlineSpec;
use athena_core::{AlertHandler, Athena, DetectionModel, FeatureRecord, Query};
use athena_ml::{LabeledPoint, Preprocessor};
use athena_telemetry::{names, Counter, Gauge, Histogram, Telemetry};
use athena_types::sentinel::TrackedMutex;
use athena_types::{AthenaError, Result, SimDuration, SimTime};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// When and on how much data the loop retrains.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainPolicy {
    /// Minimum virtual time between retrains.
    pub interval: SimDuration,
    /// Live-window horizon: points older than this are evicted.
    pub window: SimDuration,
    /// Skip retraining below this many live points.
    pub min_points: usize,
    /// Hard cap on retained live points (oldest evicted first).
    pub max_points: usize,
    /// Snapshot path for the persist round-trip. When set, every
    /// candidate is written with `DetectionModel::save_to` and the
    /// *reloaded* copy is what gets swapped in — proving the deployed
    /// model survives the crash-recovery format. `None` swaps the
    /// in-memory candidate directly.
    pub snapshot: Option<PathBuf>,
}

impl Default for RetrainPolicy {
    fn default() -> Self {
        RetrainPolicy {
            interval: SimDuration::from_secs(10),
            window: SimDuration::from_secs(30),
            min_points: 64,
            max_points: 8192,
            snapshot: None,
        }
    }
}

/// Everything a streaming deployment needs besides the runtime itself.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Validator name (appears in `validator_stats`).
    pub name: String,
    /// Feature names extracted from matching records, in order.
    pub features: Vec<String>,
    /// Which online learner fits the candidates.
    pub spec: OnlineSpec,
    /// Preprocessing refitted on each live window before the fit.
    pub preprocessor: Preprocessor,
    /// Retrain cadence and window bounds.
    pub policy: RetrainPolicy,
}

/// What one completed retrain did.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainReport {
    /// Virtual time of the tick that retrained.
    pub at: SimTime,
    /// Live points the candidate was fitted on.
    pub points: usize,
    /// Algorithm tag of the deployed candidate.
    pub algorithm: String,
    /// Whether the candidate was hot-swapped into the detector.
    pub swapped: bool,
}

/// The bounded, virtual-time-evicted buffer of labeled live traffic.
#[derive(Debug)]
struct LiveWindow {
    entries: VecDeque<(SimTime, LabeledPoint)>,
    horizon: SimDuration,
    max_points: usize,
    updates: Counter,
    evictions: Counter,
    live_points: Gauge,
}

impl LiveWindow {
    fn push(&mut self, at: SimTime, point: LabeledPoint) {
        let cutoff = SimTime::from_micros(at.as_micros().saturating_sub(self.horizon.as_micros()));
        while self.entries.front().is_some_and(|&(t, _)| t < cutoff) {
            self.entries.pop_front();
            self.evictions.inc();
        }
        self.entries.push_back((at, point));
        while self.entries.len() > self.max_points {
            self.entries.pop_front();
            self.evictions.inc();
        }
        self.updates.inc();
        self.live_points.set(self.entries.len() as i64);
    }

    fn snapshot(&self) -> Vec<LabeledPoint> {
        self.entries.iter().map(|(_, p)| p.clone()).collect()
    }
}

/// The streaming detector lifecycle: owns the live window, the retrain
/// cadence, and the validator slot it hot-swaps.
pub struct RetrainLoop {
    cfg: StreamConfig,
    validator: usize,
    live: Arc<TrackedMutex<LiveWindow>>,
    last_retrain: Option<SimTime>,
    reports: Vec<RetrainReport>,
    partial_fits: Counter,
    retrain_ns: Histogram,
    retrains: Counter,
    swaps: Counter,
    swap_failures: Counter,
}

impl RetrainLoop {
    /// Deploys a streaming detector: registers `initial` as the online
    /// validator (it serves from the first record — continuity never
    /// waits for the first retrain) and starts accumulating matching
    /// records, labeled by `truth`, into the live window. Alerts flow
    /// through `on_alert`; consecutive-alert gaps are recorded into
    /// `stream/detection_gap_us` in virtual time.
    pub fn deploy(
        athena: &Athena,
        query: &Query,
        cfg: StreamConfig,
        truth: Arc<dyn Fn(&FeatureRecord) -> bool + Send + Sync>,
        initial: DetectionModel,
        mut on_alert: AlertHandler,
    ) -> Self {
        let tel: Telemetry = athena.runtime().telemetry.clone();
        let gap = tel
            .metrics()
            .histogram(names::stream::SUBSYSTEM, names::stream::DETECTION_GAP_US);
        let last_alert = Arc::new(AtomicU64::new(u64::MAX));
        let stamp = Arc::clone(&last_alert);
        let wrapped: AlertHandler = Box::new(move |r| {
            let now_us = r.meta.timestamp.as_micros();
            let prev = stamp.swap(now_us, Ordering::SeqCst);
            if prev != u64::MAX {
                gap.record(now_us.saturating_sub(prev));
            }
            on_alert(r)
        });
        let validator = athena.add_online_validator(cfg.name.clone(), query, initial, wrapped);

        let live = Arc::new(TrackedMutex::new(
            "stream/live",
            LiveWindow {
                entries: VecDeque::new(),
                horizon: cfg.policy.window,
                max_points: cfg.policy.max_points.max(1),
                updates: tel
                    .metrics()
                    .counter(names::stream::SUBSYSTEM, names::stream::WINDOW_UPDATES),
                evictions: tel
                    .metrics()
                    .counter(names::stream::SUBSYSTEM, names::stream::WINDOW_EVICTIONS),
                live_points: tel
                    .metrics()
                    .gauge(names::stream::SUBSYSTEM, names::stream::LIVE_POINTS),
            },
        ));
        {
            let live = Arc::clone(&live);
            let truth = Arc::clone(&truth);
            let features = cfg.features.clone();
            athena.add_event_handler(
                query,
                Box::new(move |r| {
                    if let Some(v) = r.vector(&features) {
                        let label = if truth(r) { 1.0 } else { 0.0 };
                        live.lock()
                            .push(r.meta.timestamp, LabeledPoint::new(v, label));
                    }
                }),
            );
        }

        RetrainLoop {
            partial_fits: tel
                .metrics()
                .counter(names::stream::SUBSYSTEM, names::stream::PARTIAL_FITS),
            retrain_ns: tel
                .metrics()
                .histogram(names::stream::SUBSYSTEM, names::stream::RETRAIN_NS),
            retrains: tel
                .metrics()
                .counter(names::stream::SUBSYSTEM, names::stream::RETRAINS),
            swaps: tel
                .metrics()
                .counter(names::stream::SUBSYSTEM, names::stream::SWAPS),
            swap_failures: tel
                .metrics()
                .counter(names::stream::SUBSYSTEM, names::stream::SWAP_FAILURES),
            cfg,
            validator,
            live,
            last_retrain: None,
            reports: Vec::new(),
        }
    }

    /// The validator slot this loop hot-swaps.
    pub fn validator(&self) -> usize {
        self.validator
    }

    /// Labeled points currently in the live window.
    pub fn live_points(&self) -> usize {
        self.live.lock().entries.len()
    }

    /// Every completed retrain so far, in order.
    pub fn reports(&self) -> &[RetrainReport] {
        &self.reports
    }

    /// Drives the loop at `now` (call once per virtual tick, e.g. from
    /// the simulation's step loop). When the retrain cadence is due and
    /// the live window holds enough points, fits a candidate in the
    /// background, round-trips it through the snapshot format, and
    /// hot-swaps it. Returns the report when a retrain completed.
    ///
    /// Candidates that cannot be fitted yet (e.g. a one-class window
    /// before the attack starts) are skipped silently — the incumbent
    /// model keeps serving. Snapshot or swap failures increment
    /// `stream/swap_failures` (watched by the `model-swap-failed`
    /// alert rule).
    pub fn tick(&mut self, athena: &Athena, now: SimTime) -> Option<RetrainReport> {
        let due = self.last_retrain.is_none_or(|t| {
            now.saturating_since(t).as_micros() >= self.cfg.policy.interval.as_micros()
        });
        if !due {
            return None;
        }
        let points = self.live.lock().snapshot();
        if points.len() < self.cfg.policy.min_points {
            return None;
        }
        self.last_retrain = Some(now);
        let n = points.len();
        let timer = self.retrain_ns.start_timer();
        let candidate = self.fit_candidate(points);
        timer.observe(&self.retrain_ns);
        let candidate = match candidate {
            Ok(c) => c,
            // Not enough signal in this window (single class, empty
            // threshold): keep the incumbent and try again next tick.
            Err(_) => return None,
        };
        self.retrains.inc();
        let deployed = match &self.cfg.policy.snapshot {
            Some(path) => candidate
                .save_to(path, now)
                .and_then(|()| DetectionModel::load_from(path)),
            None => Ok(candidate),
        };
        let report = match deployed {
            Ok(m) => {
                let algorithm = m.algorithm.clone();
                let swapped = athena.swap_online_model(self.validator, m).is_some();
                if swapped {
                    self.swaps.inc();
                } else {
                    self.swap_failures.inc();
                }
                RetrainReport {
                    at: now,
                    points: n,
                    algorithm,
                    swapped,
                }
            }
            Err(_) => {
                self.swap_failures.inc();
                RetrainReport {
                    at: now,
                    points: n,
                    algorithm: self.cfg.spec.tag().to_string(),
                    swapped: false,
                }
            }
        };
        self.reports.push(report.clone());
        Some(report)
    }

    /// Fits a candidate on `points` as a background `athena-parallel`
    /// task: the preprocessor is refitted on the window, the online
    /// learner consumes the prepared points strictly in record order
    /// (so the fit is deterministic), and the frozen model is wrapped
    /// into a deployable [`DetectionModel`]. The scope join makes the
    /// result available before the tick returns regardless of
    /// `ATHENA_THREADS`.
    fn fit_candidate(&self, points: Vec<LabeledPoint>) -> Result<DetectionModel> {
        let spec = self.cfg.spec.clone();
        let prep = self.cfg.preprocessor.clone();
        let features = self.cfg.features.clone();
        let fits = self.partial_fits.clone();
        let (tx, rx) = mpsc::channel();
        athena_parallel::scope(|s| {
            s.spawn(move || {
                let result = (|| -> Result<DetectionModel> {
                    let fitted = prep.fit(&points)?;
                    let prepared = fitted.apply(&points);
                    let mut model = spec.build();
                    for p in &prepared {
                        model.partial_fit(p);
                        fits.inc();
                    }
                    let frozen = model.freeze()?;
                    Ok(DetectionModel {
                        model: frozen,
                        preprocessor: fitted,
                        features,
                        algorithm: spec.tag().to_string(),
                        trained_on: points.len(),
                    })
                })();
                let _ = tx.send(result);
            });
        });
        match rx.recv() {
            Ok(r) => r,
            Err(_) => Err(AthenaError::Ml("background retrain task vanished".into())),
        }
    }
}
