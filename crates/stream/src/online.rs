//! Online variants of the cheap learners, behind the [`OnlineModel`]
//! trait.
//!
//! Each learner consumes one [`LabeledPoint`] at a time
//! (`partial_fit`), scores points at any moment (`predict`, same ≥ 0.5
//! = malicious convention as the batch [`Model`](athena_ml::Model)
//! trait), and can `freeze` into the batch
//! [`TrainedModel`](athena_ml::TrainedModel) representation — which is
//! what the retrain loop snapshots and hot-swaps into the detector.
//! All three are RNG-free and strictly sequential, so a fit over the
//! same point sequence is deterministic to the bit, independent of
//! `ATHENA_THREADS`.

use athena_ml::algorithms::kmeans::KMeansParams;
use athena_ml::{
    DenseVector, KMeansModel, LabeledPoint, NaiveBayesModel, ThresholdModel, TrainedModel,
};
use athena_types::{AthenaError, Result};

/// An incrementally-trainable detection model.
pub trait OnlineModel: Send {
    /// Consumes one labeled observation. Deterministic: the model
    /// state after a sequence of calls is a pure function of that
    /// sequence.
    fn partial_fit(&mut self, point: &LabeledPoint);

    /// Malicious score for `x` in `[0, 1]`; ≥ 0.5 means malicious,
    /// matching the batch `Model` convention. Deterministic, and total:
    /// models that have seen no data return 0.0 (benign).
    fn predict(&self, x: &[f64]) -> f64;

    /// Observations consumed so far.
    fn seen(&self) -> u64;

    /// Lowers the current state onto the batch [`TrainedModel`]
    /// representation for snapshotting and hot-swap.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] when the model has not seen enough
    /// data to produce a meaningful classifier (e.g. a single class).
    fn freeze(&self) -> Result<TrainedModel>;

    /// Human-readable description of the learner and its state.
    fn describe(&self) -> String;
}

/// Which online learner a [`StreamConfig`](crate::StreamConfig) deploys.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineSpec {
    /// MacQueen sequential k-means with majority-labeled clusters.
    SequentialKMeans {
        /// Number of clusters.
        k: usize,
    },
    /// Streaming quantile of one feature over benign traffic; flags
    /// points above the learned threshold.
    Quantile {
        /// Index of the watched feature in the preprocessed vector.
        feature: usize,
        /// Quantile of benign samples used as the threshold (e.g. 0.99).
        q: f64,
    },
    /// Incremental Gaussian naive Bayes (Welford per-class moments).
    NaiveBayes,
}

impl OnlineSpec {
    /// Builds a fresh, empty learner for this spec.
    pub fn build(&self) -> Box<dyn OnlineModel> {
        match self {
            OnlineSpec::SequentialKMeans { k } => Box::new(SequentialKMeans::new(*k)),
            OnlineSpec::Quantile { feature, q } => Box::new(StreamingQuantile::new(*feature, *q)),
            OnlineSpec::NaiveBayes => Box::new(IncrementalNaiveBayes::new()),
        }
    }

    /// Short algorithm tag recorded on deployed models.
    pub fn tag(&self) -> &'static str {
        match self {
            OnlineSpec::SequentialKMeans { .. } => "online-kmeans",
            OnlineSpec::Quantile { .. } => "online-quantile",
            OnlineSpec::NaiveBayes => "online-naive-bayes",
        }
    }
}

/// MacQueen's sequential k-means: the first `k` distinct points seed
/// the centroids; each later point moves its nearest centroid by
/// `(x - c) / n`. Per-cluster benign/malicious tallies label clusters
/// by majority, exactly like the batch `flag_clusters` step.
#[derive(Debug, Clone)]
pub struct SequentialKMeans {
    k: usize,
    centroids: Vec<Vec<f64>>,
    counts: Vec<u64>,
    benign: Vec<u64>,
    malicious: Vec<u64>,
    /// Running sum of squared distances at assignment time — a cheap
    /// online stand-in for the batch inertia, recorded on freeze.
    cost: f64,
    seen: u64,
}

impl SequentialKMeans {
    /// An empty learner targeting `k` clusters (floored at 1).
    pub fn new(k: usize) -> Self {
        SequentialKMeans {
            k: k.max(1),
            centroids: Vec::new(),
            counts: Vec::new(),
            benign: Vec::new(),
            malicious: Vec::new(),
            cost: 0.0,
            seen: 0,
        }
    }

    /// Index of the centroid nearest to `x` (ties break to the lowest
    /// index), or `None` before any centroid exists.
    fn nearest(&self, x: &[f64]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in self.centroids.iter().enumerate() {
            let mut d = 0.0;
            for (ci, xi) in c.iter().zip(x) {
                let diff = xi - ci;
                d += diff * diff;
            }
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best
    }

    fn tally(&mut self, cluster: usize, label_malicious: bool) {
        if label_malicious {
            if let Some(m) = self.malicious.get_mut(cluster) {
                *m += 1;
            }
        } else if let Some(b) = self.benign.get_mut(cluster) {
            *b += 1;
        }
    }
}

impl OnlineModel for SequentialKMeans {
    fn partial_fit(&mut self, point: &LabeledPoint) {
        if point.features.is_empty() {
            return;
        }
        self.seen += 1;
        let malicious = point.is_malicious();
        if self.centroids.len() < self.k {
            self.centroids.push(point.features.clone());
            self.counts.push(1);
            self.benign.push(0);
            self.malicious.push(0);
            let cluster = self.centroids.len() - 1;
            self.tally(cluster, malicious);
            return;
        }
        if let Some((i, d)) = self.nearest(&point.features) {
            self.cost += d;
            if let Some(n) = self.counts.get_mut(i) {
                *n += 1;
                let inv = 1.0 / (*n as f64);
                if let Some(c) = self.centroids.get_mut(i) {
                    for (ci, xi) in c.iter_mut().zip(&point.features) {
                        *ci += (xi - *ci) * inv;
                    }
                }
            }
            self.tally(i, malicious);
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        match self.nearest(x) {
            Some((i, _)) => {
                let m = self.malicious.get(i).copied().unwrap_or(0);
                let b = self.benign.get(i).copied().unwrap_or(0);
                if m > b {
                    1.0
                } else {
                    0.0
                }
            }
            None => 0.0,
        }
    }

    fn seen(&self) -> u64 {
        self.seen
    }

    fn freeze(&self) -> Result<TrainedModel> {
        if self.centroids.is_empty() {
            return Err(AthenaError::Ml(
                "sequential k-means has no centroids to freeze".into(),
            ));
        }
        let flagged: Vec<bool> = self
            .malicious
            .iter()
            .zip(&self.benign)
            .map(|(m, b)| m > b)
            .collect();
        let model = KMeansModel {
            centroids: self
                .centroids
                .iter()
                .map(|c| DenseVector(c.clone()))
                .collect(),
            cost: self.cost,
            params: KMeansParams {
                k: self.centroids.len(),
                ..KMeansParams::default()
            },
        };
        Ok(TrainedModel::KMeans { model, flagged })
    }

    fn describe(&self) -> String {
        format!(
            "sequential k-means (k={}, {} centroids, {} points)",
            self.k,
            self.centroids.len(),
            self.seen
        )
    }
}

/// How many order statistics [`StreamingQuantile`] retains before it
/// deterministically decimates every other one.
const QUANTILE_CAPACITY: usize = 2048;

/// Streaming quantile/threshold detection: learns the `q`-quantile of
/// one feature over *benign*-labeled samples and flags anything above
/// it. The sketch is a bounded sorted buffer with deterministic
/// decimation — no randomness, so identical sequences produce identical
/// thresholds.
#[derive(Debug, Clone)]
pub struct StreamingQuantile {
    feature: usize,
    q: f64,
    sorted: Vec<f64>,
    seen: u64,
}

impl StreamingQuantile {
    /// An empty learner over preprocessed-feature index `feature` with
    /// quantile `q` (clamped to `[0, 1]`).
    pub fn new(feature: usize, q: f64) -> Self {
        StreamingQuantile {
            feature,
            q: q.clamp(0.0, 1.0),
            sorted: Vec::new(),
            seen: 0,
        }
    }

    /// The current threshold: the `q`-quantile of the retained benign
    /// samples, or `None` before any benign sample arrived.
    pub fn threshold(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let rank = (self.q * (self.sorted.len() - 1) as f64).round() as usize;
        self.sorted.get(rank.min(self.sorted.len() - 1)).copied()
    }
}

impl OnlineModel for StreamingQuantile {
    fn partial_fit(&mut self, point: &LabeledPoint) {
        self.seen += 1;
        if point.is_malicious() {
            return; // the threshold models benign traffic only
        }
        let Some(v) = point.features.get(self.feature).copied() else {
            return;
        };
        if v.is_nan() {
            return;
        }
        let at = match self.sorted.binary_search_by(|p| p.total_cmp(&v)) {
            Ok(i) | Err(i) => i,
        };
        self.sorted.insert(at, v);
        if self.sorted.len() > QUANTILE_CAPACITY {
            // Deterministic compaction: keep every other sample plus
            // the extreme tail, halving memory while preserving the
            // distribution's shape.
            let last = self.sorted.len() - 1;
            let mut i = 0;
            self.sorted.retain(|_| {
                let keep = i % 2 == 0 || i == last;
                i += 1;
                keep
            });
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let (Some(t), Some(v)) = (self.threshold(), x.get(self.feature)) else {
            return 0.0;
        };
        if *v > t {
            1.0
        } else {
            0.0
        }
    }

    fn seen(&self) -> u64 {
        self.seen
    }

    fn freeze(&self) -> Result<TrainedModel> {
        let Some(t) = self.threshold() else {
            return Err(AthenaError::Ml(
                "streaming quantile saw no benign samples to freeze".into(),
            ));
        };
        Ok(TrainedModel::Threshold(ThresholdModel::above(
            self.feature,
            t,
        )))
    }

    fn describe(&self) -> String {
        format!(
            "streaming quantile (feature {}, q={}, {} retained, threshold {:?})",
            self.feature,
            self.q,
            self.sorted.len(),
            self.threshold()
        )
    }
}

/// One class's Welford accumulator: count, running mean, and running
/// sum of squared deviations (`m2`), per dimension.
#[derive(Debug, Clone, Default)]
struct ClassMoments {
    count: u64,
    mean: Vec<f64>,
    m2: Vec<f64>,
}

impl ClassMoments {
    fn update(&mut self, x: &[f64]) {
        if self.count == 0 {
            self.mean = x.to_vec();
            self.m2 = vec![0.0; x.len()];
            self.count = 1;
            return;
        }
        self.count += 1;
        let inv = 1.0 / (self.count as f64);
        for ((m, s), xi) in self.mean.iter_mut().zip(self.m2.iter_mut()).zip(x) {
            let d1 = xi - *m;
            *m += d1 * inv;
            let d2 = xi - *m;
            *s += d1 * d2;
        }
    }

    /// Population variance per dimension (matches the batch fitter's
    /// `/ n` convention).
    fn variance(&self) -> Vec<f64> {
        if self.count == 0 {
            return Vec::new();
        }
        let inv = 1.0 / (self.count as f64);
        self.m2.iter().map(|s| s * inv).collect()
    }

    fn log_likelihood(&self, x: &[f64], log_prior: f64) -> f64 {
        let inv = 1.0 / (self.count as f64);
        let mut acc = log_prior;
        for ((xi, mi), s) in x.iter().zip(&self.mean).zip(&self.m2) {
            let v = (s * inv).max(1e-9);
            acc += -0.5 * ((xi - mi) * (xi - mi) / v + v.ln());
        }
        acc
    }
}

/// Incremental Gaussian naive Bayes: per-class Welford moments updated
/// one point at a time; freezes into the batch [`NaiveBayesModel`] via
/// [`NaiveBayesModel::from_moments`].
#[derive(Debug, Clone, Default)]
pub struct IncrementalNaiveBayes {
    benign: ClassMoments,
    malicious: ClassMoments,
}

impl IncrementalNaiveBayes {
    /// An empty learner.
    pub fn new() -> Self {
        IncrementalNaiveBayes::default()
    }
}

impl OnlineModel for IncrementalNaiveBayes {
    fn partial_fit(&mut self, point: &LabeledPoint) {
        if point.features.is_empty() {
            return;
        }
        if point.is_malicious() {
            self.malicious.update(&point.features);
        } else {
            self.benign.update(&point.features);
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.benign.count == 0 || self.malicious.count == 0 {
            return 0.0; // one-class models abstain (benign)
        }
        let n = (self.benign.count + self.malicious.count) as f64;
        let lp = self
            .malicious
            .log_likelihood(x, (self.malicious.count as f64 / n).ln());
        let ln = self
            .benign
            .log_likelihood(x, (self.benign.count as f64 / n).ln());
        let max = lp.max(ln);
        let ep = (lp - max).exp();
        let en = (ln - max).exp();
        ep / (ep + en)
    }

    fn seen(&self) -> u64 {
        self.benign.count + self.malicious.count
    }

    fn freeze(&self) -> Result<TrainedModel> {
        let model = NaiveBayesModel::from_moments(
            (
                self.benign.count,
                self.benign.mean.clone(),
                self.benign.variance(),
            ),
            (
                self.malicious.count,
                self.malicious.mean.clone(),
                self.malicious.variance(),
            ),
        )?;
        Ok(TrainedModel::NaiveBayes(model))
    }

    fn describe(&self) -> String {
        format!(
            "incremental naive bayes ({} benign, {} malicious)",
            self.benign.count, self.malicious.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_ml::Model;

    fn blob(center: f64, label: f64, n: usize) -> Vec<LabeledPoint> {
        (0..n)
            .map(|i| LabeledPoint::new(vec![center + (i as f64) * 0.01, center], label))
            .collect()
    }

    #[test]
    fn sequential_kmeans_separates_blobs_and_freezes() {
        let mut m = SequentialKMeans::new(2);
        for p in blob(0.0, 0.0, 50).iter().chain(blob(5.0, 1.0, 50).iter()) {
            m.partial_fit(p);
        }
        assert!(m.predict(&[5.0, 5.0]) >= 0.5);
        assert!(m.predict(&[0.0, 0.0]) < 0.5);
        let frozen = m.freeze().unwrap();
        assert!(frozen.predict(&[5.1, 5.0]) >= 0.5);
        assert!(frozen.predict(&[0.1, 0.0]) < 0.5);
    }

    #[test]
    fn quantile_learns_benign_tail() {
        let mut m = StreamingQuantile::new(0, 0.95);
        for p in blob(0.0, 0.0, 100) {
            m.partial_fit(&p);
        }
        // Malicious samples must not move the threshold.
        for p in blob(50.0, 1.0, 100) {
            m.partial_fit(&p);
        }
        assert!(m.predict(&[10.0]) >= 0.5);
        assert!(m.predict(&[0.0]) < 0.5);
        let frozen = m.freeze().unwrap();
        assert!(frozen.predict(&[10.0]) >= 0.5);
    }

    #[test]
    fn quantile_compaction_is_bounded_and_deterministic() {
        let mk = || {
            let mut m = StreamingQuantile::new(0, 0.99);
            for i in 0..10_000 {
                m.partial_fit(&LabeledPoint::new(vec![(i % 997) as f64], 0.0));
            }
            m
        };
        let (a, b) = (mk(), mk());
        assert!(a.sorted.len() <= QUANTILE_CAPACITY);
        assert_eq!(
            a.threshold().map(f64::to_bits),
            b.threshold().map(f64::to_bits)
        );
    }

    #[test]
    fn incremental_nb_matches_batch_fit_closely() {
        let data: Vec<LabeledPoint> = blob(0.0, 0.0, 60)
            .into_iter()
            .chain(blob(4.0, 1.0, 60))
            .collect();
        let mut online = IncrementalNaiveBayes::new();
        for p in &data {
            online.partial_fit(p);
        }
        let batch = NaiveBayesModel::fit(&data).unwrap();
        for p in &data {
            let a = online.predict(&p.features);
            let b = batch.predict_proba(&p.features);
            assert!((a - b).abs() < 1e-6, "online {a} vs batch {b}");
        }
        let frozen = online.freeze().unwrap();
        assert!(frozen.predict(&[4.0, 4.0]) >= 0.5);
        assert!(frozen.predict(&[0.0, 0.0]) < 0.5);
    }

    #[test]
    fn empty_models_abstain_and_refuse_to_freeze() {
        for spec in [
            OnlineSpec::SequentialKMeans { k: 4 },
            OnlineSpec::Quantile {
                feature: 0,
                q: 0.99,
            },
            OnlineSpec::NaiveBayes,
        ] {
            let m = spec.build();
            assert_eq!(m.predict(&[1.0, 2.0]), 0.0);
            assert!(m.freeze().is_err(), "{} froze empty", m.describe());
        }
    }
}
