//! Property gate: ring-buffer incremental aggregates equal a full
//! batch recompute for arbitrary insert/evict sequences.
//!
//! The incremental path (`RingWindow::aggregate`) maintains
//! count/sum/min/max in O(1) per operation; the batch path
//! (`RingWindow::recompute`) scans every retained sample. Because the
//! accumulators are exact integers, the two must be *equal* — not
//! approximately equal — after every push, advance, and eviction, for
//! any interleaving of sample values, time gaps, and idle slides.

use athena_core::Windowing;
use athena_stream::RingWindow;
use athena_types::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// After every operation in an arbitrary nondecreasing-time
    /// sequence of pushes and idle advances, the O(1) aggregate equals
    /// the O(n) recompute.
    #[test]
    fn incremental_equals_batch_recompute(
        width_ms in 1u64..20_000,
        ops in proptest::collection::vec((0u64..5_000, -1_000i64..1_000, 0u8..8), 1..200),
    ) {
        let windowing = Windowing::new(SimDuration::from_millis(width_ms));
        let mut w = RingWindow::new(windowing);
        let mut now_us: u64 = 0;
        for (gap_ms, value, kind) in ops {
            now_us += gap_ms * 1_000;
            let at = SimTime::from_micros(now_us);
            if kind == 0 {
                // Occasional idle slide: evictions with no insertion.
                w.advance_to(at);
            } else {
                w.push(at, value);
            }
            let fast = w.aggregate();
            let slow = w.recompute();
            prop_assert_eq!(fast, slow, "incremental and batch aggregates diverged");
        }
    }

    /// Eviction is exact at window boundaries: samples exactly one
    /// width old fall out, newer ones stay, and the shared Windowing
    /// rate over the aggregate count matches the batch formula.
    #[test]
    fn boundary_eviction_is_exact(
        width_s in 1u64..30,
        n in 1u64..50,
    ) {
        let windowing = Windowing::new(SimDuration::from_secs(width_s));
        let mut w = RingWindow::new(windowing);
        for i in 0..n {
            w.push(SimTime::from_micros(i), 1);
        }
        prop_assert_eq!(w.aggregate().count, n);
        // Slide one full width past the last sample: everything leaves.
        w.advance_to(SimTime::from_micros(n + windowing.width().as_micros()));
        prop_assert_eq!(w.aggregate().count, 0);
        prop_assert_eq!(w.aggregate(), w.recompute());
    }
}
