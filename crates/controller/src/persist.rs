//! Durability wiring for the controller cluster: mastership transitions
//! and flow-rule bookkeeping are journaled through an
//! [`athena_persist::Journal`] and rehydrated on restart.
//!
//! ONOS keeps this state in its distributed stores; a rejoining instance
//! reads it back from the surviving quorum. The simulator collapses the
//! cluster into one address space, so before this module a crash/rejoin
//! cycle silently forgot every mastership move and installed rule. With
//! persistence attached, mastership events (crash/rejoin/fail-over) and
//! rule installs/removals append WAL records as they happen; a checkpoint
//! snapshots the full mastership map, rule store, and message counters.
//! [`ControllerCluster::attach_persistence`] on a freshly built cluster
//! replays checkpoint + WAL tail, reproducing the pre-crash control-plane
//! view.

use crate::cluster::ControllerCluster;
use crate::services::FlowRuleRecord;
use athena_openflow::OfMessage;
use athena_persist::{record::kind, Journal, PersistConfig, Recovery};
use athena_telemetry::Telemetry;
use athena_types::{AppId, AthenaError, ControllerId, Dpid, Result, SimTime};
use serde_json::{Map, Value};

/// The attached journal (records are stamped from the cluster's
/// last-seen virtual time, so no clock is carried here).
#[derive(Debug)]
pub struct ControllerPersist {
    pub(crate) journal: Journal,
}

/// What [`ControllerCluster::attach_persistence`] recovered from disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerRecoveryReport {
    /// A checkpoint snapshot was loaded and applied.
    pub checkpoint_applied: bool,
    /// WAL tail records replayed after the checkpoint.
    pub ops_replayed: u64,
    /// Mastership events among the replayed records.
    pub mastership_events: u64,
    /// Flow rules live after recovery.
    pub rules_live: u64,
    /// Torn/corrupt WAL tails truncated during recovery.
    pub tails_truncated: u64,
    /// Corrupt checkpoint files skipped during recovery.
    pub corrupt_checkpoints_skipped: u64,
}

/// Canonical JSON encodings of the journaled control-plane events.
pub(crate) mod events {
    use super::*;

    pub(crate) fn obj(pairs: Vec<(&str, Value)>) -> Value {
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k.to_owned(), v);
        }
        Value::Object(m)
    }

    pub(crate) fn crash(c: ControllerId) -> Value {
        obj(vec![
            ("event", Value::from("crash")),
            ("instance", Value::from(u64::from(c.raw()))),
        ])
    }

    pub(crate) fn rejoin(c: ControllerId) -> Value {
        obj(vec![
            ("event", Value::from("rejoin")),
            ("instance", Value::from(u64::from(c.raw()))),
        ])
    }

    pub(crate) fn reassign(dpid: Dpid, to: ControllerId) -> Value {
        obj(vec![
            ("event", Value::from("reassign")),
            ("dpid", Value::from(dpid.raw())),
            ("to", Value::from(u64::from(to.raw()))),
        ])
    }

    pub(crate) fn install(dpid: Dpid, app: AppId, cookie: u64, now: SimTime) -> Value {
        obj(vec![
            ("op", Value::from("install")),
            ("dpid", Value::from(dpid.raw())),
            ("app", Value::from(u64::from(app.raw()))),
            ("cookie", Value::from(cookie)),
            ("time_us", Value::from(now.as_micros())),
        ])
    }

    pub(crate) fn remove(cookie: u64) -> Value {
        obj(vec![
            ("op", Value::from("remove")),
            ("cookie", Value::from(cookie)),
        ])
    }
}

fn as_object(v: &Value) -> Result<&Map<String, Value>> {
    match v {
        Value::Object(m) => Ok(m),
        _ => Err(AthenaError::Persist(
            "controller record is not an object".into(),
        )),
    }
}

fn get_str<'a>(m: &'a Map<String, Value>, key: &str) -> Result<&'a str> {
    match m.get(key) {
        Some(Value::String(s)) => Ok(s),
        _ => Err(AthenaError::Persist(format!(
            "controller record misses `{key}`"
        ))),
    }
}

fn get_u64(m: &Map<String, Value>, key: &str) -> Result<u64> {
    m.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| AthenaError::Persist(format!("controller record misses `{key}`")))
}

fn get_u32(m: &Map<String, Value>, key: &str) -> Result<u32> {
    let v = get_u64(m, key)?;
    u32::try_from(v).map_err(|_| AthenaError::Persist(format!("`{key}` out of range: {v}")))
}

impl ControllerCluster {
    /// Opens (or creates) a journal under `config.dir`, replays whatever
    /// mastership/flow-rule history it holds into this cluster, and
    /// attaches the journal so subsequent control-plane events append WAL
    /// records. `persist/controller_*` metrics flow into `tel`.
    ///
    /// Attach to a freshly built cluster (same topology as the pre-crash
    /// one): recovery rebuilds the mastership map, the flow-rule store,
    /// and the message/failover counters.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Persist`] if the journal cannot be opened or
    /// a recovered record cannot be decoded. Torn/corrupt tails are not
    /// errors — they are truncated, counted, and recovery continues.
    pub fn attach_persistence(
        &mut self,
        config: PersistConfig,
        tel: &Telemetry,
    ) -> Result<ControllerRecoveryReport> {
        let (journal, recovery) = Journal::open_with_telemetry(config, tel, "controller")?;
        let report = self.apply_recovery(&recovery)?;
        self.persist = Some(ControllerPersist { journal });
        Ok(report)
    }

    /// `true` once [`ControllerCluster::attach_persistence`] has run.
    pub fn persistence_attached(&self) -> bool {
        self.persist.is_some()
    }

    /// Takes a point-in-time checkpoint of the control-plane state
    /// (mastership map, flow-rule store, counters) and supersedes the WAL
    /// with it. Returns the WAL sequence number the checkpoint covers.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Persist`] when no journal is attached or the
    /// snapshot cannot be written.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let snapshot = self.build_snapshot();
        let payload = serde_json::to_vec(&snapshot)
            .map_err(|e| AthenaError::Persist(format!("encode snapshot: {e}")))?;
        let now = self.last_seen;
        let p = self
            .persist
            .as_mut()
            .ok_or_else(|| AthenaError::Persist("no journal attached".into()))?;
        p.journal.checkpoint(&payload, now)
    }

    /// Appends one mastership event record (best-effort: the southbound
    /// paths cannot surface persist errors).
    pub(crate) fn journal_mastership(&mut self, event: Value) {
        let now = self.last_seen;
        if let Some(p) = self.persist.as_mut() {
            if let Ok(payload) = serde_json::to_vec(&event) {
                let _ = p.journal.append(kind::MASTERSHIP, &payload, now);
            }
        }
    }

    /// Appends one rule-removal record (best-effort).
    pub(crate) fn journal_rule_removal(&mut self, cookie: u64) {
        let now = self.last_seen;
        if let Some(p) = self.persist.as_mut() {
            if let Ok(payload) = serde_json::to_vec(&events::remove(cookie)) {
                let _ = p.journal.append(kind::FLOW_RULE, &payload, now);
            }
        }
    }

    /// Appends one install record per flow-mod *add* in an outgoing
    /// command batch (best-effort). Both the application path and the
    /// Athena proxy path funnel through the command batches, so this
    /// single hook covers every install the rule store sees.
    pub(crate) fn journal_rule_installs(&mut self, commands: &[(Dpid, OfMessage)], now: SimTime) {
        if self.persist.is_none() {
            return;
        }
        for (dpid, msg) in commands {
            if let OfMessage::FlowMod { body, .. } = msg {
                if body.command == athena_openflow::FlowModCommand::Add {
                    let ev = events::install(*dpid, body.app_id(), body.cookie, now);
                    if let Some(p) = self.persist.as_mut() {
                        if let Ok(payload) = serde_json::to_vec(&ev) {
                            let _ = p.journal.append(kind::FLOW_RULE, &payload, now);
                        }
                    }
                }
            }
        }
    }

    /// A canonical snapshot of the control-plane state: sorted mastership
    /// map and down-set, rule records sorted by cookie, counters — the
    /// same state always snapshots to the same bytes.
    fn build_snapshot(&self) -> Value {
        let (masters, down) = self.mastership.snapshot();
        let masters: Vec<Value> = masters
            .iter()
            .map(|(d, c)| Value::Array(vec![Value::from(d.raw()), Value::from(u64::from(c.raw()))]))
            .collect();
        let down: Vec<Value> = down
            .iter()
            .map(|c| Value::from(u64::from(c.raw())))
            .collect();
        let records: Vec<Value> = self
            .flow_rules
            .snapshot_records()
            .iter()
            .map(|r| {
                events::obj(vec![
                    ("app", Value::from(u64::from(r.app.raw()))),
                    ("byte_count", Value::from(r.byte_count)),
                    ("cookie", Value::from(r.cookie)),
                    ("dpid", Value::from(r.dpid.raw())),
                    ("installed_us", Value::from(r.installed_at.as_micros())),
                    ("packet_count", Value::from(r.packet_count)),
                ])
            })
            .collect();
        let (installs, removals, next_seq) = self.flow_rules.snapshot_counters();
        events::obj(vec![
            (
                "counters",
                events::obj(vec![
                    ("flow_mods", Value::from(self.counters.flow_mods)),
                    ("flow_removeds", Value::from(self.counters.flow_removeds)),
                    ("packet_ins", Value::from(self.counters.packet_ins)),
                    ("stats_replies", Value::from(self.counters.stats_replies)),
                ]),
            ),
            (
                "failover",
                events::obj(vec![
                    ("elections", Value::from(self.failover.elections)),
                    ("switches_moved", Value::from(self.failover.switches_moved)),
                ]),
            ),
            (
                "flow_rules",
                events::obj(vec![
                    ("installs", Value::from(installs)),
                    ("next_seq", Value::from(next_seq)),
                    ("records", Value::Array(records)),
                    ("removals", Value::from(removals)),
                ]),
            ),
            (
                "mastership",
                events::obj(vec![
                    ("down", Value::Array(down)),
                    ("masters", Value::Array(masters)),
                ]),
            ),
        ])
    }

    fn apply_recovery(&mut self, recovery: &Recovery) -> Result<ControllerRecoveryReport> {
        let mut report = ControllerRecoveryReport {
            tails_truncated: recovery.stats.tails_truncated,
            corrupt_checkpoints_skipped: recovery.corrupt_checkpoints_skipped,
            ..ControllerRecoveryReport::default()
        };
        if let Some(ck) = &recovery.checkpoint {
            let snapshot: Value = serde_json::from_slice(&ck.payload)
                .map_err(|e| AthenaError::Persist(format!("decode snapshot: {e}")))?;
            self.apply_snapshot(&snapshot)?;
            report.checkpoint_applied = true;
            self.last_seen = self.last_seen.max(ck.time);
        }
        for rec in &recovery.tail {
            let op: Value = serde_json::from_slice(&rec.payload)
                .map_err(|e| AthenaError::Persist(format!("decode record: {e}")))?;
            match rec.kind {
                kind::MASTERSHIP => {
                    self.apply_mastership_event(&op)?;
                    report.mastership_events += 1;
                }
                kind::FLOW_RULE => self.apply_rule_event(&op)?,
                k => {
                    return Err(AthenaError::Persist(format!(
                        "unexpected record kind {k} in controller journal"
                    )))
                }
            }
            report.ops_replayed += 1;
            self.last_seen = self.last_seen.max(rec.time);
        }
        report.rules_live = self.flow_rules.live_count() as u64;
        Ok(report)
    }

    fn apply_snapshot(&mut self, snapshot: &Value) -> Result<()> {
        let m = as_object(snapshot)?;

        let mastership = as_object(
            m.get("mastership")
                .ok_or_else(|| AthenaError::Persist("snapshot misses `mastership`".into()))?,
        )?;
        let masters = match mastership.get("masters") {
            Some(Value::Array(a)) => a
                .iter()
                .map(|pair| match pair {
                    Value::Array(p) if p.len() == 2 => {
                        let d = p[0].as_u64().ok_or_else(|| {
                            AthenaError::Persist("non-integer dpid in snapshot".into())
                        })?;
                        let c = p[1].as_u64().ok_or_else(|| {
                            AthenaError::Persist("non-integer controller in snapshot".into())
                        })?;
                        Ok((Dpid::new(d), ControllerId::new(c as u32)))
                    }
                    _ => Err(AthenaError::Persist("malformed master pair".into())),
                })
                .collect::<Result<Vec<_>>>()?,
            _ => return Err(AthenaError::Persist("snapshot misses `masters`".into())),
        };
        let down = match mastership.get("down") {
            Some(Value::Array(a)) => a
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|c| ControllerId::new(c as u32))
                        .ok_or_else(|| {
                            AthenaError::Persist("non-integer instance in `down`".into())
                        })
                })
                .collect::<Result<Vec<_>>>()?,
            _ => return Err(AthenaError::Persist("snapshot misses `down`".into())),
        };
        self.mastership.restore(&masters, &down);

        let fr = as_object(
            m.get("flow_rules")
                .ok_or_else(|| AthenaError::Persist("snapshot misses `flow_rules`".into()))?,
        )?;
        let records = match fr.get("records") {
            Some(Value::Array(a)) => a
                .iter()
                .map(|v| {
                    let r = as_object(v)?;
                    Ok(FlowRuleRecord {
                        dpid: Dpid::new(get_u64(r, "dpid")?),
                        app: AppId::new(get_u32(r, "app")?),
                        cookie: get_u64(r, "cookie")?,
                        installed_at: SimTime::from_micros(get_u64(r, "installed_us")?),
                        packet_count: get_u64(r, "packet_count")?,
                        byte_count: get_u64(r, "byte_count")?,
                    })
                })
                .collect::<Result<Vec<_>>>()?,
            _ => return Err(AthenaError::Persist("snapshot misses `records`".into())),
        };
        self.flow_rules.restore(
            records,
            (
                get_u64(fr, "installs")?,
                get_u64(fr, "removals")?,
                get_u64(fr, "next_seq")?,
            ),
        );

        let counters = as_object(
            m.get("counters")
                .ok_or_else(|| AthenaError::Persist("snapshot misses `counters`".into()))?,
        )?;
        self.counters.packet_ins = get_u64(counters, "packet_ins")?;
        self.counters.flow_mods = get_u64(counters, "flow_mods")?;
        self.counters.stats_replies = get_u64(counters, "stats_replies")?;
        self.counters.flow_removeds = get_u64(counters, "flow_removeds")?;

        let failover = as_object(
            m.get("failover")
                .ok_or_else(|| AthenaError::Persist("snapshot misses `failover`".into()))?,
        )?;
        self.failover.elections = get_u64(failover, "elections")?;
        self.failover.switches_moved = get_u64(failover, "switches_moved")?;
        Ok(())
    }

    /// Re-runs one journaled mastership transition. Crash/rejoin re-elect
    /// through the same deterministic service logic as the original run,
    /// so the recovered map matches without storing every reassignment.
    fn apply_mastership_event(&mut self, op: &Value) -> Result<()> {
        let m = as_object(op)?;
        match get_str(m, "event")? {
            "crash" => {
                let c = ControllerId::new(get_u32(m, "instance")?);
                let moved = self.mastership.crash(c);
                if !moved.is_empty() {
                    self.failover.elections += 1;
                    self.failover.switches_moved += moved.len() as u64;
                }
            }
            "rejoin" => {
                let c = ControllerId::new(get_u32(m, "instance")?);
                let moved = self.mastership.rejoin(c);
                if !moved.is_empty() {
                    self.failover.elections += 1;
                    self.failover.switches_moved += moved.len() as u64;
                }
            }
            "reassign" => {
                let dpid = Dpid::new(get_u64(m, "dpid")?);
                let to = ControllerId::new(get_u32(m, "to")?);
                self.mastership.reassign(dpid, to);
            }
            other => {
                return Err(AthenaError::Persist(format!(
                    "unknown mastership event `{other}`"
                )))
            }
        }
        Ok(())
    }

    fn apply_rule_event(&mut self, op: &Value) -> Result<()> {
        let m = as_object(op)?;
        match get_str(m, "op")? {
            "install" => {
                self.flow_rules.restore_record(FlowRuleRecord {
                    dpid: Dpid::new(get_u64(m, "dpid")?),
                    app: AppId::new(get_u32(m, "app")?),
                    cookie: get_u64(m, "cookie")?,
                    installed_at: SimTime::from_micros(get_u64(m, "time_us")?),
                    packet_count: 0,
                    byte_count: 0,
                });
            }
            "remove" => self.flow_rules.restore_removal(get_u64(m, "cookie")?),
            other => {
                return Err(AthenaError::Persist(format!(
                    "unknown flow-rule op `{other}`"
                )))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_dataplane::{workload, Network, Topology};
    use athena_types::SimDuration;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "athena-ctrl-persist-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn run_workload(cluster: &mut ControllerCluster, topo: &Topology, until: u64) {
        let mut net = Network::new(topo.clone());
        net.inject_flows(workload::benign_mix_on(
            topo,
            30,
            SimDuration::from_secs(5),
            11,
        ));
        net.run_until(SimTime::from_secs(until), cluster);
    }

    /// `(mastership snapshot, sorted rule cookies)` — the recovered
    /// control-plane view under comparison.
    fn view(c: &ControllerCluster) -> (Vec<(Dpid, ControllerId)>, Vec<u64>) {
        let (masters, _) = c.mastership.snapshot();
        let cookies: Vec<u64> = c
            .flow_rules
            .snapshot_records()
            .iter()
            .map(|r| r.cookie)
            .collect();
        (masters, cookies)
    }

    #[test]
    fn wal_replay_restores_mastership_and_rules() {
        let dir = test_dir();
        let tel = Telemetry::new();
        let topo = Topology::enterprise();
        let mut cluster = ControllerCluster::new(&topo);
        cluster
            .attach_persistence(PersistConfig::new(&dir), &tel)
            .unwrap();
        run_workload(&mut cluster, &topo, 8);
        cluster.crash_instance(ControllerId::new(1));
        cluster.fail_over(Dpid::new(2), ControllerId::new(2));
        let want = view(&cluster);
        let want_counters = cluster.flow_rules.snapshot_counters();

        let mut recovered = ControllerCluster::new(&topo);
        let report = recovered
            .attach_persistence(PersistConfig::new(&dir), &tel)
            .unwrap();
        assert!(!report.checkpoint_applied);
        assert!(report.ops_replayed > 0);
        assert!(report.mastership_events >= 2);
        assert_eq!(view(&recovered), want);
        assert_eq!(recovered.flow_rules.snapshot_counters(), want_counters);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_plus_tail_restores_identical_view() {
        let dir = test_dir();
        let tel = Telemetry::new();
        let topo = Topology::enterprise();
        let mut cluster = ControllerCluster::new(&topo);
        cluster
            .attach_persistence(PersistConfig::new(&dir), &tel)
            .unwrap();
        run_workload(&mut cluster, &topo, 8);
        cluster.checkpoint().unwrap();
        // Message counters are checkpoint state (the WAL journals rule and
        // mastership transitions, not every southbound message).
        let want_counters = cluster.counters();
        // Post-checkpoint history lands in the WAL tail.
        cluster.crash_instance(ControllerId::new(0));
        run_workload(&mut cluster, &topo, 6);
        let want = view(&cluster);
        let want_failover = cluster.failover_counters();

        let mut recovered = ControllerCluster::new(&topo);
        let report = recovered
            .attach_persistence(PersistConfig::new(&dir), &tel)
            .unwrap();
        assert!(report.checkpoint_applied);
        assert_eq!(view(&recovered), want);
        assert_eq!(recovered.counters(), want_counters);
        assert_eq!(recovered.failover_counters(), want_failover);
        assert!(!recovered.instance_alive(ControllerId::new(0)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_cluster_keeps_serving_and_journaling() {
        let dir = test_dir();
        let tel = Telemetry::new();
        let topo = Topology::enterprise();
        let mut cluster = ControllerCluster::new(&topo);
        cluster
            .attach_persistence(PersistConfig::new(&dir), &tel)
            .unwrap();
        run_workload(&mut cluster, &topo, 8);

        let mut recovered = ControllerCluster::new(&topo);
        recovered
            .attach_persistence(PersistConfig::new(&dir), &tel)
            .unwrap();
        let before = recovered.counters().packet_ins;
        run_workload(&mut recovered, &topo, 8);
        assert!(recovered.counters().packet_ins > before);

        // And a third generation sees the second's appended history.
        let mut third = ControllerCluster::new(&topo);
        third
            .attach_persistence(PersistConfig::new(&dir), &tel)
            .unwrap();
        assert_eq!(view(&third), view(&recovered));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_without_journal_errors() {
        let topo = Topology::enterprise();
        let mut cluster = ControllerCluster::new(&topo);
        assert!(!cluster.persistence_attached());
        assert!(cluster.checkpoint().is_err());
    }
}
