//! Core controller services: mastership, host location, flow-rule
//! bookkeeping with per-application attribution.

use athena_dataplane::Topology;
use athena_openflow::{FlowMod, FlowRemoved};
use athena_telemetry::{Counter, Telemetry};
use athena_types::{AppId, ControllerId, Dpid, Ipv4Addr, PortNo, SimTime};
use std::collections::{BTreeSet, HashMap};

/// Maps each switch to the controller instance that masters it.
///
/// # Examples
///
/// ```
/// use athena_controller::MastershipService;
/// use athena_dataplane::Topology;
/// use athena_types::Dpid;
///
/// let topo = Topology::enterprise();
/// let m = MastershipService::from_topology(&topo);
/// assert!(m.master_of(Dpid::new(1)).is_some());
/// assert_eq!(m.instances().len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MastershipService {
    masters: HashMap<Dpid, ControllerId>,
    // Topology-preferred masters, reclaimed when a crashed instance
    // rejoins (ONOS's "mastership balancing" on node return).
    preferred: HashMap<Dpid, ControllerId>,
    all: BTreeSet<ControllerId>,
    down: BTreeSet<ControllerId>,
}

impl MastershipService {
    /// Builds the mastership map from the topology's assignments.
    pub fn from_topology(topo: &Topology) -> Self {
        let masters: HashMap<Dpid, ControllerId> = topo
            .switches
            .iter()
            .map(|s| (s.dpid, s.controller))
            .collect();
        MastershipService {
            preferred: masters.clone(),
            all: masters.values().copied().collect(),
            masters,
            down: BTreeSet::new(),
        }
    }

    /// The master instance of a switch.
    pub fn master_of(&self, dpid: Dpid) -> Option<ControllerId> {
        self.masters.get(&dpid).copied()
    }

    /// Switches mastered by an instance.
    pub fn switches_of(&self, c: ControllerId) -> Vec<Dpid> {
        let mut v: Vec<Dpid> = self
            .masters
            .iter()
            .filter(|(_, m)| **m == c)
            .map(|(d, _)| *d)
            .collect();
        v.sort();
        v
    }

    /// All distinct controller instances (including crashed ones — the
    /// cluster membership, not the live view; see
    /// [`MastershipService::alive_instances`]).
    pub fn instances(&self) -> Vec<ControllerId> {
        self.all.iter().copied().collect()
    }

    /// Instances currently up.
    pub fn alive_instances(&self) -> Vec<ControllerId> {
        self.all.difference(&self.down).copied().collect()
    }

    /// `true` if the instance has not crashed (unknown instances are
    /// considered alive, matching ONOS's optimistic membership view).
    pub fn is_alive(&self, c: ControllerId) -> bool {
        !self.down.contains(&c)
    }

    /// Reassigns a switch's mastership (failover).
    pub fn reassign(&mut self, dpid: Dpid, to: ControllerId) {
        self.masters.insert(dpid, to);
    }

    /// Marks an instance down and re-elects masters for its switches:
    /// each orphaned switch moves, round-robin in dpid order, to the
    /// surviving instances — deterministic, like ONOS's leadership
    /// election over a sorted candidate list. Returns the reassigned
    /// switches (empty if the instance held nothing, was already down,
    /// or no instance survives to take over).
    pub fn crash(&mut self, c: ControllerId) -> Vec<Dpid> {
        if !self.down.insert(c) {
            return Vec::new();
        }
        self.all.insert(c);
        let orphans = self.switches_of(c);
        let alive = self.alive_instances();
        if alive.is_empty() {
            return Vec::new();
        }
        for (i, dpid) in orphans.iter().enumerate() {
            self.masters.insert(*dpid, alive[i % alive.len()]);
        }
        orphans
    }

    /// Marks a crashed instance up again and hands back the switches it
    /// is the topology-preferred master of. Returns the reclaimed
    /// switches (empty if it was not down).
    pub fn rejoin(&mut self, c: ControllerId) -> Vec<Dpid> {
        if !self.down.remove(&c) {
            return Vec::new();
        }
        let mut reclaimed: Vec<Dpid> = self
            .preferred
            .iter()
            .filter(|(_, m)| **m == c)
            .map(|(d, _)| *d)
            .collect();
        reclaimed.sort();
        for dpid in &reclaimed {
            self.masters.insert(*dpid, c);
        }
        reclaimed
    }

    /// The current mastership map and down-set, sorted — the persistable
    /// part of the service (preferences and membership come back from the
    /// topology on restart).
    pub fn snapshot(&self) -> (Vec<(Dpid, ControllerId)>, Vec<ControllerId>) {
        let mut masters: Vec<(Dpid, ControllerId)> =
            self.masters.iter().map(|(d, c)| (*d, *c)).collect();
        masters.sort();
        (masters, self.down.iter().copied().collect())
    }

    /// Overwrites the mastership map and down-set from a snapshot taken
    /// by [`MastershipService::snapshot`] on an equally built service.
    pub fn restore(&mut self, masters: &[(Dpid, ControllerId)], down: &[ControllerId]) {
        for (d, c) in masters {
            self.masters.insert(*d, *c);
            self.all.insert(*c);
        }
        self.down = down.iter().copied().collect();
        self.all.extend(down.iter().copied());
    }
}

/// Host-location service.
///
/// Locations are seeded from the topology (the equivalent of ONOS's host
/// discovery via ARP/proxy-ARP, which the flow-level simulator does not
/// replay) and refreshed by packet-in observations.
#[derive(Debug, Clone, Default)]
pub struct HostService {
    by_ip: HashMap<Ipv4Addr, (Dpid, PortNo)>,
}

impl HostService {
    /// Seeds host locations from the topology.
    pub fn from_topology(topo: &Topology) -> Self {
        HostService {
            by_ip: topo
                .hosts
                .iter()
                .map(|h| (h.ip, (h.switch, h.port)))
                .collect(),
        }
    }

    /// Where a host attaches, if known.
    pub fn location_of(&self, ip: Ipv4Addr) -> Option<(Dpid, PortNo)> {
        self.by_ip.get(&ip).copied()
    }

    /// Learns (or refreshes) a host location from an observed packet.
    pub fn learn(&mut self, ip: Ipv4Addr, dpid: Dpid, port: PortNo) {
        self.by_ip.insert(ip, (dpid, port));
    }

    /// Number of known hosts.
    pub fn host_count(&self) -> usize {
        self.by_ip.len()
    }
}

/// A record of one installed flow rule.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRuleRecord {
    /// The switch holding the rule.
    pub dpid: Dpid,
    /// The installing application.
    pub app: AppId,
    /// The rule's cookie (carries the app id in its upper bits).
    pub cookie: u64,
    /// When it was installed.
    pub installed_at: SimTime,
    /// Latest packet count reported by statistics polling.
    pub packet_count: u64,
    /// Latest byte count reported by statistics polling.
    pub byte_count: u64,
}

/// Flow-rule bookkeeping: which application installed what, where —
/// ONOS's `FlowRuleService`, which the paper explicitly leverages
/// "to extract application information per flow".
#[derive(Debug, Clone, Default)]
pub struct FlowRuleService {
    records: HashMap<u64, FlowRuleRecord>, // keyed by cookie
    installs: u64,
    removals: u64,
    next_seq: u64,
    installs_tel: Counter,
    removals_tel: Counter,
}

impl FlowRuleService {
    /// Creates an empty service.
    pub fn new() -> Self {
        FlowRuleService::default()
    }

    /// Routes install/removal counts into `tel`.
    pub fn bind_telemetry(&mut self, tel: &Telemetry) {
        use athena_telemetry::names;
        self.installs_tel = tel.metrics().counter(
            names::controller::SUBSYSTEM,
            names::controller::RULES_INSTALLED,
        );
        self.removals_tel = tel.metrics().counter(
            names::controller::SUBSYSTEM,
            names::controller::RULES_REMOVED,
        );
    }

    /// Stamps a flow-mod with a fresh app-attributed cookie and records
    /// it. Returns the stamped flow-mod.
    pub fn register(&mut self, app: AppId, mut fm: FlowMod, dpid: Dpid, now: SimTime) -> FlowMod {
        self.next_seq += 1;
        fm.cookie = FlowMod::cookie_for_app(app, self.next_seq);
        self.installs += 1;
        self.installs_tel.inc();
        self.records.insert(
            fm.cookie,
            FlowRuleRecord {
                dpid,
                app,
                cookie: fm.cookie,
                installed_at: now,
                packet_count: 0,
                byte_count: 0,
            },
        );
        fm
    }

    /// Records a rule installed through the interceptor/proxy path (the
    /// rule already carries its cookie; the Athena Reactor stamps its own
    /// app id). This is what keeps the controller's view consistent when
    /// Athena issues mitigation rules.
    pub fn record_external(&mut self, fm: &FlowMod, dpid: Dpid, now: SimTime) {
        self.installs += 1;
        self.installs_tel.inc();
        self.records.insert(
            fm.cookie,
            FlowRuleRecord {
                dpid,
                app: fm.app_id(),
                cookie: fm.cookie,
                installed_at: now,
                packet_count: 0,
                byte_count: 0,
            },
        );
    }

    /// Refreshes a rule's counters from a statistics reply (ONOS updates
    /// its flow-rule store from every poll — the baseline per-entry work
    /// Figure 11 measures).
    pub fn note_stats(&mut self, cookie: u64, packet_count: u64, byte_count: u64) {
        if let Some(r) = self.records.get_mut(&cookie) {
            r.packet_count = packet_count;
            r.byte_count = byte_count;
        }
    }

    /// Processes a flow-removed notification, retiring the record.
    pub fn on_flow_removed(&mut self, fr: &FlowRemoved) {
        if self.records.remove(&fr.cookie).is_some() {
            self.removals += 1;
            self.removals_tel.inc();
        }
    }

    /// The application that installed the rule with this cookie, if
    /// tracked (falls back to decoding the cookie).
    pub fn app_of_cookie(&self, cookie: u64) -> AppId {
        self.records
            .get(&cookie)
            .map_or_else(|| AppId::new((cookie >> 48) as u32), |r| r.app)
    }

    /// Live rules installed by an application.
    pub fn rules_of_app(&self, app: AppId) -> Vec<&FlowRuleRecord> {
        self.records.values().filter(|r| r.app == app).collect()
    }

    /// Live rules on a switch.
    pub fn rules_on(&self, dpid: Dpid) -> Vec<&FlowRuleRecord> {
        self.records.values().filter(|r| r.dpid == dpid).collect()
    }

    /// `(installs, removals)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.installs, self.removals)
    }

    /// Number of live tracked rules.
    pub fn live_count(&self) -> usize {
        self.records.len()
    }

    /// All live rule records, sorted by cookie (a canonical view for
    /// checkpoints).
    pub fn snapshot_records(&self) -> Vec<FlowRuleRecord> {
        let mut out: Vec<FlowRuleRecord> = self.records.values().cloned().collect();
        out.sort_by_key(|r| r.cookie);
        out
    }

    /// `(installs, removals, next_seq)` — the counters a checkpoint must
    /// carry alongside the records.
    pub fn snapshot_counters(&self) -> (u64, u64, u64) {
        (self.installs, self.removals, self.next_seq)
    }

    /// Overwrites records and counters from a checkpoint snapshot.
    pub fn restore(&mut self, records: Vec<FlowRuleRecord>, counters: (u64, u64, u64)) {
        self.records = records.into_iter().map(|r| (r.cookie, r)).collect();
        self.installs = counters.0;
        self.removals = counters.1;
        self.next_seq = counters.2;
    }

    /// Re-admits one rule record during WAL replay, counting it as an
    /// install and advancing `next_seq` past the cookie's sequence bits so
    /// post-recovery cookies stay unique.
    pub fn restore_record(&mut self, rec: FlowRuleRecord) {
        self.next_seq = self.next_seq.max(rec.cookie & 0x0000_ffff_ffff_ffff);
        self.installs += 1;
        self.records.insert(rec.cookie, rec);
    }

    /// Re-applies one rule removal during WAL replay (absent cookies are
    /// a no-op, mirroring [`FlowRuleService::on_flow_removed`]).
    pub fn restore_removal(&mut self, cookie: u64) {
        if self.records.remove(&cookie).is_some() {
            self.removals += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_openflow::MatchFields;

    #[test]
    fn mastership_partitions_enterprise() {
        let topo = Topology::enterprise();
        let m = MastershipService::from_topology(&topo);
        let instances = m.instances();
        assert_eq!(instances.len(), 3);
        let total: usize = instances.iter().map(|c| m.switches_of(*c).len()).sum();
        assert_eq!(total, 18);
        // Every instance masters exactly 6 switches (2 cores + 4 edges).
        for c in instances {
            assert_eq!(m.switches_of(c).len(), 6);
        }
    }

    #[test]
    fn mastership_failover() {
        let topo = Topology::enterprise();
        let mut m = MastershipService::from_topology(&topo);
        m.reassign(Dpid::new(1), ControllerId::new(2));
        assert_eq!(m.master_of(Dpid::new(1)), Some(ControllerId::new(2)));
    }

    #[test]
    fn crash_re_elects_round_robin_and_rejoin_reclaims() {
        let topo = Topology::enterprise();
        let mut m = MastershipService::from_topology(&topo);
        let c0 = ControllerId::new(0);
        let orphans = m.crash(c0);
        assert_eq!(orphans.len(), 6);
        assert!(!m.is_alive(c0));
        assert_eq!(m.alive_instances().len(), 2);
        // Membership still reports the full cluster.
        assert_eq!(m.instances().len(), 3);
        // Nothing is left mastered by the dead instance, and survivors
        // split its switches evenly (6 orphans over 2 instances).
        assert!(m.switches_of(c0).is_empty());
        for c in m.alive_instances() {
            assert_eq!(m.switches_of(c).len(), 9);
        }
        // Crashing twice is a no-op.
        assert!(m.crash(c0).is_empty());
        // Rejoin hands back exactly the topology-preferred set.
        let mut reclaimed = m.rejoin(c0);
        reclaimed.sort();
        assert_eq!(reclaimed, orphans);
        assert_eq!(m.switches_of(c0), orphans);
        for c in m.instances() {
            assert_eq!(m.switches_of(c).len(), 6);
        }
        // Rejoining an instance that never crashed is a no-op.
        assert!(m.rejoin(c0).is_empty());
    }

    #[test]
    fn crash_is_deterministic() {
        let topo = Topology::enterprise();
        let mut a = MastershipService::from_topology(&topo);
        let mut b = MastershipService::from_topology(&topo);
        a.crash(ControllerId::new(1));
        b.crash(ControllerId::new(1));
        for s in &topo.switches {
            assert_eq!(a.master_of(s.dpid), b.master_of(s.dpid));
        }
    }

    #[test]
    fn last_instance_crash_leaves_switches_orphaned_but_consistent() {
        let topo = Topology::enterprise();
        let mut m = MastershipService::from_topology(&topo);
        m.crash(ControllerId::new(0));
        m.crash(ControllerId::new(1));
        let last = m.crash(ControllerId::new(2));
        // No survivor: nothing could be reassigned.
        assert!(last.is_empty());
        assert!(m.alive_instances().is_empty());
        // Rejoin restores the preferred mapping.
        for c in [0u32, 1, 2] {
            m.rejoin(ControllerId::new(c));
        }
        for c in m.instances() {
            assert_eq!(m.switches_of(c).len(), 6);
        }
    }

    #[test]
    fn host_service_seeds_and_learns() {
        let topo = Topology::linear(2, 2);
        let mut h = HostService::from_topology(&topo);
        assert_eq!(h.host_count(), 4);
        let ip = topo.hosts[0].ip;
        assert_eq!(
            h.location_of(ip),
            Some((topo.hosts[0].switch, topo.hosts[0].port))
        );
        // A moved host is re-learned.
        h.learn(ip, Dpid::new(2), PortNo::new(9));
        assert_eq!(h.location_of(ip), Some((Dpid::new(2), PortNo::new(9))));
    }

    #[test]
    fn flow_rule_attribution_roundtrip() {
        let mut svc = FlowRuleService::new();
        let app = AppId::new(5);
        let fm = svc.register(
            app,
            FlowMod::add(MatchFields::new(), 1, vec![]),
            Dpid::new(3),
            SimTime::ZERO,
        );
        assert_eq!(fm.app_id(), app);
        assert_eq!(svc.app_of_cookie(fm.cookie), app);
        assert_eq!(svc.rules_of_app(app).len(), 1);
        assert_eq!(svc.rules_on(Dpid::new(3)).len(), 1);
        assert_eq!(svc.live_count(), 1);

        svc.on_flow_removed(&FlowRemoved {
            match_fields: MatchFields::new(),
            cookie: fm.cookie,
            priority: 1,
            reason: athena_openflow::FlowRemovedReason::IdleTimeout,
            duration: athena_types::SimDuration::from_secs(1),
            packet_count: 0,
            byte_count: 0,
        });
        assert_eq!(svc.live_count(), 0);
        assert_eq!(svc.counters(), (1, 1));
        // Untracked cookies still decode the app id.
        assert_eq!(svc.app_of_cookie(7 << 48), AppId::new(7));
    }
}
