//! The controller's statistics poller.
//!
//! ONOS polls flow and port statistics from its mastered switches as part
//! of its management functions; the paper marks Athena's *own* requests'
//! XIDs to tell the two apart ("we mark an XID value for statistics
//! request messages"). This poller is the ONOS side: unmarked XIDs.
//!
//! Requests are tracked until their replies arrive. A reply lost to a
//! faulty southbound channel (see `athena-faults`) times out and is
//! re-issued under bounded exponential backoff ([`RetryPolicy`]), with
//! every timeout/retry/give-up surfaced through the `retry/*` telemetry
//! counters.

use athena_openflow::{MatchFields, OfMessage, StatsRequest};
use athena_telemetry::Counter;
use athena_types::{Dpid, PortNo, SimDuration, SimTime, Xid};
use std::collections::BTreeMap;

/// When and how often an unanswered statistics request is re-issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long to wait for a reply before the first retry.
    pub timeout: SimDuration,
    /// Maximum number of re-issues per logical request (0 disables
    /// retries entirely; the request is simply forgotten on timeout).
    pub max_retries: u32,
    /// Upper bound on the backed-off timeout (`timeout * 2^attempt` is
    /// clamped to this).
    pub backoff_cap: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_secs(3),
            max_retries: 3,
            backoff_cap: SimDuration::from_secs(24),
        }
    }
}

impl RetryPolicy {
    /// The reply deadline for a request issued on its `attempt`-th try
    /// (attempt 0 is the original request): `timeout * 2^attempt`,
    /// clamped to [`RetryPolicy::backoff_cap`].
    pub fn deadline_after(&self, attempt: u32) -> SimDuration {
        let factor = 1u64 << attempt.min(16);
        let backed_off = self.timeout * factor;
        if backed_off > self.backoff_cap {
            self.backoff_cap
        } else {
            backed_off
        }
    }
}

/// One in-flight statistics request awaiting its reply.
#[derive(Debug, Clone)]
struct Outstanding {
    dpid: Dpid,
    body: StatsRequest,
    issued_at: SimTime,
    attempt: u32,
}

/// Counters for the poller's retry machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryCounters {
    /// Requests whose reply deadline elapsed.
    pub timeouts: u64,
    /// Requests re-issued after a timeout.
    pub retries: u64,
    /// Requests abandoned after exhausting every retry.
    pub gave_up: u64,
}

/// Periodically issues flow/port statistics requests to a set of switches,
/// tracking replies and retrying lost requests with bounded exponential
/// backoff.
#[derive(Debug, Clone)]
pub struct StatsPoller {
    /// The polling period.
    pub interval: SimDuration,
    /// The reply-timeout/backoff policy.
    pub retry: RetryPolicy,
    switches: Vec<Dpid>,
    last_poll: SimTime,
    next_xid: u32,
    issued: u64,
    retry_counters: RetryCounters,
    // Keyed by raw XID; a BTreeMap keeps timeout scans deterministic.
    outstanding: BTreeMap<u32, Outstanding>,
    polls_issued: Counter,
    retries_tel: Counter,
    timeouts_tel: Counter,
    gave_up_tel: Counter,
}

impl StatsPoller {
    /// Creates a poller over the given switches.
    pub fn new(switches: Vec<Dpid>, interval: SimDuration) -> Self {
        StatsPoller {
            interval,
            retry: RetryPolicy::default(),
            switches,
            last_poll: SimTime::ZERO,
            next_xid: 0,
            issued: 0,
            retry_counters: RetryCounters::default(),
            outstanding: BTreeMap::new(),
            polls_issued: Counter::detached(),
            retries_tel: Counter::detached(),
            timeouts_tel: Counter::detached(),
            gave_up_tel: Counter::detached(),
        }
    }

    /// Replaces the retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Routes the poller's issued-request and retry counters into `tel`.
    pub fn bind_telemetry(&mut self, tel: &athena_telemetry::Telemetry) {
        use athena_telemetry::names;
        let m = tel.metrics();
        self.polls_issued = m.counter(
            names::controller::SUBSYSTEM,
            names::controller::STATS_POLLS_ISSUED,
        );
        self.retries_tel = m.counter(names::retry::SUBSYSTEM, names::retry::STATS_RETRIES);
        self.timeouts_tel = m.counter(names::retry::SUBSYSTEM, names::retry::STATS_TIMEOUTS);
        self.gave_up_tel = m.counter(names::retry::SUBSYSTEM, names::retry::STATS_GAVE_UP);
    }

    /// Requests issued so far (including retries).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The retry machinery's counters.
    pub fn retry_counters(&self) -> RetryCounters {
        self.retry_counters
    }

    /// Requests currently awaiting a reply.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Notes a statistics reply, settling the matching in-flight request.
    /// Returns `true` if the XID was one of ours.
    pub fn on_reply(&mut self, xid: Xid) -> bool {
        self.outstanding.remove(&xid.raw()).is_some()
    }

    /// The next unmarked XID. The sequence stays strictly inside
    /// `[1, Xid::MAX_UNMARKED]`: a naive `+= 1` would eventually wrap the
    /// raw `u32` into the Athena-marked range (and panic on overflow in
    /// debug builds), making ONOS's background polling indistinguishable
    /// from Athena's marked requests.
    fn fresh_xid(&mut self) -> Xid {
        self.next_xid = Xid::next_unmarked(self.next_xid);
        Xid::new(self.next_xid)
    }

    fn issue(
        &mut self,
        dpid: Dpid,
        body: StatsRequest,
        now: SimTime,
        attempt: u32,
    ) -> (Dpid, OfMessage) {
        let xid = self.fresh_xid();
        self.outstanding.insert(
            xid.raw(),
            Outstanding {
                dpid,
                body: body.clone(),
                issued_at: now,
                attempt,
            },
        );
        self.issued += 1;
        self.polls_issued.inc();
        (dpid, OfMessage::StatsRequest { xid, body })
    }

    /// Re-issues every timed-out request that still has retry budget.
    fn drain_timeouts(&mut self, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        let due: Vec<u32> = self
            .outstanding
            .iter()
            .filter(|(_, o)| {
                now.saturating_since(o.issued_at) >= self.retry.deadline_after(o.attempt)
            })
            .map(|(xid, _)| *xid)
            .collect();
        let mut out = Vec::new();
        for xid in due {
            let Some(o) = self.outstanding.remove(&xid) else {
                continue;
            };
            self.retry_counters.timeouts += 1;
            self.timeouts_tel.inc();
            if o.attempt >= self.retry.max_retries {
                self.retry_counters.gave_up += 1;
                self.gave_up_tel.inc();
                continue;
            }
            self.retry_counters.retries += 1;
            self.retries_tel.inc();
            out.push(self.issue(o.dpid, o.body, now, o.attempt + 1));
        }
        out
    }

    /// Returns the requests due at `now`: timed-out retries plus, on the
    /// polling period, a fresh flow + port request per switch.
    pub fn poll(&mut self, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        let mut out = self.drain_timeouts(now);
        if now < self.last_poll + self.interval && self.last_poll != SimTime::ZERO {
            return out;
        }
        self.last_poll = now;
        out.reserve(self.switches.len() * 2);
        for i in 0..self.switches.len() {
            let dpid = self.switches[i];
            out.push(self.issue(
                dpid,
                StatsRequest::Flow {
                    filter: MatchFields::new(),
                },
                now,
                0,
            ));
            out.push(self.issue(
                dpid,
                StatsRequest::Port {
                    port_no: PortNo::ANY,
                },
                now,
                0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_telemetry::Telemetry;

    fn settle(p: &mut StatsPoller, msgs: &[(Dpid, OfMessage)]) {
        for (_, m) in msgs {
            p.on_reply(m.xid());
        }
    }

    #[test]
    fn polls_on_the_interval() {
        let mut p = StatsPoller::new(vec![Dpid::new(1), Dpid::new(2)], SimDuration::from_secs(5));
        // First poll fires immediately.
        let first = p.poll(SimTime::from_secs(1));
        assert_eq!(first.len(), 4);
        settle(&mut p, &first);
        // Too soon.
        assert!(p.poll(SimTime::from_secs(3)).is_empty());
        // Due again.
        assert_eq!(p.poll(SimTime::from_secs(6)).len(), 4);
        assert_eq!(p.issued(), 8);
    }

    #[test]
    fn requests_are_unmarked() {
        let mut p = StatsPoller::new(vec![Dpid::new(1)], SimDuration::from_secs(1));
        for (_, msg) in p.poll(SimTime::from_secs(1)) {
            assert!(!msg.xid().is_athena_marked());
        }
    }

    #[test]
    fn xids_wrap_without_entering_the_marked_range() {
        let mut p = StatsPoller::new(vec![Dpid::new(1)], SimDuration::from_secs(1));
        // Park the sequence one request shy of the unmarked ceiling so the
        // next poll's two requests straddle the wrap point.
        p.next_xid = Xid::MAX_UNMARKED - 1;
        let msgs = p.poll(SimTime::from_secs(1));
        let xids: Vec<u32> = msgs.iter().map(|(_, m)| m.xid().raw()).collect();
        assert_eq!(xids, vec![Xid::MAX_UNMARKED, 1]);
        for (_, msg) in &msgs {
            assert!(!msg.xid().is_athena_marked());
        }
        // The wrap also never emits the reserved XID 0.
        assert!(xids.iter().all(|&x| x != 0));
    }

    #[test]
    fn issued_polls_reach_telemetry() {
        let tel = Telemetry::new();
        let mut p = StatsPoller::new(vec![Dpid::new(1), Dpid::new(2)], SimDuration::from_secs(5));
        p.bind_telemetry(&tel);
        p.poll(SimTime::from_secs(1));
        assert_eq!(
            tel.metrics()
                .counter("controller", "stats_polls_issued")
                .get(),
            4
        );
    }

    #[test]
    fn answered_requests_do_not_retry() {
        let mut p = StatsPoller::new(vec![Dpid::new(1)], SimDuration::from_secs(100));
        let msgs = p.poll(SimTime::from_secs(1));
        assert_eq!(p.outstanding_count(), 2);
        settle(&mut p, &msgs);
        assert_eq!(p.outstanding_count(), 0);
        // Far past any deadline: nothing to retry.
        assert!(p.poll(SimTime::from_secs(50)).is_empty());
        assert_eq!(p.retry_counters(), RetryCounters::default());
    }

    #[test]
    fn lost_replies_retry_with_backoff_then_give_up() {
        let tel = Telemetry::new();
        let mut p = StatsPoller::new(vec![Dpid::new(1)], SimDuration::from_secs(1_000))
            .with_retry_policy(RetryPolicy {
                timeout: SimDuration::from_secs(2),
                max_retries: 2,
                backoff_cap: SimDuration::from_secs(8),
            });
        p.bind_telemetry(&tel);
        let original = p.poll(SimTime::from_secs(1));
        assert_eq!(original.len(), 2);
        // Drop every reply. Deadline 1: t=1+2 → both requests re-issued.
        assert!(p.poll(SimTime::from_secs(2)).is_empty(), "not yet due");
        let retry1 = p.poll(SimTime::from_secs(3));
        assert_eq!(retry1.len(), 2);
        // Fresh XIDs on retry.
        let old: Vec<u32> = original.iter().map(|(_, m)| m.xid().raw()).collect();
        assert!(retry1.iter().all(|(_, m)| !old.contains(&m.xid().raw())));
        // Deadline 2 backs off to 4 s: due at t=7.
        assert!(p.poll(SimTime::from_secs(5)).is_empty(), "backoff honored");
        let retry2 = p.poll(SimTime::from_secs(7));
        assert_eq!(retry2.len(), 2);
        // Deadline 3 (8 s, capped): exhausted → give up, no re-issue.
        let after = p.poll(SimTime::from_secs(15));
        assert!(after.is_empty());
        assert_eq!(p.outstanding_count(), 0);
        let c = p.retry_counters();
        assert_eq!(c.timeouts, 6);
        assert_eq!(c.retries, 4);
        assert_eq!(c.gave_up, 2);
        let m = tel.metrics();
        assert_eq!(m.counter("retry", "stats_retries").get(), 4);
        assert_eq!(m.counter("retry", "stats_timeouts").get(), 6);
        assert_eq!(m.counter("retry", "stats_gave_up").get(), 2);
    }

    #[test]
    fn backoff_is_bounded_by_the_cap() {
        let policy = RetryPolicy {
            timeout: SimDuration::from_secs(3),
            max_retries: 10,
            backoff_cap: SimDuration::from_secs(24),
        };
        assert_eq!(policy.deadline_after(0), SimDuration::from_secs(3));
        assert_eq!(policy.deadline_after(1), SimDuration::from_secs(6));
        assert_eq!(policy.deadline_after(3), SimDuration::from_secs(24));
        assert_eq!(policy.deadline_after(30), SimDuration::from_secs(24));
    }
}
