//! The controller's statistics poller.
//!
//! ONOS polls flow and port statistics from its mastered switches as part
//! of its management functions; the paper marks Athena's *own* requests'
//! XIDs to tell the two apart ("we mark an XID value for statistics
//! request messages"). This poller is the ONOS side: unmarked XIDs.

use athena_openflow::{MatchFields, OfMessage, StatsRequest};
use athena_telemetry::Counter;
use athena_types::{Dpid, PortNo, SimDuration, SimTime, Xid};

/// Periodically issues flow/port statistics requests to a set of switches.
#[derive(Debug, Clone)]
pub struct StatsPoller {
    /// The polling period.
    pub interval: SimDuration,
    switches: Vec<Dpid>,
    last_poll: SimTime,
    next_xid: u32,
    issued: u64,
    polls_issued: Counter,
}

impl StatsPoller {
    /// Creates a poller over the given switches.
    pub fn new(switches: Vec<Dpid>, interval: SimDuration) -> Self {
        StatsPoller {
            interval,
            switches,
            last_poll: SimTime::ZERO,
            next_xid: 0,
            issued: 0,
            polls_issued: Counter::detached(),
        }
    }

    /// Routes the poller's issued-request counter into `tel`.
    pub fn bind_telemetry(&mut self, tel: &athena_telemetry::Telemetry) {
        self.polls_issued = tel.metrics().counter("controller", "stats_polls_issued");
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The next unmarked XID. The sequence stays strictly inside
    /// `[1, Xid::MAX_UNMARKED]`: a naive `+= 1` would eventually wrap the
    /// raw `u32` into the Athena-marked range (and panic on overflow in
    /// debug builds), making ONOS's background polling indistinguishable
    /// from Athena's marked requests.
    fn fresh_xid(&mut self) -> Xid {
        self.next_xid = Xid::next_unmarked(self.next_xid);
        Xid::new(self.next_xid)
    }

    /// Returns the requests due at `now` (empty between polling periods).
    pub fn poll(&mut self, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        if now < self.last_poll + self.interval && self.last_poll != SimTime::ZERO {
            return Vec::new();
        }
        self.last_poll = now;
        let mut out = Vec::with_capacity(self.switches.len() * 2);
        for i in 0..self.switches.len() {
            let dpid = self.switches[i];
            let flow_xid = self.fresh_xid();
            out.push((
                dpid,
                OfMessage::StatsRequest {
                    xid: flow_xid,
                    body: StatsRequest::Flow {
                        filter: MatchFields::new(),
                    },
                },
            ));
            let port_xid = self.fresh_xid();
            out.push((
                dpid,
                OfMessage::StatsRequest {
                    xid: port_xid,
                    body: StatsRequest::Port {
                        port_no: PortNo::ANY,
                    },
                },
            ));
            self.issued += 2;
            self.polls_issued.add(2);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_telemetry::Telemetry;

    #[test]
    fn polls_on_the_interval() {
        let mut p = StatsPoller::new(vec![Dpid::new(1), Dpid::new(2)], SimDuration::from_secs(5));
        // First poll fires immediately.
        assert_eq!(p.poll(SimTime::from_secs(1)).len(), 4);
        // Too soon.
        assert!(p.poll(SimTime::from_secs(3)).is_empty());
        // Due again.
        assert_eq!(p.poll(SimTime::from_secs(6)).len(), 4);
        assert_eq!(p.issued(), 8);
    }

    #[test]
    fn requests_are_unmarked() {
        let mut p = StatsPoller::new(vec![Dpid::new(1)], SimDuration::from_secs(1));
        for (_, msg) in p.poll(SimTime::from_secs(1)) {
            assert!(!msg.xid().is_athena_marked());
        }
    }

    #[test]
    fn xids_wrap_without_entering_the_marked_range() {
        let mut p = StatsPoller::new(vec![Dpid::new(1)], SimDuration::from_secs(1));
        // Park the sequence one request shy of the unmarked ceiling so the
        // next poll's two requests straddle the wrap point.
        p.next_xid = Xid::MAX_UNMARKED - 1;
        let msgs = p.poll(SimTime::from_secs(1));
        let xids: Vec<u32> = msgs.iter().map(|(_, m)| m.xid().raw()).collect();
        assert_eq!(xids, vec![Xid::MAX_UNMARKED, 1]);
        for (_, msg) in &msgs {
            assert!(!msg.xid().is_athena_marked());
        }
        // The wrap also never emits the reserved XID 0.
        assert!(xids.iter().all(|&x| x != 0));
    }

    #[test]
    fn issued_polls_reach_telemetry() {
        let tel = Telemetry::new();
        let mut p = StatsPoller::new(vec![Dpid::new(1), Dpid::new(2)], SimDuration::from_secs(5));
        p.bind_telemetry(&tel);
        p.poll(SimTime::from_secs(1));
        assert_eq!(
            tel.metrics()
                .counter("controller", "stats_polls_issued")
                .get(),
            4
        );
    }
}
