//! The controller's statistics poller.
//!
//! ONOS polls flow and port statistics from its mastered switches as part
//! of its management functions; the paper marks Athena's *own* requests'
//! XIDs to tell the two apart ("we mark an XID value for statistics
//! request messages"). This poller is the ONOS side: unmarked XIDs.

use athena_openflow::{MatchFields, OfMessage, StatsRequest};
use athena_types::{Dpid, PortNo, SimDuration, SimTime, Xid};

/// Periodically issues flow/port statistics requests to a set of switches.
#[derive(Debug, Clone)]
pub struct StatsPoller {
    /// The polling period.
    pub interval: SimDuration,
    switches: Vec<Dpid>,
    last_poll: SimTime,
    next_xid: u32,
    issued: u64,
}

impl StatsPoller {
    /// Creates a poller over the given switches.
    pub fn new(switches: Vec<Dpid>, interval: SimDuration) -> Self {
        StatsPoller {
            interval,
            switches,
            last_poll: SimTime::ZERO,
            next_xid: 0,
            issued: 0,
        }
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Returns the requests due at `now` (empty between polling periods).
    pub fn poll(&mut self, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        if now < self.last_poll + self.interval && self.last_poll != SimTime::ZERO {
            return Vec::new();
        }
        self.last_poll = now;
        let mut out = Vec::with_capacity(self.switches.len() * 2);
        for dpid in &self.switches {
            self.next_xid += 1;
            out.push((
                *dpid,
                OfMessage::StatsRequest {
                    xid: Xid::new(self.next_xid),
                    body: StatsRequest::Flow {
                        filter: MatchFields::new(),
                    },
                },
            ));
            self.next_xid += 1;
            out.push((
                *dpid,
                OfMessage::StatsRequest {
                    xid: Xid::new(self.next_xid),
                    body: StatsRequest::Port {
                        port_no: PortNo::ANY,
                    },
                },
            ));
            self.issued += 2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polls_on_the_interval() {
        let mut p = StatsPoller::new(vec![Dpid::new(1), Dpid::new(2)], SimDuration::from_secs(5));
        // First poll fires immediately.
        assert_eq!(p.poll(SimTime::from_secs(1)).len(), 4);
        // Too soon.
        assert!(p.poll(SimTime::from_secs(3)).is_empty());
        // Due again.
        assert_eq!(p.poll(SimTime::from_secs(6)).len(), 4);
        assert_eq!(p.issued(), 8);
    }

    #[test]
    fn requests_are_unmarked() {
        let mut p = StatsPoller::new(vec![Dpid::new(1)], SimDuration::from_secs(1));
        for (_, msg) in p.poll(SimTime::from_secs(1)) {
            assert!(!msg.xid().is_athena_marked());
        }
    }
}
