//! The seam Athena's southbound element hooks into.
//!
//! The paper modifies ONOS's `OpenFlowController` "to get OpenFlow control
//! messages directly" and uses proxy stubs "that work like general network
//! applications" for issuing mitigation rules. [`MessageInterceptor`] is
//! that seam: interceptors observe every southbound message *after* the
//! controller's own processing, and whatever commands they return flow
//! through the normal command path (the Athena Proxy), so the controller's
//! internal state stays consistent.

use crate::services::{FlowRuleService, HostService, MastershipService};
use athena_dataplane::Topology;
use athena_openflow::OfMessage;
use athena_types::{ControllerId, Dpid, SimTime};

/// Read access to controller state for interceptors.
pub struct InterceptCtx<'a> {
    /// The controller instance the message arrived at.
    pub controller: ControllerId,
    /// The cluster's flow-rule bookkeeping (per-app attribution).
    pub flow_rules: &'a FlowRuleService,
    /// Host locations.
    pub hosts: &'a HostService,
    /// Switch mastership.
    pub mastership: &'a MastershipService,
    /// The topology view.
    pub topology: &'a Topology,
}

/// An observer of the southbound message stream (Athena's SB interface).
pub trait MessageInterceptor: Send {
    /// The interceptor's name.
    fn name(&self) -> &str;

    /// Observes one southbound message. Returned commands are applied to
    /// the data plane through the controller (the Athena Proxy path).
    fn on_southbound(
        &mut self,
        ctx: &InterceptCtx<'_>,
        from: Dpid,
        msg: &OfMessage,
        now: SimTime,
    ) -> Vec<(Dpid, OfMessage)>;

    /// Called once per simulation tick; may issue commands (e.g. Athena's
    /// own marked statistics requests).
    fn on_tick(&mut self, ctx: &InterceptCtx<'_>, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        let (_, _) = (ctx, now);
        Vec::new()
    }
}

/// An interceptor that counts messages — useful for tests and as the
/// trivial example of the seam.
#[derive(Debug, Default)]
pub struct CountingInterceptor {
    /// Messages observed.
    pub seen: u64,
}

impl MessageInterceptor for CountingInterceptor {
    fn name(&self) -> &str {
        "counting"
    }

    fn on_southbound(
        &mut self,
        _ctx: &InterceptCtx<'_>,
        _from: Dpid,
        _msg: &OfMessage,
        _now: SimTime,
    ) -> Vec<(Dpid, OfMessage)> {
        self.seen += 1;
        Vec::new()
    }
}
