//! The packet-processing chain: ONOS-style `PacketProcessor`s with
//! priorities.

use crate::services::{FlowRuleService, HostService};
use athena_dataplane::Topology;
use athena_openflow::{FlowMod, OfMessage, PacketHeader};
use athena_types::{AppId, Dpid, SimTime, Xid};

/// The context handed to each packet processor for one packet-in.
///
/// Processors inspect the packet, emit flow rules or packet-outs, and may
/// *block* the packet to stop lower-priority processors from seeing it
/// (how the NAE scenario's high-priority security app over-rules the load
/// balancer).
pub struct PacketContext<'a> {
    /// The switch that punted the packet.
    pub dpid: Dpid,
    /// The punted packet's header.
    pub header: PacketHeader,
    /// The simulation time.
    pub now: SimTime,
    /// The network topology view.
    pub topology: &'a Topology,
    /// Host locations.
    pub hosts: &'a HostService,
    flow_rules: &'a mut FlowRuleService,
    commands: Vec<(Dpid, OfMessage)>,
    blocked: bool,
}

impl<'a> PacketContext<'a> {
    pub(crate) fn new(
        dpid: Dpid,
        header: PacketHeader,
        now: SimTime,
        topology: &'a Topology,
        hosts: &'a HostService,
        flow_rules: &'a mut FlowRuleService,
    ) -> Self {
        PacketContext {
            dpid,
            header,
            now,
            topology,
            hosts,
            flow_rules,
            commands: Vec::new(),
            blocked: false,
        }
    }

    /// Installs a flow rule on behalf of `app` (registered with the
    /// flow-rule service so the rule is attributed to the app).
    pub fn install_rule(&mut self, app: AppId, dpid: Dpid, fm: FlowMod) {
        let fm = self.flow_rules.register(app, fm, dpid, self.now);
        self.commands.push((
            dpid,
            OfMessage::FlowMod {
                xid: Xid::new(0),
                body: fm,
            },
        ));
    }

    /// Emits a raw command (e.g. a packet-out).
    pub fn emit(&mut self, dpid: Dpid, msg: OfMessage) {
        self.commands.push((dpid, msg));
    }

    /// Stops lower-priority processors from handling this packet.
    pub fn block(&mut self) {
        self.blocked = true;
    }

    /// Whether a higher-priority processor blocked the packet.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    pub(crate) fn into_commands(self) -> Vec<(Dpid, OfMessage)> {
        self.commands
    }
}

/// A packet processor (network application hook). Higher priority runs
/// first.
pub trait PacketProcessor: Send {
    /// The processor's name (for diagnostics).
    fn name(&self) -> &str;

    /// Processing priority; higher runs first.
    fn priority(&self) -> i32 {
        0
    }

    /// Handles one packet-in.
    fn process(&mut self, ctx: &mut PacketContext<'_>);

    /// Called once per simulation tick (optional housekeeping).
    fn on_tick(&mut self, now: SimTime) {
        let _ = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_openflow::MatchFields;
    use athena_types::{Ipv4Addr, PortNo};

    struct Installer;
    impl PacketProcessor for Installer {
        fn name(&self) -> &str {
            "installer"
        }
        fn process(&mut self, ctx: &mut PacketContext<'_>) {
            let dpid = ctx.dpid;
            ctx.install_rule(
                AppId::new(1),
                dpid,
                FlowMod::add(MatchFields::new(), 1, vec![]),
            );
            ctx.block();
        }
    }

    #[test]
    fn context_collects_attributed_commands() {
        let topo = Topology::linear(2, 1);
        let hosts = HostService::from_topology(&topo);
        let mut rules = FlowRuleService::new();
        let header = PacketHeader::tcp_syn(
            PortNo::new(1),
            Ipv4Addr::new(10, 0, 0, 1),
            1,
            Ipv4Addr::new(10, 0, 1, 1),
            80,
        );
        let mut ctx = PacketContext::new(
            Dpid::new(1),
            header,
            SimTime::ZERO,
            &topo,
            &hosts,
            &mut rules,
        );
        let mut p = Installer;
        p.process(&mut ctx);
        assert!(ctx.is_blocked());
        let cmds = ctx.into_commands();
        assert_eq!(cmds.len(), 1);
        let OfMessage::FlowMod { body, .. } = &cmds[0].1 else {
            panic!("expected flow mod");
        };
        assert_eq!(body.app_id(), AppId::new(1));
        assert_eq!(rules.live_count(), 1);
    }
}
