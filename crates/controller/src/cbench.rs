//! A Cbench-style controller throughput harness (the paper's Table IX).
//!
//! Cbench's *throughput mode* saturates a controller with packet-in
//! messages from emulated switches and counts flow-mod responses per
//! second. This harness does the same in-process: it synthesizes unique
//! packet-ins round-robin across the topology's switches, pushes them
//! through [`ControllerCluster::on_message`]
//! ([`athena_dataplane::ControllerLink`]), and measures wall-clock
//! responses per second — so an attached Athena interceptor's real
//! processing cost (feature extraction, store writes) shows up exactly as
//! it does in the paper.

use crate::cluster::ControllerCluster;
use crate::packet::{PacketContext, PacketProcessor};
use athena_dataplane::ControllerLink;
use athena_openflow::{Action, FlowMod, MatchFields, OfMessage, PacketHeader};
use athena_types::{Dpid, FiveTuple, Ipv4Addr, PortNo, SimTime, Xid};
use std::time::Instant;

/// The result of one Cbench round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CbenchRound {
    /// Packet-in messages sent.
    pub requests: u64,
    /// Flow-mod responses received.
    pub responses: u64,
    /// Wall-clock seconds the round took.
    pub elapsed_secs: f64,
}

impl CbenchRound {
    /// Flow-mod responses per second.
    pub fn responses_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.responses as f64 / self.elapsed_secs
        }
    }
}

/// Summary over many rounds (Table IX reports MIN/MAX/AVG).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CbenchSummary {
    /// Lowest per-round responses/s.
    pub min: f64,
    /// Highest per-round responses/s.
    pub max: f64,
    /// Mean responses/s.
    pub avg: f64,
}

/// Summarizes rounds into MIN/MAX/AVG.
pub fn summarize(rounds: &[CbenchRound]) -> CbenchSummary {
    if rounds.is_empty() {
        return CbenchSummary::default();
    }
    let rates: Vec<f64> = rounds.iter().map(CbenchRound::responses_per_sec).collect();
    CbenchSummary {
        min: rates.iter().cloned().fold(f64::INFINITY, f64::min),
        max: rates.iter().cloned().fold(0.0, f64::max),
        avg: rates.iter().sum::<f64>() / rates.len() as f64,
    }
}

/// The minimal responder app Cbench measures: one flow-mod per packet-in
/// (how the ONOS performance suite configures the controller).
#[derive(Debug, Default)]
pub struct CbenchResponder;

impl PacketProcessor for CbenchResponder {
    fn name(&self) -> &str {
        "cbench-responder"
    }

    fn process(&mut self, ctx: &mut PacketContext<'_>) {
        let dpid = ctx.dpid;
        let m = MatchFields::exact_from_packet(&ctx.header);
        ctx.install_rule(
            crate::apps::app_ids::FWD,
            dpid,
            FlowMod::add(m, 100, vec![Action::Output(PortNo::new(2))]),
        );
        ctx.block();
    }
}

/// Runs one Cbench throughput round: `events` synthetic packet-ins spread
/// round-robin over the cluster's switches.
pub fn throughput_round(cluster: &mut ControllerCluster, events: u64, seed: u64) -> CbenchRound {
    let switches: Vec<Dpid> = cluster.topology().switches.iter().map(|s| s.dpid).collect();
    let mut responses = 0u64;
    let start = Instant::now();
    let mut state = seed | 1;
    for i in 0..events {
        // xorshift64 for cheap unique header generation.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let dpid = switches[(i % switches.len() as u64) as usize];
        let ft = FiveTuple::tcp(
            Ipv4Addr::from_raw(state as u32),
            (state >> 32) as u16,
            Ipv4Addr::from_raw((state >> 16) as u32),
            80,
        );
        let header = PacketHeader::from_five_tuple(PortNo::new(1), ft, 64);
        let msg = OfMessage::packet_in(Xid::new(i as u32), header);
        let cmds = cluster.on_message(dpid, msg, SimTime::from_micros(i));
        responses += cmds
            .iter()
            .filter(|(_, m)| matches!(m, OfMessage::FlowMod { .. }))
            .count() as u64;
    }
    CbenchRound {
        requests: events,
        responses,
        elapsed_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_dataplane::Topology;

    fn cbench_cluster() -> ControllerCluster {
        let topo = Topology::linear(4, 0);
        let mut cluster = ControllerCluster::bare(&topo);
        cluster.add_processor(Box::new(CbenchResponder));
        cluster
    }

    #[test]
    fn every_packet_in_yields_a_flow_mod() {
        let mut cluster = cbench_cluster();
        let round = throughput_round(&mut cluster, 1000, 42);
        assert_eq!(round.requests, 1000);
        assert_eq!(round.responses, 1000);
        assert!(round.responses_per_sec() > 0.0);
    }

    #[test]
    fn summary_min_max_avg() {
        let rounds = [
            CbenchRound {
                requests: 10,
                responses: 10,
                elapsed_secs: 1.0,
            },
            CbenchRound {
                requests: 10,
                responses: 30,
                elapsed_secs: 1.0,
            },
        ];
        let s = summarize(&rounds);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
        assert_eq!(s.avg, 20.0);
        assert_eq!(summarize(&[]), CbenchSummary::default());
    }

    #[test]
    fn throughput_is_reproducible_in_count() {
        let mut a = cbench_cluster();
        let mut b = cbench_cluster();
        let ra = throughput_round(&mut a, 500, 7);
        let rb = throughput_round(&mut b, 500, 7);
        assert_eq!(ra.responses, rb.responses);
    }
}
