//! The security application of the NAE scenario.
//!
//! "A security application that attempts to direct FTP-related traffic
//! through an inline security device" (§V-C). It runs at a higher packet
//! priority than the load balancer and installs higher-priority rules, so
//! once activated it takes over FTP forwarding — producing the NAE
//! anomaly.

use crate::apps::app_ids;
use crate::packet::{PacketContext, PacketProcessor};
use athena_openflow::{Action, FlowMod, MatchFields};
use athena_types::{Dpid, SimDuration, SimTime};

/// Redirects matching traffic through a waypoint switch (where the inline
/// inspection device sits).
#[derive(Debug, Clone)]
pub struct SecurityApp {
    /// Transport ports treated as FTP-related.
    pub ftp_ports: Vec<u16>,
    /// The switch hosting the inline security device.
    pub waypoint: Dpid,
    /// Rule priority (above the load balancer).
    pub priority: u16,
    /// Idle timeout for installed rules.
    pub idle_timeout: SimDuration,
    /// The app only acts once activated (the paper activates it mid-run).
    pub active_from: Option<SimTime>,
    redirected: u64,
}

impl SecurityApp {
    /// Creates the app, inactive until [`SecurityApp::activate_at`].
    pub fn new(waypoint: Dpid) -> Self {
        SecurityApp {
            ftp_ports: vec![20, 21],
            waypoint,
            priority: 200,
            idle_timeout: SimDuration::from_secs(30),
            active_from: None,
            redirected: 0,
        }
    }

    /// Schedules activation.
    pub fn activate_at(mut self, t: SimTime) -> Self {
        self.active_from = Some(t);
        self
    }

    /// Flows redirected so far.
    pub fn redirected(&self) -> u64 {
        self.redirected
    }

    fn is_active(&self, now: SimTime) -> bool {
        self.active_from.is_some_and(|t| now >= t)
    }

    fn is_ftp(&self, dst_port: u16) -> bool {
        self.ftp_ports.contains(&dst_port)
    }
}

impl PacketProcessor for SecurityApp {
    fn name(&self) -> &str {
        "security"
    }

    fn priority(&self) -> i32 {
        100 // the operator "set a higher priority for the security app"
    }

    fn process(&mut self, ctx: &mut PacketContext<'_>) {
        if !self.is_active(ctx.now) {
            return;
        }
        let Some(ft) = ctx.header.five_tuple() else {
            return;
        };
        if !self.is_ftp(ft.dst_port) {
            return;
        }
        let Some((dst_switch, dst_port)) = ctx.hosts.location_of(ft.dst) else {
            return;
        };
        // Route: ingress -> waypoint -> destination (shortest paths).
        let Some(to_waypoint) = ctx.topology.shortest_path(ctx.dpid, self.waypoint) else {
            return;
        };
        let Some(onward) = ctx.topology.shortest_path(self.waypoint, dst_switch) else {
            return;
        };
        let m = MatchFields::exact_five_tuple(ft);
        for (hop, port) in to_waypoint.iter().chain(onward.iter()) {
            ctx.install_rule(
                app_ids::SECURITY,
                *hop,
                FlowMod::add(m, self.priority, vec![Action::Output(*port)])
                    .with_idle_timeout(self.idle_timeout),
            );
        }
        ctx.install_rule(
            app_ids::SECURITY,
            dst_switch,
            FlowMod::add(m, self.priority, vec![Action::Output(dst_port)])
                .with_idle_timeout(self.idle_timeout),
        );
        self.redirected += 1;
        ctx.block();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::{FlowRuleService, HostService};
    use athena_dataplane::Topology;
    use athena_openflow::{OfMessage, PacketHeader};
    use athena_types::Ipv4Addr;

    fn ftp_packet(topo: &Topology) -> (Dpid, PacketHeader) {
        let client = topo.hosts[0];
        let server = Ipv4Addr::new(10, 0, 4, 1);
        (
            client.switch,
            PacketHeader::tcp_syn(client.port, client.ip, 1234, server, 21),
        )
    }

    #[test]
    fn inactive_app_does_nothing() {
        let topo = Topology::nae();
        let hosts = HostService::from_topology(&topo);
        let mut rules = FlowRuleService::new();
        let (dpid, header) = ftp_packet(&topo);
        let mut app = SecurityApp::new(Dpid::new(6));
        let mut ctx = crate::packet::PacketContext::new(
            dpid,
            header,
            SimTime::from_secs(100),
            &topo,
            &hosts,
            &mut rules,
        );
        app.process(&mut ctx);
        assert!(!ctx.is_blocked());
        assert_eq!(app.redirected(), 0);
    }

    #[test]
    fn active_app_routes_ftp_through_waypoint() {
        let topo = Topology::nae();
        let hosts = HostService::from_topology(&topo);
        let mut rules = FlowRuleService::new();
        let (dpid, header) = ftp_packet(&topo);
        let mut app = SecurityApp::new(Dpid::new(6)).activate_at(SimTime::from_secs(10));
        let mut ctx = crate::packet::PacketContext::new(
            dpid,
            header,
            SimTime::from_secs(20),
            &topo,
            &hosts,
            &mut rules,
        );
        app.process(&mut ctx);
        assert!(ctx.is_blocked());
        assert_eq!(app.redirected(), 1);
        let cmds = ctx.into_commands();
        // Some rule is installed on the waypoint switch S6.
        assert!(cmds.iter().any(|(d, _)| *d == Dpid::new(6)));
        // All rules carry the high priority and the security app id.
        for (_, msg) in &cmds {
            let OfMessage::FlowMod { body, .. } = msg else {
                panic!("flow mod expected")
            };
            assert_eq!(body.priority, 200);
            assert_eq!(body.app_id(), app_ids::SECURITY);
        }
    }

    #[test]
    fn non_ftp_traffic_is_ignored_even_when_active() {
        let topo = Topology::nae();
        let hosts = HostService::from_topology(&topo);
        let mut rules = FlowRuleService::new();
        let client = topo.hosts[0];
        let header = PacketHeader::tcp_syn(
            client.port,
            client.ip,
            1234,
            Ipv4Addr::new(10, 0, 4, 2),
            80, // web, not FTP
        );
        let mut app = SecurityApp::new(Dpid::new(6)).activate_at(SimTime::ZERO);
        let mut ctx = crate::packet::PacketContext::new(
            client.switch,
            header,
            SimTime::from_secs(5),
            &topo,
            &hosts,
            &mut rules,
        );
        app.process(&mut ctx);
        assert!(!ctx.is_blocked());
    }
}
