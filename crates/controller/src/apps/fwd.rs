//! Reactive shortest-path forwarding.

use crate::apps::app_ids;
use crate::packet::{PacketContext, PacketProcessor};
use athena_openflow::{Action, FlowMod, MatchFields};
use athena_types::SimDuration;

/// Installs exact-match shortest-path rules on table misses — the default
/// forwarding application.
#[derive(Debug, Clone)]
pub struct ReactiveForwarding {
    /// Idle timeout for installed rules.
    pub idle_timeout: SimDuration,
    /// Rule priority (low, so policy apps can override).
    pub priority: u16,
    installs: u64,
}

impl Default for ReactiveForwarding {
    fn default() -> Self {
        ReactiveForwarding {
            idle_timeout: SimDuration::from_secs(30),
            priority: 10,
            installs: 0,
        }
    }
}

impl ReactiveForwarding {
    /// Creates the app with default settings.
    pub fn new() -> Self {
        ReactiveForwarding::default()
    }

    /// Rules installed so far.
    pub fn installs(&self) -> u64 {
        self.installs
    }
}

impl PacketProcessor for ReactiveForwarding {
    fn name(&self) -> &str {
        "fwd"
    }

    fn priority(&self) -> i32 {
        0 // lowest: runs after policy apps
    }

    fn process(&mut self, ctx: &mut PacketContext<'_>) {
        let Some(ft) = ctx.header.five_tuple() else {
            return;
        };
        let Some((dst_switch, dst_port)) = ctx.hosts.location_of(ft.dst) else {
            return;
        };
        let Some(path) = ctx.topology.shortest_path(ctx.dpid, dst_switch) else {
            return;
        };
        let m = MatchFields::exact_five_tuple(ft);
        for (hop, port) in path {
            self.installs += 1;
            ctx.install_rule(
                app_ids::FWD,
                hop,
                FlowMod::add(m, self.priority, vec![Action::Output(port)])
                    .with_idle_timeout(self.idle_timeout),
            );
        }
        self.installs += 1;
        ctx.install_rule(
            app_ids::FWD,
            dst_switch,
            FlowMod::add(m, self.priority, vec![Action::Output(dst_port)])
                .with_idle_timeout(self.idle_timeout),
        );
        ctx.block();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::{FlowRuleService, HostService};
    use athena_dataplane::Topology;
    use athena_openflow::{OfMessage, PacketHeader};
    use athena_types::{Dpid, PortNo, SimTime};

    #[test]
    fn installs_rules_along_the_path() {
        let topo = Topology::linear(3, 1);
        let hosts = HostService::from_topology(&topo);
        let mut rules = FlowRuleService::new();
        let src = topo.hosts[0];
        let dst = topo.hosts[2];
        let header = PacketHeader::tcp_syn(src.port, src.ip, 1, dst.ip, 80);
        let mut ctx = crate::packet::PacketContext::new(
            src.switch,
            header,
            SimTime::ZERO,
            &topo,
            &hosts,
            &mut rules,
        );
        let mut fwd = ReactiveForwarding::new();
        fwd.process(&mut ctx);
        assert!(ctx.is_blocked());
        let cmds = ctx.into_commands();
        // 2 transit hops + 1 delivery rule.
        assert_eq!(cmds.len(), 3);
        assert_eq!(fwd.installs(), 3);
        // The delivery rule points at the host port.
        let OfMessage::FlowMod { body, .. } = &cmds[2].1 else {
            panic!("flow mod expected")
        };
        assert_eq!(Action::first_output(&body.actions), Some(dst.port));
        assert_eq!(cmds[2].0, dst.switch);
    }

    #[test]
    fn ignores_unknown_destinations_and_non_ip() {
        let topo = Topology::linear(2, 1);
        let hosts = HostService::from_topology(&topo);
        let mut rules = FlowRuleService::new();
        let header = PacketHeader::arp_request(PortNo::new(3), topo.hosts[0].ip);
        let mut ctx = crate::packet::PacketContext::new(
            Dpid::new(1),
            header,
            SimTime::ZERO,
            &topo,
            &hosts,
            &mut rules,
        );
        let mut fwd = ReactiveForwarding::new();
        fwd.process(&mut ctx);
        assert!(!ctx.is_blocked());
        assert!(ctx.into_commands().is_empty());
    }
}
