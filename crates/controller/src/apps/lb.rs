//! The load-balancing application of the NAE scenario.
//!
//! The paper's Figure 8 load balancer "defines flow rules intended to
//! evenly distribute a target traffic load across a given set of network
//! services", installing rules with a *soft timeout* whose expiry causes
//! the sawtooth in Figure 9.

use crate::apps::app_ids;
use crate::packet::{PacketContext, PacketProcessor};
use athena_dataplane::Topology;
use athena_openflow::{Action, FlowMod, MatchFields};
use athena_types::{Dpid, Ipv4Addr, PortNo, SimDuration};
use std::collections::HashSet;

/// Splits traffic toward a server subnet across link-disjoint paths,
/// round-robin per new flow, with soft (idle) timeouts.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    /// The destination subnet this app load-balances.
    pub subnet: (Ipv4Addr, u8),
    /// Soft timeout for installed rules (drives Figure 9's sawtooth).
    pub soft_timeout: SimDuration,
    /// Rule priority (above plain forwarding, below the security app).
    pub priority: u16,
    next_path: usize,
    balanced: u64,
}

impl LoadBalancer {
    /// Creates a load balancer for traffic into `subnet`.
    pub fn new(subnet: (Ipv4Addr, u8)) -> Self {
        LoadBalancer {
            subnet,
            soft_timeout: SimDuration::from_secs(10),
            priority: 50,
            next_path: 0,
            balanced: 0,
        }
    }

    /// Flows balanced so far.
    pub fn balanced(&self) -> u64 {
        self.balanced
    }
}

/// Up to `k` link-disjoint shortest paths between two switches.
///
/// Computes the shortest path, removes its links, repeats.
pub fn disjoint_paths(topo: &Topology, from: Dpid, to: Dpid, k: usize) -> Vec<Vec<(Dpid, PortNo)>> {
    let mut paths = Vec::new();
    let mut excluded: HashSet<(Dpid, PortNo)> = HashSet::new();
    for _ in 0..k {
        let Some(path) = shortest_path_excluding(topo, from, to, &excluded) else {
            break;
        };
        for hop in &path {
            excluded.insert(*hop);
        }
        paths.push(path);
    }
    paths
}

fn shortest_path_excluding(
    topo: &Topology,
    from: Dpid,
    to: Dpid,
    excluded: &HashSet<(Dpid, PortNo)>,
) -> Option<Vec<(Dpid, PortNo)>> {
    if from == to {
        return Some(Vec::new());
    }
    let adj = topo.adjacency();
    let mut prev: std::collections::HashMap<Dpid, (Dpid, PortNo)> =
        std::collections::HashMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            break;
        }
        for (out_port, next, _) in adj.get(&cur).into_iter().flatten() {
            if excluded.contains(&(cur, *out_port)) {
                continue;
            }
            if *next != from && !prev.contains_key(next) {
                prev.insert(*next, (cur, *out_port));
                queue.push_back(*next);
            }
        }
    }
    if !prev.contains_key(&to) {
        return None;
    }
    let mut path = Vec::new();
    let mut cur = to;
    while cur != from {
        let (p, port) = prev[&cur];
        path.push((p, port));
        cur = p;
    }
    path.reverse();
    Some(path)
}

impl PacketProcessor for LoadBalancer {
    fn name(&self) -> &str {
        "lb"
    }

    fn priority(&self) -> i32 {
        10 // above fwd, below security
    }

    fn process(&mut self, ctx: &mut PacketContext<'_>) {
        let Some(ft) = ctx.header.five_tuple() else {
            return;
        };
        if !ft.dst.in_subnet(self.subnet.0, self.subnet.1) {
            return;
        }
        let Some((dst_switch, dst_port)) = ctx.hosts.location_of(ft.dst) else {
            return;
        };
        let paths = disjoint_paths(ctx.topology, ctx.dpid, dst_switch, 2);
        if paths.is_empty() {
            return;
        }
        let path = &paths[self.next_path % paths.len()];
        self.next_path = self.next_path.wrapping_add(1);
        self.balanced += 1;
        let m = MatchFields::exact_five_tuple(ft);
        for (hop, port) in path {
            ctx.install_rule(
                app_ids::LB,
                *hop,
                FlowMod::add(m, self.priority, vec![Action::Output(*port)])
                    .with_idle_timeout(self.soft_timeout),
            );
        }
        ctx.install_rule(
            app_ids::LB,
            dst_switch,
            FlowMod::add(m, self.priority, vec![Action::Output(dst_port)])
                .with_idle_timeout(self.soft_timeout),
        );
        ctx.block();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::{FlowRuleService, HostService};
    use athena_openflow::PacketHeader;
    use athena_types::SimTime;

    #[test]
    fn nae_topology_yields_two_disjoint_paths() {
        let topo = Topology::nae();
        let paths = disjoint_paths(&topo, Dpid::new(1), Dpid::new(4), 2);
        assert_eq!(paths.len(), 2);
        // Paths share no (switch, port) hop.
        let a: HashSet<_> = paths[0].iter().collect();
        assert!(paths[1].iter().all(|h| !a.contains(h)));
    }

    #[test]
    fn alternates_between_paths_per_flow() {
        let topo = Topology::nae();
        let hosts = HostService::from_topology(&topo);
        let mut rules = FlowRuleService::new();
        let client = topo.hosts[0];
        let server = Ipv4Addr::new(10, 0, 4, 1);
        let mut lb = LoadBalancer::new((Ipv4Addr::new(10, 0, 4, 0), 24));

        let mut first_hops = Vec::new();
        for sport in [1000u16, 1001] {
            let header = PacketHeader::tcp_syn(client.port, client.ip, sport, server, 21);
            let mut ctx = crate::packet::PacketContext::new(
                client.switch,
                header,
                SimTime::ZERO,
                &topo,
                &hosts,
                &mut rules,
            );
            lb.process(&mut ctx);
            assert!(ctx.is_blocked());
            let cmds = ctx.into_commands();
            assert!(!cmds.is_empty());
            // First rule's egress on S1 identifies the chosen path.
            let athena_openflow::OfMessage::FlowMod { body, .. } = &cmds[0].1 else {
                panic!("flow mod expected")
            };
            first_hops.push(Action::first_output(&body.actions).unwrap());
            assert_eq!(body.idle_timeout, lb.soft_timeout);
        }
        assert_ne!(first_hops[0], first_hops[1], "round-robin paths");
        assert_eq!(lb.balanced(), 2);
    }

    #[test]
    fn ignores_traffic_outside_the_subnet() {
        let topo = Topology::nae();
        let hosts = HostService::from_topology(&topo);
        let mut rules = FlowRuleService::new();
        let client = topo.hosts[0];
        let other = topo.hosts[4]; // host behind S5, not in 10.0.4.0/24
        let header = PacketHeader::tcp_syn(client.port, client.ip, 1, other.ip, 80);
        let mut lb = LoadBalancer::new((Ipv4Addr::new(10, 0, 4, 0), 24));
        let mut ctx = crate::packet::PacketContext::new(
            client.switch,
            header,
            SimTime::ZERO,
            &topo,
            &hosts,
            &mut rules,
        );
        lb.process(&mut ctx);
        assert!(!ctx.is_blocked());
        assert_eq!(lb.balanced(), 0);
    }
}
