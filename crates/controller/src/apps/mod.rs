//! Built-in network applications.
//!
//! - [`ReactiveForwarding`] — shortest-path forwarding on table misses
//!   (ONOS's `fwd` app),
//! - [`LoadBalancer`] — splits flows across disjoint paths with soft
//!   timeouts (the "LB app" of the paper's NAE scenario, §V-C),
//! - [`SecurityApp`] — redirects FTP traffic through an inline inspection
//!   waypoint at higher priority (the "security app" of the NAE
//!   scenario).

pub mod fwd;
pub mod lb;
pub mod security;

pub use fwd::ReactiveForwarding;
pub use lb::LoadBalancer;
pub use security::SecurityApp;

/// Conventional application ids for the built-in apps.
pub mod app_ids {
    use athena_types::AppId;

    /// Reactive forwarding.
    pub const FWD: AppId = AppId::new(1);
    /// The load balancer.
    pub const LB: AppId = AppId::new(2);
    /// The security app.
    pub const SECURITY: AppId = AppId::new(3);
    /// Athena's attack reactor (mitigation rules).
    pub const ATHENA: AppId = AppId::new(9);
}
