//! A distributed SDN controller cluster (ONOS substitute).
//!
//! The Athena paper integrates into ONOS: a cluster of controller
//! instances, each mastering a subset of the data plane, with core
//! subsystems (device/host/flow-rule/packet services) and network
//! applications layered on top. This crate rebuilds the parts the paper
//! relies on:
//!
//! - [`ControllerCluster`] — N instances with switch mastership, wired to
//!   the simulator through [`athena_dataplane::ControllerLink`]
//!   ([`cluster`] module),
//! - core services — host location, flow-rule bookkeeping with
//!   per-application attribution, mastership ([`services`] module),
//! - a packet-processing chain with priorities, like ONOS's
//!   `PacketProcessor` ([`packet`] module),
//! - built-in applications — reactive shortest-path forwarding, the
//!   load balancer and the FTP-inspecting security app used by the NAE
//!   scenario ([`apps`] module),
//! - a statistics poller with marked transaction ids ([`stats`] module),
//! - the [`MessageInterceptor`] seam Athena's southbound element hooks
//!   into (the paper's `OpenFlowController` modification) and the proxy
//!   path for the Attack Reactor ([`interceptor`] module),
//! - a Cbench-style throughput harness ([`cbench`] module) for the
//!   paper's Table IX,
//! - durable journaling of mastership transitions and flow-rule state,
//!   with checkpoint + WAL-tail recovery on restart ([`persist`] module).
//!
//! # Examples
//!
//! ```
//! use athena_controller::ControllerCluster;
//! use athena_dataplane::{workload, Network, Topology};
//! use athena_types::{SimDuration, SimTime};
//!
//! let topo = Topology::enterprise();
//! let mut net = Network::new(topo.clone());
//! let mut cluster = ControllerCluster::new(&topo);
//! net.inject_flows(workload::benign_mix_on(&topo, 50, SimDuration::from_secs(10), 1));
//! net.run_until(SimTime::from_secs(12), &mut cluster);
//! assert!(net.delivered_bytes() > 0);
//! assert_eq!(cluster.instance_count(), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod apps;
pub mod cbench;
pub mod cluster;
pub mod interceptor;
pub mod packet;
pub mod persist;
pub mod services;
pub mod stats;

pub use cluster::{ControllerCluster, FailoverCounters};
pub use interceptor::{InterceptCtx, MessageInterceptor};
pub use packet::{PacketContext, PacketProcessor};
pub use persist::ControllerRecoveryReport;
pub use services::{FlowRuleService, HostService, MastershipService};
pub use stats::{RetryCounters, RetryPolicy, StatsPoller};
