//! The distributed controller cluster.

use crate::apps::ReactiveForwarding;
use crate::interceptor::{InterceptCtx, MessageInterceptor};
use crate::packet::{PacketContext, PacketProcessor};
use crate::services::{FlowRuleService, HostService, MastershipService};
use crate::stats::StatsPoller;
use athena_dataplane::{ControllerLink, Topology};
use athena_observe::Observe;
use athena_openflow::OfMessage;
use athena_telemetry::{names, Counter, Gauge, Histogram, Telemetry};
use athena_types::{ControllerId, Dpid, SimDuration, SimTime};

/// Cluster-level message counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterCounters {
    /// Packet-ins processed.
    pub packet_ins: u64,
    /// Flow-mods emitted.
    pub flow_mods: u64,
    /// Statistics replies received.
    pub stats_replies: u64,
    /// Flow-removed notifications received.
    pub flow_removeds: u64,
}

/// A cluster of controller instances sharing distributed stores
/// (mastership, hosts, flow rules) — the ONOS deployment shape of the
/// paper's Figure 2, collapsed into one address space.
///
/// The cluster implements [`ControllerLink`], so it plugs directly into
/// [`athena_dataplane::Network::run_until`].
pub struct ControllerCluster {
    topology: Topology,
    pub(crate) mastership: MastershipService,
    hosts: HostService,
    pub(crate) flow_rules: FlowRuleService,
    processors: Vec<Box<dyn PacketProcessor>>,
    interceptors: Vec<Box<dyn MessageInterceptor>>,
    poller: Option<StatsPoller>,
    pub(crate) counters: ClusterCounters,
    pub(crate) failover: FailoverCounters,
    tel: ClusterTelemetry,
    observe: Observe,
    pub(crate) persist: Option<crate::persist::ControllerPersist>,
    // Virtual time of the latest southbound message or tick — stamps
    // journal records written from paths that do not carry `now`
    // (crash/rejoin/fail-over calls arrive from the fault injector).
    pub(crate) last_seen: SimTime,
}

/// The cluster's telemetry instruments (detached until
/// [`ControllerCluster::bind_telemetry`]).
#[derive(Debug, Clone)]
struct ClusterTelemetry {
    packet_ins: Counter,
    flow_mods: Counter,
    stats_replies: Counter,
    flow_removeds: Counter,
    packet_in_ns: Histogram,
    elections: Counter,
    switches_moved: Counter,
    instances_down: Gauge,
}

impl Default for ClusterTelemetry {
    fn default() -> Self {
        ClusterTelemetry {
            packet_ins: Counter::detached(),
            flow_mods: Counter::detached(),
            stats_replies: Counter::detached(),
            flow_removeds: Counter::detached(),
            packet_in_ns: Histogram::detached(),
            elections: Counter::detached(),
            switches_moved: Counter::detached(),
            instances_down: Gauge::detached(),
        }
    }
}

/// Counters for mastership re-elections triggered by instance faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailoverCounters {
    /// Re-election rounds run (one per crash or rejoin that moved
    /// anything).
    pub elections: u64,
    /// Switch masterships moved across instances.
    pub switches_moved: u64,
}

impl ControllerCluster {
    /// Creates a cluster with reactive forwarding and a default 5-second
    /// statistics poller — the usual ONOS baseline.
    pub fn new(topo: &Topology) -> Self {
        let mut cluster = Self::bare(topo);
        cluster.add_processor(Box::new(ReactiveForwarding::new()));
        let switches = topo.switches.iter().map(|s| s.dpid).collect();
        cluster.poller = Some(StatsPoller::new(switches, SimDuration::from_secs(5)));
        cluster
    }

    /// Creates a cluster with no applications and no poller.
    pub fn bare(topo: &Topology) -> Self {
        ControllerCluster {
            topology: topo.clone(),
            mastership: MastershipService::from_topology(topo),
            hosts: HostService::from_topology(topo),
            flow_rules: FlowRuleService::new(),
            processors: Vec::new(),
            interceptors: Vec::new(),
            poller: None,
            counters: ClusterCounters::default(),
            failover: FailoverCounters::default(),
            tel: ClusterTelemetry::default(),
            observe: Observe::disabled(),
            persist: None,
            last_seen: SimTime::ZERO,
        }
    }

    /// Routes the cluster's counters and packet-in service latency into
    /// `tel` (also rebinds the statistics poller, if any).
    pub fn bind_telemetry(&mut self, tel: &Telemetry) {
        let m = tel.metrics();
        let ctl = names::controller::SUBSYSTEM;
        let fo = names::failover::SUBSYSTEM;
        self.tel = ClusterTelemetry {
            packet_ins: m.counter(ctl, names::controller::PACKET_INS),
            flow_mods: m.counter(ctl, names::controller::FLOW_MODS),
            stats_replies: m.counter(ctl, names::controller::STATS_REPLIES),
            flow_removeds: m.counter(ctl, names::controller::FLOW_REMOVEDS),
            packet_in_ns: m.histogram(ctl, names::controller::PACKET_IN_NS),
            elections: m.counter(fo, names::failover::ELECTIONS),
            switches_moved: m.counter(fo, names::failover::SWITCHES_MOVED),
            instances_down: m.gauge(fo, names::failover::INSTANCES_DOWN),
        };
        if let Some(poller) = &mut self.poller {
            poller.bind_telemetry(tel);
        }
        self.flow_rules.bind_telemetry(tel);
    }

    /// Routes causal spans (the controller leg of a packet-in trace)
    /// into `obs`.
    pub fn bind_observe(&mut self, obs: &Observe) {
        self.observe = obs.clone();
    }

    /// Registers a packet processor (kept sorted by priority, highest
    /// first).
    pub fn add_processor(&mut self, p: Box<dyn PacketProcessor>) {
        self.processors.push(p);
        self.processors
            .sort_by_key(|p| std::cmp::Reverse(p.priority()));
    }

    /// Registers a southbound interceptor (the Athena SB hook).
    pub fn add_interceptor(&mut self, i: Box<dyn MessageInterceptor>) {
        self.interceptors.push(i);
    }

    /// Replaces the statistics poller.
    pub fn set_poller(&mut self, poller: Option<StatsPoller>) {
        self.poller = poller;
    }

    /// Number of controller instances in the cluster.
    pub fn instance_count(&self) -> usize {
        self.mastership.instances().len()
    }

    /// The instance mastering a switch.
    pub fn master_of(&self, dpid: Dpid) -> Option<ControllerId> {
        self.mastership.master_of(dpid)
    }

    /// Fails a switch over to another controller instance (the cluster's
    /// mastership re-election). Subsequent southbound messages from the
    /// switch are handled — and observed by Athena's SB elements — under
    /// the new master.
    pub fn fail_over(&mut self, dpid: Dpid, to: ControllerId) {
        self.mastership.reassign(dpid, to);
        self.journal_mastership(crate::persist::events::reassign(dpid, to));
    }

    /// Crashes a controller instance: its switches automatically
    /// re-elect masters among the survivors (deterministic round-robin
    /// in dpid order). Returns the switches that moved. Counted under
    /// `failover/elections` and `failover/switches_moved`.
    pub fn crash_instance(&mut self, c: ControllerId) -> Vec<Dpid> {
        let was_alive = self.mastership.is_alive(c);
        let moved = self.mastership.crash(c);
        self.publish_instances_down();
        if was_alive {
            self.journal_mastership(crate::persist::events::crash(c));
        }
        if !moved.is_empty() {
            self.failover.elections += 1;
            self.failover.switches_moved += moved.len() as u64;
            self.tel.elections.inc();
            self.tel.switches_moved.add(moved.len() as u64);
        }
        moved
    }

    /// Rejoins a crashed instance: it reclaims mastership of its
    /// topology-preferred switches. Returns the switches that moved
    /// back.
    pub fn rejoin_instance(&mut self, c: ControllerId) -> Vec<Dpid> {
        let was_down = !self.mastership.is_alive(c);
        let moved = self.mastership.rejoin(c);
        self.publish_instances_down();
        if was_down {
            self.journal_mastership(crate::persist::events::rejoin(c));
        }
        if !moved.is_empty() {
            self.failover.elections += 1;
            self.failover.switches_moved += moved.len() as u64;
            self.tel.elections.inc();
            self.tel.switches_moved.add(moved.len() as u64);
        }
        moved
    }

    /// `true` if the instance has not crashed.
    pub fn instance_alive(&self, c: ControllerId) -> bool {
        self.mastership.is_alive(c)
    }

    fn publish_instances_down(&self) {
        let down = self.mastership.instances().len() - self.mastership.alive_instances().len();
        self.tel
            .instances_down
            .set(i64::try_from(down).unwrap_or(i64::MAX));
    }

    /// The cluster's message counters.
    pub fn counters(&self) -> ClusterCounters {
        self.counters
    }

    /// The mastership re-election counters.
    pub fn failover_counters(&self) -> FailoverCounters {
        self.failover
    }

    /// The statistics poller's retry counters (zeroes when no poller is
    /// configured).
    pub fn retry_counters(&self) -> crate::stats::RetryCounters {
        self.poller
            .as_ref()
            .map(StatsPoller::retry_counters)
            .unwrap_or_default()
    }

    /// The flow-rule service (per-application attribution).
    pub fn flow_rules(&self) -> &FlowRuleService {
        &self.flow_rules
    }

    /// The host service.
    pub fn hosts(&self) -> &HostService {
        &self.hosts
    }

    /// The topology view.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to a registered processor by name (e.g. to activate
    /// the security app mid-run).
    pub fn processor_mut(&mut self, name: &str) -> Option<&mut Box<dyn PacketProcessor>> {
        self.processors.iter_mut().find(|p| p.name() == name)
    }

    /// Mutable access to a registered interceptor by name.
    pub fn interceptor_mut(&mut self, name: &str) -> Option<&mut Box<dyn MessageInterceptor>> {
        self.interceptors.iter_mut().find(|i| i.name() == name)
    }

    fn run_interceptors(
        &mut self,
        from: Dpid,
        msg: &OfMessage,
        now: SimTime,
        out: &mut Vec<(Dpid, OfMessage)>,
    ) {
        let controller = self
            .mastership
            .master_of(from)
            .unwrap_or(ControllerId::new(0));
        let start = out.len();
        for i in &mut self.interceptors {
            let ctx = InterceptCtx {
                controller,
                flow_rules: &self.flow_rules,
                hosts: &self.hosts,
                mastership: &self.mastership,
                topology: &self.topology,
            };
            out.extend(i.on_southbound(&ctx, from, msg, now));
        }
        self.register_proxy_rules(&out[start..], now);
    }

    /// Rules issued through the proxy path are registered with the
    /// flow-rule store like any application's — the consistency property
    /// the paper's Athena Proxy exists for.
    fn register_proxy_rules(&mut self, commands: &[(Dpid, OfMessage)], now: SimTime) {
        for (dpid, msg) in commands {
            if let OfMessage::FlowMod { body, .. } = msg {
                if body.command == athena_openflow::FlowModCommand::Add {
                    self.flow_rules.record_external(body, *dpid, now);
                }
            }
        }
    }
}

impl ControllerLink for ControllerCluster {
    fn on_message(&mut self, from: Dpid, msg: OfMessage, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        self.last_seen = now;
        let mut commands: Vec<(Dpid, OfMessage)> = Vec::new();
        match &msg {
            OfMessage::PacketIn { body, .. } => {
                self.counters.packet_ins += 1;
                self.tel.packet_ins.inc();
                let span = self.observe.span_at("controller", "packet_in", now);
                let timer = self.tel.packet_in_ns.start_timer();
                // Host learning from observed source addresses.
                if let (Some(ip), true) = (body.header.ip_src, body.header.in_port.is_physical()) {
                    if self.hosts.location_of(ip).is_none() {
                        self.hosts.learn(ip, from, body.header.in_port);
                    }
                }
                let mut ctx = PacketContext::new(
                    from,
                    body.header,
                    now,
                    &self.topology,
                    &self.hosts,
                    &mut self.flow_rules,
                );
                for p in &mut self.processors {
                    p.process(&mut ctx);
                    if ctx.is_blocked() {
                        break;
                    }
                }
                commands.extend(ctx.into_commands());
                timer.observe(&self.tel.packet_in_ns);
                span.finish(format!("dpid={} cmds={}", from.raw(), commands.len()));
            }
            OfMessage::FlowRemoved { body, .. } => {
                self.counters.flow_removeds += 1;
                self.tel.flow_removeds.inc();
                self.flow_rules.on_flow_removed(body);
                self.journal_rule_removal(body.cookie);
            }
            OfMessage::StatsReply { xid, body } => {
                self.counters.stats_replies += 1;
                self.tel.stats_replies.inc();
                // Settle the poller's in-flight request so it is not
                // retried (Athena-marked replies belong to the SB poller
                // and are ignored here).
                if !xid.is_athena_marked() {
                    if let Some(poller) = &mut self.poller {
                        poller.on_reply(*xid);
                    }
                }
                // ONOS refreshes its flow-rule store from every poll.
                if let athena_openflow::StatsReply::Flow(entries) = body {
                    for e in entries {
                        self.flow_rules
                            .note_stats(e.cookie, e.packet_count, e.byte_count);
                    }
                }
            }
            _ => {}
        }
        // Athena's SB observes everything after controller processing.
        self.run_interceptors(from, &msg, now, &mut commands);
        let flow_mods = commands
            .iter()
            .filter(|(_, m)| matches!(m, OfMessage::FlowMod { .. }))
            .count() as u64;
        self.counters.flow_mods += flow_mods;
        self.tel.flow_mods.add(flow_mods);
        self.journal_rule_installs(&commands, now);
        commands
    }

    /// Pipeline-processes a whole punt batch under one span and one
    /// latency sample, amortizing the per-message bookkeeping the
    /// sequential path pays per punt. Commands come out in exactly the
    /// order the default per-message loop would produce them: the batch
    /// is walked in order and each packet runs the same
    /// learn → processors → interceptors chain.
    fn on_packet_in_batch(
        &mut self,
        batch: Vec<(Dpid, OfMessage)>,
        now: SimTime,
    ) -> Vec<(Dpid, OfMessage)> {
        self.last_seen = now;
        let span = self.observe.span_at("controller", "packet_in_batch", now);
        let timer = self.tel.packet_in_ns.start_timer();
        let n = batch.len();
        let mut commands: Vec<(Dpid, OfMessage)> = Vec::new();
        for (from, msg) in batch {
            let OfMessage::PacketIn { body, .. } = &msg else {
                // Foreign message in a punt batch: fall back to the
                // general handler (journals and counts itself).
                commands.extend(self.on_message(from, msg, now));
                continue;
            };
            self.counters.packet_ins += 1;
            self.tel.packet_ins.inc();
            if let (Some(ip), true) = (body.header.ip_src, body.header.in_port.is_physical()) {
                if self.hosts.location_of(ip).is_none() {
                    self.hosts.learn(ip, from, body.header.in_port);
                }
            }
            let mut ctx = PacketContext::new(
                from,
                body.header,
                now,
                &self.topology,
                &self.hosts,
                &mut self.flow_rules,
            );
            for p in &mut self.processors {
                p.process(&mut ctx);
                if ctx.is_blocked() {
                    break;
                }
            }
            commands.extend(ctx.into_commands());
            self.run_interceptors(from, &msg, now, &mut commands);
        }
        let flow_mods = commands
            .iter()
            .filter(|(_, m)| matches!(m, OfMessage::FlowMod { .. }))
            .count() as u64;
        self.counters.flow_mods += flow_mods;
        self.tel.flow_mods.add(flow_mods);
        self.journal_rule_installs(&commands, now);
        timer.observe(&self.tel.packet_in_ns);
        span.finish(format!("n={} cmds={}", n, commands.len()));
        commands
    }

    fn on_tick(&mut self, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        self.last_seen = now;
        let mut commands = Vec::new();
        for p in &mut self.processors {
            p.on_tick(now);
        }
        if let Some(poller) = &mut self.poller {
            commands.extend(poller.poll(now));
        }
        let start = commands.len();
        for i in &mut self.interceptors {
            let ctx = InterceptCtx {
                controller: ControllerId::new(0),
                flow_rules: &self.flow_rules,
                hosts: &self.hosts,
                mastership: &self.mastership,
                topology: &self.topology,
            };
            commands.extend(i.on_tick(&ctx, now));
        }
        self.register_proxy_rules(&commands[start..], now);
        self.journal_rule_installs(&commands, now);
        commands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interceptor::CountingInterceptor;
    use athena_dataplane::{workload, FlowSpec, Network};
    use athena_types::{FiveTuple, SimDuration, SimTime};

    #[test]
    fn end_to_end_forwarding_over_enterprise_topology() {
        let topo = Topology::enterprise();
        let mut net = Network::new(topo.clone());
        let mut cluster = ControllerCluster::new(&topo);
        let src = topo.hosts[0].ip;
        let dst = topo.hosts[40].ip;
        net.inject_flows([FlowSpec::new(
            FiveTuple::tcp(src, 1000, dst, 80),
            SimTime::ZERO,
            SimDuration::from_secs(5),
            8_000_000,
        )]);
        net.run_until(SimTime::from_secs(8), &mut cluster);
        assert!(net.delivered_bytes() > 3_000_000);
        assert!(cluster.counters().packet_ins >= 1);
        assert!(cluster.counters().flow_mods >= 3);
        // The poller generated stats replies.
        assert!(cluster.counters().stats_replies > 0);
    }

    #[test]
    fn interceptor_sees_the_message_stream() {
        let topo = Topology::linear(3, 2);
        let mut net = Network::new(topo.clone());
        let mut cluster = ControllerCluster::new(&topo);
        cluster.add_interceptor(Box::new(CountingInterceptor::default()));
        net.inject_flows(workload::benign_mix_on(
            &topo,
            20,
            SimDuration::from_secs(5),
            3,
        ));
        net.run_until(SimTime::from_secs(8), &mut cluster);
        let seen = {
            let i = cluster.interceptor_mut("counting").unwrap();
            // Downcast via the name-scoped accessor: we know its type.
            // (CountingInterceptor publishes its count through Debug; for
            // the test we re-borrow it as the concrete type.)
            i.name().to_string()
        };
        assert_eq!(seen, "counting");
        // Counter checks happen through the cluster counters instead.
        assert!(cluster.counters().packet_ins > 0);
        assert!(cluster.counters().stats_replies > 0);
    }

    #[test]
    fn mastership_is_exposed() {
        let topo = Topology::enterprise();
        let cluster = ControllerCluster::new(&topo);
        assert_eq!(cluster.instance_count(), 3);
        assert_eq!(cluster.master_of(Dpid::new(1)), Some(ControllerId::new(0)));
        assert_eq!(cluster.master_of(Dpid::new(5)), Some(ControllerId::new(2)));
    }

    #[test]
    fn instance_crash_re_elects_and_counts() {
        let tel = athena_telemetry::Telemetry::new();
        let topo = Topology::enterprise();
        let mut cluster = ControllerCluster::new(&topo);
        cluster.bind_telemetry(&tel);
        let c0 = ControllerId::new(0);
        assert!(cluster.instance_alive(c0));
        let moved = cluster.crash_instance(c0);
        assert_eq!(moved.len(), 6);
        assert!(!cluster.instance_alive(c0));
        // Every switch is now mastered by a surviving instance.
        for s in &topo.switches {
            let m = cluster.master_of(s.dpid).unwrap();
            assert!(
                cluster.instance_alive(m),
                "switch {:?} on dead master",
                s.dpid
            );
        }
        let back = cluster.rejoin_instance(c0);
        assert_eq!(back, moved);
        let f = cluster.failover_counters();
        assert_eq!(f.elections, 2);
        assert_eq!(f.switches_moved, 12);
        let m = tel.metrics();
        assert_eq!(m.counter("failover", "elections").get(), 2);
        assert_eq!(m.counter("failover", "switches_moved").get(), 12);
    }

    #[test]
    fn stats_replies_settle_the_poller() {
        let topo = Topology::linear(3, 2);
        let mut net = Network::new(topo.clone());
        let mut cluster = ControllerCluster::new(&topo);
        net.inject_flows(workload::benign_mix_on(
            &topo,
            10,
            SimDuration::from_secs(5),
            7,
        ));
        net.run_until(SimTime::from_secs(20), &mut cluster);
        // Healthy southbound: every poll is answered the same tick, so
        // nothing times out and nothing is left outstanding for long.
        assert_eq!(
            cluster.retry_counters(),
            crate::stats::RetryCounters::default()
        );
        assert!(cluster.counters().stats_replies > 0);
    }

    #[test]
    fn flow_removed_updates_rule_store() {
        let topo = Topology::linear(2, 2);
        let mut net = Network::new(topo.clone());
        let mut cluster = ControllerCluster::new(&topo);
        let src = topo.hosts[0].ip;
        let dst = topo.hosts[3].ip;
        // One short flow; rules idle out afterwards.
        net.inject_flows([FlowSpec::new(
            FiveTuple::tcp(src, 1, dst, 80),
            SimTime::ZERO,
            SimDuration::from_secs(2),
            1_000_000,
        )]);
        net.run_until(SimTime::from_secs(40), &mut cluster);
        assert!(cluster.counters().flow_removeds > 0);
        assert_eq!(cluster.flow_rules().live_count(), 0);
    }
}
