//! Causal cross-subsystem observability for the Athena reproduction.
//!
//! `athena-observe` layers three things on top of `athena-telemetry`:
//!
//! 1. **Causal trace propagation** — an [`Observe`] handle hands out
//!    RAII span guards whose parentage is carried on a thread-local
//!    [`TraceContext`] stack, so one seed-derived trace id stitches a
//!    packet-in through the chaos channel, the controller pipeline,
//!    Athena's southbound elements, the store quorum write, compute
//!    jobs, and the detection verdict. Traces are stamped with virtual
//!    time only and export as Chrome-trace JSON and folded flamegraph
//!    stacks.
//! 2. **A time-series engine** — every sample tick snapshots the
//!    telemetry registry into fixed-capacity ring series with windowed
//!    rate/p99/stall queries ([`SeriesEngine`]).
//! 3. **An alert-rule engine** — declarative SLO rules
//!    ([`AlertRule`], [`standard_rules`]) evaluated at each sample,
//!    with fire/clear transitions recorded as deterministic
//!    virtual-time events; the chaos matrix gates on every injected
//!    fault firing and clearing its mapped alert.
//!
//! A disabled handle ([`Observe::disabled`], the default everywhere)
//! costs one relaxed atomic load per call, the same contract as
//! `Telemetry::off`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod alerts;
pub mod context;
pub mod recorder;
pub mod report;
pub mod series;

pub use alerts::{standard_rules, AlertEngine, AlertEvent, AlertRule, AlertSignal};
pub use context::{splitmix64, TraceContext};
pub use recorder::{chrome_trace_json, folded_stacks, CausalEvent, CausalSpan};
pub use report::{ObserveReport, SeriesRow};
pub use series::{Series, SeriesEngine, DEFAULT_SERIES_CAPACITY};

use athena_telemetry::Telemetry;
use athena_types::sentinel::TrackedMutex;
use athena_types::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Default bound on retained spans/events (drops beyond it are
/// counted).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Default virtual-time sampling cadence.
pub const DEFAULT_SAMPLE_CADENCE: SimDuration = SimDuration::from_secs(1);

#[derive(Debug)]
struct State {
    seed: u64,
    now: SimTime,
    next_span_id: u64,
    root_seq: u64,
    trace_ids: Vec<u64>,
    spans: Vec<CausalSpan>,
    events: Vec<CausalEvent>,
    capacity: usize,
    spans_dropped: u64,
    events_dropped: u64,
    telemetry: Option<Telemetry>,
    cadence: SimDuration,
    next_sample: SimTime,
    series: SeriesEngine,
    alerts: AlertEngine,
}

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    state: TrackedMutex<State>,
}

/// A cloneable handle to one observe pipeline (trace recorder + series
/// sampler + alert engine). All clones share state.
#[derive(Debug, Clone)]
pub struct Observe {
    inner: Arc<Inner>,
}

impl Default for Observe {
    /// Defaults to [`Observe::disabled`].
    fn default() -> Self {
        Observe::disabled()
    }
}

impl Observe {
    fn build(
        enabled: bool,
        seed: u64,
        telemetry: Option<Telemetry>,
        cadence: SimDuration,
        rules: Vec<AlertRule>,
        capacity: usize,
    ) -> Self {
        Observe {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                state: TrackedMutex::new(
                    "observe/state",
                    State {
                        seed,
                        now: SimTime::ZERO,
                        next_span_id: 0,
                        root_seq: 0,
                        trace_ids: Vec::new(),
                        spans: Vec::new(),
                        events: Vec::new(),
                        capacity: capacity.max(16),
                        spans_dropped: 0,
                        events_dropped: 0,
                        telemetry,
                        cadence,
                        next_sample: SimTime::ZERO,
                        series: SeriesEngine::new(DEFAULT_SERIES_CAPACITY),
                        alerts: AlertEngine::new(rules),
                    },
                ),
            }),
        }
    }

    /// A handle that records nothing (one relaxed atomic load per call).
    pub fn disabled() -> Self {
        Observe::build(
            false,
            0,
            None,
            DEFAULT_SAMPLE_CADENCE,
            Vec::new(),
            DEFAULT_SPAN_CAPACITY,
        )
    }

    /// An enabled trace-only handle: spans and events are recorded, but
    /// with no telemetry attached nothing is sampled and no alert can
    /// fire.
    pub fn new(seed: u64) -> Self {
        Observe::build(
            true,
            seed,
            None,
            DEFAULT_SAMPLE_CADENCE,
            Vec::new(),
            DEFAULT_SPAN_CAPACITY,
        )
    }

    /// The full pipeline: tracing plus per-virtual-second sampling of
    /// `tel` and the [`standard_rules`] alert set.
    pub fn with_telemetry(seed: u64, tel: &Telemetry) -> Self {
        Observe::with_options(
            seed,
            Some(tel.clone()),
            DEFAULT_SAMPLE_CADENCE,
            standard_rules(),
        )
    }

    /// An enabled handle with explicit sampling cadence and rule set.
    pub fn with_options(
        seed: u64,
        telemetry: Option<Telemetry>,
        cadence: SimDuration,
        rules: Vec<AlertRule>,
    ) -> Self {
        let cadence = if cadence.as_micros() == 0 {
            DEFAULT_SAMPLE_CADENCE
        } else {
            cadence
        };
        Observe::build(true, seed, telemetry, cadence, rules, DEFAULT_SPAN_CAPACITY)
    }

    /// Whether the handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Advances the pipeline's virtual clock; when a telemetry registry
    /// is attached and a sample is due, snapshots every metric into the
    /// series engine and evaluates the alert rules. Call once per
    /// simulation tick (the dataplane does this from `Network::step`).
    pub fn on_tick(&self, now: SimTime) {
        if !self.is_enabled() {
            return;
        }
        // First critical section: advance the clock and claim the
        // sample slot. The state lock is never held across a telemetry
        // call — the lock-graph gate conservatively treats any callee
        // named `report`/`event` as potentially re-entrant.
        let tel = {
            let mut state = self.inner.state.lock();
            if now > state.now {
                state.now = now;
            }
            if now < state.next_sample {
                return;
            }
            let cadence = state.cadence;
            state.next_sample = now + cadence;
            match state.telemetry.clone() {
                Some(t) => t,
                None => return,
            }
        };
        let report = tel.report();
        // Second critical section: fold the snapshot into the series
        // ring and run the alert rules against it.
        let details = {
            let mut state = self.inner.state.lock();
            state.series.sample(now, &report);
            let transitions = {
                let State { series, alerts, .. } = &mut *state;
                alerts.evaluate(now, series)
            };
            let mut details = Vec::with_capacity(transitions.len());
            for t in &transitions {
                let detail = t.render();
                push_event(
                    &mut state,
                    CausalEvent {
                        trace_id: 0,
                        span_id: 0,
                        subsystem: "observe",
                        name: if t.fired { "alert_fire" } else { "alert_clear" },
                        at: now,
                        detail: detail.clone(),
                    },
                );
                details.push(detail);
            }
            details
        };
        // Mirror the transitions into the telemetry trace ring so alert
        // history shows up next to wall-clock spans too.
        for detail in details {
            tel.tracer().event("observe", "alert", now, detail);
        }
    }

    /// Opens a span at the pipeline's current virtual time. With an
    /// active context on this thread the span joins that trace;
    /// otherwise it starts a new seed-derived trace.
    pub fn span(&self, subsystem: &'static str, name: &'static str) -> SpanGuard {
        self.open(subsystem, name, None)
    }

    /// Opens a span at an explicit virtual time (also advances the
    /// pipeline clock to `now`).
    pub fn span_at(&self, subsystem: &'static str, name: &'static str, now: SimTime) -> SpanGuard {
        self.open(subsystem, name, Some(now))
    }

    fn open(&self, subsystem: &'static str, name: &'static str, now: Option<SimTime>) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard {
                inner: None,
                ctx: TraceContext {
                    trace_id: 0,
                    span_id: 0,
                },
                parent_id: 0,
                subsystem,
                name,
                start: SimTime::ZERO,
            };
        }
        let (ctx, parent_id, start) = {
            let mut state = self.inner.state.lock();
            if let Some(now) = now {
                if now > state.now {
                    state.now = now;
                }
            }
            let (trace_id, parent_id) = match context::current() {
                Some(parent) => (parent.trace_id, parent.span_id),
                None => {
                    state.root_seq += 1;
                    let id = splitmix64(state.seed ^ state.root_seq);
                    if state.trace_ids.len() < state.capacity {
                        state.trace_ids.push(id);
                    }
                    (id, 0)
                }
            };
            state.next_span_id += 1;
            (
                TraceContext {
                    trace_id,
                    span_id: state.next_span_id,
                },
                parent_id,
                state.now,
            )
        };
        context::push(ctx);
        SpanGuard {
            inner: Some(Arc::clone(&self.inner)),
            ctx,
            parent_id,
            subsystem,
            name,
            start,
        }
    }

    /// Records an instantaneous event at the current virtual time,
    /// attached to the active trace context (if any).
    pub fn event(&self, subsystem: &'static str, name: &'static str, detail: String) {
        if !self.is_enabled() {
            return;
        }
        let ctx = context::current();
        let mut state = self.inner.state.lock();
        let at = state.now;
        push_event(
            &mut state,
            CausalEvent {
                trace_id: ctx.map(|c| c.trace_id).unwrap_or(0),
                span_id: ctx.map(|c| c.span_id).unwrap_or(0),
                subsystem,
                name,
                at,
                detail,
            },
        );
    }

    /// The trace ids started so far, in creation order — the
    /// deterministic id stream the thread-count gate byte-compares.
    pub fn trace_ids(&self) -> Vec<u64> {
        self.inner.state.lock().trace_ids.clone()
    }

    /// Completed spans, in finish order.
    pub fn spans(&self) -> Vec<CausalSpan> {
        self.inner.state.lock().spans.clone()
    }

    /// Recorded events, in occurrence order.
    pub fn events(&self) -> Vec<CausalEvent> {
        self.inner.state.lock().events.clone()
    }

    /// Every alert transition so far.
    pub fn alert_events(&self) -> Vec<AlertEvent> {
        self.inner.state.lock().alerts.transitions().to_vec()
    }

    /// Alert transitions from deterministic rules only — the stream the
    /// chaos and thread-count gates byte-compare.
    pub fn deterministic_alert_events(&self) -> Vec<AlertEvent> {
        self.alert_events()
            .into_iter()
            .filter(|e| e.deterministic)
            .collect()
    }

    /// Rules currently firing.
    pub fn firing(&self) -> Vec<&'static str> {
        self.inner.state.lock().alerts.firing_rules()
    }

    /// Sample ticks taken.
    pub fn samples(&self) -> u64 {
        self.inner.state.lock().series.sample_count()
    }

    /// Runs `f` over the sampled series engine.
    pub fn with_series<R>(&self, f: impl FnOnce(&SeriesEngine) -> R) -> R {
        f(&self.inner.state.lock().series)
    }

    /// Exports the causal trace as Chrome-trace JSON
    /// (`chrome://tracing` loadable).
    pub fn export_chrome_trace(&self) -> String {
        let state = self.inner.state.lock();
        chrome_trace_json(&state.spans, &state.events)
    }

    /// Exports the causal trace as folded flamegraph stacks.
    pub fn export_folded(&self) -> String {
        folded_stacks(&self.inner.state.lock().spans)
    }

    /// Builds the point-in-time [`ObserveReport`].
    pub fn report(&self) -> ObserveReport {
        let state = self.inner.state.lock();
        let now = state.now;
        let series = state
            .series
            .iter()
            .map(|(key, s)| SeriesRow {
                key: key.to_string(),
                points: s.len(),
                latest: s.latest().unwrap_or(0.0),
                rate_per_sec: s.rate_per_sec(now, SimDuration::from_secs(6)),
            })
            .collect();
        ObserveReport {
            seed: state.seed,
            now_us: now.as_micros(),
            samples: state.series.sample_count(),
            traces: state.root_seq,
            spans: state.spans.len() as u64,
            spans_dropped: state.spans_dropped,
            events: state.events.len() as u64,
            alerts: state.alerts.transitions().to_vec(),
            firing: state.alerts.firing_rules(),
            series,
        }
    }
}

fn push_event(state: &mut State, event: CausalEvent) {
    if state.events.len() < state.capacity {
        state.events.push(event);
    } else {
        state.events_dropped += 1;
    }
}

/// RAII guard for an open causal span. Finishing (or dropping) the
/// guard records the completed span at the pipeline's current virtual
/// time and pops the trace context.
#[must_use = "the span ends when the guard is finished or dropped"]
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    ctx: TraceContext,
    parent_id: u64,
    subsystem: &'static str,
    name: &'static str,
    start: SimTime,
}

impl SpanGuard {
    /// The span's trace context (zeros for a disabled handle).
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// Finishes the span with a detail string.
    pub fn finish(mut self, detail: impl Into<String>) {
        self.close(detail.into());
    }

    fn close(&mut self, detail: String) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        context::pop(self.ctx);
        let mut state = inner.state.lock();
        let end = state.now.max(self.start);
        if state.spans.len() < state.capacity {
            let span = CausalSpan {
                trace_id: self.ctx.trace_id,
                span_id: self.ctx.span_id,
                parent_id: self.parent_id,
                subsystem: self.subsystem,
                name: self.name,
                start: self.start,
                end,
                detail,
            };
            state.spans.push(span);
        } else {
            state.spans_dropped += 1;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close(String::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Observe::disabled();
        let g = obs.span("dataplane", "packet_in");
        drop(g);
        obs.event("core", "verdict", "x".into());
        obs.on_tick(SimTime::from_secs(1));
        assert!(obs.spans().is_empty());
        assert!(obs.events().is_empty());
        assert!(obs.trace_ids().is_empty());
    }

    #[test]
    fn nested_spans_share_a_trace_and_parent() {
        let obs = Observe::new(7);
        {
            let root = obs.span_at("dataplane", "packet_in", SimTime::from_secs(1));
            let root_ctx = root.context();
            {
                let child = obs.span("controller", "packet_in");
                assert_eq!(child.context().trace_id, root_ctx.trace_id);
                obs.event("core", "verdict", "benign".into());
                child.finish("handled");
            }
            root.finish("");
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        // Children finish first.
        assert_eq!(spans[0].name, "packet_in");
        assert_eq!(spans[0].subsystem, "controller");
        assert_eq!(spans[0].parent_id, spans[1].span_id);
        assert_eq!(spans[0].trace_id, spans[1].trace_id);
        assert_eq!(spans[1].parent_id, 0);
        let events = obs.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace_id, spans[1].trace_id);
        assert_eq!(obs.trace_ids(), vec![spans[1].trace_id]);
    }

    #[test]
    fn trace_ids_derive_from_the_seed() {
        let ids = |seed| {
            let obs = Observe::new(seed);
            for _ in 0..3 {
                obs.span("dataplane", "packet_in").finish("");
            }
            obs.trace_ids()
        };
        assert_eq!(ids(7), ids(7));
        assert_ne!(ids(7), ids(8));
        assert_eq!(
            ids(7),
            vec![splitmix64(7 ^ 1), splitmix64(7 ^ 2), splitmix64(7 ^ 3)]
        );
    }

    #[test]
    fn sampling_and_alerts_run_on_tick() {
        let tel = Telemetry::new();
        let gauge = tel.metrics().gauge("dataplane", "links_degraded");
        let obs = Observe::with_telemetry(7, &tel);
        obs.on_tick(SimTime::from_secs(1));
        gauge.set(1);
        obs.on_tick(SimTime::from_secs(2));
        gauge.set(0);
        obs.on_tick(SimTime::from_secs(3));
        assert_eq!(obs.samples(), 3);
        let alerts = obs.alert_events();
        assert_eq!(alerts.len(), 2, "{alerts:?}");
        assert!(alerts[0].fired && alerts[0].rule == "links-degraded");
        assert!(!alerts[1].fired);
        assert!(obs.firing().is_empty());
        // Mirrored into causal events and the telemetry trace.
        assert_eq!(obs.events().len(), 2);
        assert!(tel
            .tracer()
            .entries()
            .iter()
            .any(|e| e.subsystem == "observe"));
    }

    #[test]
    fn report_and_exports_are_consistent() {
        let tel = Telemetry::new();
        tel.metrics().counter("dataplane", "packet_ins").add(5);
        let obs = Observe::with_telemetry(3, &tel);
        let g = obs.span_at("dataplane", "packet_in", SimTime::from_secs(1));
        g.finish("punt");
        obs.on_tick(SimTime::from_secs(1));
        let report = obs.report();
        assert_eq!(report.traces, 1);
        assert_eq!(report.spans, 1);
        assert!(report
            .series
            .iter()
            .any(|s| s.key == "dataplane/packet_ins"));
        let chrome = obs.export_chrome_trace();
        assert!(chrome.contains("dataplane/packet_in"));
        let folded = obs.export_folded();
        assert!(folded.starts_with("dataplane/packet_in "));
    }
}
