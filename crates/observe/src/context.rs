//! Trace contexts and their thread-local propagation stack.
//!
//! The simulation pipeline is synchronous on the driver thread: a
//! packet-in punted by the dataplane runs the controller, Athena's
//! southbound elements, the store quorum write, and the detection
//! verdict before the punt returns. A thread-local stack of
//! [`TraceContext`]s is therefore enough to stitch the full request
//! path: each span guard pushes its context on creation and pops it when
//! finished, and any span opened in between becomes its child.
//!
//! Pool worker closures never open causal spans (see DESIGN.md §13), so
//! the stack never needs to cross threads and trace-id allocation stays
//! on the driver thread — the property that makes the id stream
//! byte-identical at any `ATHENA_THREADS`.

use std::cell::RefCell;

/// The causal identity carried through a cross-subsystem hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The request's trace id (seed-derived, shared by every span on the
    /// path).
    pub trace_id: u64,
    /// The span this context belongs to — the parent of anything opened
    /// under it.
    pub span_id: u64,
}

thread_local! {
    static STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost active context on this thread, if any.
pub fn current() -> Option<TraceContext> {
    STACK.with(|s| s.borrow().last().copied())
}

/// Pushes `ctx` as the innermost context.
pub(crate) fn push(ctx: TraceContext) {
    STACK.with(|s| s.borrow_mut().push(ctx));
}

/// Pops the innermost context matching `ctx` (guards finish in LIFO
/// order, but a defensive scan keeps a leaked guard from wedging the
/// stack).
pub(crate) fn pop(ctx: TraceContext) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if stack.last() == Some(&ctx) {
            stack.pop();
        } else if let Some(pos) = stack.iter().rposition(|c| *c == ctx) {
            stack.remove(pos);
        }
    });
}

/// SplitMix64: the seed-to-id mix used for trace ids. Deterministic,
/// well-dispersed, dependency-free.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_push_pop_nests() {
        let a = TraceContext {
            trace_id: 1,
            span_id: 10,
        };
        let b = TraceContext {
            trace_id: 1,
            span_id: 11,
        };
        push(a);
        push(b);
        assert_eq!(current(), Some(b));
        pop(b);
        assert_eq!(current(), Some(a));
        pop(a);
        assert_eq!(current(), None);
    }

    #[test]
    fn out_of_order_pop_removes_the_right_entry() {
        let a = TraceContext {
            trace_id: 2,
            span_id: 20,
        };
        let b = TraceContext {
            trace_id: 2,
            span_id: 21,
        };
        push(a);
        push(b);
        pop(a);
        assert_eq!(current(), Some(b));
        pop(b);
        assert_eq!(current(), None);
    }

    #[test]
    fn splitmix_is_deterministic_and_disperses() {
        assert_eq!(splitmix64(7), splitmix64(7));
        assert_ne!(splitmix64(7), splitmix64(8));
    }
}
