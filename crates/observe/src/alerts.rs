//! The declarative SLO alert-rule engine.
//!
//! Rules are evaluated against the sampled [`SeriesEngine`] at every
//! sample tick. A rule transitions between clear and firing; each
//! transition is recorded as a virtual-time-stamped [`AlertEvent`].
//! Rules whose signal derives only from deterministic inputs (counters
//! and gauges driven by simulated behavior) are marked `deterministic`,
//! and their fire/clear sequences are byte-identical across reruns and
//! `ATHENA_THREADS` — the chaos matrix gates on exactly that. Rules over
//! wall-clock-fed histograms (`*_ns` p99 latencies, queue depths) are
//! useful signals but excluded from determinism comparisons.

use crate::series::SeriesEngine;
use athena_types::{SimDuration, SimTime};

/// What a rule watches.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertSignal {
    /// Fires while the counter's windowed rate exceeds `per_sec`.
    CounterRateAbove {
        /// Metric key, `subsystem/name` form.
        key: &'static str,
        /// Rate threshold in increments per second (strictly above).
        per_sec: f64,
        /// Trailing rate window.
        window: SimDuration,
    },
    /// Fires while the gauge's latest sample exceeds `threshold`.
    GaugeAbove {
        /// Metric key, `subsystem/name` form.
        key: &'static str,
        /// Level threshold (strictly above).
        threshold: f64,
    },
    /// Fires while the histogram's sampled p99 exceeds `threshold`.
    HistogramP99Above {
        /// Metric key, `subsystem/name` form (`#p99` is appended).
        key: &'static str,
        /// p99 threshold in the histogram's native unit (strictly
        /// above).
        threshold: f64,
    },
    /// Fires while the counter has gone longer than `window` without
    /// increasing (after having increased at least once).
    CounterStallOver {
        /// Metric key, `subsystem/name` form.
        key: &'static str,
        /// Longest tolerated quiet period.
        window: SimDuration,
    },
}

/// One declarative SLO rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Stable rule name (appears in events, reports, and exports).
    pub name: &'static str,
    /// The watched signal.
    pub signal: AlertSignal,
    /// Whether the signal is a pure function of simulated behavior.
    pub deterministic: bool,
}

/// A fire or clear transition.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Rule that transitioned.
    pub rule: &'static str,
    /// `true` on fire, `false` on clear.
    pub fired: bool,
    /// Virtual time of the sample that transitioned the rule.
    pub at: SimTime,
    /// The signal's value at the transition.
    pub value: f64,
    /// Copied from the rule, so event streams can be filtered for
    /// determinism comparisons.
    pub deterministic: bool,
}

impl AlertEvent {
    /// Canonical one-line rendering (`fire`/`clear`, virtual seconds,
    /// fixed-precision value) — the byte-compared form in the
    /// determinism gates.
    pub fn render(&self) -> String {
        format!(
            "{} {} at={}us value={:.3}",
            if self.fired { "fire " } else { "clear" },
            self.rule,
            self.at.as_micros(),
            self.value,
        )
    }
}

/// Evaluates rules and tracks firing state.
#[derive(Debug, Clone, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    firing: Vec<bool>,
    events: Vec<AlertEvent>,
}

impl AlertEngine {
    /// An engine over `rules`, all initially clear.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let firing = vec![false; rules.len()];
        AlertEngine {
            rules,
            firing,
            events: Vec::new(),
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Rule names currently firing, in rule order.
    pub fn firing_rules(&self) -> Vec<&'static str> {
        self.rules
            .iter()
            .zip(&self.firing)
            .filter(|(_, &f)| f)
            .map(|(r, _)| r.name)
            .collect()
    }

    /// Every transition so far, in occurrence order.
    pub fn transitions(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Evaluates every rule against `series` at `now`; returns the
    /// transitions this tick (also appended to [`AlertEngine::events`]).
    pub fn evaluate(&mut self, now: SimTime, series: &SeriesEngine) -> Vec<AlertEvent> {
        let mut transitions = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let (active, value) = match &rule.signal {
                AlertSignal::CounterRateAbove {
                    key,
                    per_sec,
                    window,
                } => {
                    let rate = series.rate_per_sec(key, now, *window);
                    (rate > *per_sec, rate)
                }
                AlertSignal::GaugeAbove { key, threshold } => {
                    let v = series.latest(key);
                    (v > *threshold, v)
                }
                AlertSignal::HistogramP99Above { key, threshold } => {
                    let v = series.latest(&format!("{key}#p99"));
                    (v > *threshold, v)
                }
                AlertSignal::CounterStallOver { key, window } => {
                    let stalled = series
                        .get(key)
                        .and_then(|s| s.stalled_for(now))
                        .map(|d| d.as_micros() > window.as_micros())
                        .unwrap_or(false);
                    (stalled, series.latest(key))
                }
            };
            if active != self.firing[i] {
                self.firing[i] = active;
                let event = AlertEvent {
                    rule: rule.name,
                    fired: active,
                    at: now,
                    value,
                    deterministic: rule.deterministic,
                };
                self.events.push(event.clone());
                transitions.push(event);
            }
        }
        transitions
    }
}

/// The standard Athena SLO rule set: the five issue-mandated service
/// rules plus one rule per chaos-matrix fault family, so every injected
/// `Scenario` has an alert that fires during its fault window and clears
/// after recovery.
pub fn standard_rules() -> Vec<AlertRule> {
    use AlertSignal::*;
    let w6 = SimDuration::from_secs(6);
    vec![
        // — service SLOs —
        AlertRule {
            name: "packet-in-p99-latency",
            signal: HistogramP99Above {
                key: "controller/packet_in_ns",
                threshold: 50_000_000.0, // 50 ms of real service time
            },
            deterministic: false, // wall-clock-fed histogram
        },
        AlertRule {
            name: "detection-miss-window",
            signal: CounterStallOver {
                key: "core/feature_records",
                window: w6,
            },
            deterministic: true,
        },
        AlertRule {
            name: "quorum-degraded-writes",
            signal: CounterRateAbove {
                key: "retry/store_write_handoffs",
                per_sec: 0.0,
                window: w6,
            },
            deterministic: true,
        },
        AlertRule {
            name: "wal-replay-errors",
            signal: CounterRateAbove {
                key: "persist/store_tails_truncated",
                per_sec: 0.0,
                window: w6,
            },
            deterministic: true,
        },
        AlertRule {
            name: "pool-queue-depth",
            signal: HistogramP99Above {
                key: "parallel/queue_depth",
                threshold: 1024.0,
            },
            deterministic: false, // depends on real scheduling interleavings
        },
        // — chaos-matrix fault alerts —
        AlertRule {
            name: "links-degraded",
            signal: GaugeAbove {
                key: "dataplane/links_degraded",
                threshold: 0.0,
            },
            deterministic: true,
        },
        AlertRule {
            name: "switch-rebooted",
            signal: CounterRateAbove {
                key: "dataplane/switch_reboots",
                per_sec: 0.0,
                window: w6,
            },
            deterministic: true,
        },
        AlertRule {
            name: "controller-instance-down",
            signal: GaugeAbove {
                key: "failover/instances_down",
                threshold: 0.0,
            },
            deterministic: true,
        },
        AlertRule {
            name: "store-nodes-down",
            signal: GaugeAbove {
                key: "store/nodes_down",
                threshold: 0.0,
            },
            deterministic: true,
        },
        AlertRule {
            name: "messages-dropped",
            signal: CounterRateAbove {
                key: "faults/msgs_dropped",
                per_sec: 0.0,
                window: w6,
            },
            deterministic: true,
        },
        AlertRule {
            name: "messages-delayed",
            signal: CounterRateAbove {
                key: "faults/msgs_delayed",
                per_sec: 0.0,
                window: w6,
            },
            deterministic: true,
        },
        AlertRule {
            name: "messages-duplicated",
            signal: CounterRateAbove {
                key: "faults/msgs_duplicated",
                per_sec: 0.0,
                window: w6,
            },
            deterministic: true,
        },
        // — streaming retrain loop —
        // Both watch stream/* series that only exist when a retrain
        // loop is deployed; absent series read as 0.0 and never fire.
        AlertRule {
            name: "model-swap-failed",
            signal: CounterRateAbove {
                key: "stream/swap_failures",
                per_sec: 0.0,
                window: w6,
            },
            deterministic: true,
        },
        AlertRule {
            name: "detection-gap-exceeded",
            signal: HistogramP99Above {
                key: "stream/detection_gap_us",
                // The streaming gate's bound: 15 virtual seconds
                // between consecutive detections under live attack.
                threshold: 15_000_000.0,
            },
            // Virtual-time-fed histogram: the gap is measured on
            // SimTime, not the wall clock.
            deterministic: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_telemetry::Telemetry;

    #[test]
    fn gauge_rule_fires_and_clears() {
        let tel = Telemetry::new();
        let gauge = tel.metrics().gauge("dataplane", "links_degraded");
        let mut series = SeriesEngine::new(16);
        let mut engine = AlertEngine::new(vec![AlertRule {
            name: "links-degraded",
            signal: AlertSignal::GaugeAbove {
                key: "dataplane/links_degraded",
                threshold: 0.0,
            },
            deterministic: true,
        }]);

        series.sample(SimTime::from_secs(1), &tel.report());
        assert!(engine.evaluate(SimTime::from_secs(1), &series).is_empty());

        gauge.set(2);
        series.sample(SimTime::from_secs(2), &tel.report());
        let fired = engine.evaluate(SimTime::from_secs(2), &series);
        assert_eq!(fired.len(), 1);
        assert!(fired[0].fired);
        assert_eq!(engine.firing_rules(), vec!["links-degraded"]);

        gauge.set(0);
        series.sample(SimTime::from_secs(3), &tel.report());
        let cleared = engine.evaluate(SimTime::from_secs(3), &series);
        assert_eq!(cleared.len(), 1);
        assert!(!cleared[0].fired);
        assert!(engine.firing_rules().is_empty());
        assert_eq!(engine.transitions().len(), 2);
    }

    #[test]
    fn rate_rule_clears_once_window_passes() {
        let tel = Telemetry::new();
        let ctr = tel.metrics().counter("faults", "msgs_dropped");
        let mut series = SeriesEngine::new(64);
        let mut engine = AlertEngine::new(vec![AlertRule {
            name: "messages-dropped",
            signal: AlertSignal::CounterRateAbove {
                key: "faults/msgs_dropped",
                per_sec: 0.0,
                window: SimDuration::from_secs(6),
            },
            deterministic: true,
        }]);
        for t in 1..=20u64 {
            if (5..10).contains(&t) {
                ctr.add(3);
            }
            series.sample(SimTime::from_secs(t), &tel.report());
            engine.evaluate(SimTime::from_secs(t), &series);
        }
        let events = engine.transitions();
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(events[0].fired && events[0].at == SimTime::from_secs(5));
        assert!(!events[1].fired);
        // Cleared once the 6 s window slid past the last drop at t=9.
        assert!(events[1].at > SimTime::from_secs(9));
        assert!(events[1].at <= SimTime::from_secs(16));
    }

    #[test]
    fn stall_rule_needs_a_prior_rise() {
        let tel = Telemetry::new();
        let ctr = tel.metrics().counter("core", "feature_records");
        let mut series = SeriesEngine::new(64);
        let mut engine = AlertEngine::new(vec![AlertRule {
            name: "detection-miss-window",
            signal: AlertSignal::CounterStallOver {
                key: "core/feature_records",
                window: SimDuration::from_secs(6),
            },
            deterministic: true,
        }]);
        // Quiet from the start: never fires (nothing has risen).
        for t in 1..=10u64 {
            series.sample(SimTime::from_secs(t), &tel.report());
            engine.evaluate(SimTime::from_secs(t), &series);
        }
        assert!(engine.transitions().is_empty());
        // Rise, then stall past the window: fires; rise again: clears.
        ctr.inc();
        for t in 11..=25u64 {
            if t == 20 {
                ctr.inc();
            }
            series.sample(SimTime::from_secs(t), &tel.report());
            engine.evaluate(SimTime::from_secs(t), &series);
        }
        let events = engine.transitions();
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(events[0].fired && events[0].at == SimTime::from_secs(18));
        assert!(!events[1].fired && events[1].at == SimTime::from_secs(20));
    }

    #[test]
    fn standard_rules_have_unique_names() {
        let rules = standard_rules();
        let mut names: Vec<_> = rules.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rules.len());
    }
}
