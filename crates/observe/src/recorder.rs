//! Completed causal spans and events, plus their export formats.
//!
//! Everything here is stamped with **virtual time only** — no wall
//! clock — so recorded traces are byte-identical across reruns and
//! thread counts. (The wall-clock spans in `athena-telemetry` remain
//! available for profiling; the causal layer is the deterministic one.)

use athena_types::SimTime;
use std::fmt::Write as _;

/// One finished causal span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalSpan {
    /// Trace the span belongs to.
    pub trace_id: u64,
    /// The span's own id (unique within the recorder).
    pub span_id: u64,
    /// Parent span id (`0` for trace roots).
    pub parent_id: u64,
    /// Subsystem that opened the span.
    pub subsystem: &'static str,
    /// Operation name.
    pub name: &'static str,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time (>= start).
    pub end: SimTime,
    /// Free-form detail attached at finish.
    pub detail: String,
}

/// One instantaneous causal event (verdicts, alert transitions, fault
/// decisions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalEvent {
    /// Trace the event belongs to (`0` when none was active).
    pub trace_id: u64,
    /// Enclosing span id (`0` when none was active).
    pub span_id: u64,
    /// Subsystem that recorded the event.
    pub subsystem: &'static str,
    /// Event name.
    pub name: &'static str,
    /// Virtual timestamp.
    pub at: SimTime,
    /// Free-form detail.
    pub detail: String,
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders spans and events as a Chrome-trace (`chrome://tracing` /
/// Perfetto loadable) JSON document. Spans become complete (`"X"`)
/// events on a per-trace track; events become instants (`"i"`).
pub fn chrome_trace_json(spans: &[CausalSpan], events: &[CausalEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for s in spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        // Zero-length spans (work inside one virtual tick) get a 1 µs
        // floor so the viewer renders them.
        let dur = s.end.as_micros().saturating_sub(s.start.as_micros()).max(1);
        let _ = write!(
            out,
            "{{\"name\":\"{}/{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\
             \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"trace_id\":\"{:#018x}\",\
             \"span_id\":{},\"parent_id\":{},\"detail\":\"{}\"}}}}",
            s.subsystem,
            s.name,
            s.subsystem,
            s.trace_id % 1_000_000,
            s.start.as_micros(),
            dur,
            s.trace_id,
            s.span_id,
            s.parent_id,
            json_escape(&s.detail),
        );
    }
    for e in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}/{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\
             \"tid\":{},\"ts\":{},\"args\":{{\"trace_id\":\"{:#018x}\",\"detail\":\"{}\"}}}}",
            e.subsystem,
            e.name,
            e.subsystem,
            e.trace_id % 1_000_000,
            e.at.as_micros(),
            e.trace_id,
            json_escape(&e.detail),
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Renders spans as folded stacks (`a;b;c <weight>` lines, one per
/// span), suitable for `flamegraph.pl` / speedscope. The weight is the
/// span's self time in microseconds with a 1 µs floor, so sub-tick spans
/// still show up as samples.
pub fn folded_stacks(spans: &[CausalSpan]) -> String {
    use std::collections::BTreeMap;
    // span_id → index, for parent-chain resolution.
    let by_id: BTreeMap<u64, &CausalSpan> = spans.iter().map(|s| (s.span_id, s)).collect();
    let mut child_micros: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if s.parent_id != 0 {
            *child_micros.entry(s.parent_id).or_default() +=
                s.end.as_micros().saturating_sub(s.start.as_micros());
        }
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        let mut frames = vec![format!("{}/{}", s.subsystem, s.name)];
        let mut cur = s.parent_id;
        // Bounded walk: cycles are impossible by construction, but a
        // dropped parent just truncates the stack.
        for _ in 0..64 {
            let Some(p) = by_id.get(&cur) else { break };
            frames.push(format!("{}/{}", p.subsystem, p.name));
            cur = p.parent_id;
        }
        frames.reverse();
        let total = s.end.as_micros().saturating_sub(s.start.as_micros());
        let self_time = total
            .saturating_sub(child_micros.get(&s.span_id).copied().unwrap_or(0))
            .max(1);
        *folded.entry(frames.join(";")).or_default() += self_time;
    }
    let mut out = String::new();
    for (stack, weight) in folded {
        let _ = writeln!(out, "{stack} {weight}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, name: &'static str) -> CausalSpan {
        CausalSpan {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            subsystem: "test",
            name,
            start: SimTime::from_micros(10),
            end: SimTime::from_micros(30),
            detail: String::new(),
        }
    }

    #[test]
    fn chrome_trace_is_json_shaped_and_carries_trace_ids() {
        let spans = [span(0xabc, 1, 0, "root"), span(0xabc, 2, 1, "child")];
        let out = chrome_trace_json(&spans, &[]);
        assert!(out.starts_with('{') && out.trim_end().ends_with('}'));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("0x0000000000000abc"));
        assert!(out.contains("\"parent_id\":1"));
    }

    #[test]
    fn folded_stacks_nest_and_weight() {
        let spans = [span(1, 1, 0, "root"), span(1, 2, 1, "child")];
        let out = folded_stacks(&spans);
        assert!(out.contains("test/root;test/child 20"), "{out}");
        // Root self time: 20 total − 20 in child → floored to 1.
        assert!(out.contains("test/root 1"), "{out}");
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
