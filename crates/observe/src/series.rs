//! Fixed-capacity time series sampled from the telemetry registry.
//!
//! Each sample tick snapshots every counter, gauge, and histogram into a
//! per-key ring buffer of `(virtual time, value)` points. Histograms
//! contribute two derived series: `<key>#p99` and `<key>#count`. The
//! windowed queries ([`SeriesEngine::rate_per_sec`],
//! [`SeriesEngine::latest`], [`SeriesEngine::stalled_for`]) are what the
//! alert rules evaluate.

use athena_telemetry::TelemetryReport;
use athena_types::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Default points kept per series.
pub const DEFAULT_SERIES_CAPACITY: usize = 512;

/// One metric's ring of samples.
#[derive(Debug, Clone)]
pub struct Series {
    points: VecDeque<(SimTime, f64)>,
    capacity: usize,
    /// Virtual time of the last sample whose value rose above the
    /// previous one (drives stall detection).
    last_rise: Option<SimTime>,
}

impl Series {
    fn new(capacity: usize) -> Self {
        Series {
            points: VecDeque::new(),
            capacity,
            last_rise: None,
        }
    }

    fn push(&mut self, at: SimTime, value: f64) {
        if let Some(&(_, prev)) = self.points.back() {
            if value > prev {
                self.last_rise = Some(at);
            }
        } else if value > 0.0 {
            self.last_rise = Some(at);
        }
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back((at, value));
    }

    /// The sampled points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Latest sampled value.
    pub fn latest(&self) -> Option<f64> {
        self.points.back().map(|&(_, v)| v)
    }

    /// Increase per second over the trailing `window` ending at `now`:
    /// the latest sample against the newest sample at or before
    /// `now - window` (or the oldest retained sample when the window
    /// extends past the ring).
    pub fn rate_per_sec(&self, now: SimTime, window: SimDuration) -> f64 {
        let Some(&(last_t, last_v)) = self.points.back() else {
            return 0.0;
        };
        let cutoff = now.as_micros().saturating_sub(window.as_micros());
        let base = self
            .points
            .iter()
            .rev()
            .find(|(t, _)| t.as_micros() <= cutoff)
            .or_else(|| self.points.front())
            .copied();
        let Some((base_t, base_v)) = base else {
            return 0.0;
        };
        let dt_us = last_t.as_micros().saturating_sub(base_t.as_micros());
        if dt_us == 0 {
            return 0.0;
        }
        (last_v - base_v) / (dt_us as f64 / 1_000_000.0)
    }

    /// How long the series has gone without rising, as of `now`.
    /// `None` until the series has risen at least once.
    pub fn stalled_for(&self, now: SimTime) -> Option<SimDuration> {
        self.last_rise
            .map(|t| SimDuration::from_micros(now.as_micros().saturating_sub(t.as_micros())))
    }
}

/// All sampled series, keyed by `subsystem/name[instance]` labels.
#[derive(Debug, Clone, Default)]
pub struct SeriesEngine {
    series: BTreeMap<String, Series>,
    capacity: usize,
    samples: u64,
}

impl SeriesEngine {
    /// An engine retaining `capacity` points per series.
    pub fn new(capacity: usize) -> Self {
        SeriesEngine {
            series: BTreeMap::new(),
            capacity: capacity.max(2),
            samples: 0,
        }
    }

    /// Samples every metric in `report` at virtual time `now`.
    pub fn sample(&mut self, now: SimTime, report: &TelemetryReport) {
        self.samples += 1;
        let cap = self.capacity;
        let mut put = |key: String, value: f64| {
            self.series
                .entry(key)
                .or_insert_with(|| Series::new(cap))
                .push(now, value);
        };
        for c in &report.counters {
            put(c.key.label(), c.value as f64);
        }
        for g in &report.gauges {
            put(g.key.label(), g.value as f64);
        }
        for h in &report.histograms {
            put(format!("{}#p99", h.key.label()), h.snapshot.p99 as f64);
            put(format!("{}#count", h.key.label()), h.snapshot.count as f64);
        }
    }

    /// Sample ticks taken so far.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// The series for `key`, if it has been sampled.
    pub fn get(&self, key: &str) -> Option<&Series> {
        self.series.get(key)
    }

    /// Latest value of `key` (0.0 when never sampled).
    pub fn latest(&self, key: &str) -> f64 {
        self.get(key).and_then(Series::latest).unwrap_or(0.0)
    }

    /// Windowed rate of `key` (0.0 when never sampled).
    pub fn rate_per_sec(&self, key: &str, now: SimTime, window: SimDuration) -> f64 {
        self.get(key)
            .map(|s| s.rate_per_sec(now, window))
            .unwrap_or(0.0)
    }

    /// Iterates `(key, series)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Series)> {
        self.series.iter().map(|(k, s)| (k.as_str(), s))
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with(points: &[(u64, f64)]) -> Series {
        let mut s = Series::new(16);
        for &(t, v) in points {
            s.push(SimTime::from_secs(t), v);
        }
        s
    }

    #[test]
    fn rate_uses_window_baseline() {
        let s = series_with(&[(0, 0.0), (1, 10.0), (2, 20.0), (3, 50.0)]);
        let r = s.rate_per_sec(SimTime::from_secs(3), SimDuration::from_secs(2));
        // Baseline is the sample at t=1 (≤ now−window): (50−10)/2s.
        assert!((r - 20.0).abs() < 1e-9, "rate {r}");
    }

    #[test]
    fn rate_falls_back_to_oldest_point() {
        let s = series_with(&[(5, 100.0), (6, 160.0)]);
        let r = s.rate_per_sec(SimTime::from_secs(6), SimDuration::from_secs(60));
        assert!((r - 60.0).abs() < 1e-9, "rate {r}");
    }

    #[test]
    fn stall_tracks_last_rise() {
        let s = series_with(&[(0, 0.0), (1, 5.0), (2, 5.0), (3, 5.0)]);
        let stalled = s.stalled_for(SimTime::from_secs(3)).unwrap();
        assert_eq!(stalled, SimDuration::from_secs(2));
        let never = series_with(&[(0, 0.0), (1, 0.0)]);
        assert!(never.stalled_for(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn ring_capacity_is_bounded() {
        let mut s = Series::new(4);
        for t in 0..10 {
            s.push(SimTime::from_secs(t), t as f64);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.latest(), Some(9.0));
    }
}
