//! The `ObserveReport`: a point-in-time summary of the causal trace,
//! sampled series, and alert state, printable as a health table (the
//! `athena-top` view) or exportable as JSON.

use crate::alerts::AlertEvent;
use crate::recorder::json_escape;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One sampled series' summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// Metric key (`subsystem/name[instance]`, `#p99`/`#count` for
    /// histogram-derived series).
    pub key: String,
    /// Retained points.
    pub points: usize,
    /// Latest sampled value.
    pub latest: f64,
    /// Rate per second over the engine's trailing window.
    pub rate_per_sec: f64,
}

/// A snapshot of everything the observe layer knows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObserveReport {
    /// Seed the trace-id stream derives from.
    pub seed: u64,
    /// Virtual time of the snapshot, in microseconds.
    pub now_us: u64,
    /// Sample ticks taken.
    pub samples: u64,
    /// Distinct traces started.
    pub traces: u64,
    /// Completed causal spans retained.
    pub spans: u64,
    /// Spans dropped to the capacity bound.
    pub spans_dropped: u64,
    /// Causal events retained.
    pub events: u64,
    /// Every alert transition so far, in occurrence order.
    pub alerts: Vec<AlertEvent>,
    /// Rules currently firing.
    pub firing: Vec<&'static str>,
    /// Per-series summaries, in key order.
    pub series: Vec<SeriesRow>,
}

impl ObserveReport {
    /// Renders the report as the `athena-top` health table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== observe @ {:.1}s · {} samples · {} traces · {} spans ({} dropped) ==",
            self.now_us as f64 / 1_000_000.0,
            self.samples,
            self.traces,
            self.spans,
            self.spans_dropped,
        );
        if self.firing.is_empty() {
            out.push_str("alerts: all clear\n");
        } else {
            let _ = writeln!(out, "alerts FIRING: {}", self.firing.join(", "));
        }
        let _ = writeln!(out, "{:<44} {:>12} {:>12}", "series", "latest", "rate/s");
        for row in &self.series {
            let _ = writeln!(
                out,
                "{:<44} {:>12.1} {:>12.2}",
                row.key, row.latest, row.rate_per_sec
            );
        }
        if !self.alerts.is_empty() {
            out.push_str("-- alert transitions --\n");
            for a in &self.alerts {
                let _ = writeln!(out, "{}", a.render());
            }
        }
        out
    }

    /// Serializes the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"seed\":{},\"now_us\":{},\"samples\":{},\"traces\":{},\
             \"spans\":{},\"spans_dropped\":{},\"events\":{},",
            self.seed,
            self.now_us,
            self.samples,
            self.traces,
            self.spans,
            self.spans_dropped,
            self.events,
        );
        out.push_str("\"firing\":[");
        for (i, f) in self.firing.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(f));
        }
        out.push_str("],\"alerts\":[");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"fired\":{},\"at_us\":{},\"value\":{:.3},\
                 \"deterministic\":{}}}",
                json_escape(a.rule),
                a.fired,
                a.at.as_micros(),
                a.value,
                a.deterministic,
            );
        }
        out.push_str("],\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"key\":\"{}\",\"points\":{},\"latest\":{:.3},\"rate_per_sec\":{:.3}}}",
                json_escape(&s.key),
                s.points,
                s.latest,
                s.rate_per_sec,
            );
        }
        out.push_str("]}");
        out
    }

    /// Writes [`ObserveReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn save_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::SimTime;

    #[test]
    fn render_and_json_carry_alerts() {
        let report = ObserveReport {
            seed: 7,
            now_us: 35_000_000,
            samples: 35,
            traces: 4,
            spans: 12,
            spans_dropped: 0,
            events: 3,
            alerts: vec![AlertEvent {
                rule: "links-degraded",
                fired: true,
                at: SimTime::from_secs(11),
                value: 2.0,
                deterministic: true,
            }],
            firing: vec!["links-degraded"],
            series: vec![SeriesRow {
                key: "dataplane/links_degraded".into(),
                points: 35,
                latest: 2.0,
                rate_per_sec: 0.0,
            }],
        };
        let text = report.render();
        assert!(text.contains("alerts FIRING: links-degraded"));
        assert!(text.contains("dataplane/links_degraded"));
        let json = report.to_json();
        assert!(json.contains("\"rule\":\"links-degraded\""));
        assert!(json.contains("\"at_us\":11000000"));
    }
}
