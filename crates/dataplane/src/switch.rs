//! The simulated OpenFlow switch.

use athena_openflow::stats::PortStatsEntry;
use athena_openflow::{
    Action, FlowMod, FlowRemoved, FlowTable, MatchFields, PacketHeader, StatsReply, StatsRequest,
};
use athena_types::{Dpid, PortNo, SimTime};
use std::collections::HashMap;

/// A simulated OpenFlow switch: one flow table plus per-port counters.
///
/// # Examples
///
/// ```
/// use athena_dataplane::SimSwitch;
/// use athena_openflow::{Action, FlowMod, MatchFields, PacketHeader};
/// use athena_types::{Dpid, Ipv4Addr, PortNo, SimTime};
///
/// let mut sw = SimSwitch::new(Dpid::new(1), 4);
/// sw.apply_flow_mod(
///     &FlowMod::add(MatchFields::new(), 1, vec![Action::Output(PortNo::new(2))]),
///     SimTime::ZERO,
/// );
/// let pkt = PacketHeader::tcp_syn(PortNo::new(1), Ipv4Addr::new(1,1,1,1), 1, Ipv4Addr::new(2,2,2,2), 2);
/// let out = sw.process(&pkt, SimTime::ZERO, 1, 64);
/// assert_eq!(out, Some(vec![Action::Output(PortNo::new(2))]));
/// ```
#[derive(Debug, Clone)]
pub struct SimSwitch {
    dpid: Dpid,
    table: FlowTable,
    ports: HashMap<PortNo, PortStatsEntry>,
}

impl SimSwitch {
    /// Creates a switch with ports `1..=n_ports`.
    pub fn new(dpid: Dpid, n_ports: u32) -> Self {
        let mut ports = HashMap::new();
        for p in 1..=n_ports {
            let port_no = PortNo::new(p);
            ports.insert(
                port_no,
                PortStatsEntry {
                    port_no,
                    ..PortStatsEntry::default()
                },
            );
        }
        SimSwitch {
            dpid,
            table: FlowTable::new(0),
            ports,
        }
    }

    /// The switch's datapath id.
    pub fn dpid(&self) -> Dpid {
        self.dpid
    }

    /// The switch's port numbers.
    pub fn port_numbers(&self) -> Vec<PortNo> {
        let mut v: Vec<PortNo> = self.ports.keys().copied().collect();
        v.sort();
        v
    }

    /// Immutable access to the flow table.
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Applies a flow-mod, returning any flow-removed notifications (from
    /// delete commands).
    pub fn apply_flow_mod(&mut self, fm: &FlowMod, now: SimTime) -> Vec<FlowRemoved> {
        // OpenFlow switches silently ignore modify/delete misses.
        self.table.apply(fm, now).unwrap_or_default()
    }

    /// Performs a table lookup for a packet, crediting `packets`/`bytes`
    /// to the matched entry and to the rx side of the ingress port.
    ///
    /// Returns the matched entry's actions, or `None` on a table miss (the
    /// caller punts to the controller).
    pub fn process(
        &mut self,
        pkt: &PacketHeader,
        now: SimTime,
        packets: u64,
        bytes: u64,
    ) -> Option<Vec<Action>> {
        if let Some(port) = self.ports.get_mut(&pkt.in_port) {
            port.rx_packets += packets;
            port.rx_bytes += bytes;
        }
        let actions = self
            .table
            .lookup(pkt, now, packets, bytes)
            .map(|e| e.actions.clone());
        match &actions {
            Some(acts) => {
                for a in acts {
                    if let Some(out) = a.output_port() {
                        if let Some(port) = self.ports.get_mut(&out) {
                            port.tx_packets += packets;
                            port.tx_bytes += bytes;
                        }
                    }
                }
            }
            None => {
                // Count the miss against the ingress port as a drop only
                // if the caller decides to drop; the network layer calls
                // `count_drop` explicitly. Nothing to do here.
            }
        }
        actions
    }

    /// Table lookup without crediting any counters (the routing phase).
    pub fn peek(&self, pkt: &PacketHeader, now: SimTime) -> Option<Vec<Action>> {
        self.table.peek(pkt, now).map(|e| e.actions.clone())
    }

    /// Records dropped traffic on a port's tx side (capacity contention).
    pub fn count_tx_drop(&mut self, port: PortNo, packets: u64) {
        if let Some(p) = self.ports.get_mut(&port) {
            p.tx_dropped += packets;
        }
    }

    /// Records dropped traffic on a port's rx side (no route / no rule).
    pub fn count_rx_drop(&mut self, port: PortNo, packets: u64) {
        if let Some(p) = self.ports.get_mut(&port) {
            p.rx_dropped += packets;
        }
    }

    /// Expires timed-out flow entries.
    pub fn expire(&mut self, now: SimTime) -> Vec<FlowRemoved> {
        self.table.expire(now)
    }

    /// Serves a statistics request.
    pub fn stats(&self, req: &StatsRequest, now: SimTime) -> StatsReply {
        match req {
            StatsRequest::Flow { filter } => StatsReply::Flow({
                let mut entries = self.table.flow_stats(filter, now);
                for e in &mut entries {
                    e.table_id = 0;
                }
                entries
            }),
            StatsRequest::Aggregate { filter } => {
                StatsReply::Aggregate(self.table.aggregate_stats(filter))
            }
            StatsRequest::Port { port_no } => {
                let entries = if *port_no == PortNo::ANY {
                    let mut v: Vec<PortStatsEntry> = self.ports.values().copied().collect();
                    v.sort_by_key(|p| p.port_no);
                    v
                } else {
                    self.ports.get(port_no).copied().into_iter().collect()
                };
                StatsReply::Port(entries)
            }
            StatsRequest::Table => StatsReply::Table(vec![self.table.table_stats()]),
        }
    }

    /// Installed flow-entry count.
    pub fn flow_count(&self) -> usize {
        self.table.len()
    }

    /// Removes every flow entry (used by Cbench-style benchmarks between
    /// rounds).
    pub fn clear_flows(&mut self, now: SimTime) -> Vec<FlowRemoved> {
        self.apply_flow_mod(&FlowMod::delete(MatchFields::new()), now)
    }

    /// Simulates a full reboot: all flow state and all port counters are
    /// lost, exactly as on a real power-cycled switch. No `FLOW_REMOVED`
    /// notifications are generated — the state is simply gone. Returns
    /// the number of flow entries that were lost.
    pub fn reboot(&mut self, now: SimTime) -> usize {
        let lost = self.table.len();
        let _ = self.clear_flows(now);
        for (port_no, entry) in self.ports.iter_mut() {
            *entry = PortStatsEntry {
                port_no: *port_no,
                ..PortStatsEntry::default()
            };
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::Ipv4Addr;

    fn pkt(port: u32) -> PacketHeader {
        PacketHeader::tcp_syn(
            PortNo::new(port),
            Ipv4Addr::new(10, 0, 0, 1),
            1000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn miss_then_install_then_hit() {
        let mut sw = SimSwitch::new(Dpid::new(1), 4);
        assert_eq!(sw.process(&pkt(1), SimTime::ZERO, 1, 64), None);
        sw.apply_flow_mod(
            &FlowMod::add(
                MatchFields::exact_from_packet(&pkt(1)),
                10,
                vec![Action::Output(PortNo::new(2))],
            ),
            SimTime::ZERO,
        );
        let out = sw.process(&pkt(1), SimTime::ZERO, 1, 64).unwrap();
        assert_eq!(Action::first_output(&out), Some(PortNo::new(2)));
        assert_eq!(sw.flow_count(), 1);
    }

    #[test]
    fn port_counters_track_rx_and_tx() {
        let mut sw = SimSwitch::new(Dpid::new(1), 4);
        sw.apply_flow_mod(
            &FlowMod::add(MatchFields::new(), 1, vec![Action::Output(PortNo::new(3))]),
            SimTime::ZERO,
        );
        sw.process(&pkt(1), SimTime::ZERO, 5, 500);
        let StatsReply::Port(ports) = sw.stats(
            &StatsRequest::Port {
                port_no: PortNo::ANY,
            },
            SimTime::ZERO,
        ) else {
            panic!("expected port stats");
        };
        let p1 = ports.iter().find(|p| p.port_no == PortNo::new(1)).unwrap();
        let p3 = ports.iter().find(|p| p.port_no == PortNo::new(3)).unwrap();
        assert_eq!(p1.rx_packets, 5);
        assert_eq!(p1.rx_bytes, 500);
        assert_eq!(p3.tx_packets, 5);
        assert_eq!(p3.tx_bytes, 500);
    }

    #[test]
    fn stats_requests_cover_all_kinds() {
        let mut sw = SimSwitch::new(Dpid::new(1), 2);
        sw.apply_flow_mod(
            &FlowMod::add(MatchFields::new().with_tp_dst(80), 1, vec![]),
            SimTime::ZERO,
        );
        let flow = sw.stats(
            &StatsRequest::Flow {
                filter: MatchFields::new(),
            },
            SimTime::from_secs(1),
        );
        assert_eq!(flow.len(), 1);
        let agg = sw.stats(
            &StatsRequest::Aggregate {
                filter: MatchFields::new(),
            },
            SimTime::from_secs(1),
        );
        assert!(matches!(agg, StatsReply::Aggregate(a) if a.flow_count == 1));
        let table = sw.stats(&StatsRequest::Table, SimTime::from_secs(1));
        assert!(matches!(table, StatsReply::Table(ref t) if t[0].active_count == 1));
        let one_port = sw.stats(
            &StatsRequest::Port {
                port_no: PortNo::new(1),
            },
            SimTime::from_secs(1),
        );
        assert_eq!(one_port.len(), 1);
    }

    #[test]
    fn clear_flows_empties_table_and_reports() {
        let mut sw = SimSwitch::new(Dpid::new(1), 2);
        for p in [80u16, 443] {
            sw.apply_flow_mod(
                &FlowMod::add(MatchFields::new().with_tp_dst(p), 1, vec![]),
                SimTime::ZERO,
            );
        }
        let removed = sw.clear_flows(SimTime::from_secs(1));
        assert_eq!(removed.len(), 2);
        assert_eq!(sw.flow_count(), 0);
    }

    #[test]
    fn drop_counters() {
        let mut sw = SimSwitch::new(Dpid::new(1), 2);
        sw.count_tx_drop(PortNo::new(1), 3);
        sw.count_rx_drop(PortNo::new(2), 4);
        let StatsReply::Port(ports) = sw.stats(
            &StatsRequest::Port {
                port_no: PortNo::ANY,
            },
            SimTime::ZERO,
        ) else {
            panic!("expected port stats");
        };
        assert_eq!(ports[0].tx_dropped, 3);
        assert_eq!(ports[1].rx_dropped, 4);
    }
}
