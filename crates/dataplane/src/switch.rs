//! The simulated OpenFlow switch.

use athena_openflow::stats::PortStatsEntry;
use athena_openflow::{
    Action, EntryPos, FlowMod, FlowRemoved, FlowTable, MatchFields, PacketHeader, StatsReply,
    StatsRequest,
};
use athena_telemetry::{names, Counter, Telemetry};
use athena_types::{Dpid, PortNo, SimTime};
use std::collections::{HashMap, VecDeque};

/// Capacity of the per-switch exact-match lookup cache.
const FLOW_CACHE_CAPACITY: usize = 1024;

/// Snapshot of a switch's lookup-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowCacheStats {
    /// Lookups served from the cache (no table scan).
    pub hits: u64,
    /// Lookups that scanned the table (cold key or stale slot).
    pub misses: u64,
    /// Slots (re-)populated after a full lookup.
    pub insertions: u64,
    /// Whole-cache invalidations (flow-mods and expiries).
    pub invalidations: u64,
}

/// One cached lookup result: where the winning entry for an exact-match
/// key sat in the flow table, plus enough identity (the entry's own match
/// and priority — the winner for an exact key may be a wildcard rule) for
/// [`FlowTable::lookup_at`] to revalidate it.
#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    pos: EntryPos,
    stamp: u64,
}

/// An exact-match LRU cache over [`FlowTable`] lookups.
///
/// Keyed by the packet's exact header fields; a hit revalidates the
/// recorded table position via [`FlowTable::lookup_at`] so counters move
/// exactly as an uncached lookup would. Any structural table change
/// (flow-mod, expiry) invalidates the whole cache — positions recorded
/// before the change may be stale.
///
/// Recency is tracked with a lazy-deletion queue (stamped entries, stale
/// ones skipped at eviction) so the cache never iterates its `HashMap` —
/// iteration order must not leak into behaviour on the hot path.
#[derive(Debug, Clone, Default)]
struct FlowLookupCache {
    map: HashMap<MatchFields, CacheSlot>,
    order: VecDeque<(MatchFields, u64)>,
    stamp: u64,
    stats: FlowCacheStats,
    tel: CacheTelemetry,
}

/// Registry handles for the cache counters (detached until
/// [`SimSwitch::bind_telemetry`]; shared across switches — registration
/// is idempotent, so every switch resolves the same instruments).
#[derive(Debug, Clone, Default)]
struct CacheTelemetry {
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    invalidations: Counter,
}

impl FlowLookupCache {
    /// Looks up the cached slot for `key`, refreshing its recency.
    fn get(&mut self, key: &MatchFields) -> Option<CacheSlot> {
        self.stamp += 1;
        let stamp = self.stamp;
        let slot = self.map.get_mut(key)?;
        slot.stamp = stamp;
        let out = *slot;
        self.order.push_back((*key, stamp));
        self.compact();
        Some(out)
    }

    /// Records the winning entry for `key`, evicting the least recently
    /// used keys beyond capacity.
    fn insert(&mut self, key: MatchFields, pos: EntryPos) {
        self.stamp += 1;
        let slot = CacheSlot {
            pos,
            stamp: self.stamp,
        };
        self.map.insert(key, slot);
        self.order.push_back((key, self.stamp));
        while self.map.len() > FLOW_CACHE_CAPACITY {
            match self.order.pop_front() {
                // A queue entry is live only if it carries the key's
                // current stamp; older duplicates are skipped.
                Some((k, s)) => {
                    if self.map.get(&k).is_some_and(|slot| slot.stamp == s) {
                        self.map.remove(&k);
                    }
                }
                None => break,
            }
        }
        self.compact();
        self.stats.insertions += 1;
        self.tel.insertions.inc();
    }

    /// Drops every cached position (called on any structural change to
    /// the flow table).
    fn invalidate(&mut self) {
        if self.map.is_empty() {
            return;
        }
        self.map.clear();
        self.order.clear();
        self.stats.invalidations += 1;
        self.tel.invalidations.inc();
    }

    /// Rebuilds the recency queue once stale entries dominate, keeping
    /// its length proportional to the live map.
    fn compact(&mut self) {
        if self.order.len() < self.map.len().saturating_mul(4).max(64) {
            return;
        }
        let map = &self.map;
        self.order
            .retain(|(k, s)| map.get(k).is_some_and(|slot| slot.stamp == *s));
    }

    fn hit(&mut self) {
        self.stats.hits += 1;
        self.tel.hits.inc();
    }

    fn miss(&mut self) {
        self.stats.misses += 1;
        self.tel.misses.inc();
    }
}

/// A simulated OpenFlow switch: one flow table plus per-port counters.
///
/// # Examples
///
/// ```
/// use athena_dataplane::SimSwitch;
/// use athena_openflow::{Action, FlowMod, MatchFields, PacketHeader};
/// use athena_types::{Dpid, Ipv4Addr, PortNo, SimTime};
///
/// let mut sw = SimSwitch::new(Dpid::new(1), 4);
/// sw.apply_flow_mod(
///     &FlowMod::add(MatchFields::new(), 1, vec![Action::Output(PortNo::new(2))]),
///     SimTime::ZERO,
/// );
/// let pkt = PacketHeader::tcp_syn(PortNo::new(1), Ipv4Addr::new(1,1,1,1), 1, Ipv4Addr::new(2,2,2,2), 2);
/// let out = sw.process(&pkt, SimTime::ZERO, 1, 64);
/// assert_eq!(out, Some(vec![Action::Output(PortNo::new(2))]));
/// ```
#[derive(Debug, Clone)]
pub struct SimSwitch {
    dpid: Dpid,
    table: FlowTable,
    ports: HashMap<PortNo, PortStatsEntry>,
    cache: FlowLookupCache,
}

impl SimSwitch {
    /// Creates a switch with ports `1..=n_ports`.
    pub fn new(dpid: Dpid, n_ports: u32) -> Self {
        let mut ports = HashMap::new();
        for p in 1..=n_ports {
            let port_no = PortNo::new(p);
            ports.insert(
                port_no,
                PortStatsEntry {
                    port_no,
                    ..PortStatsEntry::default()
                },
            );
        }
        SimSwitch {
            dpid,
            table: FlowTable::new(0),
            ports,
            cache: FlowLookupCache::default(),
        }
    }

    /// Routes the lookup-cache counters into `tel` (aggregated across
    /// switches as `dataplane/cache/*`).
    pub fn bind_telemetry(&mut self, tel: &Telemetry) {
        let m = tel.metrics();
        let sub = names::dataplane::SUBSYSTEM;
        self.cache.tel = CacheTelemetry {
            hits: m.counter(sub, names::dataplane::CACHE_HITS),
            misses: m.counter(sub, names::dataplane::CACHE_MISSES),
            insertions: m.counter(sub, names::dataplane::CACHE_INSERTIONS),
            invalidations: m.counter(sub, names::dataplane::CACHE_INVALIDATIONS),
        };
    }

    /// Snapshot of this switch's lookup-cache counters.
    pub fn cache_stats(&self) -> FlowCacheStats {
        self.cache.stats
    }

    /// The switch's datapath id.
    pub fn dpid(&self) -> Dpid {
        self.dpid
    }

    /// The switch's port numbers.
    pub fn port_numbers(&self) -> Vec<PortNo> {
        let mut v: Vec<PortNo> = self.ports.keys().copied().collect();
        v.sort();
        v
    }

    /// Immutable access to the flow table.
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// The earliest deadline at which any entry can expire, or `None`
    /// when every entry is permanent (used to arm expiry wake-ups on
    /// the dataplane's timing wheel instead of scanning every tick).
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.table.next_expiry()
    }

    /// Applies a flow-mod, returning any flow-removed notifications (from
    /// delete commands).
    pub fn apply_flow_mod(&mut self, fm: &FlowMod, now: SimTime) -> Vec<FlowRemoved> {
        // Any flow-mod may reorder or remove entries: cached positions
        // are stale, so drop them all.
        self.cache.invalidate();
        // OpenFlow switches silently ignore modify/delete misses.
        self.table.apply(fm, now).unwrap_or_default()
    }

    /// Performs a table lookup for a packet, crediting `packets`/`bytes`
    /// to the matched entry and to the rx side of the ingress port.
    ///
    /// Returns the matched entry's actions, or `None` on a table miss (the
    /// caller punts to the controller).
    pub fn process(
        &mut self,
        pkt: &PacketHeader,
        now: SimTime,
        packets: u64,
        bytes: u64,
    ) -> Option<Vec<Action>> {
        if let Some(port) = self.ports.get_mut(&pkt.in_port) {
            port.rx_packets += packets;
            port.rx_bytes += bytes;
        }
        let key = MatchFields::exact_from_packet(pkt);
        let cached = self.cache.get(&key).and_then(|slot| {
            self.table
                .lookup_at(&slot.pos, pkt, now, packets, bytes)
                .map(|e| e.actions.clone())
        });
        let actions = match cached {
            Some(acts) => {
                self.cache.hit();
                Some(acts)
            }
            None => {
                // Cold key or stale slot: full lookup, then (re)cache the
                // winning position. Counters moved only here — a failed
                // `lookup_at` moves nothing, so totals match an uncached
                // switch exactly.
                self.cache.miss();
                match self.table.lookup_indexed(pkt, now, packets, bytes) {
                    Some((idx, e)) => {
                        let pos = EntryPos {
                            idx,
                            priority: e.priority,
                            match_fields: e.match_fields,
                        };
                        let acts = e.actions.clone();
                        self.cache.insert(key, pos);
                        Some(acts)
                    }
                    None => None,
                }
            }
        };
        match &actions {
            Some(acts) => {
                for a in acts {
                    if let Some(out) = a.output_port() {
                        if let Some(port) = self.ports.get_mut(&out) {
                            port.tx_packets += packets;
                            port.tx_bytes += bytes;
                        }
                    }
                }
            }
            None => {
                // Count the miss against the ingress port as a drop only
                // if the caller decides to drop; the network layer calls
                // `count_drop` explicitly. Nothing to do here.
            }
        }
        actions
    }

    /// Table lookup without crediting any counters (the routing phase).
    pub fn peek(&self, pkt: &PacketHeader, now: SimTime) -> Option<Vec<Action>> {
        self.table.peek(pkt, now).map(|e| e.actions.clone())
    }

    /// Records dropped traffic on a port's tx side (capacity contention).
    pub fn count_tx_drop(&mut self, port: PortNo, packets: u64) {
        if let Some(p) = self.ports.get_mut(&port) {
            p.tx_dropped += packets;
        }
    }

    /// Records dropped traffic on a port's rx side (no route / no rule).
    pub fn count_rx_drop(&mut self, port: PortNo, packets: u64) {
        if let Some(p) = self.ports.get_mut(&port) {
            p.rx_dropped += packets;
        }
    }

    /// Expires timed-out flow entries.
    pub fn expire(&mut self, now: SimTime) -> Vec<FlowRemoved> {
        let before = self.table.len();
        let removed = self.table.expire(now);
        // `removed` only holds entries that asked for FLOW_REMOVED, so
        // detect structural change by length: any removal shifts the
        // positions the cache recorded.
        if self.table.len() != before {
            self.cache.invalidate();
        }
        removed
    }

    /// Serves a statistics request.
    pub fn stats(&self, req: &StatsRequest, now: SimTime) -> StatsReply {
        match req {
            StatsRequest::Flow { filter } => StatsReply::Flow({
                let mut entries = self.table.flow_stats(filter, now);
                for e in &mut entries {
                    e.table_id = 0;
                }
                entries
            }),
            StatsRequest::Aggregate { filter } => {
                StatsReply::Aggregate(self.table.aggregate_stats(filter))
            }
            StatsRequest::Port { port_no } => {
                let entries = if *port_no == PortNo::ANY {
                    let mut v: Vec<PortStatsEntry> = self.ports.values().copied().collect();
                    v.sort_by_key(|p| p.port_no);
                    v
                } else {
                    self.ports.get(port_no).copied().into_iter().collect()
                };
                StatsReply::Port(entries)
            }
            StatsRequest::Table => StatsReply::Table(vec![self.table.table_stats()]),
        }
    }

    /// Installed flow-entry count.
    pub fn flow_count(&self) -> usize {
        self.table.len()
    }

    /// Removes every flow entry (used by Cbench-style benchmarks between
    /// rounds).
    pub fn clear_flows(&mut self, now: SimTime) -> Vec<FlowRemoved> {
        self.apply_flow_mod(&FlowMod::delete(MatchFields::new()), now)
    }

    /// Simulates a full reboot: all flow state and all port counters are
    /// lost, exactly as on a real power-cycled switch. No `FLOW_REMOVED`
    /// notifications are generated — the state is simply gone. Returns
    /// the number of flow entries that were lost.
    pub fn reboot(&mut self, now: SimTime) -> usize {
        let lost = self.table.len();
        let _ = self.clear_flows(now);
        for (port_no, entry) in self.ports.iter_mut() {
            *entry = PortStatsEntry {
                port_no: *port_no,
                ..PortStatsEntry::default()
            };
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::Ipv4Addr;

    fn pkt(port: u32) -> PacketHeader {
        PacketHeader::tcp_syn(
            PortNo::new(port),
            Ipv4Addr::new(10, 0, 0, 1),
            1000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn miss_then_install_then_hit() {
        let mut sw = SimSwitch::new(Dpid::new(1), 4);
        assert_eq!(sw.process(&pkt(1), SimTime::ZERO, 1, 64), None);
        sw.apply_flow_mod(
            &FlowMod::add(
                MatchFields::exact_from_packet(&pkt(1)),
                10,
                vec![Action::Output(PortNo::new(2))],
            ),
            SimTime::ZERO,
        );
        let out = sw.process(&pkt(1), SimTime::ZERO, 1, 64).unwrap();
        assert_eq!(Action::first_output(&out), Some(PortNo::new(2)));
        assert_eq!(sw.flow_count(), 1);
    }

    #[test]
    fn port_counters_track_rx_and_tx() {
        let mut sw = SimSwitch::new(Dpid::new(1), 4);
        sw.apply_flow_mod(
            &FlowMod::add(MatchFields::new(), 1, vec![Action::Output(PortNo::new(3))]),
            SimTime::ZERO,
        );
        sw.process(&pkt(1), SimTime::ZERO, 5, 500);
        let StatsReply::Port(ports) = sw.stats(
            &StatsRequest::Port {
                port_no: PortNo::ANY,
            },
            SimTime::ZERO,
        ) else {
            panic!("expected port stats");
        };
        let p1 = ports.iter().find(|p| p.port_no == PortNo::new(1)).unwrap();
        let p3 = ports.iter().find(|p| p.port_no == PortNo::new(3)).unwrap();
        assert_eq!(p1.rx_packets, 5);
        assert_eq!(p1.rx_bytes, 500);
        assert_eq!(p3.tx_packets, 5);
        assert_eq!(p3.tx_bytes, 500);
    }

    #[test]
    fn stats_requests_cover_all_kinds() {
        let mut sw = SimSwitch::new(Dpid::new(1), 2);
        sw.apply_flow_mod(
            &FlowMod::add(MatchFields::new().with_tp_dst(80), 1, vec![]),
            SimTime::ZERO,
        );
        let flow = sw.stats(
            &StatsRequest::Flow {
                filter: MatchFields::new(),
            },
            SimTime::from_secs(1),
        );
        assert_eq!(flow.len(), 1);
        let agg = sw.stats(
            &StatsRequest::Aggregate {
                filter: MatchFields::new(),
            },
            SimTime::from_secs(1),
        );
        assert!(matches!(agg, StatsReply::Aggregate(a) if a.flow_count == 1));
        let table = sw.stats(&StatsRequest::Table, SimTime::from_secs(1));
        assert!(matches!(table, StatsReply::Table(ref t) if t[0].active_count == 1));
        let one_port = sw.stats(
            &StatsRequest::Port {
                port_no: PortNo::new(1),
            },
            SimTime::from_secs(1),
        );
        assert_eq!(one_port.len(), 1);
    }

    #[test]
    fn clear_flows_empties_table_and_reports() {
        let mut sw = SimSwitch::new(Dpid::new(1), 2);
        for p in [80u16, 443] {
            sw.apply_flow_mod(
                &FlowMod::add(MatchFields::new().with_tp_dst(p), 1, vec![]),
                SimTime::ZERO,
            );
        }
        let removed = sw.clear_flows(SimTime::from_secs(1));
        assert_eq!(removed.len(), 2);
        assert_eq!(sw.flow_count(), 0);
    }

    #[test]
    fn cache_serves_repeat_lookups_with_identical_counters() {
        let mut sw = SimSwitch::new(Dpid::new(1), 4);
        sw.apply_flow_mod(
            &FlowMod::add(
                MatchFields::exact_from_packet(&pkt(1)),
                10,
                vec![Action::Output(PortNo::new(2))],
            ),
            SimTime::ZERO,
        );
        for i in 0..5 {
            let out = sw.process(&pkt(1), SimTime::from_secs(i), 2, 100).unwrap();
            assert_eq!(Action::first_output(&out), Some(PortNo::new(2)));
        }
        let stats = sw.cache_stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 4, "{stats:?}");
        assert_eq!(stats.insertions, 1, "{stats:?}");
        // Table counters match what 5 uncached lookups would produce.
        assert_eq!(sw.table().lookup_count(), 5);
        assert_eq!(sw.table().matched_count(), 5);
        let entry = sw.table().iter().next().unwrap();
        assert_eq!(entry.packet_count, 10);
        assert_eq!(entry.byte_count, 500);
        assert_eq!(entry.last_matched_at, SimTime::from_secs(4));
    }

    #[test]
    fn flow_mod_invalidates_cached_positions() {
        let mut sw = SimSwitch::new(Dpid::new(1), 4);
        sw.apply_flow_mod(
            &FlowMod::add(MatchFields::new(), 1, vec![Action::Output(PortNo::new(2))]),
            SimTime::ZERO,
        );
        sw.process(&pkt(1), SimTime::ZERO, 1, 64); // warm the cache
        assert_eq!(sw.cache_stats().hits + sw.cache_stats().misses, 1);
        // A higher-priority rule for the same packet must win immediately.
        sw.apply_flow_mod(
            &FlowMod::add(
                MatchFields::exact_from_packet(&pkt(1)),
                50,
                vec![Action::Output(PortNo::new(3))],
            ),
            SimTime::ZERO,
        );
        let out = sw.process(&pkt(1), SimTime::ZERO, 1, 64).unwrap();
        assert_eq!(Action::first_output(&out), Some(PortNo::new(3)));
        assert_eq!(sw.cache_stats().invalidations, 1);
    }

    #[test]
    fn expiry_invalidates_cache_even_without_notifications() {
        let mut sw = SimSwitch::new(Dpid::new(1), 4);
        // No FLOW_REMOVED requested: `expire` returns nothing, but the
        // cache must still notice the structural change.
        let mut fm = FlowMod::add(
            MatchFields::exact_from_packet(&pkt(1)),
            10,
            vec![Action::Output(PortNo::new(2))],
        )
        .with_idle_timeout(athena_types::SimDuration::from_secs(2));
        fm.send_flow_removed = false;
        sw.apply_flow_mod(&fm, SimTime::ZERO);
        assert!(sw.process(&pkt(1), SimTime::from_secs(1), 1, 64).is_some());
        let removed = sw.expire(SimTime::from_secs(10));
        assert!(removed.is_empty());
        assert_eq!(sw.flow_count(), 0);
        assert_eq!(sw.cache_stats().invalidations, 1);
        // The stale position must not resurrect the entry.
        assert_eq!(sw.process(&pkt(1), SimTime::from_secs(10), 1, 64), None);
    }

    #[test]
    fn cache_evicts_beyond_capacity_without_wrong_answers() {
        let mut sw = SimSwitch::new(Dpid::new(1), 4);
        sw.apply_flow_mod(
            &FlowMod::add(MatchFields::new(), 1, vec![Action::Output(PortNo::new(2))]),
            SimTime::ZERO,
        );
        // Far more distinct exact keys than the cache holds.
        for i in 0..(super::FLOW_CACHE_CAPACITY as u16 + 500) {
            let p = PacketHeader::tcp_syn(
                PortNo::new(1),
                Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
                1000 + i,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            );
            let out = sw.process(&p, SimTime::ZERO, 1, 64).unwrap();
            assert_eq!(Action::first_output(&out), Some(PortNo::new(2)));
        }
        let stats = sw.cache_stats();
        assert_eq!(
            stats.misses as usize,
            super::FLOW_CACHE_CAPACITY + 500,
            "distinct keys never hit"
        );
    }

    #[test]
    fn drop_counters() {
        let mut sw = SimSwitch::new(Dpid::new(1), 2);
        sw.count_tx_drop(PortNo::new(1), 3);
        sw.count_rx_drop(PortNo::new(2), 4);
        let StatsReply::Port(ports) = sw.stats(
            &StatsRequest::Port {
                port_no: PortNo::ANY,
            },
            SimTime::ZERO,
        ) else {
            panic!("expected port stats");
        };
        assert_eq!(ports[0].tx_dropped, 3);
        assert_eq!(ports[1].rx_dropped, 4);
    }
}
