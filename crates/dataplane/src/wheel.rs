//! A hierarchical timing wheel over virtual time.
//!
//! The per-tick flow-expiry pass used to scan every switch's full flow
//! table every tick — O(total flows) per tick, which caps topology size.
//! The wheel makes expiry O(due entries): a wake-up is scheduled at the
//! tick a deadline falls on, and advancing the wheel by one tick visits
//! only the slot that tick hashes to (plus a cascade when a coarser
//! level's span wraps).
//!
//! The wheel is *lazy*: entries are never cancelled or re-keyed. A
//! deadline that moves later (idle timeout re-armed by traffic, entry
//! deleted, switch rebooted) leaves its old wake-up in place; the owner
//! re-checks the real deadline when the wake-up fires and re-arms if it
//! is not yet due. Deadlines only ever move *earlier* through a new
//! `schedule` call, so a wake-up always exists at or before the true
//! deadline. Spurious fires are counted by the caller
//! (`dataplane/wheel_spurious`), not hidden.
//!
//! Determinism: [`TimingWheel::advance`] returns due entries sorted by
//! `(due, key)`, so fire order is a pure function of the scheduled set —
//! independent of insertion order, hash state, or thread count.

/// Slots per level. 64 keeps slot indexing to shifts/masks.
const SLOTS: u64 = 64;
/// Hierarchy depth. Four levels cover `64^4` ≈ 16.7M time units; with a
/// 1-second tick that is ~194 days of virtual time. Entries past the
/// horizon go to an unsorted overflow list re-examined when the top
/// level wraps.
const LEVELS: usize = 4;

/// A hierarchical timing wheel mapping `u64` time units to keys.
///
/// Time is whatever unit the caller picks (the dataplane uses tick
/// indices). `schedule` may be called with any due time; entries at or
/// before the wheel's current time fire on the next [`TimingWheel::advance`].
#[derive(Debug, Clone)]
pub struct TimingWheel<K> {
    now: u64,
    /// `levels[l][slot]` holds entries whose due time hashes to `slot`
    /// at granularity `64^l`.
    levels: Vec<Vec<Vec<(u64, K)>>>,
    /// Entries beyond the hierarchy's horizon.
    overflow: Vec<(u64, K)>,
    len: usize,
    cascades: u64,
}

impl<K: Ord + Copy> TimingWheel<K> {
    /// Creates a wheel positioned at `start`; the first `advance` fires
    /// entries due after `start`.
    pub fn new(start: u64) -> Self {
        TimingWheel {
            now: start,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            len: 0,
            cascades: 0,
        }
    }

    /// Number of scheduled (not yet fired) entries, including stale ones.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// How many times a coarser level spilled into a finer one.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Schedules `key` to fire once `advance` passes `due`. A due time
    /// at or before the current time fires on the next advance.
    pub fn schedule(&mut self, due: u64, key: K) {
        let due = due.max(self.now + 1);
        self.len += 1;
        self.insert(due, key);
    }

    fn insert(&mut self, due: u64, key: K) {
        debug_assert!(due > self.now);
        let delta = due - self.now;
        let mut span = SLOTS;
        let mut granularity = 1u64;
        for level in &mut self.levels {
            if delta <= span {
                let slot = ((due / granularity) % SLOTS) as usize;
                level[slot].push((due, key));
                return;
            }
            span = span.saturating_mul(SLOTS);
            granularity *= SLOTS;
        }
        self.overflow.push((due, key));
    }

    /// Advances the wheel to `to`, returning every entry with
    /// `due <= to`, sorted by `(due, key)`.
    pub fn advance(&mut self, to: u64) -> Vec<(u64, K)> {
        let mut fired = Vec::new();
        while self.now < to {
            self.now += 1;
            self.cascade_boundaries();
            let slot = (self.now % SLOTS) as usize;
            // Everything in a level-0 slot was (re-)inserted within the
            // last 64 units, so reaching the slot means it is due now.
            let due_now = std::mem::take(&mut self.levels[0][slot]);
            for (due, key) in due_now {
                debug_assert!(due <= self.now);
                fired.push((due.min(self.now), key));
            }
        }
        self.len -= fired.len();
        fired.sort_unstable();
        fired
    }

    /// At each `64^l` boundary, spills level `l`'s current slot down
    /// into finer levels (or into `fired` on the next slot visit).
    fn cascade_boundaries(&mut self) {
        let mut granularity = SLOTS;
        for l in 1..LEVELS {
            if !self.now.is_multiple_of(granularity) {
                break;
            }
            let slot = ((self.now / granularity) % SLOTS) as usize;
            let entries = std::mem::take(&mut self.levels[l][slot]);
            if !entries.is_empty() {
                self.cascades += 1;
            }
            for (due, key) in entries {
                if due <= self.now {
                    // Due exactly at this boundary: land it in the
                    // level-0 slot the fire loop is about to visit.
                    self.levels[0][(self.now % SLOTS) as usize].push((due, key));
                } else {
                    self.insert(due, key);
                }
            }
            granularity = granularity.saturating_mul(SLOTS);
        }
        // Top-level wrap: re-examine the overflow list.
        if self.now.is_multiple_of(granularity) && !self.overflow.is_empty() {
            self.cascades += 1;
            let entries = std::mem::take(&mut self.overflow);
            for (due, key) in entries {
                if due <= self.now {
                    self.levels[0][(self.now % SLOTS) as usize].push((due, key));
                } else {
                    self.insert(due, key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: a sorted list, fired by linear scan.
    #[derive(Default)]
    struct Naive {
        entries: Vec<(u64, u32)>,
    }

    impl Naive {
        fn schedule(&mut self, now: u64, due: u64, key: u32) {
            self.entries.push((due.max(now + 1), key));
        }
        fn advance(&mut self, to: u64) -> Vec<(u64, u32)> {
            let mut fired: Vec<(u64, u32)> = self
                .entries
                .iter()
                .copied()
                .filter(|(d, _)| *d <= to)
                .collect();
            self.entries.retain(|(d, _)| *d > to);
            fired.sort_unstable();
            fired
        }
    }

    #[test]
    fn fires_in_due_then_key_order() {
        let mut w = TimingWheel::new(0);
        w.schedule(5, 2u32);
        w.schedule(3, 9);
        w.schedule(5, 1);
        assert_eq!(w.advance(10), vec![(3, 9), (5, 1), (5, 2)]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_due_fires_on_next_advance() {
        let mut w = TimingWheel::new(100);
        w.schedule(7, 1u32);
        assert_eq!(w.advance(101), vec![(101, 1)]);
    }

    #[test]
    fn spans_every_level_and_overflow() {
        let mut w = TimingWheel::new(0);
        // One entry per level: 1 (L0), 65 (L1), 64^2+1 (L2), 64^3+1 (L3),
        // and one past the horizon.
        let dues = [1u64, 65, 64 * 64 + 1, 64 * 64 * 64 + 1, 64_u64.pow(4) + 3];
        for (i, d) in dues.iter().enumerate() {
            w.schedule(*d, i as u32);
        }
        assert_eq!(w.len(), 5);
        let fired = w.advance(64_u64.pow(4) + 10);
        let got: Vec<(u64, u32)> = fired;
        assert_eq!(
            got,
            dues.iter()
                .enumerate()
                .map(|(i, d)| (*d, i as u32))
                .collect::<Vec<_>>()
        );
        assert!(w.cascades() > 0);
    }

    #[test]
    fn matches_naive_reference_on_mixed_sequence() {
        // Deterministic pseudo-random walk (splitmix64) interleaving
        // schedules and advances; the wheel must match the sorted scan.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut w = TimingWheel::new(0);
        let mut n = Naive::default();
        let mut now = 0u64;
        for i in 0..2000u32 {
            let r = next();
            if r % 3 != 0 {
                let horizon = match r % 5 {
                    0 => 5,
                    1 => 70,
                    2 => 5_000,
                    3 => 300_000,
                    _ => 20_000_000,
                };
                let due = now + 1 + next() % horizon;
                w.schedule(due, i);
                n.schedule(now, due, i);
            } else {
                now += 1 + next() % 200;
                assert_eq!(w.advance(now), n.advance(now), "at t={now}");
            }
        }
        now += 30_000_000;
        assert_eq!(w.advance(now), n.advance(now));
        assert!(w.is_empty());
    }
}
