//! The network event loop: flow activation, per-tick traffic crediting
//! with link contention, flow-table expiry, and the synchronous control
//! channel.

use crate::flow::{ActiveFlow, FlowSpec};
use crate::link::{LinkModel, SimLink};
use crate::switch::SimSwitch;
use crate::topology::{HostSpec, Topology};
use crate::wheel::TimingWheel;
use athena_observe::Observe;
use athena_openflow::{Action, OfMessage, PacketHeader};
use athena_telemetry::{names, Counter, Gauge, Histogram, Telemetry};
use athena_types::{Dpid, FiveTuple, Ipv4Addr, LinkId, PortNo, SimDuration, SimTime, Xid};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The data plane's view of its controllers.
///
/// The simulator delivers southbound messages (packet-ins, flow-removed,
/// stats replies) synchronously and applies whatever commands come back.
/// [`ControllerLink::on_tick`] lets the control plane act on its own
/// schedule (statistics polling).
pub trait ControllerLink {
    /// Handles one southbound message; returns commands to apply.
    fn on_message(&mut self, from: Dpid, msg: OfMessage, now: SimTime) -> Vec<(Dpid, OfMessage)>;

    /// Called once per simulation tick; returns commands to apply (e.g.
    /// statistics requests).
    fn on_tick(&mut self, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        let _ = now;
        Vec::new()
    }

    /// Handles a batch of packet-ins punted in one tick, returning the
    /// concatenated commands in batch order.
    ///
    /// The default loops [`ControllerLink::on_message`], so every
    /// controller is batch-capable; implementations that can amortize
    /// per-message overhead (span setup, journalling, counter traffic)
    /// override it — see `athena-controller`'s `ControllerCluster`. An
    /// override must produce the same commands, in the same order, as
    /// the sequential loop.
    fn on_packet_in_batch(
        &mut self,
        batch: Vec<(Dpid, OfMessage)>,
        now: SimTime,
    ) -> Vec<(Dpid, OfMessage)> {
        let mut out = Vec::new();
        for (dpid, msg) in batch {
            out.extend(self.on_message(dpid, msg, now));
        }
        out
    }
}

/// How the per-tick flow-expiry pass finds due entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpiryMode {
    /// Hierarchical timing-wheel wake-ups: O(due switches) per tick.
    #[default]
    Wheel,
    /// The pre-wheel reference: scan every switch's full table every
    /// tick, O(total flows). Kept for differential tests (the wheel
    /// must produce the identical FLOW_REMOVED stream) and as the
    /// benchmark baseline the scale gate measures against.
    Scan,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// The traffic-crediting tick.
    pub tick: SimDuration,
    /// How many times a table miss may punt to the controller per hop
    /// before the packet is dropped.
    pub max_punt_retries: usize,
    /// When set, every southbound message is encoded to its OpenFlow wire
    /// form and decoded back before delivery (and the round-trip is
    /// asserted lossless) — the control channel then exercises the real
    /// codec, at the cost of the encode/decode work.
    pub wire_mode: Option<athena_openflow::OfVersion>,
    /// How flow expiry locates due entries each tick.
    pub expiry: ExpiryMode,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            tick: SimDuration::from_secs(1),
            max_punt_retries: 1,
            wire_mode: None,
            expiry: ExpiryMode::Wheel,
        }
    }
}

/// Counters the simulator exposes after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkCounters {
    /// Packet-in messages sent to the control plane.
    pub packet_ins: u64,
    /// Flow-removed messages sent to the control plane.
    pub flow_removeds: u64,
    /// Bytes delivered end-to-end.
    pub delivered_bytes: u64,
    /// Bytes dropped (congestion or no route).
    pub dropped_bytes: u64,
}

/// The simulated network.
///
/// See the [crate documentation](crate) for the simulation model.
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    config: NetworkConfig,
    switches: HashMap<Dpid, SimSwitch>,
    links: HashMap<LinkId, SimLink>,
    pending: Vec<FlowSpec>, // sorted by start time, descending (pop from end)
    active: Vec<ActiveFlow>,
    now: SimTime,
    counters: NetworkCounters,
    next_xid: u32,
    tel: NetTelemetry,
    observe: Observe,
    /// Expiry wake-ups keyed on tick index (lazy cancellation: stale
    /// wake-ups fire spuriously and re-arm — see [`crate::wheel`]).
    wheel: TimingWheel<Dpid>,
    /// Earliest outstanding wake-up tick per switch (arm dedup).
    armed: HashMap<Dpid, u64>,
    /// `hosts[i]` by IP — first match wins, like the linear scan it
    /// replaces. O(1) where `Topology::host_by_ip` is O(hosts).
    host_index: HashMap<Ipv4Addr, usize>,
    /// Unidirectional link leaving `(dpid, port)` — O(1) `link_from`.
    egress: HashMap<(Dpid, PortNo), LinkId>,
    /// Host-facing `(dpid, port)` pairs — O(1) delivery check.
    host_ports: HashSet<(Dpid, PortNo)>,
}

/// The network's telemetry instruments (detached until
/// [`Network::bind_telemetry`]).
#[derive(Debug, Default)]
struct NetTelemetry {
    step_ns: Histogram,
    packet_ins: Counter,
    flow_removeds: Counter,
    delivered_bytes: Counter,
    dropped_bytes: Counter,
    links_degraded: Gauge,
    switch_reboots: Counter,
    link_queue_drops: Counter,
    link_latency_us: Histogram,
    wheel_armed: Counter,
    wheel_fired: Counter,
    wheel_spurious: Counter,
    /// Kept for run spans and the per-switch table gauges.
    handle: Option<Telemetry>,
}

impl Network {
    /// Builds a network from a topology with the default configuration.
    pub fn new(topology: Topology) -> Self {
        Self::with_config(topology, NetworkConfig::default())
    }

    /// Builds a network with an explicit configuration.
    pub fn with_config(topology: Topology, config: NetworkConfig) -> Self {
        let mut switches = HashMap::new();
        for s in &topology.switches {
            switches.insert(s.dpid, SimSwitch::new(s.dpid, s.n_ports));
        }
        let mut links = HashMap::new();
        let mut egress = HashMap::new();
        for l in &topology.links {
            let fwd = LinkId::new(l.a.0, l.a.1, l.b.0, l.b.1);
            links.insert(fwd, SimLink::new(fwd, l.capacity_bps));
            let rev = fwd.reversed();
            links.insert(rev, SimLink::new(rev, l.capacity_bps));
            // First match wins, like Topology::link_from's scan.
            egress.entry(l.a).or_insert(fwd);
            egress.entry(l.b).or_insert(rev);
        }
        let mut host_index = HashMap::new();
        let mut host_ports = HashSet::new();
        for (i, h) in topology.hosts.iter().enumerate() {
            host_index.entry(h.ip).or_insert(i);
            host_ports.insert((h.switch, h.port));
        }
        Network {
            topology,
            config,
            switches,
            links,
            pending: Vec::new(),
            active: Vec::new(),
            now: SimTime::ZERO,
            counters: NetworkCounters::default(),
            next_xid: 1,
            tel: NetTelemetry::default(),
            observe: Observe::disabled(),
            wheel: TimingWheel::new(0),
            armed: HashMap::new(),
            host_index,
            egress,
            host_ports,
        }
    }

    /// The host (if any) owning `ip`, via the constructed-once index.
    fn host_by_ip(&self, ip: Ipv4Addr) -> Option<HostSpec> {
        self.host_index
            .get(&ip)
            .and_then(|i| self.topology.hosts.get(*i))
            .copied()
    }

    /// The link leaving `(dpid, port)`, via the constructed-once index.
    fn link_from(&self, dpid: Dpid, port: PortNo) -> Option<LinkId> {
        self.egress.get(&(dpid, port)).copied()
    }

    /// The wheel's tick unit for a deadline: the first tick boundary at
    /// or after it (the naive scan removed an entry at the first tick
    /// `t` with `expires_at <= t`).
    fn tick_of(&self, t: SimTime) -> u64 {
        t.as_micros().div_ceil(self.config.tick.as_micros().max(1))
    }

    /// Schedules an expiry wake-up for `dpid` at its table's next
    /// deadline, unless an earlier or equal wake-up is outstanding.
    fn arm_switch(&mut self, dpid: Dpid) {
        if self.config.expiry == ExpiryMode::Scan {
            return;
        }
        let Some(next) = self.switches.get(&dpid).and_then(|sw| sw.next_expiry()) else {
            return;
        };
        // Clamp to the wheel's next firable tick so `armed` always names
        // the slot the entry actually landed in (schedule clamps too; an
        // unclamped record would suppress every future re-arm).
        let due = self.tick_of(next).max(self.wheel.now() + 1);
        match self.armed.get(&dpid) {
            Some(armed) if *armed <= due => {}
            _ => {
                self.wheel.schedule(due, dpid);
                self.armed.insert(dpid, due);
                self.tel.wheel_armed.inc();
            }
        }
    }

    /// Routes the simulator's counters, per-tick step latency, and
    /// per-switch flow-table lookup totals into `tel`.
    pub fn bind_telemetry(&mut self, tel: &Telemetry) {
        for sw in self.switches.values_mut() {
            sw.bind_telemetry(tel);
        }
        let m = tel.metrics();
        let sub = names::dataplane::SUBSYSTEM;
        self.tel = NetTelemetry {
            step_ns: m.histogram(sub, names::dataplane::STEP_NS),
            packet_ins: m.counter(sub, names::dataplane::PACKET_INS),
            flow_removeds: m.counter(sub, names::dataplane::FLOW_REMOVEDS),
            delivered_bytes: m.counter(sub, names::dataplane::DELIVERED_BYTES),
            dropped_bytes: m.counter(sub, names::dataplane::DROPPED_BYTES),
            links_degraded: m.gauge(sub, names::dataplane::LINKS_DEGRADED),
            switch_reboots: m.counter(sub, names::dataplane::SWITCH_REBOOTS),
            link_queue_drops: m.counter(sub, names::dataplane::LINK_QUEUE_DROPS),
            link_latency_us: m.histogram(sub, names::dataplane::LINK_LATENCY_US),
            wheel_armed: m.counter(sub, names::dataplane::WHEEL_ARMED),
            wheel_fired: m.counter(sub, names::dataplane::WHEEL_FIRED),
            wheel_spurious: m.counter(sub, names::dataplane::WHEEL_SPURIOUS),
            handle: Some(tel.clone()),
        };
    }

    /// Routes causal spans (packet-in roots, stats replies) and the
    /// per-tick sample/alert evaluation into `obs`. The dataplane drives
    /// the observe clock: [`Network::step`] calls `obs.on_tick` after
    /// every tick's work so samples see that tick's counters.
    pub fn bind_observe(&mut self, obs: &Observe) {
        self.observe = obs.clone();
    }

    /// Publishes per-switch flow-table lookup/match totals as gauges
    /// (called at the end of every [`Network::run_until`]).
    fn publish_table_gauges(&self) {
        let Some(tel) = &self.tel.handle else {
            return;
        };
        if !tel.is_enabled() {
            return;
        }
        let m = tel.metrics();
        let sub = names::dataplane::SUBSYSTEM;
        for (dpid, sw) in &self.switches {
            let instance = format!("s{}", dpid.raw());
            let table = sw.table();
            m.gauge_with(sub, names::dataplane::TABLE_LOOKUPS, &instance)
                .set(i64::try_from(table.lookup_count()).unwrap_or(i64::MAX));
            m.gauge_with(sub, names::dataplane::TABLE_MATCHES, &instance)
                .set(i64::try_from(table.matched_count()).unwrap_or(i64::MAX));
        }
    }

    /// The network's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The simulator configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> NetworkCounters {
        self.counters
    }

    /// Total bytes delivered end-to-end.
    pub fn delivered_bytes(&self) -> u64 {
        self.counters.delivered_bytes
    }

    /// Immutable access to a switch.
    pub fn switch(&self, dpid: Dpid) -> Option<&SimSwitch> {
        self.switches.get(&dpid)
    }

    /// Immutable access to a link direction.
    pub fn link(&self, id: LinkId) -> Option<&SimLink> {
        self.links.get(&id)
    }

    /// All link directions.
    pub fn links(&self) -> impl Iterator<Item = &SimLink> {
        self.links.values()
    }

    /// Flows currently active.
    pub fn active_flows(&self) -> &[ActiveFlow] {
        &self.active
    }

    /// Simulates a switch losing its flow state (reboot / table wipe).
    /// Traffic through it re-punts to the controller on the next tick.
    /// Returns how many entries were lost (no FLOW_REMOVED is sent — the
    /// state is gone, exactly like a real reboot).
    pub fn wipe_switch(&mut self, dpid: Dpid) -> usize {
        match self.switches.get_mut(&dpid) {
            Some(sw) => {
                let n = sw.flow_count();
                let _ = sw.clear_flows(self.now);
                n
            }
            None => 0,
        }
    }

    /// Simulates a full switch reboot: flow state *and* port counters are
    /// lost (see [`SimSwitch::reboot`]). Returns how many flow entries
    /// were lost, or 0 for an unknown switch.
    pub fn reboot_switch(&mut self, dpid: Dpid) -> usize {
        let now = self.now;
        match self.switches.get_mut(&dpid) {
            Some(sw) => {
                self.tel.switch_reboots.inc();
                sw.reboot(now)
            }
            None => 0,
        }
    }

    /// Sets the effective-capacity factor of every link direction between
    /// switches `a` and `b`: `0.0` takes the link down, `(0, 1)` degrades
    /// it, `1.0` restores it. Returns how many link directions were
    /// affected (0 when no such link exists).
    pub fn set_link_state(&mut self, a: Dpid, b: Dpid, factor: f64) -> usize {
        let mut n = 0;
        for link in self.links.values_mut() {
            let fwd = link.id.src == a && link.id.dst == b;
            let rev = link.id.src == b && link.id.dst == a;
            if fwd || rev {
                link.set_capacity_factor(factor);
                n += 1;
            }
        }
        let degraded = self
            .links
            .values()
            .filter(|l| l.capacity_factor() < 1.0)
            .count();
        self.tel
            .links_degraded
            .set(i64::try_from(degraded).unwrap_or(i64::MAX));
        n
    }

    /// Installs the stochastic `model` on every link direction, each
    /// seeded from `seed` mixed with its stable link identity. Returns
    /// how many link directions were configured.
    pub fn set_link_model(&mut self, model: LinkModel, seed: u64) -> usize {
        let mut n = 0;
        for link in self.links.values_mut() {
            link.set_model(model, seed);
            n += 1;
        }
        n
    }

    /// Schedules flows for injection.
    pub fn inject_flows(&mut self, flows: impl IntoIterator<Item = FlowSpec>) {
        self.pending.extend(flows);
        // Descending by start time so activation pops from the end.
        self.pending.sort_by_key(|f| std::cmp::Reverse(f.start));
    }

    /// Runs the simulation until `until`, ticking traffic and exchanging
    /// control messages with `ctrl`.
    pub fn run_until(&mut self, until: SimTime, ctrl: &mut impl ControllerLink) {
        let run_start = self.now;
        let run_span = self
            .tel
            .handle
            .as_ref()
            .map(|tel| tel.tracer().span("dataplane", "run_until", run_start));
        let mut ticks: u64 = 0;
        while self.now < until {
            self.step(ctrl);
            ticks += 1;
        }
        self.publish_table_gauges();
        if let (Some(span), Some(tel)) = (run_span, &self.tel.handle) {
            tel.tracer()
                .end_span(span, self.now, format!("{ticks} ticks"));
        }
    }

    /// Advances the simulation by exactly one tick. This is the unit the
    /// fault injector drives: it applies due fault events between steps,
    /// so every tick sees a consistent fault state.
    ///
    /// [`Network::run_until`] is `step` in a loop plus a trace span and
    /// the end-of-run gauge flush ([`Network::flush_gauges`]).
    pub fn step(&mut self, ctrl: &mut impl ControllerLink) {
        let before = self.counters;
        let step_timer = self.tel.step_ns.start_timer();
        let t = self.now + self.config.tick;
        self.now = t;

        // 1. Flow-table expiry (soft/hard timeouts) -> FLOW_REMOVED.
        // O(due switches), not O(total flows): the wheel wakes exactly
        // the switches whose earliest deadline falls on this tick.
        // `advance` returns fires sorted by (tick, dpid) — and within
        // one tick every fire shares the tick — so delivery runs in
        // dpid order, reproducing the naive dpid-sorted scan exactly.
        let tick_idx = self.tick_of(t);
        let fired: Vec<Dpid> = match self.config.expiry {
            ExpiryMode::Wheel => {
                let mut due: Vec<Dpid> = self
                    .wheel
                    .advance(tick_idx)
                    .into_iter()
                    .map(|(_, dpid)| dpid)
                    .collect();
                due.dedup();
                due
            }
            ExpiryMode::Scan => {
                // Reference mode: visit every switch, sorted so
                // FLOW_REMOVED delivery order never depends on hash
                // iteration order.
                let mut dpids: Vec<Dpid> = self.switches.keys().copied().collect();
                dpids.sort();
                dpids
            }
        };
        let wheel_mode = self.config.expiry == ExpiryMode::Wheel;
        for dpid in fired {
            if wheel_mode && self.armed.get(&dpid) == Some(&tick_idx) {
                self.armed.remove(&dpid);
            }
            let due = self
                .switches
                .get(&dpid)
                .and_then(|sw| sw.next_expiry())
                .is_some_and(|next| next <= t);
            if due {
                if wheel_mode {
                    self.tel.wheel_fired.inc();
                }
                let removed = match self.switches.get_mut(&dpid) {
                    Some(sw) => sw.expire(t),
                    None => Vec::new(),
                };
                for fr in removed {
                    self.counters.flow_removeds += 1;
                    let xid = self.fresh_xid();
                    let msg = via_wire(
                        OfMessage::FlowRemoved { xid, body: fr },
                        self.config.wire_mode,
                    );
                    let cmds = ctrl.on_message(dpid, msg, t);
                    self.apply_commands(cmds, ctrl);
                }
            } else if wheel_mode {
                // Deadline moved later (traffic re-armed an idle
                // timeout, entries were deleted, switch rebooted):
                // the wake-up is stale. Re-arm at the real deadline.
                self.tel.wheel_spurious.inc();
            }
            if wheel_mode {
                self.arm_switch(dpid);
            }
        }

        // 2. Activate flows whose start time has arrived.
        while let Some(spec) = self.pending.pop_if(|f| f.start <= t) {
            self.activate_flow(spec, ctrl);
        }

        // 3. Controller's own tick (stats polling etc.).
        let cmds = ctrl.on_tick(t);
        self.apply_commands(cmds, ctrl);

        // 4. Credit a tick of traffic for every active flow.
        self.tick_traffic(ctrl);

        // 5. Retire finished flows.
        let now = self.now;
        self.active.retain(|f| f.spec.end_time() > now);

        step_timer.observe(&self.tel.step_ns);
        // Mirror this tick's counter deltas into the registry — one
        // add per counter per tick keeps the inner loops untouched.
        self.tel
            .packet_ins
            .add(self.counters.packet_ins - before.packet_ins);
        self.tel
            .flow_removeds
            .add(self.counters.flow_removeds - before.flow_removeds);
        self.tel
            .delivered_bytes
            .add(self.counters.delivered_bytes - before.delivered_bytes);
        self.tel
            .dropped_bytes
            .add(self.counters.dropped_bytes - before.dropped_bytes);
        // 6. Observe sample/alert tick — after mirroring, so the sampled
        // series include this tick's counter deltas.
        self.observe.on_tick(t);
    }

    /// Publishes the per-switch table gauges now (done automatically at
    /// the end of every [`Network::run_until`]; harnesses driving
    /// [`Network::step`] directly call this before rendering a report).
    pub fn flush_gauges(&self) {
        self.publish_table_gauges();
    }

    fn fresh_xid(&mut self) -> Xid {
        self.next_xid = self.next_xid.wrapping_add(1);
        Xid::new(self.next_xid)
    }

    /// Processes the first packet of a new flow (producing table-miss
    /// punts) and adds it to the active set.
    fn activate_flow(&mut self, spec: FlowSpec, ctrl: &mut impl ControllerLink) {
        let Some(src) = self.host_by_ip(spec.five_tuple.src) else {
            // Spoofed source: the flow still enters at the switch of the
            // *actual* sender if known; otherwise we cannot inject it.
            // DDoS generators attach spoofed flows to real ingress hosts by
            // destination lookup of an `ingress_hint`; absent that, drop.
            self.active.push(ActiveFlow::new(spec));
            return;
        };
        let header = spec.header(src.port);
        self.route_and_credit(src.switch, header, 1, u64::from(spec.packet_size), ctrl);
        self.active.push(ActiveFlow::new(spec));
    }

    /// One tick of traffic for all active flows, with link contention.
    fn tick_traffic(&mut self, ctrl: &mut impl ControllerLink) {
        let t = self.now;
        let tick = self.config.tick;
        // Phase 1: route every flow (read-only peeks; misses punt).
        struct Routed {
            flow_idx: usize,
            header: PacketHeader,
            entry_switch: Dpid,
            path_links: Vec<LinkId>,
            delivered: bool,
            bytes: u64,
        }
        let mut routed: Vec<Routed> = Vec::new();
        let specs: Vec<(usize, FlowSpec)> = self
            .active
            .iter()
            .enumerate()
            .filter(|(_, f)| f.spec.start < t && f.spec.end_time() >= t)
            .map(|(i, f)| (i, f.spec))
            .collect();
        for (idx, spec) in specs {
            let fwd_bytes = spec.bytes_per(tick);
            if fwd_bytes > 0 {
                if let Some(src) = self.host_by_ip(spec.five_tuple.src) {
                    let header = spec.header(src.port);
                    let (links, delivered) = self.route_path(src.switch, header, ctrl);
                    routed.push(Routed {
                        flow_idx: idx,
                        header,
                        entry_switch: src.switch,
                        path_links: links,
                        delivered,
                        bytes: fwd_bytes,
                    });
                }
            }
            if spec.reverse_ratio > 0.0 {
                let rev_bytes = (fwd_bytes as f64 * spec.reverse_ratio) as u64;
                if rev_bytes > 0 {
                    if let Some(dst) = self.host_by_ip(spec.five_tuple.dst) {
                        let header = spec.reverse_header(dst.port);
                        let (links, delivered) = self.route_path(dst.switch, header, ctrl);
                        routed.push(Routed {
                            flow_idx: idx,
                            header,
                            entry_switch: dst.switch,
                            path_links: links,
                            delivered,
                            bytes: rev_bytes,
                        });
                    }
                }
            }
        }

        // Phase 2: offer bytes to links, settle contention.
        for r in &routed {
            for l in &r.path_links {
                if let Some(link) = self.links.get_mut(l) {
                    link.offer(r.bytes);
                }
            }
        }
        let mut fractions: HashMap<LinkId, f64> = HashMap::new();
        // Queue-drop/latency mirroring is additive per link, so the
        // unordered iteration cannot affect the registry's totals.
        let mut queue_drop_delta = 0u64;
        for (id, link) in &mut self.links {
            let queue_dropped_before = link.queue_dropped_bytes();
            let (frac, _) = link.settle_tick(tick);
            fractions.insert(*id, frac);
            if link.model().is_some() {
                queue_drop_delta += link.queue_dropped_bytes() - queue_dropped_before;
                self.tel.link_latency_us.record(link.last_latency_us());
            }
        }
        if queue_drop_delta > 0 {
            self.tel.link_queue_drops.add(queue_drop_delta);
        }

        // Phase 3: credit switch/flow counters with the delivered share.
        for r in routed {
            let frac: f64 = r
                .path_links
                .iter()
                .map(|l| fractions.get(l).copied().unwrap_or(1.0))
                .product();
            let delivered_bytes = (r.bytes as f64 * frac) as u64;
            let dropped = r.bytes - delivered_bytes;
            let Some(spec) = self.active.get(r.flow_idx).map(|f| f.spec) else {
                continue;
            };
            let packets = spec.packets_for(delivered_bytes.max(1));
            // Credit the counters along the path with the delivered share.
            self.credit_path(r.entry_switch, r.header, packets, delivered_bytes);
            // Account drops on the first congested link's egress switch.
            if dropped > 0 {
                if let Some(congested) = r
                    .path_links
                    .iter()
                    .find(|l| fractions.get(l).copied().unwrap_or(1.0) < 1.0)
                {
                    if let Some(sw) = self.switches.get_mut(&congested.src) {
                        sw.count_tx_drop(congested.src_port, spec.packets_for(dropped));
                    }
                }
            }
            let Some(f) = self.active.get_mut(r.flow_idx) else {
                continue;
            };
            f.last_tick_routed = r.delivered;
            if r.delivered {
                f.delivered_bytes += delivered_bytes;
                f.dropped_bytes += dropped;
                self.counters.delivered_bytes += delivered_bytes;
                self.counters.dropped_bytes += dropped;
            } else {
                f.dropped_bytes += r.bytes;
                self.counters.dropped_bytes += r.bytes;
            }
        }
    }

    /// Traces a packet's path with read-only lookups, punting on misses.
    /// Returns the traversed links and whether a host was reached.
    fn route_path(
        &mut self,
        entry_switch: Dpid,
        header: PacketHeader,
        ctrl: &mut impl ControllerLink,
    ) -> (Vec<LinkId>, bool) {
        let mut links = Vec::new();
        let mut dpid = entry_switch;
        let mut pkt = header;
        let max_hops = self.switches.len() + 2;
        for _ in 0..max_hops {
            let actions = match self.peek_with_punt(dpid, &pkt, ctrl) {
                Some(a) => a,
                None => return (links, false),
            };
            let Some(out) = Action::first_output(&actions) else {
                return (links, false); // drop rule
            };
            if out == PortNo::CONTROLLER {
                return (links, false);
            }
            if let Some(link) = self.link_from(dpid, out) {
                links.push(link);
                dpid = link.dst;
                pkt = apply_rewrites(&actions, pkt).with_in_port(link.dst_port);
                continue;
            }
            // Host-facing port: delivered if some host sits there.
            let delivered = self.host_ports.contains(&(dpid, out));
            return (links, delivered);
        }
        (links, false) // loop guard
    }

    /// Read-only lookup at one switch; on a miss, punts to the controller
    /// (PACKET_IN) and retries.
    fn peek_with_punt(
        &mut self,
        dpid: Dpid,
        pkt: &PacketHeader,
        ctrl: &mut impl ControllerLink,
    ) -> Option<Vec<Action>> {
        for attempt in 0..=self.config.max_punt_retries {
            if let Some(actions) = self.switches.get(&dpid)?.peek(pkt, self.now) {
                return Some(actions);
            }
            if attempt == self.config.max_punt_retries {
                break;
            }
            self.counters.packet_ins += 1;
            let xid = self.fresh_xid();
            let msg = via_wire(OfMessage::packet_in(xid, *pkt), self.config.wire_mode);
            // Root of the causal chain: everything the controller does in
            // response (pipeline, store writes, verdicts) joins this trace.
            let span = self.observe.span_at("dataplane", "packet_in", self.now);
            let cmds = ctrl.on_message(dpid, msg, self.now);
            self.apply_commands(cmds, ctrl);
            span.finish(format!("dpid={} xid={}", dpid.raw(), xid.raw()));
        }
        None
    }

    /// Credits counters along an (already-routed) path.
    fn credit_path(&mut self, entry_switch: Dpid, header: PacketHeader, packets: u64, bytes: u64) {
        let mut dpid = entry_switch;
        let mut pkt = header;
        let max_hops = self.switches.len() + 2;
        for _ in 0..max_hops {
            let Some(sw) = self.switches.get_mut(&dpid) else {
                return;
            };
            let Some(actions) = sw.process(&pkt, self.now, packets, bytes) else {
                return;
            };
            let Some(out) = Action::first_output(&actions) else {
                return;
            };
            if let Some(link) = self.link_from(dpid, out) {
                dpid = link.dst;
                pkt = apply_rewrites(&actions, pkt).with_in_port(link.dst_port);
                continue;
            }
            return;
        }
    }

    /// Routes a single packet with full counter crediting (used for flow
    /// activation and PACKET_OUT).
    fn route_and_credit(
        &mut self,
        entry_switch: Dpid,
        header: PacketHeader,
        packets: u64,
        bytes: u64,
        ctrl: &mut impl ControllerLink,
    ) {
        let (_, _) = self.route_path(entry_switch, header, ctrl);
        self.credit_path(entry_switch, header, packets, bytes);
    }

    /// Applies controller commands; replies (e.g. stats) are fed back to
    /// the controller, bounded to avoid livelock.
    fn apply_commands(
        &mut self,
        mut commands: Vec<(Dpid, OfMessage)>,
        ctrl: &mut impl ControllerLink,
    ) {
        let mut depth = 0;
        while !commands.is_empty() && depth < 8 {
            depth += 1;
            let mut replies: Vec<(Dpid, OfMessage)> = Vec::new();
            for (dpid, msg) in commands.drain(..) {
                let msg = via_wire(msg, self.config.wire_mode);
                match msg {
                    OfMessage::FlowMod { body, .. } => {
                        if let Some(sw) = self.switches.get_mut(&dpid) {
                            let removed = sw.apply_flow_mod(&body, self.now);
                            for fr in removed {
                                self.counters.flow_removeds += 1;
                                let xid = self.fresh_xid();
                                let reply = via_wire(
                                    OfMessage::FlowRemoved { xid, body: fr },
                                    self.config.wire_mode,
                                );
                                replies.extend(ctrl.on_message(dpid, reply, self.now));
                            }
                            // The mod may have introduced an earlier
                            // deadline: schedule its wake-up.
                            self.arm_switch(dpid);
                        }
                    }
                    OfMessage::PacketOut { body, .. } => {
                        let bytes = u64::from(body.header.byte_len);
                        if let Some(out) = Action::first_output(&body.actions) {
                            let pkt = body.header.with_in_port(PortNo::CONTROLLER);
                            // Inject at the named switch's egress port.
                            if let Some(link) = self.link_from(dpid, out) {
                                let next =
                                    apply_rewrites(&body.actions, pkt).with_in_port(link.dst_port);
                                self.credit_path(link.dst, next, 1, bytes);
                            }
                        }
                    }
                    OfMessage::StatsRequest { xid, body } => {
                        if let Some(sw) = self.switches.get(&dpid) {
                            let reply = sw.stats(&body, self.now);
                            let reply = via_wire(
                                OfMessage::StatsReply { xid, body: reply },
                                self.config.wire_mode,
                            );
                            let span = self.observe.span_at("dataplane", "stats_reply", self.now);
                            replies.extend(ctrl.on_message(dpid, reply, self.now));
                            span.finish(format!("dpid={}", dpid.raw()));
                        }
                    }
                    OfMessage::EchoRequest { xid, data } => {
                        replies.extend(ctrl.on_message(
                            dpid,
                            OfMessage::EchoReply { xid, data },
                            self.now,
                        ));
                    }
                    OfMessage::BarrierRequest { xid } => {
                        replies.extend(ctrl.on_message(
                            dpid,
                            OfMessage::BarrierReply { xid },
                            self.now,
                        ));
                    }
                    OfMessage::FeaturesRequest { xid } => {
                        if let Some(sw) = self.switches.get(&dpid) {
                            let body = athena_openflow::FeaturesReply {
                                dpid,
                                n_tables: 1,
                                ports: sw.port_numbers(),
                            };
                            replies.extend(ctrl.on_message(
                                dpid,
                                OfMessage::FeaturesReply { xid, body },
                                self.now,
                            ));
                        }
                    }
                    _ => {}
                }
            }
            commands = replies;
        }
    }
}

/// Round-trips a message through the OpenFlow wire codec when wire mode
/// is enabled, asserting losslessness.
pub(crate) fn via_wire(msg: OfMessage, wire: Option<athena_openflow::OfVersion>) -> OfMessage {
    match wire {
        None => msg,
        Some(v) => {
            let bytes = athena_openflow::encode_message(&msg, v);
            match athena_openflow::decode_message(&bytes) {
                Ok((decoded, _)) => {
                    debug_assert_eq!(decoded, msg, "codec round-trip must be lossless");
                    decoded
                }
                Err(e) => {
                    // A decode failure is a codec bug; surface it under
                    // test but degrade to the in-memory message in release
                    // rather than taking down the whole simulation.
                    debug_assert!(false, "wire round-trip decode failed: {e}");
                    msg
                }
            }
        }
    }
}

/// Applies header-rewrite actions to a packet (set-field actions).
pub(crate) fn apply_rewrites(actions: &[Action], mut pkt: PacketHeader) -> PacketHeader {
    for a in actions {
        match a {
            Action::SetEthSrc(m) => pkt.eth_src = *m,
            Action::SetEthDst(m) => pkt.eth_dst = *m,
            Action::SetIpSrc(ip) => pkt.ip_src = Some(*ip),
            Action::SetIpDst(ip) => pkt.ip_dst = Some(*ip),
            Action::SetTpSrc(p) => pkt.tp_src = Some(*p),
            Action::SetTpDst(p) => pkt.tp_dst = Some(*p),
            _ => {}
        }
    }
    pkt
}

/// Shared adjacency: `dpid -> [(out port, neighbor, neighbor's in port)]`.
type SharedAdjacency = Arc<HashMap<Dpid, Vec<(PortNo, Dpid, PortNo)>>>;

/// One punt's frozen routing inputs `(ingress, flow, destination host,
/// hop-distance map)` for the parallel batch fan-out.
type PuntJob = (Dpid, FiveTuple, HostSpec, Arc<HashMap<Dpid, u32>>);

/// A minimal reactive shortest-path controller used by the data-plane
/// crate's own tests and examples. The full distributed controller lives
/// in `athena-controller`.
///
/// On each `PACKET_IN` it looks up the destination host and installs
/// exact-match forwarding rules (with an idle timeout) along a shortest
/// path. When several shortest paths exist (fat-tree/Clos fabrics) the
/// per-hop choice is ECMP: a deterministic hash of the five-tuple picks
/// among the equal-cost next hops, so flows spread across the fabric
/// instead of all collapsing onto the first path BFS happens to find —
/// on a unique-shortest-path topology this reduces to plain BFS.
#[derive(Debug, Clone)]
pub struct LearningControllerStub {
    topology: Topology,
    /// Idle timeout for installed rules.
    pub idle_timeout: SimDuration,
    installs: u64,
    /// Host lookup by IP, built once — a linear scan over the host list
    /// per PACKET_IN melts down at 100k-host scale.
    host_of: HashMap<Ipv4Addr, usize>,
    /// Adjacency built once; `Topology::shortest_path` rebuilds it per
    /// call, which dominates batch punt handling on large fabrics.
    /// `Arc` so batched punt handling can fan path computation out.
    adj: SharedAdjacency,
    /// Hop-distance maps keyed by destination switch, built lazily (one
    /// BFS per distinct destination edge switch, then O(path) per punt).
    dist_cache: HashMap<Dpid, Arc<HashMap<Dpid, u32>>>,
}

impl LearningControllerStub {
    /// Creates a stub for the given network.
    pub fn new(net: &Network) -> Self {
        Self::for_topology(net.topology().clone())
    }

    /// Creates a stub for a topology directly (no engine needed).
    pub fn for_topology(topology: Topology) -> Self {
        let mut host_of = HashMap::new();
        for (i, h) in topology.hosts.iter().enumerate() {
            host_of.entry(h.ip).or_insert(i);
        }
        let adj = Arc::new(topology.adjacency());
        LearningControllerStub {
            topology,
            idle_timeout: SimDuration::from_secs(30),
            installs: 0,
            host_of,
            adj,
            dist_cache: HashMap::new(),
        }
    }

    /// FNV-1a over the five-tuple — the deterministic ECMP flow hash.
    fn flow_hash(ft: &FiveTuple) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [
            u64::from(ft.src.raw()),
            u64::from(ft.dst.raw()),
            u64::from(ft.src_port),
            u64::from(ft.dst_port),
            u64::from(ft.proto.number()),
        ] {
            for b in word.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Hop distances from every switch to `to` (BFS over the cached
    /// adjacency), computed once per destination.
    fn ensure_dists(&mut self, to: Dpid) -> Arc<HashMap<Dpid, u32>> {
        if let Some(d) = self.dist_cache.get(&to) {
            return Arc::clone(d);
        }
        let mut dist: HashMap<Dpid, u32> = HashMap::from([(to, 0)]);
        let mut queue = std::collections::VecDeque::from([to]);
        while let Some(cur) = queue.pop_front() {
            let d = dist.get(&cur).copied().unwrap_or(0);
            for (_, next, _) in self.adj.get(&cur).into_iter().flatten() {
                if !dist.contains_key(next) {
                    dist.insert(*next, d + 1);
                    queue.push_back(*next);
                }
            }
        }
        let dist = Arc::new(dist);
        self.dist_cache.insert(to, Arc::clone(&dist));
        dist
    }

    /// A shortest path `from -> to`, ECMP-balanced: at each hop the
    /// flow hash (mixed with the hop index) picks among the equal-cost
    /// downhill neighbours in adjacency order. Deterministic per flow.
    fn walk_ecmp(
        adj: &HashMap<Dpid, Vec<(PortNo, Dpid, PortNo)>>,
        dist: &HashMap<Dpid, u32>,
        from: Dpid,
        to: Dpid,
        h: u64,
    ) -> Option<Vec<(Dpid, PortNo)>> {
        dist.get(&from)?;
        let mut path = Vec::new();
        let mut cur = from;
        let mut hop = 0u32;
        while cur != to {
            let d = dist.get(&cur).copied()?;
            let candidates: Vec<(PortNo, Dpid)> = adj
                .get(&cur)
                .into_iter()
                .flatten()
                .filter(|(_, next, _)| dist.get(next).copied() == Some(d - 1))
                .map(|(port, next, _)| (*port, *next))
                .collect();
            if candidates.is_empty() {
                return None;
            }
            let pick = (h.rotate_left(hop * 8) as usize) % candidates.len();
            let (port, next) = candidates.get(pick).copied()?;
            path.push((cur, port));
            cur = next;
            hop += 1;
        }
        Some(path)
    }

    /// The `FlowMod` install sequence for one punted flow: the ECMP path
    /// hop by hop, then delivery out the destination host port.
    fn install_cmds(
        adj: &HashMap<Dpid, Vec<(PortNo, Dpid, PortNo)>>,
        dist: &HashMap<Dpid, u32>,
        from: Dpid,
        ft: FiveTuple,
        dst: HostSpec,
        idle: SimDuration,
    ) -> Vec<(Dpid, OfMessage)> {
        let h = Self::flow_hash(&ft);
        let Some(path) = Self::walk_ecmp(adj, dist, from, dst.switch, h) else {
            return Vec::new();
        };
        let m = athena_openflow::MatchFields::exact_five_tuple(ft);
        let mut cmds = Vec::with_capacity(path.len() + 1);
        for (hop, port) in &path {
            cmds.push((
                *hop,
                OfMessage::FlowMod {
                    xid: Xid::new(0),
                    body: athena_openflow::FlowMod::add(m, 100, vec![Action::Output(*port)])
                        .with_idle_timeout(idle),
                },
            ));
        }
        cmds.push((
            dst.switch,
            OfMessage::FlowMod {
                xid: Xid::new(0),
                body: athena_openflow::FlowMod::add(m, 100, vec![Action::Output(dst.port)])
                    .with_idle_timeout(idle),
            },
        ));
        cmds
    }

    /// Looks up the punted packet's destination host, if the message is
    /// a `PACKET_IN` for a known destination.
    fn punt_dst(&self, msg: &OfMessage) -> Option<(FiveTuple, HostSpec)> {
        let OfMessage::PacketIn { body, .. } = msg else {
            return None;
        };
        let ft = body.header.five_tuple()?;
        let dst = self
            .host_of
            .get(&ft.dst)
            .and_then(|i| self.topology.hosts.get(*i))
            .copied()?;
        Some((ft, dst))
    }

    /// Number of flow rules installed so far.
    pub fn installs(&self) -> u64 {
        self.installs
    }
}

impl ControllerLink for LearningControllerStub {
    fn on_message(&mut self, from: Dpid, msg: OfMessage, _now: SimTime) -> Vec<(Dpid, OfMessage)> {
        let Some((ft, dst)) = self.punt_dst(&msg) else {
            return Vec::new();
        };
        let dist = self.ensure_dists(dst.switch);
        let cmds = Self::install_cmds(&self.adj, &dist, from, ft, dst, self.idle_timeout);
        self.installs += cmds.len() as u64;
        cmds
    }

    /// Pipeline-processes a whole punt batch: the per-destination
    /// distance maps are warmed sequentially (shared cache), then every
    /// punt's path + install sequence is computed in parallel. Output is
    /// the in-order concatenation of what per-message handling returns.
    fn on_packet_in_batch(
        &mut self,
        batch: Vec<(Dpid, OfMessage)>,
        _now: SimTime,
    ) -> Vec<(Dpid, OfMessage)> {
        let idle = self.idle_timeout;
        let jobs: Vec<PuntJob> = batch
            .iter()
            .filter_map(|(from, msg)| {
                let (ft, dst) = self.punt_dst(msg)?;
                let dist = self.ensure_dists(dst.switch);
                Some((*from, ft, dst, dist))
            })
            .collect();
        let adj = Arc::clone(&self.adj);
        let per_punt: Vec<Vec<(Dpid, OfMessage)>> =
            athena_parallel::par_map(jobs, move |(from, ft, dst, dist)| {
                Self::install_cmds(&adj, dist, *from, *ft, *dst, idle)
            });
        let mut out = Vec::new();
        for cmds in per_punt {
            self.installs += cmds.len() as u64;
            out.extend(cmds);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;
    use athena_types::{FiveTuple, Ipv4Addr};

    fn two_host_net() -> (Network, LearningControllerStub, FiveTuple) {
        let topo = Topology::linear(3, 1);
        let net = Network::new(topo);
        let ctrl = LearningControllerStub::new(&net);
        let src = net
            .topology()
            .host(athena_types::HostId::new(1))
            .unwrap()
            .ip;
        let dst = net
            .topology()
            .host(athena_types::HostId::new(3))
            .unwrap()
            .ip;
        let ft = FiveTuple::tcp(src, 40_000, dst, 80);
        (net, ctrl, ft)
    }

    #[test]
    fn flow_is_routed_and_counted() {
        let (mut net, mut ctrl, ft) = two_host_net();
        net.inject_flows([FlowSpec::new(
            ft,
            SimTime::ZERO,
            SimDuration::from_secs(5),
            8_000_000, // 1 MB/s
        )]);
        net.run_until(SimTime::from_secs(8), &mut ctrl);
        // ~5 MB delivered (first tick activates, then credits).
        assert!(
            net.delivered_bytes() >= 4_000_000,
            "delivered {}",
            net.delivered_bytes()
        );
        // Exactly one packet-in chain: miss at each of 3 switches once.
        assert!(net.counters().packet_ins >= 1);
        assert!(ctrl.installs() >= 3);
        // Flow counters on the ingress switch reflect the traffic.
        let sw1 = net.switch(Dpid::new(1)).unwrap();
        let stats = sw1
            .table()
            .flow_stats(&athena_openflow::MatchFields::new(), net.now());
        assert!(!stats.is_empty());
        assert!(stats.iter().any(|s| s.byte_count > 1_000_000));
    }

    #[test]
    fn telemetry_mirrors_network_counters() {
        let (mut net, mut ctrl, ft) = two_host_net();
        let tel = Telemetry::new();
        net.bind_telemetry(&tel);
        net.inject_flows([FlowSpec::new(
            ft,
            SimTime::ZERO,
            SimDuration::from_secs(5),
            8_000_000,
        )]);
        net.run_until(SimTime::from_secs(8), &mut ctrl);
        let m = tel.metrics();
        assert_eq!(
            m.counter("dataplane", "packet_ins").get(),
            net.counters().packet_ins
        );
        assert_eq!(
            m.counter("dataplane", "delivered_bytes").get(),
            net.counters().delivered_bytes
        );
        // One step latency sample per tick.
        assert_eq!(m.histogram("dataplane", "step_ns").snapshot().count, 8);
        // Per-switch lookup gauges were published for the ingress switch.
        assert!(m.gauge_with("dataplane", "table_lookups", "s1").get() > 0);
        // The run span is in the trace with virtual stamps.
        let spans = tel.tracer().entries();
        assert!(spans
            .iter()
            .any(|e| e.name == "run_until" && e.sim_end == SimTime::from_secs(8)));
    }

    #[test]
    fn idle_timeout_produces_flow_removed_and_reinstall() {
        let (mut net, mut ctrl, ft) = two_host_net();
        ctrl.idle_timeout = SimDuration::from_secs(3);
        // Two short bursts separated by a long gap.
        net.inject_flows([
            FlowSpec::new(ft, SimTime::ZERO, SimDuration::from_secs(2), 1_000_000),
            FlowSpec::new(
                ft,
                SimTime::from_secs(10),
                SimDuration::from_secs(2),
                1_000_000,
            ),
        ]);
        net.run_until(SimTime::from_secs(15), &mut net_ctrl(&mut ctrl));
        assert!(net.counters().flow_removeds >= 3, "{:?}", net.counters());
        // The second burst re-punted.
        assert!(net.counters().packet_ins >= 2);
    }

    // Helper: pass a &mut T as impl ControllerLink.
    fn net_ctrl<T: ControllerLink>(c: &mut T) -> impl ControllerLink + '_ {
        struct Wrap<'a, T>(&'a mut T);
        impl<T: ControllerLink> ControllerLink for Wrap<'_, T> {
            fn on_message(
                &mut self,
                from: Dpid,
                msg: OfMessage,
                now: SimTime,
            ) -> Vec<(Dpid, OfMessage)> {
                self.0.on_message(from, msg, now)
            }
            fn on_tick(&mut self, now: SimTime) -> Vec<(Dpid, OfMessage)> {
                self.0.on_tick(now)
            }
        }
        Wrap(c)
    }

    #[test]
    fn congestion_drops_excess_traffic() {
        // Linear topology: two flows share the single 1 Gb/s path but
        // offer 2×0.8 Gb/s.
        let topo = Topology::linear(2, 2);
        let mut net = Network::new(topo);
        let mut ctrl = LearningControllerStub::new(&net);
        let h = |id: u64| {
            net.topology()
                .host(athena_types::HostId::new(id))
                .unwrap()
                .ip
        };
        let (a, b, c, d) = (h(1), h(2), h(3), h(4));
        net.inject_flows([
            FlowSpec::new(
                FiveTuple::tcp(a, 1, c, 80),
                SimTime::ZERO,
                SimDuration::from_secs(5),
                800_000_000,
            ),
            FlowSpec::new(
                FiveTuple::tcp(b, 2, d, 80),
                SimTime::ZERO,
                SimDuration::from_secs(5),
                800_000_000,
            ),
        ]);
        net.run_until(SimTime::from_secs(7), &mut ctrl);
        assert!(net.counters().dropped_bytes > 0, "{:?}", net.counters());
        // The inter-switch link shows congestion history.
        let link = net
            .topology()
            .link_from(Dpid::new(1), PortNo::new(1))
            .unwrap();
        assert!(net.link(link).unwrap().dropped_bytes() > 0);
    }

    #[test]
    fn no_route_means_no_delivery() {
        let topo = Topology::linear(2, 1);
        let mut net = Network::new(topo);
        let mut ctrl = LearningControllerStub::new(&net);
        let src = net
            .topology()
            .host(athena_types::HostId::new(1))
            .unwrap()
            .ip;
        let ft = FiveTuple::tcp(src, 1, Ipv4Addr::new(99, 99, 99, 99), 80);
        net.inject_flows([FlowSpec::new(
            ft,
            SimTime::ZERO,
            SimDuration::from_secs(3),
            1_000_000,
        )]);
        net.run_until(SimTime::from_secs(5), &mut ctrl);
        assert_eq!(net.delivered_bytes(), 0);
        assert!(net.counters().dropped_bytes > 0);
    }

    #[test]
    fn stats_request_round_trip_via_on_tick() {
        struct Poller {
            inner: LearningControllerStub,
            replies: u64,
        }
        impl ControllerLink for Poller {
            fn on_message(
                &mut self,
                from: Dpid,
                msg: OfMessage,
                now: SimTime,
            ) -> Vec<(Dpid, OfMessage)> {
                if matches!(msg, OfMessage::StatsReply { .. }) {
                    self.replies += 1;
                    return Vec::new();
                }
                self.inner.on_message(from, msg, now)
            }
            fn on_tick(&mut self, _now: SimTime) -> Vec<(Dpid, OfMessage)> {
                vec![(
                    Dpid::new(1),
                    OfMessage::StatsRequest {
                        xid: Xid::athena_marked(1),
                        body: athena_openflow::StatsRequest::Port {
                            port_no: PortNo::ANY,
                        },
                    },
                )]
            }
        }
        let topo = Topology::linear(2, 1);
        let mut net = Network::new(topo);
        let mut ctrl = Poller {
            inner: LearningControllerStub::new(&net),
            replies: 0,
        };
        net.run_until(SimTime::from_secs(3), &mut ctrl);
        assert_eq!(ctrl.replies, 3); // one per tick
    }

    #[test]
    fn link_down_blackholes_and_restore_recovers() {
        let (mut net, mut ctrl, ft) = two_host_net();
        net.inject_flows([FlowSpec::new(
            ft,
            SimTime::ZERO,
            SimDuration::from_secs(20),
            8_000_000,
        )]);
        net.run_until(SimTime::from_secs(5), &mut ctrl);
        let delivered_up = net.delivered_bytes();
        assert!(delivered_up > 0);
        // Take the s1-s2 link down: traffic blackholes.
        assert_eq!(net.set_link_state(Dpid::new(1), Dpid::new(2), 0.0), 2);
        net.run_until(SimTime::from_secs(10), &mut ctrl);
        let delivered_down = net.delivered_bytes();
        assert_eq!(delivered_down, delivered_up, "link was down");
        assert!(net.counters().dropped_bytes > 0);
        // Restore: traffic flows again.
        assert_eq!(net.set_link_state(Dpid::new(1), Dpid::new(2), 1.0), 2);
        net.run_until(SimTime::from_secs(15), &mut ctrl);
        assert!(net.delivered_bytes() > delivered_down, "no recovery");
    }

    #[test]
    fn set_link_state_on_unknown_pair_is_harmless() {
        let (mut net, _, _) = two_host_net();
        assert_eq!(net.set_link_state(Dpid::new(7), Dpid::new(9), 0.0), 0);
    }

    #[test]
    fn reboot_switch_clears_flows_and_port_counters() {
        let (mut net, mut ctrl, ft) = two_host_net();
        net.inject_flows([FlowSpec::new(
            ft,
            SimTime::ZERO,
            SimDuration::from_secs(20),
            8_000_000,
        )]);
        net.run_until(SimTime::from_secs(5), &mut ctrl);
        assert!(net.switch(Dpid::new(2)).unwrap().flow_count() > 0);
        let lost = net.reboot_switch(Dpid::new(2));
        assert!(lost > 0);
        let sw = net.switch(Dpid::new(2)).unwrap();
        assert_eq!(sw.flow_count(), 0);
        let athena_openflow::StatsReply::Port(ports) = sw.stats(
            &athena_openflow::StatsRequest::Port {
                port_no: PortNo::ANY,
            },
            net.now(),
        ) else {
            panic!("expected port stats");
        };
        assert!(ports.iter().all(|p| p.rx_bytes == 0 && p.tx_bytes == 0));
        assert_eq!(net.reboot_switch(Dpid::new(99)), 0);
        // The flow re-punts and keeps delivering after the reboot.
        let before = net.delivered_bytes();
        net.run_until(SimTime::from_secs(10), &mut ctrl);
        assert!(net.delivered_bytes() > before);
    }

    #[test]
    fn step_matches_run_until() {
        let (mut a, mut ctrl_a, ft) = two_host_net();
        let (mut b, mut ctrl_b, _) = two_host_net();
        let flows = [FlowSpec::new(
            ft,
            SimTime::ZERO,
            SimDuration::from_secs(5),
            8_000_000,
        )];
        a.inject_flows(flows);
        b.inject_flows(flows);
        a.run_until(SimTime::from_secs(8), &mut ctrl_a);
        for _ in 0..8 {
            b.step(&mut ctrl_b);
        }
        assert_eq!(a.counters(), b.counters());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn bidirectional_flows_create_pair_entries() {
        let (mut net, mut ctrl, ft) = two_host_net();
        net.inject_flows([
            FlowSpec::new(ft, SimTime::ZERO, SimDuration::from_secs(4), 1_000_000)
                .bidirectional(0.5),
        ]);
        net.run_until(SimTime::from_secs(6), &mut ctrl);
        // The middle switch carries entries for both directions.
        let sw2 = net.switch(Dpid::new(2)).unwrap();
        let stats = sw2
            .table()
            .flow_stats(&athena_openflow::MatchFields::new(), net.now());
        let fwd = stats
            .iter()
            .any(|s| s.match_fields.five_tuple() == Some(ft));
        let rev = stats
            .iter()
            .any(|s| s.match_fields.five_tuple() == Some(ft.reversed()));
        assert!(fwd && rev, "entries: {}", stats.len());
    }
}
