//! The sharded tick engine for 100k-host topologies.
//!
//! [`ShardedNetwork`] runs the same flow-level simulation model as
//! [`Network`](crate::Network), restructured as a bulk-synchronous
//! per-tick pipeline over a deterministic partition of the topology:
//!
//! 1. **Expiry** — every shard advances its own hierarchical timing
//!    wheel in parallel ([`athena_parallel::par_map_take`] moves each
//!    shard into its runner and hands it back in index order), then the
//!    collected `FLOW_REMOVED`s are delivered sequentially in global
//!    dpid order.
//! 2. **Routing** — each active flow's per-tick packet walks its shard's
//!    switches with read-only lookups. A walk segment ends by delivering,
//!    failing, crossing a shard boundary (the packet re-enters the next
//!    round in its new shard), or missing in the flow table. All misses
//!    of a round are collected into **one packet-in batch**, sorted by
//!    item index, and handed to
//!    [`ControllerLink::on_packet_in_batch`] — the controller pipelines
//!    the whole batch under a single span. Rounds repeat until every
//!    packet settles.
//! 3. **Contention** — link offers are bucketed to the owning shard and
//!    every shard settles all of its links in parallel (every link
//!    settles every tick, so stochastic link-model RNG streams advance
//!    identically at any width).
//! 4. **Credit** — switch/flow counter updates replay the hops the
//!    routing phase recorded, grouped per owning shard and applied in
//!    parallel; per-flow bookkeeping then runs sequentially in item
//!    order.
//!
//! # Determinism contract
//!
//! For a fixed [`ShardPlan`], every observable output — counters, flow
//! tables, controller command streams, trace spans — is byte-identical
//! at any `ATHENA_THREADS` width: parallel phases only touch shard-local
//! state and return their results through ordered reductions, and every
//! cross-shard interaction (FLOW_REMOVED delivery, punt batches, frac
//! merging, bookkeeping) runs sequentially in a sorted order. Outputs
//! *do* depend on the plan itself: shard boundaries decide which misses
//! share a punt batch, exactly like region placement would on a real
//! distributed controller.

use crate::flow::{ActiveFlow, FlowSpec};
use crate::link::{LinkModel, SimLink};
use crate::network::NetworkCounters;
use crate::network::{apply_rewrites, via_wire, ControllerLink, ExpiryMode, NetworkConfig};
use crate::switch::SimSwitch;
use crate::topology::{HostSpec, Topology};
use crate::wheel::TimingWheel;
use athena_observe::Observe;
use athena_openflow::{Action, FlowRemoved, OfMessage, PacketHeader};
use athena_telemetry::{names, Counter, Gauge, Histogram, Telemetry};
use athena_types::{Dpid, Ipv4Addr, LinkId, PortNo, SimDuration, SimTime, Xid};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One shard's slice of a FlowMod batch: `(command index, target
/// switch, command)` — the index restores submission order at merge.
type FlowModBucket = Vec<(usize, Dpid, athena_openflow::FlowMod)>;

/// Command batches at or above this size that are pure `FlowMod`s take
/// the per-shard parallel application path; smaller or mixed batches use
/// the sequential loop. A pure function of the batch, never of width.
const FLOW_MOD_BATCH_MIN: usize = 64;

/// Segment-stream chunk length for the parallel offer and credit
/// replays. A pure function of the stream length, never of width, so
/// chunk boundaries (and therefore replay order) are width-invariant.
const SEG_CHUNK: usize = 4096;

/// A deterministic partition of a topology's switches into shards.
///
/// Switches are sorted by dpid and split into contiguous ranges, so the
/// plan is a pure function of the topology and the shard count — never
/// of thread count, hash state, or insertion order. Each unidirectional
/// link is owned by the shard of its source switch.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    groups: Vec<Vec<Dpid>>,
}

impl ShardPlan {
    /// Splits the topology's dpid-sorted switch list into `n_shards`
    /// contiguous ranges (sizes differing by at most one). `n_shards`
    /// is clamped to `[1, switches]`.
    pub fn partition(topology: &Topology, n_shards: usize) -> Self {
        let mut dpids: Vec<Dpid> = topology.switches.iter().map(|s| s.dpid).collect();
        dpids.sort();
        let n = dpids.len();
        let k = n_shards.clamp(1, n.max(1));
        let base = n / k;
        let extra = n % k;
        let mut groups = Vec::with_capacity(k);
        let mut it = dpids.into_iter();
        for i in 0..k {
            let take = base + usize::from(i < extra);
            groups.push(it.by_ref().take(take).collect());
        }
        ShardPlan { groups }
    }

    /// The default plan: one shard per ~4 switches, capped at 16 shards
    /// (matching the pool's practical width) and floored at 1.
    pub fn auto(topology: &Topology) -> Self {
        let n = (topology.switches.len() / 4).clamp(1, 16);
        Self::partition(topology, n)
    }

    /// Number of shards in the plan.
    pub fn n_shards(&self) -> usize {
        self.groups.len()
    }

    /// The dpids assigned to shard `i` (sorted ascending).
    pub fn shard_dpids(&self, i: usize) -> &[Dpid] {
        self.groups.get(i).map_or(&[], Vec::as_slice)
    }
}

/// Immutable per-tick routing context shared (read-only) by every shard.
#[derive(Debug)]
struct RouteCtx {
    /// Unidirectional link leaving `(dpid, port)`.
    egress: HashMap<(Dpid, PortNo), LinkId>,
    /// Host-facing `(dpid, port)` pairs.
    host_ports: HashSet<(Dpid, PortNo)>,
    /// Owning shard of each switch.
    shard_of: HashMap<Dpid, usize>,
}

/// One shard: a contiguous dpid range of switches, the links they source,
/// and the shard's own expiry wheel.
#[derive(Debug)]
struct Shard {
    index: usize,
    /// Sorted by dpid, parallel to `dpids`.
    switches: Vec<SimSwitch>,
    dpids: Vec<Dpid>,
    slot_of: HashMap<Dpid, usize>,
    /// Links whose source switch lives here, sorted by id.
    links: Vec<SimLink>,
    link_slot: HashMap<LinkId, usize>,
    wheel: TimingWheel<Dpid>,
    /// Earliest outstanding wheel entry per switch (arm dedup).
    armed: HashMap<Dpid, u64>,
}

/// What one shard's expiry pass produced.
struct ExpiryOut {
    /// `(dpid, notification)` in dpid order.
    removed: Vec<(Dpid, FlowRemoved)>,
    fired: u64,
    spurious: u64,
    armed: u64,
}

/// What one shard's offer/settle pass produced.
struct SettleOut {
    /// `(link, delivered fraction)` for every link the shard owns.
    link_fracs: Vec<(LinkId, f64)>,
    queue_drop_delta: u64,
    /// Latency draws for modeled links, in link order.
    latencies: Vec<u64>,
}

/// A packet mid-walk: which item it belongs to, where it is, and how
/// much punt/hop budget remains.
#[derive(Debug, Clone)]
struct PacketState {
    item: usize,
    dpid: Dpid,
    pkt: PacketHeader,
    /// Punts already spent at the current hop (reset on movement).
    punts: usize,
    hops_left: usize,
}

/// How a walk segment ended.
enum Outcome {
    Delivered,
    Failed,
    NeedPunt(PacketState),
    Handoff(PacketState),
}

/// One shard-local walk segment's result.
struct WalkSeg {
    item: usize,
    links: Vec<LinkId>,
    hops: Vec<(Dpid, PacketHeader)>,
    outcome: Outcome,
}

/// A counter-credit operation replayed on the owning shard.
enum CreditOp {
    Flow {
        dpid: Dpid,
        pkt: PacketHeader,
        packets: u64,
        bytes: u64,
    },
    TxDrop {
        dpid: Dpid,
        port: PortNo,
        packets: u64,
    },
}

/// One per-tick unit of traffic: a flow's forward or reverse share, or a
/// new flow's activation packet.
struct TrafficItem {
    /// `None` for activation packets (credited in full, no contention).
    flow_idx: Option<usize>,
    bytes: u64,
    /// Where the packet entered the fabric (credited like a hop).
    entry: (Dpid, PacketHeader),
    delivered: bool,
}

/// One entry of the tick's segment stream: the links and hops one walk
/// segment traversed, recorded in `(round, shard index, bucket order)`
/// — a pure function of the tick's inputs, never of thread count. An
/// item's segments appear in chronological hop order (rounds are
/// appended in sequence and an item has at most one in-flight packet
/// per round), so replaying the stream item-filtered recovers each
/// packet's full path.
struct SegRec {
    item: usize,
    links: Vec<LinkId>,
    hops: Vec<(Dpid, PacketHeader)>,
}

/// Per-flow bookkeeping computed in item order after settling.
struct Book {
    flow_idx: usize,
    total: u64,
    delivered_share: u64,
    routed: bool,
}

impl Shard {
    fn switch(&self, dpid: Dpid) -> Option<&SimSwitch> {
        self.slot_of.get(&dpid).and_then(|s| self.switches.get(*s))
    }

    fn switch_mut(&mut self, dpid: Dpid) -> Option<&mut SimSwitch> {
        match self.slot_of.get(&dpid) {
            Some(s) => self.switches.get_mut(*s),
            None => None,
        }
    }

    /// Schedules an expiry wake-up at the switch's next deadline unless
    /// an earlier-or-equal one is outstanding. Returns whether a new
    /// wheel entry was created.
    fn arm(&mut self, dpid: Dpid, tick: SimDuration) -> bool {
        let Some(next) = self.switch(dpid).and_then(SimSwitch::next_expiry) else {
            return false;
        };
        // First tick boundary at or after the deadline, clamped to the
        // wheel's next firable tick so `armed` names the landed slot.
        let due = next
            .as_micros()
            .div_ceil(tick.as_micros().max(1))
            .max(self.wheel.now() + 1);
        match self.armed.get(&dpid) {
            Some(a) if *a <= due => false,
            _ => {
                self.wheel.schedule(due, dpid);
                self.armed.insert(dpid, due);
                true
            }
        }
    }

    /// The per-shard expiry phase: advance the wheel (or scan, in
    /// [`ExpiryMode::Scan`]), expire due tables, re-arm, and report the
    /// FLOW_REMOVEDs in dpid order.
    fn run_expiry(
        &mut self,
        t: SimTime,
        tick_idx: u64,
        mode: ExpiryMode,
        tick: SimDuration,
    ) -> ExpiryOut {
        let wheel_mode = mode == ExpiryMode::Wheel;
        let fired_dpids: Vec<Dpid> = if wheel_mode {
            // Every fire this tick shares the due, so the (due, key)
            // sort is a dpid sort; dedup collapses stale duplicates.
            let mut due: Vec<Dpid> = self
                .wheel
                .advance(tick_idx)
                .into_iter()
                .map(|(_, dpid)| dpid)
                .collect();
            due.dedup();
            due
        } else {
            self.dpids.clone()
        };
        let mut out = ExpiryOut {
            removed: Vec::new(),
            fired: 0,
            spurious: 0,
            armed: 0,
        };
        for dpid in fired_dpids {
            if wheel_mode && self.armed.get(&dpid) == Some(&tick_idx) {
                self.armed.remove(&dpid);
            }
            let due = self
                .switch(dpid)
                .and_then(SimSwitch::next_expiry)
                .is_some_and(|next| next <= t);
            if due {
                if wheel_mode {
                    out.fired += 1;
                }
                let removed = match self.switch_mut(dpid) {
                    Some(sw) => sw.expire(t),
                    None => Vec::new(),
                };
                for fr in removed {
                    out.removed.push((dpid, fr));
                }
            } else if wheel_mode {
                out.spurious += 1;
            }
            if wheel_mode && self.arm(dpid, tick) {
                out.armed += 1;
            }
        }
        out
    }

    /// Walks every packet in `pkts` (in order) through this shard's
    /// switches with read-only lookups, returning one segment per packet.
    fn walk_all(
        &self,
        pkts: Vec<PacketState>,
        ctx: &RouteCtx,
        now: SimTime,
        max_punt: usize,
    ) -> Vec<WalkSeg> {
        pkts.into_iter()
            .map(|st| self.walk(st, ctx, now, max_punt))
            .collect()
    }

    fn walk(&self, mut st: PacketState, ctx: &RouteCtx, now: SimTime, max_punt: usize) -> WalkSeg {
        let item = st.item;
        let mut links = Vec::new();
        let mut hops = Vec::new();
        let done = |links, hops, outcome| WalkSeg {
            item,
            links,
            hops,
            outcome,
        };
        loop {
            let Some(sw) = self.switch(st.dpid) else {
                return done(links, hops, Outcome::Failed);
            };
            let Some(actions) = sw.peek(&st.pkt, now) else {
                // Table miss: punt if budget remains at this hop.
                if st.punts < max_punt {
                    return done(links, hops, Outcome::NeedPunt(st));
                }
                return done(links, hops, Outcome::Failed);
            };
            let Some(out) = Action::first_output(&actions) else {
                return done(links, hops, Outcome::Failed); // drop rule
            };
            if out == PortNo::CONTROLLER {
                return done(links, hops, Outcome::Failed);
            }
            if let Some(link) = ctx.egress.get(&(st.dpid, out)).copied() {
                if st.hops_left == 0 {
                    return done(links, hops, Outcome::Failed); // loop guard
                }
                st.hops_left -= 1;
                st.punts = 0;
                links.push(link);
                st.pkt = apply_rewrites(&actions, st.pkt).with_in_port(link.dst_port);
                st.dpid = link.dst;
                hops.push((st.dpid, st.pkt));
                if ctx.shard_of.get(&st.dpid) != Some(&self.index) {
                    return done(links, hops, Outcome::Handoff(st));
                }
                continue;
            }
            // Host-facing port: delivered if some host sits there.
            let delivered = ctx.host_ports.contains(&(st.dpid, out));
            let outcome = if delivered {
                Outcome::Delivered
            } else {
                Outcome::Failed
            };
            return done(links, hops, outcome);
        }
    }

    /// Applies the tick's byte offers, then settles **all** of this
    /// shard's links (stochastic models advance every tick regardless of
    /// traffic). Returns fractions in link order.
    fn offers_and_settle(&mut self, offers: Vec<(LinkId, u64)>, tick: SimDuration) -> SettleOut {
        for (id, bytes) in offers {
            if let Some(slot) = self.link_slot.get(&id) {
                if let Some(link) = self.links.get_mut(*slot) {
                    link.offer(bytes);
                }
            }
        }
        let mut out = SettleOut {
            link_fracs: Vec::with_capacity(self.links.len()),
            queue_drop_delta: 0,
            latencies: Vec::new(),
        };
        for link in &mut self.links {
            let dropped_before = link.queue_dropped_bytes();
            let (frac, _) = link.settle_tick(tick);
            out.link_fracs.push((link.id, frac));
            if link.model().is_some() {
                out.queue_drop_delta += link.queue_dropped_bytes() - dropped_before;
                out.latencies.push(link.last_latency_us());
            }
        }
        out
    }

    /// Replays counter-credit operations in the given (item, hop) order.
    fn run_credits(&mut self, ops: Vec<CreditOp>, now: SimTime) {
        for op in ops {
            match op {
                CreditOp::Flow {
                    dpid,
                    pkt,
                    packets,
                    bytes,
                } => {
                    if let Some(sw) = self.switch_mut(dpid) {
                        let _ = sw.process(&pkt, now, packets, bytes);
                    }
                }
                CreditOp::TxDrop {
                    dpid,
                    port,
                    packets,
                } => {
                    if let Some(sw) = self.switch_mut(dpid) {
                        sw.count_tx_drop(port, packets);
                    }
                }
            }
        }
    }
}

/// The sharded engine's telemetry instruments (detached until
/// [`ShardedNetwork::bind_telemetry`]).
#[derive(Debug, Default)]
struct ScaleTelemetry {
    step_ns: Histogram,
    packet_ins: Counter,
    flow_removeds: Counter,
    delivered_bytes: Counter,
    dropped_bytes: Counter,
    links_degraded: Gauge,
    switch_reboots: Counter,
    link_queue_drops: Counter,
    link_latency_us: Histogram,
    wheel_armed: Counter,
    wheel_fired: Counter,
    wheel_spurious: Counter,
    shards: Gauge,
    ticks: Counter,
    punt_batches: Counter,
    batched_packet_ins: Counter,
    cross_shard_handoffs: Counter,
    routing_rounds: Counter,
    handle: Option<Telemetry>,
}

/// The sharded, batched network engine. See the [module docs](self) for
/// the phase pipeline and the determinism contract.
#[derive(Debug)]
pub struct ShardedNetwork {
    topology: Topology,
    config: NetworkConfig,
    plan: ShardPlan,
    shards: Vec<Shard>,
    ctx: Arc<RouteCtx>,
    /// `hosts[i]` by IP — first match wins, like a linear scan.
    host_index: HashMap<Ipv4Addr, usize>,
    pending: Vec<FlowSpec>, // sorted by start time, descending
    active: Vec<ActiveFlow>,
    now: SimTime,
    counters: NetworkCounters,
    next_xid: u32,
    tel: ScaleTelemetry,
    observe: Observe,
}

impl ShardedNetwork {
    /// Builds a sharded network with the default configuration and the
    /// [`ShardPlan::auto`] partition.
    pub fn new(topology: Topology) -> Self {
        let plan = ShardPlan::auto(&topology);
        Self::with_plan(topology, NetworkConfig::default(), plan)
    }

    /// Builds a sharded network with an explicit configuration and the
    /// [`ShardPlan::auto`] partition.
    pub fn with_config(topology: Topology, config: NetworkConfig) -> Self {
        let plan = ShardPlan::auto(&topology);
        Self::with_plan(topology, config, plan)
    }

    /// Builds a sharded network with an explicit configuration and plan.
    pub fn with_plan(topology: Topology, config: NetworkConfig, plan: ShardPlan) -> Self {
        let mut shard_of = HashMap::new();
        for (i, group) in plan.groups.iter().enumerate() {
            for dpid in group {
                shard_of.insert(*dpid, i);
            }
        }
        let mut n_ports_of = HashMap::new();
        for s in &topology.switches {
            n_ports_of.insert(s.dpid, s.n_ports);
        }
        let mut egress = HashMap::new();
        let mut links_by_shard: Vec<Vec<SimLink>> =
            (0..plan.n_shards()).map(|_| Vec::new()).collect();
        for l in &topology.links {
            let fwd = LinkId::new(l.a.0, l.a.1, l.b.0, l.b.1);
            let rev = fwd.reversed();
            // First match wins, like Topology::link_from's scan.
            egress.entry(l.a).or_insert(fwd);
            egress.entry(l.b).or_insert(rev);
            for id in [fwd, rev] {
                if let Some(si) = shard_of.get(&id.src) {
                    if let Some(bucket) = links_by_shard.get_mut(*si) {
                        bucket.push(SimLink::new(id, l.capacity_bps));
                    }
                }
            }
        }
        let mut host_index = HashMap::new();
        let mut host_ports = HashSet::new();
        for (i, h) in topology.hosts.iter().enumerate() {
            host_index.entry(h.ip).or_insert(i);
            host_ports.insert((h.switch, h.port));
        }
        let mut shards = Vec::with_capacity(plan.n_shards());
        for (i, group) in plan.groups.iter().enumerate() {
            let mut links = links_by_shard
                .get_mut(i)
                .map(std::mem::take)
                .unwrap_or_default();
            links.sort_by_key(|l| l.id);
            links.dedup_by_key(|l| l.id);
            let mut slot_of = HashMap::new();
            let mut switches = Vec::with_capacity(group.len());
            for (slot, dpid) in group.iter().enumerate() {
                let n_ports = n_ports_of.get(dpid).copied().unwrap_or(0);
                switches.push(SimSwitch::new(*dpid, n_ports));
                slot_of.insert(*dpid, slot);
            }
            let mut link_slot = HashMap::new();
            for (slot, l) in links.iter().enumerate() {
                link_slot.insert(l.id, slot);
            }
            shards.push(Shard {
                index: i,
                switches,
                dpids: group.clone(),
                slot_of,
                links,
                link_slot,
                wheel: TimingWheel::new(0),
                armed: HashMap::new(),
            });
        }
        ShardedNetwork {
            topology,
            config,
            plan,
            shards,
            ctx: Arc::new(RouteCtx {
                egress,
                host_ports,
                shard_of,
            }),
            host_index,
            pending: Vec::new(),
            active: Vec::new(),
            now: SimTime::ZERO,
            counters: NetworkCounters::default(),
            next_xid: 1,
            tel: ScaleTelemetry::default(),
            observe: Observe::disabled(),
        }
    }

    /// The partition this engine runs on.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The network's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The simulator configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> NetworkCounters {
        self.counters
    }

    /// Total bytes delivered end-to-end.
    pub fn delivered_bytes(&self) -> u64 {
        self.counters.delivered_bytes
    }

    /// Immutable access to a switch.
    pub fn switch(&self, dpid: Dpid) -> Option<&SimSwitch> {
        let si = self.ctx.shard_of.get(&dpid)?;
        self.shards.get(*si)?.switch(dpid)
    }

    /// Flows currently active.
    pub fn active_flows(&self) -> &[ActiveFlow] {
        &self.active
    }

    /// Routes counters and per-tick latency into `tel` (and the
    /// per-switch lookup instruments of every shard's switches).
    pub fn bind_telemetry(&mut self, tel: &Telemetry) {
        for shard in &mut self.shards {
            for sw in &mut shard.switches {
                sw.bind_telemetry(tel);
            }
        }
        let m = tel.metrics();
        let dp = names::dataplane::SUBSYSTEM;
        let sc = names::scale::SUBSYSTEM;
        self.tel = ScaleTelemetry {
            step_ns: m.histogram(sc, names::scale::STEP_NS),
            packet_ins: m.counter(dp, names::dataplane::PACKET_INS),
            flow_removeds: m.counter(dp, names::dataplane::FLOW_REMOVEDS),
            delivered_bytes: m.counter(dp, names::dataplane::DELIVERED_BYTES),
            dropped_bytes: m.counter(dp, names::dataplane::DROPPED_BYTES),
            links_degraded: m.gauge(dp, names::dataplane::LINKS_DEGRADED),
            switch_reboots: m.counter(dp, names::dataplane::SWITCH_REBOOTS),
            link_queue_drops: m.counter(dp, names::dataplane::LINK_QUEUE_DROPS),
            link_latency_us: m.histogram(dp, names::dataplane::LINK_LATENCY_US),
            wheel_armed: m.counter(dp, names::dataplane::WHEEL_ARMED),
            wheel_fired: m.counter(dp, names::dataplane::WHEEL_FIRED),
            wheel_spurious: m.counter(dp, names::dataplane::WHEEL_SPURIOUS),
            shards: m.gauge(sc, names::scale::SHARDS),
            ticks: m.counter(sc, names::scale::TICKS),
            punt_batches: m.counter(sc, names::scale::PUNT_BATCHES),
            batched_packet_ins: m.counter(sc, names::scale::BATCHED_PACKET_INS),
            cross_shard_handoffs: m.counter(sc, names::scale::CROSS_SHARD_HANDOFFS),
            routing_rounds: m.counter(sc, names::scale::ROUTING_ROUNDS),
            handle: Some(tel.clone()),
        };
        self.tel
            .shards
            .set(i64::try_from(self.shards.len()).unwrap_or(i64::MAX));
    }

    /// Routes causal spans and per-tick sample/alert evaluation into
    /// `obs` (the engine drives the observe clock, like `Network`).
    pub fn bind_observe(&mut self, obs: &Observe) {
        self.observe = obs.clone();
    }

    /// Simulates a switch losing its flow state. Returns entries lost.
    pub fn wipe_switch(&mut self, dpid: Dpid) -> usize {
        let now = self.now;
        match self.switch_mut(dpid) {
            Some(sw) => {
                let n = sw.flow_count();
                let _ = sw.clear_flows(now);
                n
            }
            None => 0,
        }
    }

    /// Simulates a full switch reboot (flow state and port counters
    /// lost). Returns flow entries lost.
    pub fn reboot_switch(&mut self, dpid: Dpid) -> usize {
        let now = self.now;
        match self.switch_mut(dpid) {
            Some(sw) => {
                let n = sw.reboot(now);
                self.tel.switch_reboots.inc();
                n
            }
            None => 0,
        }
    }

    /// Sets the effective-capacity factor of every link direction between
    /// `a` and `b` (0.0 down, (0,1) degraded, 1.0 restored). Returns the
    /// number of link directions affected.
    pub fn set_link_state(&mut self, a: Dpid, b: Dpid, factor: f64) -> usize {
        let mut n = 0;
        let mut degraded = 0usize;
        for shard in &mut self.shards {
            for link in &mut shard.links {
                let fwd = link.id.src == a && link.id.dst == b;
                let rev = link.id.src == b && link.id.dst == a;
                if fwd || rev {
                    link.set_capacity_factor(factor);
                    n += 1;
                }
                if link.capacity_factor() < 1.0 {
                    degraded += 1;
                }
            }
        }
        self.tel
            .links_degraded
            .set(i64::try_from(degraded).unwrap_or(i64::MAX));
        n
    }

    /// Installs the stochastic `model` on every link direction, seeded
    /// from `seed` mixed with each link's stable identity.
    pub fn set_link_model(&mut self, model: LinkModel, seed: u64) -> usize {
        let mut n = 0;
        for shard in &mut self.shards {
            for link in &mut shard.links {
                link.set_model(model, seed);
                n += 1;
            }
        }
        n
    }

    /// Schedules flows for injection.
    pub fn inject_flows(&mut self, flows: impl IntoIterator<Item = FlowSpec>) {
        self.pending.extend(flows);
        self.pending.sort_by_key(|f| std::cmp::Reverse(f.start));
    }

    /// Runs the simulation until `until`.
    pub fn run_until(&mut self, until: SimTime, ctrl: &mut impl ControllerLink) {
        let run_start = self.now;
        let run_span = self
            .tel
            .handle
            .as_ref()
            .map(|tel| tel.tracer().span("dataplane", "run_until", run_start));
        let mut ticks: u64 = 0;
        while self.now < until {
            self.step(ctrl);
            ticks += 1;
        }
        self.flush_gauges();
        if let (Some(span), Some(tel)) = (run_span, &self.tel.handle) {
            tel.tracer()
                .end_span(span, self.now, format!("{ticks} ticks"));
        }
    }

    /// Publishes the per-switch table gauges now (done automatically at
    /// the end of every [`ShardedNetwork::run_until`]).
    pub fn flush_gauges(&self) {
        let Some(tel) = &self.tel.handle else {
            return;
        };
        if !tel.is_enabled() {
            return;
        }
        let m = tel.metrics();
        let sub = names::dataplane::SUBSYSTEM;
        for shard in &self.shards {
            for sw in &shard.switches {
                let instance = format!("s{}", sw.dpid().raw());
                let table = sw.table();
                m.gauge_with(sub, names::dataplane::TABLE_LOOKUPS, &instance)
                    .set(i64::try_from(table.lookup_count()).unwrap_or(i64::MAX));
                m.gauge_with(sub, names::dataplane::TABLE_MATCHES, &instance)
                    .set(i64::try_from(table.matched_count()).unwrap_or(i64::MAX));
            }
        }
    }

    /// Advances the simulation by exactly one tick through the sharded
    /// phase pipeline (see the [module docs](self)).
    pub fn step(&mut self, ctrl: &mut impl ControllerLink) {
        let before = self.counters;
        let step_timer = self.tel.step_ns.start_timer();
        let t = self.now + self.config.tick;
        self.now = t;
        let tick_idx = t.as_micros().div_ceil(self.config.tick.as_micros().max(1));

        // Phase 1: per-shard expiry in parallel, FLOW_REMOVED delivery
        // sequential in global dpid order (shards are contiguous sorted
        // ranges, so shard order *is* dpid order).
        let mode = self.config.expiry;
        let tick = self.config.tick;
        let shards = std::mem::take(&mut self.shards);
        let results = athena_parallel::par_map_take(shards, move |mut s| {
            let out = s.run_expiry(t, tick_idx, mode, tick);
            (s, out)
        });
        let mut removed: Vec<(Dpid, FlowRemoved)> = Vec::new();
        let (mut fired, mut spurious, mut armed) = (0u64, 0u64, 0u64);
        for (s, out) in results {
            self.shards.push(s);
            fired += out.fired;
            spurious += out.spurious;
            armed += out.armed;
            removed.extend(out.removed);
        }
        self.tel.wheel_fired.add(fired);
        self.tel.wheel_spurious.add(spurious);
        self.tel.wheel_armed.add(armed);
        let wire = self.config.wire_mode;
        for (dpid, fr) in removed {
            self.counters.flow_removeds += 1;
            let xid = self.fresh_xid();
            let msg = via_wire(OfMessage::FlowRemoved { xid, body: fr }, wire);
            let cmds = ctrl.on_message(dpid, msg, t);
            self.apply_commands(cmds, ctrl);
        }

        // Phase 2: activate due flows — their first packet joins the
        // batched routing phase as a full-credit item.
        let mut items: Vec<TrafficItem> = Vec::new();
        let mut entries: Vec<(Dpid, PacketHeader)> = Vec::new();
        while let Some(spec) = self.pending.pop_if(|f| f.start <= t) {
            if let Some(src) = self.host_by_ip(spec.five_tuple.src) {
                let header = spec.header(src.port);
                items.push(TrafficItem {
                    flow_idx: None,
                    bytes: u64::from(spec.packet_size),
                    entry: (src.switch, header),
                    delivered: false,
                });
                entries.push((src.switch, header));
            }
            self.active.push(ActiveFlow::new(spec));
        }

        // Phase 3: controller's own tick (stats polling etc.).
        let cmds = ctrl.on_tick(t);
        self.apply_commands(cmds, ctrl);

        // Phase 4: per-flow traffic items.
        let specs: Vec<(usize, FlowSpec)> = self
            .active
            .iter()
            .enumerate()
            .filter(|(_, f)| f.spec.start < t && f.spec.end_time() >= t)
            .map(|(i, f)| (i, f.spec))
            .collect();
        for (idx, spec) in specs {
            let fwd_bytes = spec.bytes_per(tick);
            if fwd_bytes > 0 {
                if let Some(src) = self.host_by_ip(spec.five_tuple.src) {
                    let header = spec.header(src.port);
                    items.push(TrafficItem {
                        flow_idx: Some(idx),
                        bytes: fwd_bytes,
                        entry: (src.switch, header),
                        delivered: false,
                    });
                    entries.push((src.switch, header));
                }
            }
            if spec.reverse_ratio > 0.0 {
                let rev_bytes = (fwd_bytes as f64 * spec.reverse_ratio) as u64;
                if rev_bytes > 0 {
                    if let Some(dst) = self.host_by_ip(spec.five_tuple.dst) {
                        let header = spec.reverse_header(dst.port);
                        items.push(TrafficItem {
                            flow_idx: Some(idx),
                            bytes: rev_bytes,
                            entry: (dst.switch, header),
                            delivered: false,
                        });
                        entries.push((dst.switch, header));
                    }
                }
            }
        }

        // Phase 5: batched routing rounds.
        let (rounds, handoffs, stream) = self.route_items(&mut items, entries, ctrl);
        self.tel.routing_rounds.add(rounds);
        self.tel.cross_shard_handoffs.add(handoffs);

        // Phase 6: per-shard link offers + settle in parallel. Every
        // link settles every tick, so RNG streams are width-invariant.
        // Offers replay the segment stream in fixed-size chunks mapped
        // in parallel: per-link byte totals are sums, so any
        // width-invariant order works, and chunk boundaries depend only
        // on the stream length — never on thread count.
        let n_shards = self.shards.len();
        let stream = Arc::new(stream);
        let ranges: Vec<(usize, usize)> = (0..stream.len())
            .step_by(SEG_CHUNK)
            .map(|s| (s, (s + SEG_CHUNK).min(stream.len())))
            .collect();
        // Bytes each item offers per traversed link; 0 skips (activation
        // packets don't contend).
        let offer_bytes: Arc<Vec<u64>> = Arc::new(
            items
                .iter()
                .map(|it| if it.flow_idx.is_some() { it.bytes } else { 0 })
                .collect(),
        );
        let mut offers: Vec<Vec<(LinkId, u64)>> = (0..n_shards).map(|_| Vec::new()).collect();
        {
            let stream = Arc::clone(&stream);
            let ctx = Arc::clone(&self.ctx);
            let chunks = athena_parallel::par_map(ranges.clone(), move |&(s, e)| {
                let mut buckets: Vec<Vec<(LinkId, u64)>> =
                    (0..n_shards).map(|_| Vec::new()).collect();
                for rec in stream.get(s..e).unwrap_or(&[]) {
                    let bytes = offer_bytes.get(rec.item).copied().unwrap_or(0);
                    if bytes == 0 {
                        continue;
                    }
                    for l in &rec.links {
                        if let Some(si) = ctx.shard_of.get(&l.src) {
                            if let Some(bucket) = buckets.get_mut(*si) {
                                bucket.push((*l, bytes));
                            }
                        }
                    }
                }
                buckets
            });
            for mut chunk in chunks {
                for (si, bucket) in chunk.iter_mut().enumerate() {
                    if let Some(dst) = offers.get_mut(si) {
                        dst.append(bucket);
                    }
                }
            }
        }
        let shards = std::mem::take(&mut self.shards);
        let jobs: Vec<(Shard, Vec<(LinkId, u64)>)> = shards.into_iter().zip(offers).collect();
        let results = athena_parallel::par_map_take(jobs, move |(mut s, o)| {
            let out = s.offers_and_settle(o, tick);
            (s, out)
        });
        let mut frac_of: HashMap<LinkId, f64> = HashMap::new();
        let mut queue_drops = 0u64;
        for (s, out) in results {
            self.shards.push(s);
            queue_drops += out.queue_drop_delta;
            for lat in out.latencies {
                self.tel.link_latency_us.record(lat);
            }
            for (id, frac) in out.link_fracs {
                frac_of.insert(id, frac);
            }
        }
        if queue_drops > 0 {
            self.tel.link_queue_drops.add(queue_drops);
        }

        // Phase 7: credit replay per shard in parallel, then per-flow
        // bookkeeping sequentially in item order. Credit ops are all
        // commutative counter adds sharing one timestamp, so the bucket
        // order only has to be width-invariant, not item-major: entry
        // credits, drops, and bookkeeping go item-major; per-hop credits
        // replay the segment stream. The delivered fraction multiplies
        // link fracs in exact hop order (stream order restricted to one
        // item *is* its hop order), keeping f64 rounding identical to a
        // per-item walk.
        let mut frac_acc: Vec<f64> = vec![1.0; items.len()];
        let mut congested_of: Vec<Option<LinkId>> = vec![None; items.len()];
        for rec in stream.iter() {
            let Some(fa) = frac_acc.get_mut(rec.item) else {
                continue;
            };
            for l in &rec.links {
                let f = frac_of.get(l).copied().unwrap_or(1.0);
                *fa *= f;
                if f < 1.0 {
                    if let Some(c) = congested_of.get_mut(rec.item) {
                        if c.is_none() {
                            *c = Some(*l);
                        }
                    }
                }
            }
        }
        let mut ops: Vec<Vec<CreditOp>> = (0..n_shards).map(|_| Vec::new()).collect();
        let mut books: Vec<Book> = Vec::new();
        // `(packets, bytes)` each of the item's hops is credited with;
        // `None` skips the item (its flow vanished mid-tick).
        let mut creds: Vec<Option<(u64, u64)>> = Vec::with_capacity(items.len());
        for (i, it) in items.iter().enumerate() {
            match it.flow_idx {
                None => creds.push(Some((1, it.bytes))),
                Some(fi) => {
                    let frac = frac_acc.get(i).copied().unwrap_or(1.0);
                    let delivered_share = (it.bytes as f64 * frac) as u64;
                    let dropped = it.bytes - delivered_share;
                    let Some(spec) = self.active.get(fi).map(|f| f.spec) else {
                        creds.push(None);
                        continue;
                    };
                    let packets = spec.packets_for(delivered_share.max(1));
                    creds.push(Some((packets, delivered_share)));
                    if dropped > 0 {
                        if let Some(congested) = congested_of.get(i).copied().flatten() {
                            if let Some(si) = self.ctx.shard_of.get(&congested.src) {
                                if let Some(bucket) = ops.get_mut(*si) {
                                    bucket.push(CreditOp::TxDrop {
                                        dpid: congested.src,
                                        port: congested.src_port,
                                        packets: spec.packets_for(dropped),
                                    });
                                }
                            }
                        }
                    }
                    books.push(Book {
                        flow_idx: fi,
                        total: it.bytes,
                        delivered_share,
                        routed: it.delivered,
                    });
                }
            }
            // The entry switch is credited like a hop.
            if let Some((packets, bytes)) = creds.last().copied().flatten() {
                let (dpid, pkt) = it.entry;
                if let Some(si) = self.ctx.shard_of.get(&dpid) {
                    if let Some(bucket) = ops.get_mut(*si) {
                        bucket.push(CreditOp::Flow {
                            dpid,
                            pkt,
                            packets,
                            bytes,
                        });
                    }
                }
            }
        }
        {
            let stream = Arc::clone(&stream);
            let ctx = Arc::clone(&self.ctx);
            let creds = Arc::new(creds);
            let chunks = athena_parallel::par_map(ranges, move |&(s, e)| {
                let mut buckets: Vec<Vec<CreditOp>> = (0..n_shards).map(|_| Vec::new()).collect();
                for rec in stream.get(s..e).unwrap_or(&[]) {
                    let Some((packets, bytes)) = creds.get(rec.item).copied().flatten() else {
                        continue;
                    };
                    for (dpid, pkt) in &rec.hops {
                        if let Some(si) = ctx.shard_of.get(dpid) {
                            if let Some(bucket) = buckets.get_mut(*si) {
                                bucket.push(CreditOp::Flow {
                                    dpid: *dpid,
                                    pkt: *pkt,
                                    packets,
                                    bytes,
                                });
                            }
                        }
                    }
                }
                buckets
            });
            for mut chunk in chunks {
                for (si, bucket) in chunk.iter_mut().enumerate() {
                    if let Some(dst) = ops.get_mut(si) {
                        dst.append(bucket);
                    }
                }
            }
        }
        let shards = std::mem::take(&mut self.shards);
        let jobs: Vec<(Shard, Vec<CreditOp>)> = shards.into_iter().zip(ops).collect();
        self.shards = athena_parallel::par_map_take(jobs, move |(mut s, o)| {
            s.run_credits(o, t);
            s
        });
        for b in books {
            let dropped = b.total - b.delivered_share;
            let Some(f) = self.active.get_mut(b.flow_idx) else {
                continue;
            };
            f.last_tick_routed = b.routed;
            if b.routed {
                f.delivered_bytes += b.delivered_share;
                f.dropped_bytes += dropped;
                self.counters.delivered_bytes += b.delivered_share;
                self.counters.dropped_bytes += dropped;
            } else {
                f.dropped_bytes += b.total;
                self.counters.dropped_bytes += b.total;
            }
        }

        // Phase 8: retire finished flows, mirror counters, tick observe.
        self.active.retain(|f| f.spec.end_time() > t);
        step_timer.observe(&self.tel.step_ns);
        self.tel
            .packet_ins
            .add(self.counters.packet_ins - before.packet_ins);
        self.tel
            .flow_removeds
            .add(self.counters.flow_removeds - before.flow_removeds);
        self.tel
            .delivered_bytes
            .add(self.counters.delivered_bytes - before.delivered_bytes);
        self.tel
            .dropped_bytes
            .add(self.counters.dropped_bytes - before.dropped_bytes);
        self.tel.ticks.inc();
        self.observe.on_tick(t);
    }

    /// The batched routing phase: rounds of parallel shard-local walks,
    /// with one pipeline-processed packet-in batch per round and
    /// cross-shard handoffs continuing in the next round.
    fn route_items(
        &mut self,
        items: &mut [TrafficItem],
        entries: Vec<(Dpid, PacketHeader)>,
        ctrl: &mut impl ControllerLink,
    ) -> (u64, u64, Vec<SegRec>) {
        let mut stream: Vec<SegRec> = Vec::new();
        let max_punt = self.config.max_punt_retries;
        let hop_budget = self.ctx.shard_of.len() + 2;
        let now = self.now;
        let n_shards = self.shards.len();
        let mut pkts: Vec<PacketState> = entries
            .into_iter()
            .enumerate()
            .map(|(item, (dpid, pkt))| PacketState {
                item,
                dpid,
                pkt,
                punts: 0,
                hops_left: hop_budget,
            })
            .collect();
        let mut rounds = 0u64;
        let mut handoffs = 0u64;
        while !pkts.is_empty() {
            rounds += 1;
            // Bucket by shard; item order is preserved within a bucket,
            // and the merge below walks shards in index order, so the
            // round's output order is a pure function of its input.
            let mut buckets: Vec<Vec<PacketState>> = (0..n_shards).map(|_| Vec::new()).collect();
            for st in pkts.drain(..) {
                if let Some(si) = self.ctx.shard_of.get(&st.dpid) {
                    if let Some(b) = buckets.get_mut(*si) {
                        b.push(st);
                    }
                }
            }
            let ctx = Arc::clone(&self.ctx);
            let shards = std::mem::take(&mut self.shards);
            let jobs: Vec<(Shard, Vec<PacketState>)> = shards.into_iter().zip(buckets).collect();
            let results = athena_parallel::par_map_take(jobs, move |(s, b)| {
                let segs = s.walk_all(b, &ctx, now, max_punt);
                (s, segs)
            });
            let mut punts: Vec<PacketState> = Vec::new();
            for (s, segs) in results {
                self.shards.push(s);
                for seg in segs {
                    let WalkSeg {
                        item,
                        links,
                        hops,
                        outcome,
                    } = seg;
                    if !links.is_empty() || !hops.is_empty() {
                        // Moved in whole: the merge never copies hops.
                        stream.push(SegRec { item, links, hops });
                    }
                    match outcome {
                        Outcome::Delivered => {
                            if let Some(it) = items.get_mut(item) {
                                it.delivered = true;
                            }
                        }
                        Outcome::Failed => {}
                        Outcome::NeedPunt(st) => punts.push(st),
                        Outcome::Handoff(st) => {
                            handoffs += 1;
                            pkts.push(st);
                        }
                    }
                }
            }
            if !punts.is_empty() {
                // One batch per round: xids assigned in item order, one
                // span for the whole batch, commands applied in the
                // order the controller returned them.
                punts.sort_by_key(|s| s.item);
                let n = punts.len() as u64;
                self.counters.packet_ins += n;
                let wire = self.config.wire_mode;
                let mut batch = Vec::with_capacity(punts.len());
                for st in &punts {
                    let xid = self.fresh_xid();
                    batch.push((st.dpid, via_wire(OfMessage::packet_in(xid, st.pkt), wire)));
                }
                let span = self.observe.span_at("dataplane", "packet_in_batch", now);
                let cmds = ctrl.on_packet_in_batch(batch, now);
                self.apply_commands(cmds, ctrl);
                span.finish(format!("{n} packet-ins"));
                self.tel.punt_batches.inc();
                self.tel.batched_packet_ins.add(n);
                for mut st in punts {
                    st.punts += 1;
                    pkts.push(st);
                }
            }
            // Deterministic next-round order (each item has at most one
            // in-flight packet, so the item index is a unique key).
            pkts.sort_by_key(|s| s.item);
        }
        (rounds, handoffs, stream)
    }

    /// The host (if any) owning `ip`, via the constructed-once index.
    fn host_by_ip(&self, ip: Ipv4Addr) -> Option<HostSpec> {
        self.host_index
            .get(&ip)
            .and_then(|i| self.topology.hosts.get(*i))
            .copied()
    }

    fn switch_mut(&mut self, dpid: Dpid) -> Option<&mut SimSwitch> {
        let si = self.ctx.shard_of.get(&dpid).copied()?;
        self.shards.get_mut(si)?.switch_mut(dpid)
    }

    fn fresh_xid(&mut self) -> Xid {
        self.next_xid = self.next_xid.wrapping_add(1);
        Xid::new(self.next_xid)
    }

    /// Re-arms `dpid`'s shard wheel after its table may have gained an
    /// earlier deadline.
    fn arm_switch(&mut self, dpid: Dpid) {
        if self.config.expiry == ExpiryMode::Scan {
            return;
        }
        let tick = self.config.tick;
        let Some(si) = self.ctx.shard_of.get(&dpid).copied() else {
            return;
        };
        let Some(shard) = self.shards.get_mut(si) else {
            return;
        };
        if shard.arm(dpid, tick) {
            self.tel.wheel_armed.inc();
        }
    }

    /// Full-credit sequential walk for PACKET_OUT injection (follows the
    /// tables' current actions, like `Network::credit_path`).
    fn credit_walk(&mut self, entry: Dpid, header: PacketHeader, packets: u64, bytes: u64) {
        let now = self.now;
        let mut dpid = entry;
        let mut pkt = header;
        let max_hops = self.ctx.shard_of.len() + 2;
        for _ in 0..max_hops {
            let Some(sw) = self.switch_mut(dpid) else {
                return;
            };
            let Some(actions) = sw.process(&pkt, now, packets, bytes) else {
                return;
            };
            let Some(out) = Action::first_output(&actions) else {
                return;
            };
            let Some(link) = self.ctx.egress.get(&(dpid, out)).copied() else {
                return;
            };
            dpid = link.dst;
            pkt = apply_rewrites(&actions, pkt).with_in_port(link.dst_port);
        }
    }

    /// Applies controller commands; replies are fed back, bounded to
    /// avoid livelock (mirrors `Network::apply_commands`).
    fn apply_commands(
        &mut self,
        mut commands: Vec<(Dpid, OfMessage)>,
        ctrl: &mut impl ControllerLink,
    ) {
        let now = self.now;
        let wire = self.config.wire_mode;
        let mut depth = 0;
        while !commands.is_empty() && depth < 8 {
            depth += 1;
            let decoded: Vec<(Dpid, OfMessage)> = commands
                .drain(..)
                .map(|(dpid, msg)| (dpid, via_wire(msg, wire)))
                .collect();
            // Large all-FlowMod batches (a punt batch's install burst)
            // apply per shard in parallel; anything mixed falls through
            // to the order-sensitive sequential loop.
            if decoded.len() >= FLOW_MOD_BATCH_MIN
                && decoded
                    .iter()
                    .all(|(_, m)| matches!(m, OfMessage::FlowMod { .. }))
            {
                commands = self.apply_flow_mod_batch(decoded, ctrl);
                continue;
            }
            let mut replies: Vec<(Dpid, OfMessage)> = Vec::new();
            for (dpid, msg) in decoded {
                match msg {
                    OfMessage::FlowMod { body, .. } => {
                        let removed = match self.switch_mut(dpid) {
                            Some(sw) => sw.apply_flow_mod(&body, now),
                            None => continue,
                        };
                        for fr in removed {
                            self.counters.flow_removeds += 1;
                            let xid = self.fresh_xid();
                            let reply = via_wire(OfMessage::FlowRemoved { xid, body: fr }, wire);
                            replies.extend(ctrl.on_message(dpid, reply, now));
                        }
                        // The mod may have introduced an earlier
                        // deadline: schedule its wake-up.
                        self.arm_switch(dpid);
                    }
                    OfMessage::PacketOut { body, .. } => {
                        let bytes = u64::from(body.header.byte_len);
                        if let Some(out) = Action::first_output(&body.actions) {
                            let pkt = body.header.with_in_port(PortNo::CONTROLLER);
                            if let Some(link) = self.ctx.egress.get(&(dpid, out)).copied() {
                                let next =
                                    apply_rewrites(&body.actions, pkt).with_in_port(link.dst_port);
                                self.credit_walk(link.dst, next, 1, bytes);
                            }
                        }
                    }
                    OfMessage::StatsRequest { xid, body } => {
                        if let Some(sw) = self.switch(dpid) {
                            let reply = sw.stats(&body, now);
                            let reply = via_wire(OfMessage::StatsReply { xid, body: reply }, wire);
                            let span = self.observe.span_at("dataplane", "stats_reply", now);
                            replies.extend(ctrl.on_message(dpid, reply, now));
                            span.finish(format!("dpid={}", dpid.raw()));
                        }
                    }
                    OfMessage::EchoRequest { xid, data } => {
                        replies.extend(ctrl.on_message(
                            dpid,
                            OfMessage::EchoReply { xid, data },
                            now,
                        ));
                    }
                    OfMessage::BarrierRequest { xid } => {
                        replies.extend(ctrl.on_message(dpid, OfMessage::BarrierReply { xid }, now));
                    }
                    OfMessage::FeaturesRequest { xid } => {
                        if let Some(sw) = self.switch(dpid) {
                            let body = athena_openflow::FeaturesReply {
                                dpid,
                                n_tables: 1,
                                ports: sw.port_numbers(),
                            };
                            replies.extend(ctrl.on_message(
                                dpid,
                                OfMessage::FeaturesReply { xid, body },
                                now,
                            ));
                        }
                    }
                    _ => {}
                }
            }
            commands = replies;
        }
    }

    /// Applies an all-`FlowMod` command batch per shard in parallel —
    /// switches are disjoint across shards and per-shard command order
    /// is preserved, so the resulting tables, wheel arms, and the
    /// FLOW_REMOVED reply stream (merged back into command order) are
    /// byte-identical to the sequential loop at any width.
    fn apply_flow_mod_batch(
        &mut self,
        cmds: Vec<(Dpid, OfMessage)>,
        ctrl: &mut impl ControllerLink,
    ) -> Vec<(Dpid, OfMessage)> {
        let now = self.now;
        let wire = self.config.wire_mode;
        let mode = self.config.expiry;
        let tick = self.config.tick;
        let n_shards = self.shards.len();
        let mut buckets: Vec<Vec<(usize, Dpid, athena_openflow::FlowMod)>> =
            (0..n_shards).map(|_| Vec::new()).collect();
        for (i, (dpid, msg)) in cmds.into_iter().enumerate() {
            let OfMessage::FlowMod { body, .. } = msg else {
                continue;
            };
            if let Some(si) = self.ctx.shard_of.get(&dpid) {
                if let Some(b) = buckets.get_mut(*si) {
                    b.push((i, dpid, body));
                }
            }
        }
        let shards = std::mem::take(&mut self.shards);
        let jobs: Vec<(Shard, FlowModBucket)> = shards.into_iter().zip(buckets).collect();
        let results = athena_parallel::par_map_take(jobs, move |(mut s, cmds)| {
            let mut removed: Vec<(usize, Dpid, FlowRemoved)> = Vec::new();
            let mut armed = 0u64;
            for (i, dpid, body) in cmds {
                let frs = match s.switch_mut(dpid) {
                    Some(sw) => sw.apply_flow_mod(&body, now),
                    None => continue,
                };
                for fr in frs {
                    removed.push((i, dpid, fr));
                }
                // The mod may have introduced an earlier deadline.
                if mode != ExpiryMode::Scan && s.arm(dpid, tick) {
                    armed += 1;
                }
            }
            (s, removed, armed)
        });
        let mut removed: Vec<(usize, Dpid, FlowRemoved)> = Vec::new();
        let mut armed = 0u64;
        for (s, r, a) in results {
            self.shards.push(s);
            removed.extend(r);
            armed += a;
        }
        self.tel.wheel_armed.add(armed);
        // Stable sort: removals within one command keep their order.
        removed.sort_by_key(|(i, _, _)| *i);
        let mut replies: Vec<(Dpid, OfMessage)> = Vec::new();
        for (_, dpid, fr) in removed {
            self.counters.flow_removeds += 1;
            let xid = self.fresh_xid();
            let reply = via_wire(OfMessage::FlowRemoved { xid, body: fr }, wire);
            replies.extend(ctrl.on_message(dpid, reply, now));
        }
        replies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LearningControllerStub;
    use crate::Network;
    use athena_types::{FiveTuple, HostId};

    fn stub_for(topo: &Topology) -> LearningControllerStub {
        // The stub only needs the topology; borrow a throwaway Network.
        LearningControllerStub::new(&Network::new(topo.clone()))
    }

    fn flows_on(topo: &Topology, n: usize, seed: u64) -> Vec<FlowSpec> {
        // benign_mix_on draws src/dst from the topology's real hosts.
        crate::workload::benign_mix_on(topo, n, SimDuration::from_secs(10), seed)
    }

    #[test]
    fn plan_is_contiguous_sorted_and_deterministic() {
        let topo = Topology::fat_tree(4);
        let plan = ShardPlan::partition(&topo, 5);
        assert_eq!(plan.n_shards(), 5);
        let mut all: Vec<Dpid> = Vec::new();
        for i in 0..plan.n_shards() {
            let group = plan.shard_dpids(i);
            assert!(!group.is_empty());
            assert!(group.windows(2).all(|w| w[0] < w[1]), "sorted in shard");
            if let (Some(last), Some(first)) = (all.last(), group.first()) {
                assert!(last < first, "contiguous ranges");
            }
            all.extend_from_slice(group);
        }
        assert_eq!(all.len(), topo.switches.len());
        let again = ShardPlan::partition(&topo, 5);
        for i in 0..5 {
            assert_eq!(plan.shard_dpids(i), again.shard_dpids(i));
        }
        // Degenerate requests clamp instead of panicking.
        assert_eq!(ShardPlan::partition(&topo, 0).n_shards(), 1);
        assert!(ShardPlan::partition(&topo, 10_000).n_shards() <= topo.switches.len());
    }

    #[test]
    fn sharded_engine_routes_and_expires_like_a_network() {
        let topo = Topology::linear(6, 2);
        let plan = ShardPlan::partition(&topo, 3);
        let mut net = ShardedNetwork::with_plan(topo.clone(), NetworkConfig::default(), plan);
        let mut ctrl = stub_for(&topo);
        ctrl.idle_timeout = SimDuration::from_secs(3);
        net.inject_flows(flows_on(&topo, 30, 42));
        net.run_until(SimTime::from_secs(25), &mut ctrl);
        let c = net.counters();
        assert!(c.delivered_bytes > 0, "{c:?}");
        assert!(c.packet_ins > 0, "{c:?}");
        assert!(c.flow_removeds > 0, "idle timeouts must fire: {c:?}");
        assert_eq!(net.now(), SimTime::from_secs(25));
        assert!(net.switch(Dpid::new(1)).is_some());
    }

    #[test]
    fn scale_telemetry_counts_batches_and_handoffs() {
        let topo = Topology::linear(8, 2);
        let plan = ShardPlan::partition(&topo, 4);
        let mut net = ShardedNetwork::with_plan(topo.clone(), NetworkConfig::default(), plan);
        let tel = Telemetry::new();
        net.bind_telemetry(&tel);
        let mut ctrl = stub_for(&topo);
        net.inject_flows(flows_on(&topo, 20, 7));
        net.run_until(SimTime::from_secs(12), &mut ctrl);
        let m = tel.metrics();
        assert_eq!(m.gauge("scale", "shards").get(), 4);
        assert_eq!(m.counter("scale", "ticks").get(), 12);
        assert!(m.counter("scale", "punt_batches").get() > 0);
        assert!(m.counter("scale", "batched_packet_ins").get() >= net.counters().packet_ins);
        // An 8-switch line cut into 4 shards must hand packets across.
        assert!(m.counter("scale", "cross_shard_handoffs").get() > 0);
        assert!(m.counter("scale", "routing_rounds").get() >= 12);
        assert!(m.counter("dataplane", "wheel_armed").get() > 0);
        // Mirrored dataplane counters match the engine's own.
        assert_eq!(
            m.counter("dataplane", "packet_ins").get(),
            net.counters().packet_ins
        );
        assert_eq!(
            m.counter("dataplane", "delivered_bytes").get(),
            net.counters().delivered_bytes
        );
        // Every emitted key is declared in the registry.
        assert_eq!(
            athena_telemetry::names::undeclared(&tel.report()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn reruns_with_the_same_plan_are_identical() {
        let run = || {
            let topo = Topology::fat_tree(4);
            let plan = ShardPlan::partition(&topo, 4);
            let mut net = ShardedNetwork::with_plan(topo.clone(), NetworkConfig::default(), plan);
            let mut ctrl = stub_for(&topo);
            net.inject_flows(flows_on(&topo, 40, 9));
            net.run_until(SimTime::from_secs(14), &mut ctrl);
            net.counters()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chaos_hooks_wipe_reboot_and_links() {
        let topo = Topology::linear(4, 2);
        let mut net = ShardedNetwork::with_plan(
            topo.clone(),
            NetworkConfig::default(),
            ShardPlan::partition(&topo, 2),
        );
        let mut ctrl = stub_for(&topo);
        net.inject_flows(flows_on(&topo, 10, 3));
        net.run_until(SimTime::from_secs(4), &mut ctrl);
        assert!(net.wipe_switch(Dpid::new(2)) > 0);
        assert!(net.reboot_switch(Dpid::new(3)) == 0 || net.switch(Dpid::new(3)).is_some());
        assert_eq!(net.set_link_state(Dpid::new(1), Dpid::new(2), 0.0), 2);
        let before = net.delivered_bytes();
        net.run_until(SimTime::from_secs(6), &mut ctrl);
        assert_eq!(net.set_link_state(Dpid::new(1), Dpid::new(2), 1.0), 2);
        net.run_until(SimTime::from_secs(10), &mut ctrl);
        assert!(net.delivered_bytes() > before, "traffic recovers");
        assert_eq!(net.set_link_state(Dpid::new(9), Dpid::new(10), 0.0), 0);
    }

    #[test]
    fn activation_packet_credits_ingress_counters() {
        let topo = Topology::linear(3, 1);
        let mut net = ShardedNetwork::with_plan(
            topo.clone(),
            NetworkConfig::default(),
            ShardPlan::partition(&topo, 3),
        );
        let mut ctrl = stub_for(&topo);
        let src = topo.host(HostId::new(1)).map(|h| h.ip);
        let dst = topo.host(HostId::new(3)).map(|h| h.ip);
        let (Some(src), Some(dst)) = (src, dst) else {
            panic!("linear(3,1) has hosts 1 and 3");
        };
        net.inject_flows([FlowSpec::new(
            FiveTuple::tcp(src, 40_000, dst, 80),
            SimTime::ZERO,
            SimDuration::from_secs(5),
            8_000_000,
        )]);
        net.run_until(SimTime::from_secs(8), &mut ctrl);
        assert!(
            net.delivered_bytes() >= 4_000_000,
            "{}",
            net.delivered_bytes()
        );
        let sw1 = net.switch(Dpid::new(1)).and_then(|s| {
            s.table()
                .flow_stats(&athena_openflow::MatchFields::new(), net.now())
                .into_iter()
                .next()
        });
        assert!(sw1.is_some_and(|s| s.byte_count > 1_000_000));
    }
}
